# Empty compiler generated dependencies file for purchase_orders.
# This may be replaced when dependencies are built.
