# Empty dependencies file for nobench_inmemory.
# This may be replaced when dependencies are built.
