file(REMOVE_RECURSE
  "CMakeFiles/nobench_inmemory.dir/nobench_inmemory.cpp.o"
  "CMakeFiles/nobench_inmemory.dir/nobench_inmemory.cpp.o.d"
  "nobench_inmemory"
  "nobench_inmemory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nobench_inmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
