# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(json_test "/root/repo/build/tests/json_test")
set_tests_properties(json_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bson_test "/root/repo/build/tests/bson_test")
set_tests_properties(bson_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;22;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(oson_test "/root/repo/build/tests/oson_test")
set_tests_properties(oson_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;25;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(jsonpath_test "/root/repo/build/tests/jsonpath_test")
set_tests_properties(jsonpath_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;31;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rdbms_test "/root/repo/build/tests/rdbms_test")
set_tests_properties(rdbms_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;37;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sqljson_test "/root/repo/build/tests/sqljson_test")
set_tests_properties(sqljson_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;44;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dataguide_test "/root/repo/build/tests/dataguide_test")
set_tests_properties(dataguide_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;50;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;56;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(imc_test "/root/repo/build/tests/imc_test")
set_tests_properties(imc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;59;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;62;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;65;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;72;fsdm_add_test;/root/repo/tests/CMakeLists.txt;0;")
