file(REMOVE_RECURSE
  "CMakeFiles/sqljson_test.dir/sqljson/json_table_test.cc.o"
  "CMakeFiles/sqljson_test.dir/sqljson/json_table_test.cc.o.d"
  "CMakeFiles/sqljson_test.dir/sqljson/operators_test.cc.o"
  "CMakeFiles/sqljson_test.dir/sqljson/operators_test.cc.o.d"
  "sqljson_test"
  "sqljson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqljson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
