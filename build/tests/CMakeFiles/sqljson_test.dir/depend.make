# Empty dependencies file for sqljson_test.
# This may be replaced when dependencies are built.
