file(REMOVE_RECURSE
  "CMakeFiles/bson_test.dir/bson/bson_test.cc.o"
  "CMakeFiles/bson_test.dir/bson/bson_test.cc.o.d"
  "bson_test"
  "bson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
