# Empty compiler generated dependencies file for bson_test.
# This may be replaced when dependencies are built.
