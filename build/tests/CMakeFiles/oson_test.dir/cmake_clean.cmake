file(REMOVE_RECURSE
  "CMakeFiles/oson_test.dir/oson/oson_test.cc.o"
  "CMakeFiles/oson_test.dir/oson/oson_test.cc.o.d"
  "CMakeFiles/oson_test.dir/oson/set_encoding_test.cc.o"
  "CMakeFiles/oson_test.dir/oson/set_encoding_test.cc.o.d"
  "oson_test"
  "oson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
