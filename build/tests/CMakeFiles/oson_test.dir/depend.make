# Empty dependencies file for oson_test.
# This may be replaced when dependencies are built.
