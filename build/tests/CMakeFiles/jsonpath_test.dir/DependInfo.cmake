
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/jsonpath/path_test.cc" "tests/CMakeFiles/jsonpath_test.dir/jsonpath/path_test.cc.o" "gcc" "tests/CMakeFiles/jsonpath_test.dir/jsonpath/path_test.cc.o.d"
  "/root/repo/tests/jsonpath/streaming_test.cc" "tests/CMakeFiles/jsonpath_test.dir/jsonpath/streaming_test.cc.o" "gcc" "tests/CMakeFiles/jsonpath_test.dir/jsonpath/streaming_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/DependInfo.cmake"
  "/root/repo/build/src/oson/CMakeFiles/fsdm_oson.dir/DependInfo.cmake"
  "/root/repo/build/src/bson/CMakeFiles/fsdm_bson.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fsdm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/fsdm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
