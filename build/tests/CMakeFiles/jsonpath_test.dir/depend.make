# Empty dependencies file for jsonpath_test.
# This may be replaced when dependencies are built.
