file(REMOVE_RECURSE
  "CMakeFiles/jsonpath_test.dir/jsonpath/path_test.cc.o"
  "CMakeFiles/jsonpath_test.dir/jsonpath/path_test.cc.o.d"
  "CMakeFiles/jsonpath_test.dir/jsonpath/streaming_test.cc.o"
  "CMakeFiles/jsonpath_test.dir/jsonpath/streaming_test.cc.o.d"
  "jsonpath_test"
  "jsonpath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsonpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
