file(REMOVE_RECURSE
  "CMakeFiles/rdbms_test.dir/rdbms/executor_test.cc.o"
  "CMakeFiles/rdbms_test.dir/rdbms/executor_test.cc.o.d"
  "CMakeFiles/rdbms_test.dir/rdbms/expression_test.cc.o"
  "CMakeFiles/rdbms_test.dir/rdbms/expression_test.cc.o.d"
  "CMakeFiles/rdbms_test.dir/rdbms/table_test.cc.o"
  "CMakeFiles/rdbms_test.dir/rdbms/table_test.cc.o.d"
  "rdbms_test"
  "rdbms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
