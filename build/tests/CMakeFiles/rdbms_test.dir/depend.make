# Empty dependencies file for rdbms_test.
# This may be replaced when dependencies are built.
