file(REMOVE_RECURSE
  "CMakeFiles/json_test.dir/json/node_test.cc.o"
  "CMakeFiles/json_test.dir/json/node_test.cc.o.d"
  "CMakeFiles/json_test.dir/json/parser_test.cc.o"
  "CMakeFiles/json_test.dir/json/parser_test.cc.o.d"
  "CMakeFiles/json_test.dir/json/serializer_test.cc.o"
  "CMakeFiles/json_test.dir/json/serializer_test.cc.o.d"
  "json_test"
  "json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
