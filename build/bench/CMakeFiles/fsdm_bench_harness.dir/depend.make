# Empty dependencies file for fsdm_bench_harness.
# This may be replaced when dependencies are built.
