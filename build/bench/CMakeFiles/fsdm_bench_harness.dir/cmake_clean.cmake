file(REMOVE_RECURSE
  "CMakeFiles/fsdm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/fsdm_bench_harness.dir/harness.cc.o.d"
  "CMakeFiles/fsdm_bench_harness.dir/nobench.cc.o"
  "CMakeFiles/fsdm_bench_harness.dir/nobench.cc.o.d"
  "libfsdm_bench_harness.a"
  "libfsdm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
