file(REMOVE_RECURSE
  "libfsdm_bench_harness.a"
)
