file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hetero.dir/bench_fig8_hetero.cc.o"
  "CMakeFiles/bench_fig8_hetero.dir/bench_fig8_hetero.cc.o.d"
  "bench_fig8_hetero"
  "bench_fig8_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
