# Empty compiler generated dependencies file for bench_micro_navigation.
# This may be replaced when dependencies are built.
