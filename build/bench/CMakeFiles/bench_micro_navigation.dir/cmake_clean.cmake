file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_navigation.dir/bench_micro_navigation.cc.o"
  "CMakeFiles/bench_micro_navigation.dir/bench_micro_navigation.cc.o.d"
  "bench_micro_navigation"
  "bench_micro_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
