
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_olap.cc" "bench/CMakeFiles/bench_fig3_olap.dir/bench_fig3_olap.cc.o" "gcc" "bench/CMakeFiles/bench_fig3_olap.dir/bench_fig3_olap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/fsdm_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/dataguide/CMakeFiles/fsdm_dataguide.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fsdm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fsdm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/imc/CMakeFiles/fsdm_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/sqljson/CMakeFiles/fsdm_sqljson.dir/DependInfo.cmake"
  "/root/repo/build/src/oson/CMakeFiles/fsdm_oson.dir/DependInfo.cmake"
  "/root/repo/build/src/bson/CMakeFiles/fsdm_bson.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/DependInfo.cmake"
  "/root/repo/build/src/rdbms/CMakeFiles/fsdm_rdbms.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/fsdm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
