file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_olap.dir/bench_fig3_olap.cc.o"
  "CMakeFiles/bench_fig3_olap.dir/bench_fig3_olap.cc.o.d"
  "bench_fig3_olap"
  "bench_fig3_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
