# Empty dependencies file for bench_fig3_olap.
# This may be replaced when dependencies are built.
