# Empty dependencies file for bench_fig7_insert.
# This may be replaced when dependencies are built.
