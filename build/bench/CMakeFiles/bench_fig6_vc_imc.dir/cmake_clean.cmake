file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_vc_imc.dir/bench_fig6_vc_imc.cc.o"
  "CMakeFiles/bench_fig6_vc_imc.dir/bench_fig6_vc_imc.cc.o.d"
  "bench_fig6_vc_imc"
  "bench_fig6_vc_imc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_vc_imc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
