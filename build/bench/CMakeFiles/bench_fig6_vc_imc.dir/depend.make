# Empty dependencies file for bench_fig6_vc_imc.
# This may be replaced when dependencies are built.
