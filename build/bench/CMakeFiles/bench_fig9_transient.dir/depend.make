# Empty dependencies file for bench_fig9_transient.
# This may be replaced when dependencies are built.
