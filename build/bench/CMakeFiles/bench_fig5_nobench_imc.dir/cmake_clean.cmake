file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nobench_imc.dir/bench_fig5_nobench_imc.cc.o"
  "CMakeFiles/bench_fig5_nobench_imc.dir/bench_fig5_nobench_imc.cc.o.d"
  "bench_fig5_nobench_imc"
  "bench_fig5_nobench_imc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nobench_imc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
