# Empty dependencies file for bench_fig5_nobench_imc.
# This may be replaced when dependencies are built.
