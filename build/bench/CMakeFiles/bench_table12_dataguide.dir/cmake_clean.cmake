file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_dataguide.dir/bench_table12_dataguide.cc.o"
  "CMakeFiles/bench_table12_dataguide.dir/bench_table12_dataguide.cc.o.d"
  "bench_table12_dataguide"
  "bench_table12_dataguide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_dataguide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
