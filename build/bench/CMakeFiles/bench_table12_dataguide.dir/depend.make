# Empty dependencies file for bench_table12_dataguide.
# This may be replaced when dependencies are built.
