# Empty dependencies file for bench_table11_segments.
# This may be replaced when dependencies are built.
