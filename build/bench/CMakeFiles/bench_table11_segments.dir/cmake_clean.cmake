file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_segments.dir/bench_table11_segments.cc.o"
  "CMakeFiles/bench_table11_segments.dir/bench_table11_segments.cc.o.d"
  "bench_table11_segments"
  "bench_table11_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
