# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("json")
subdirs("bson")
subdirs("oson")
subdirs("jsonpath")
subdirs("rdbms")
subdirs("sqljson")
subdirs("sql")
subdirs("index")
subdirs("dataguide")
subdirs("imc")
subdirs("workloads")
