file(REMOVE_RECURSE
  "libfsdm_dataguide.a"
)
