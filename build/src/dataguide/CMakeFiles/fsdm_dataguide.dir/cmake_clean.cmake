file(REMOVE_RECURSE
  "CMakeFiles/fsdm_dataguide.dir/dataguide.cc.o"
  "CMakeFiles/fsdm_dataguide.dir/dataguide.cc.o.d"
  "CMakeFiles/fsdm_dataguide.dir/views.cc.o"
  "CMakeFiles/fsdm_dataguide.dir/views.cc.o.d"
  "libfsdm_dataguide.a"
  "libfsdm_dataguide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_dataguide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
