# Empty dependencies file for fsdm_dataguide.
# This may be replaced when dependencies are built.
