file(REMOVE_RECURSE
  "CMakeFiles/fsdm_sql.dir/parser.cc.o"
  "CMakeFiles/fsdm_sql.dir/parser.cc.o.d"
  "libfsdm_sql.a"
  "libfsdm_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
