# Empty compiler generated dependencies file for fsdm_sql.
# This may be replaced when dependencies are built.
