file(REMOVE_RECURSE
  "libfsdm_sql.a"
)
