file(REMOVE_RECURSE
  "libfsdm_sqljson.a"
)
