# Empty dependencies file for fsdm_sqljson.
# This may be replaced when dependencies are built.
