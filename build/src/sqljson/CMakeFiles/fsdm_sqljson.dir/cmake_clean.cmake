file(REMOVE_RECURSE
  "CMakeFiles/fsdm_sqljson.dir/json_table.cc.o"
  "CMakeFiles/fsdm_sqljson.dir/json_table.cc.o.d"
  "CMakeFiles/fsdm_sqljson.dir/operators.cc.o"
  "CMakeFiles/fsdm_sqljson.dir/operators.cc.o.d"
  "libfsdm_sqljson.a"
  "libfsdm_sqljson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_sqljson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
