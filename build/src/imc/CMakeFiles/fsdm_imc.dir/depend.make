# Empty dependencies file for fsdm_imc.
# This may be replaced when dependencies are built.
