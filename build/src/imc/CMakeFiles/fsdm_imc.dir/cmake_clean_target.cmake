file(REMOVE_RECURSE
  "libfsdm_imc.a"
)
