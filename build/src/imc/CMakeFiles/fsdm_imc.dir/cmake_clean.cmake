file(REMOVE_RECURSE
  "CMakeFiles/fsdm_imc.dir/column_store.cc.o"
  "CMakeFiles/fsdm_imc.dir/column_store.cc.o.d"
  "libfsdm_imc.a"
  "libfsdm_imc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_imc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
