file(REMOVE_RECURSE
  "libfsdm_jsonpath.a"
)
