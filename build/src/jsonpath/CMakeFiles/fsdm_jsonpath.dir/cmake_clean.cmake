file(REMOVE_RECURSE
  "CMakeFiles/fsdm_jsonpath.dir/evaluator.cc.o"
  "CMakeFiles/fsdm_jsonpath.dir/evaluator.cc.o.d"
  "CMakeFiles/fsdm_jsonpath.dir/parser.cc.o"
  "CMakeFiles/fsdm_jsonpath.dir/parser.cc.o.d"
  "CMakeFiles/fsdm_jsonpath.dir/streaming.cc.o"
  "CMakeFiles/fsdm_jsonpath.dir/streaming.cc.o.d"
  "libfsdm_jsonpath.a"
  "libfsdm_jsonpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_jsonpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
