# Empty compiler generated dependencies file for fsdm_jsonpath.
# This may be replaced when dependencies are built.
