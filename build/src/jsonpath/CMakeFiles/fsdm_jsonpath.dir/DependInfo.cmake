
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jsonpath/evaluator.cc" "src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/evaluator.cc.o" "gcc" "src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/evaluator.cc.o.d"
  "/root/repo/src/jsonpath/parser.cc" "src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/parser.cc.o" "gcc" "src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/parser.cc.o.d"
  "/root/repo/src/jsonpath/streaming.cc" "src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/streaming.cc.o" "gcc" "src/jsonpath/CMakeFiles/fsdm_jsonpath.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/fsdm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
