# Empty compiler generated dependencies file for fsdm_index.
# This may be replaced when dependencies are built.
