file(REMOVE_RECURSE
  "CMakeFiles/fsdm_index.dir/search_index.cc.o"
  "CMakeFiles/fsdm_index.dir/search_index.cc.o.d"
  "libfsdm_index.a"
  "libfsdm_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
