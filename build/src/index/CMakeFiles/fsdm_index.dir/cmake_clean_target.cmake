file(REMOVE_RECURSE
  "libfsdm_index.a"
)
