file(REMOVE_RECURSE
  "CMakeFiles/fsdm_common.dir/decimal.cc.o"
  "CMakeFiles/fsdm_common.dir/decimal.cc.o.d"
  "CMakeFiles/fsdm_common.dir/status.cc.o"
  "CMakeFiles/fsdm_common.dir/status.cc.o.d"
  "CMakeFiles/fsdm_common.dir/value.cc.o"
  "CMakeFiles/fsdm_common.dir/value.cc.o.d"
  "CMakeFiles/fsdm_common.dir/varint.cc.o"
  "CMakeFiles/fsdm_common.dir/varint.cc.o.d"
  "libfsdm_common.a"
  "libfsdm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
