# Empty compiler generated dependencies file for fsdm_common.
# This may be replaced when dependencies are built.
