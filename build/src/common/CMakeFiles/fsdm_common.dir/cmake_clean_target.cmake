file(REMOVE_RECURSE
  "libfsdm_common.a"
)
