file(REMOVE_RECURSE
  "libfsdm_oson.a"
)
