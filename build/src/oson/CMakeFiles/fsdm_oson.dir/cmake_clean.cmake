file(REMOVE_RECURSE
  "CMakeFiles/fsdm_oson.dir/dom.cc.o"
  "CMakeFiles/fsdm_oson.dir/dom.cc.o.d"
  "CMakeFiles/fsdm_oson.dir/encoder.cc.o"
  "CMakeFiles/fsdm_oson.dir/encoder.cc.o.d"
  "CMakeFiles/fsdm_oson.dir/set_encoding.cc.o"
  "CMakeFiles/fsdm_oson.dir/set_encoding.cc.o.d"
  "libfsdm_oson.a"
  "libfsdm_oson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_oson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
