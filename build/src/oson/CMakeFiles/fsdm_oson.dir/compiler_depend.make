# Empty compiler generated dependencies file for fsdm_oson.
# This may be replaced when dependencies are built.
