file(REMOVE_RECURSE
  "libfsdm_bson.a"
)
