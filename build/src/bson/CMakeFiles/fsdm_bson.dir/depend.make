# Empty dependencies file for fsdm_bson.
# This may be replaced when dependencies are built.
