file(REMOVE_RECURSE
  "CMakeFiles/fsdm_bson.dir/bson.cc.o"
  "CMakeFiles/fsdm_bson.dir/bson.cc.o.d"
  "libfsdm_bson.a"
  "libfsdm_bson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_bson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
