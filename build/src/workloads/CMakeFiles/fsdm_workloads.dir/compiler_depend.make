# Empty compiler generated dependencies file for fsdm_workloads.
# This may be replaced when dependencies are built.
