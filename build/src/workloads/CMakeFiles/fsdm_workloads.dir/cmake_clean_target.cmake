file(REMOVE_RECURSE
  "libfsdm_workloads.a"
)
