file(REMOVE_RECURSE
  "CMakeFiles/fsdm_workloads.dir/generators.cc.o"
  "CMakeFiles/fsdm_workloads.dir/generators.cc.o.d"
  "libfsdm_workloads.a"
  "libfsdm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
