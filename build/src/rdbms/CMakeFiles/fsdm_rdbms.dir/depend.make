# Empty dependencies file for fsdm_rdbms.
# This may be replaced when dependencies are built.
