file(REMOVE_RECURSE
  "CMakeFiles/fsdm_rdbms.dir/executor.cc.o"
  "CMakeFiles/fsdm_rdbms.dir/executor.cc.o.d"
  "CMakeFiles/fsdm_rdbms.dir/expression.cc.o"
  "CMakeFiles/fsdm_rdbms.dir/expression.cc.o.d"
  "CMakeFiles/fsdm_rdbms.dir/table.cc.o"
  "CMakeFiles/fsdm_rdbms.dir/table.cc.o.d"
  "libfsdm_rdbms.a"
  "libfsdm_rdbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_rdbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
