file(REMOVE_RECURSE
  "libfsdm_rdbms.a"
)
