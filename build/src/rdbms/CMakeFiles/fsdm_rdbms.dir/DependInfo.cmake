
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdbms/executor.cc" "src/rdbms/CMakeFiles/fsdm_rdbms.dir/executor.cc.o" "gcc" "src/rdbms/CMakeFiles/fsdm_rdbms.dir/executor.cc.o.d"
  "/root/repo/src/rdbms/expression.cc" "src/rdbms/CMakeFiles/fsdm_rdbms.dir/expression.cc.o" "gcc" "src/rdbms/CMakeFiles/fsdm_rdbms.dir/expression.cc.o.d"
  "/root/repo/src/rdbms/table.cc" "src/rdbms/CMakeFiles/fsdm_rdbms.dir/table.cc.o" "gcc" "src/rdbms/CMakeFiles/fsdm_rdbms.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/fsdm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
