file(REMOVE_RECURSE
  "libfsdm_json.a"
)
