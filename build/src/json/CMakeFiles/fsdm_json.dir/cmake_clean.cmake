file(REMOVE_RECURSE
  "CMakeFiles/fsdm_json.dir/node.cc.o"
  "CMakeFiles/fsdm_json.dir/node.cc.o.d"
  "CMakeFiles/fsdm_json.dir/parser.cc.o"
  "CMakeFiles/fsdm_json.dir/parser.cc.o.d"
  "CMakeFiles/fsdm_json.dir/serializer.cc.o"
  "CMakeFiles/fsdm_json.dir/serializer.cc.o.d"
  "libfsdm_json.a"
  "libfsdm_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdm_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
