# Empty compiler generated dependencies file for fsdm_json.
# This may be replaced when dependencies are built.
