#!/usr/bin/env python3
"""AWR-style workload report from a BENCH_*.json workload repository.

Usage: ash_report.py BENCH_file.json [--from SNAP] [--to SNAP] [-o FILE.md]

The bench harness ticks one workload snapshot per printed row (plus a final
"bench-end" snapshot); each snapshot binds a full metrics dump to the ASH
samples of the window since the previous snapshot. This script diffs two of
them — by default the first and the last — and renders the window between
as markdown: elapsed time, DB-time by wait class, the per-collection time
model, top queries by sampled DB-time, shard skew, and the biggest counter
and histogram movements.

SNAP selects a snapshot by numeric id or by label (first match). The window
reported is (from, to]: the ASH aggregates of every snapshot after `from`
up to and including `to` are merged.

Exits 1 when the file carries fewer than two workload snapshots (nothing to
diff), 2 on malformed input.
"""

import argparse
import json
import sys


def fail(msg, code=2):
    print(f"ash_report: {msg}", file=sys.stderr)
    sys.exit(code)


def pick(snaps, token, default_index):
    if token is None:
        return snaps[default_index]
    for snap in snaps:
        if str(snap.get("id")) == token:
            return snap
    for snap in snaps:
        if snap.get("label") == token:
            return snap
    fail(f"no snapshot with id or label {token!r}")


def merge_ash(snaps):
    """Sums the per-snapshot ASH windows into one (from, to] aggregate."""
    total = {"db_samples": 0, "wait_classes": {}, "time_model": {},
             "top_queries": {}, "shard_samples": {}}
    for snap in snaps:
        ash = snap.get("ash", {})
        total["db_samples"] += ash.get("db_samples", 0)
        for cls, n in ash.get("wait_classes", {}).items():
            total["wait_classes"][cls] = total["wait_classes"].get(cls, 0) + n
        for cell in ash.get("time_model", []):
            key = (cell.get("collection", "?"), cell.get("state", "?"),
                   cell.get("class", "?"))
            total["time_model"][key] = (total["time_model"].get(key, 0)
                                        + cell.get("samples", 0))
        for q in ash.get("top_queries", []):
            name = q.get("query", "?")
            total["top_queries"][name] = (total["top_queries"].get(name, 0)
                                          + q.get("samples", 0))
        for shard, n in ash.get("shard_samples", {}).items():
            total["shard_samples"][shard] = (
                total["shard_samples"].get(shard, 0) + n)
    return total


def fmt_pct(part, whole):
    return f"{100.0 * part / whole:.1f}%" if whole else "n/a"


def render(doc, from_snap, to_snap, window):
    hz = doc.get("ash", {}).get("sampler_hz", 0)
    db = window["db_samples"]
    elapsed_s = max(to_snap["ts_us"] - from_snap["ts_us"], 0) / 1e6
    lines = []
    out = lines.append

    out(f"## ASH workload report — {doc.get('bench', '?')}")
    out("")
    out(f"Window: snapshot {from_snap['id']} (`{from_snap['label']}`) → "
        f"snapshot {to_snap['id']} (`{to_snap['label']}`), "
        f"{elapsed_s:.3f}s elapsed.")
    samples_note = (f"~{db / hz:.3f}s DB-time at {hz:g} Hz"
                    if hz else "sampler disabled")
    out(f"DB-time samples in window: {db} ({samples_note}).")
    out("")

    out("### DB-time by wait class")
    out("")
    if not window["wait_classes"]:
        out("No active-session samples landed in this window.")
    else:
        out("| wait class | samples | % of DB-time |")
        out("|---|---:|---:|")
        for cls, n in sorted(window["wait_classes"].items(),
                             key=lambda kv: (-kv[1], kv[0])):
            out(f"| {cls} | {n} | {fmt_pct(n, db)} |")
    out("")

    out("### Time model (collection × wait state)")
    out("")
    if not window["time_model"]:
        out("Empty.")
    else:
        out("| collection | state | class | samples | % of DB-time |")
        out("|---|---|---|---:|---:|")
        cells = sorted(window["time_model"].items(),
                       key=lambda kv: (-kv[1], kv[0]))
        for (coll, state, cls), n in cells[:20]:
            out(f"| {coll} | {state} | {cls} | {n} | {fmt_pct(n, db)} |")
        if len(cells) > 20:
            out(f"| … {len(cells) - 20} more rows elided … | | | | |")
    out("")

    out("### Top queries by sampled DB-time")
    out("")
    if not window["top_queries"]:
        out("No sampled work carried a query text.")
    else:
        out("| query | samples | % of DB-time |")
        out("|---|---:|---:|")
        top = sorted(window["top_queries"].items(),
                     key=lambda kv: (-kv[1], kv[0]))
        for query, n in top[:10]:
            text = query if len(query) <= 80 else query[:77] + "…"
            out(f"| `{text}` | {n} | {fmt_pct(n, db)} |")
    out("")

    if window["shard_samples"]:
        shards = window["shard_samples"]
        mean = sum(shards.values()) / len(shards)
        skew = max(shards.values()) / mean if mean else 0
        out(f"### Shard skew: {skew:.2f}x (max/mean over "
            f"{len(shards)} shards)")
        out("")
        out("| shard | samples |")
        out("|---:|---:|")
        for shard, n in sorted(shards.items(), key=lambda kv: int(kv[0])):
            out(f"| {shard} | {n} |")
        out("")

    # Counter / histogram movements between the two snapshot endpoints.
    from_counters = from_snap.get("counters", {})
    deltas = []
    for name, value in to_snap.get("counters", {}).items():
        d = value - from_counters.get(name, 0)
        if d:
            deltas.append((name, d))
    out("### Top counter deltas")
    out("")
    if not deltas:
        out("No counter moved in this window.")
    else:
        out("| counter | delta |")
        out("|---|---:|")
        for name, d in sorted(deltas, key=lambda kv: (-abs(kv[1]), kv[0]))[:15]:
            out(f"| {name} | {d:+} |")
    out("")

    from_hists = from_snap.get("histograms", {})
    hist_rows = []
    for name, point in to_snap.get("histograms", {}).items():
        prev = from_hists.get(name, {})
        dc = point.get("count", 0) - prev.get("count", 0)
        ds = point.get("sum", 0) - prev.get("sum", 0)
        if dc > 0:
            hist_rows.append((name, dc, ds, ds / dc))
    out("### Histogram windows (mean from count/sum deltas)")
    out("")
    if not hist_rows:
        out("No histogram observed values in this window.")
    else:
        out("| histogram | observations | sum | window mean |")
        out("|---|---:|---:|---:|")
        for name, dc, ds, mean in sorted(hist_rows,
                                         key=lambda r: (-r[1], r[0]))[:15]:
            out(f"| {name} | {dc} | {ds:g} | {mean:g} |")
    out("")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--from", dest="from_snap", default=None, metavar="SNAP",
                    help="window start: snapshot id or label "
                         "(default: first)")
    ap.add_argument("--to", dest="to_snap", default=None, metavar="SNAP",
                    help="window end: snapshot id or label (default: last)")
    ap.add_argument("-o", "--output", default=None, metavar="FILE",
                    help="write markdown here instead of stdout")
    args = ap.parse_args()

    try:
        with open(args.bench_json, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.bench_json}: {e}")

    snaps = doc.get("workload_snapshots")
    if not isinstance(snaps, list):
        fail(f"{args.bench_json}: no 'workload_snapshots' section")
    if len(snaps) < 2:
        fail(f"{args.bench_json}: {len(snaps)} workload snapshot(s) — "
             f"need at least 2 to diff", code=1)

    from_snap = pick(snaps, args.from_snap, 0)
    to_snap = pick(snaps, args.to_snap, -1)
    if to_snap["id"] <= from_snap["id"]:
        fail(f"window end (snapshot {to_snap['id']}) must come after "
             f"window start (snapshot {from_snap['id']})")

    window = merge_ash([s for s in snaps
                        if from_snap["id"] < s["id"] <= to_snap["id"]])
    text = render(doc, from_snap, to_snap, window)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"ash_report: wrote {args.output} "
              f"(snapshots {from_snap['id']}→{to_snap['id']}, "
              f"{window['db_samples']} samples)")
    else:
        print(text)


if __name__ == "__main__":
    main()
