#!/usr/bin/env python3
"""Checks the README metrics reference against the metrics the engine
actually emits (ISSUE 9 satellite).

Usage: check_metrics_doc.py [REPO_ROOT]

Emitted metrics are every string literal matching "fsdm_[a-z0-9_]+ inside
src/ (.h/.cc). Documented metrics are the first-column `fsdm_*` entries of
the "### Metrics reference" table in README.md. The check is
bidirectional: an emitted-but-undocumented metric fails (document it), and
a documented-but-gone metric fails too (the table went stale). Exits
non-zero listing every violation.
"""

import os
import re
import sys

EMIT_RE = re.compile(r'"(fsdm_[a-z0-9_]+)')
DOC_RE = re.compile(r"^\|\s*`(fsdm_[a-z0-9_]+)`")


def emitted_metrics(src_dir):
    out = {}
    for root, _dirs, files in os.walk(src_dir):
        for name in sorted(files):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(root, name)
            with open(path, encoding="utf-8") as f:
                for metric in EMIT_RE.findall(f.read()):
                    out.setdefault(metric, os.path.relpath(path, src_dir))
    return out


def documented_metrics(readme_path):
    out = set()
    in_section = False
    with open(readme_path, encoding="utf-8") as f:
        for line in f:
            if line.startswith("#"):
                in_section = line.strip() == "### Metrics reference"
                continue
            if not in_section:
                continue
            m = DOC_RE.match(line)
            if m:
                out.add(m.group(1))
    return out


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    src_dir = os.path.join(root, "src")
    readme = os.path.join(root, "README.md")
    if not os.path.isdir(src_dir) or not os.path.isfile(readme):
        print(f"check_metrics_doc: {root} is not the repo root "
              f"(need src/ and README.md)", file=sys.stderr)
        sys.exit(2)

    emitted = emitted_metrics(src_dir)
    documented = documented_metrics(readme)
    if not documented:
        print("check_metrics_doc: README.md has no '### Metrics reference' "
              "table", file=sys.stderr)
        sys.exit(1)

    failures = []
    for metric in sorted(set(emitted) - documented):
        failures.append(f"undocumented: {metric} (emitted in "
                        f"src/{emitted[metric]}) — add it to README.md "
                        f"'Metrics reference'")
    for metric in sorted(documented - set(emitted)):
        failures.append(f"stale doc: {metric} documented in README.md but "
                        f"no longer emitted anywhere in src/")
    if failures:
        for f in failures:
            print(f"check_metrics_doc: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_metrics_doc: ok ({len(emitted)} metrics emitted, "
          f"all documented, no stale entries)")


if __name__ == "__main__":
    main()
