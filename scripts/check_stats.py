#!/usr/bin/env python3
"""Gates CI on the router's cardinality estimates.

Usage: check_stats.py [BENCH_JSON ...]

Reads BENCH_*.json files (default: BENCH_ablation_access_paths.json in the
working directory), finds the routed-query rows — the ones carrying both an
"est rows" and an "actual rows" cell from the bench's cost-based-routing
section — and asserts:

  1. every routed query reports both an estimate and an actual row count
     (a missing estimate means the router skipped the cost model);
  2. the median misestimation ratio max((a+1)/(e+1), (e+1)/(a+1)) across
     all routed queries stays below 10x.

Prints a per-query report (uploaded as a CI artifact) and exits non-zero
when either assertion fails.
"""

import json
import statistics
import sys

MAX_MEDIAN_RATIO = 10.0


def ratio(est, actual):
    hi = max(est + 1.0, actual + 1.0)
    lo = min(est + 1.0, actual + 1.0)
    return hi / lo


def main(argv):
    paths = argv[1:] or ["BENCH_ablation_access_paths.json"]
    routed = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                bench = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_stats: cannot read {path}: {e}", file=sys.stderr)
            return 2
        for row in bench.get("rows", []):
            if "est rows" not in row and "actual rows" not in row:
                continue  # not a routed-query row (other bench sections)
            routed.append((path, row))

    if not routed:
        print("check_stats: no routed-query rows found in "
              f"{', '.join(paths)}", file=sys.stderr)
        return 1

    failures = []
    ratios = []
    print(f"{'query shape':30} {'access path':24} "
          f"{'est':>10} {'actual':>10} {'ratio':>7}")
    for path, row in routed:
        name = str(row.get("query shape", "?"))
        access = str(row.get("access path", "?"))
        est = row.get("est rows")
        actual = row.get("actual rows")
        if not isinstance(est, (int, float)) or est < 0:
            failures.append(f"{name}: no cardinality estimate ({path})")
            print(f"{name:30} {access:24} {'MISSING':>10} {actual!s:>10}")
            continue
        if not isinstance(actual, (int, float)):
            failures.append(f"{name}: no actual row count ({path})")
            print(f"{name:30} {access:24} {est:>10g} {'MISSING':>10}")
            continue
        r = ratio(float(est), float(actual))
        ratios.append(r)
        print(f"{name:30} {access:24} {est:>10g} {actual:>10g} {r:>6.2f}x")

    if ratios:
        median = statistics.median(ratios)
        print(f"\nmedian misestimation ratio: {median:.2f}x "
              f"(limit {MAX_MEDIAN_RATIO:g}x, {len(ratios)} queries)")
        if median >= MAX_MEDIAN_RATIO:
            failures.append(
                f"median misestimation ratio {median:.2f}x >= "
                f"{MAX_MEDIAN_RATIO:g}x")

    if failures:
        print(f"\ncheck_stats: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_stats: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
