#!/usr/bin/env python3
"""Validates BENCH_*.json files emitted by the bench harness.

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]

Each file must parse as JSON and carry the harness schema:
  {"bench": str, "docs": int, "rows": [obj, ...], "metrics":
   {"counters": {...}, "gauges": {...}, "histograms": {...}},
   "ash": {"sampler_hz": num, "ticks": int, "db_samples_total": int,
           "window": {"db_samples": ..., "wait_classes": ..., ...}},
   "workload_snapshots": [{"id": ..., "ash": ..., "counters": ...,
                           "histograms": {name: {"count", "sum"}}}, ...]}
with at least one row and at least one fsdm_-prefixed counter (proof the
instrumented engine actually ran). Histogram dumps must carry "sum" and
"mean" so mean latency is derivable from any exposure. The "ash" and
"workload_snapshots" sections must be present (zeroed when the sampler is
off) with the shapes scripts/ash_report.py consumes, and so must the
"memory" and "log" sections (all zeros under -DFSDM_TELEMETRY=OFF).
Exits non-zero on the first violation.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not valid JSON: {e}")

    for key, want in (("bench", str), ("docs", int), ("rows", list),
                      ("metrics", dict)):
        if key not in doc:
            fail(path, f"missing key '{key}'")
        if not isinstance(doc[key], want):
            fail(path, f"'{key}' is {type(doc[key]).__name__}, "
                       f"expected {want.__name__}")
    if not doc["bench"]:
        fail(path, "'bench' is empty")
    if not doc["rows"]:
        fail(path, "'rows' is empty — the bench recorded nothing")
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict) or not row:
            fail(path, f"rows[{i}] is not a non-empty object")

    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(path, f"metrics.{section} missing or not an object")
    if not any(name.startswith("fsdm_") for name in metrics["counters"]):
        fail(path, "no fsdm_-prefixed counter in the metrics snapshot")
    for name, hist in metrics["histograms"].items():
        for key in ("count", "sum", "mean"):
            if not isinstance(hist.get(key), (int, float)):
                fail(path, f"metrics.histograms.{name} missing numeric "
                           f"'{key}'")

    check_ash(path, doc)
    check_wal(path, doc)
    check_memory(path, doc)
    check_log(path, doc)
    snaps = doc.get("workload_snapshots")
    if not isinstance(snaps, list):
        fail(path, "missing 'workload_snapshots' array")
    last_id = 0
    for i, snap in enumerate(snaps):
        where = f"workload_snapshots[{i}]"
        if not isinstance(snap, dict):
            fail(path, f"{where} is not an object")
        for key, want in (("id", int), ("ts_us", int), ("label", str),
                          ("sampler_ticks", int), ("counters", dict),
                          ("histograms", dict)):
            if not isinstance(snap.get(key), want):
                fail(path, f"{where} missing or mistyped '{key}'")
        if snap["id"] <= last_id:
            fail(path, f"{where} ids not strictly increasing")
        last_id = snap["id"]
        check_ash_window(path, where, snap.get("ash"))
        for name, hist in snap["histograms"].items():
            if not isinstance(hist.get("count"), int) \
                    or not isinstance(hist.get("sum"), (int, float)):
                fail(path, f"{where}.histograms.{name} needs (count, sum)")

    ash = doc["ash"]
    print(f"{path}: ok ({len(doc['rows'])} rows, "
          f"{len(metrics['counters'])} counters, "
          f"{len(snaps)} snapshots, "
          f"{ash['window'].get('db_samples', 0)} ash samples)")


WAIT_CLASSES = {"idle", "cpu", "scheduler", "concurrency", "fault", "io"}


def check_ash_window(path, where, window):
    """One AshAggregateJson object: the bench window or a snapshot's."""
    if not isinstance(window, dict):
        fail(path, f"{where} missing ash aggregate object")
    if not isinstance(window.get("db_samples"), int):
        fail(path, f"{where}.db_samples missing or not an int")
    classes = window.get("wait_classes")
    if not isinstance(classes, dict):
        fail(path, f"{where}.wait_classes missing or not an object")
    unknown = set(classes) - WAIT_CLASSES
    if unknown:
        fail(path, f"{where}.wait_classes has unknown classes {unknown}")
    model = window.get("time_model")
    if not isinstance(model, list):
        fail(path, f"{where}.time_model missing or not an array")
    model_total = 0
    for j, cell in enumerate(model):
        for key in ("collection", "state", "class"):
            if not isinstance(cell.get(key), str):
                fail(path, f"{where}.time_model[{j}] missing '{key}'")
        if not isinstance(cell.get("samples"), int):
            fail(path, f"{where}.time_model[{j}] missing 'samples'")
        if not isinstance(cell.get("pct"), (int, float)):
            fail(path, f"{where}.time_model[{j}] missing 'pct'")
        model_total += cell["samples"]
    if model_total != window["db_samples"]:
        fail(path, f"{where}.time_model sums to {model_total}, "
                   f"db_samples says {window['db_samples']}")
    if sum(classes.values()) != window["db_samples"]:
        fail(path, f"{where}.wait_classes sums to {sum(classes.values())}, "
                   f"db_samples says {window['db_samples']}")
    if not isinstance(window.get("top_queries"), list):
        fail(path, f"{where}.top_queries missing or not an array")
    if not isinstance(window.get("shard_samples"), dict):
        fail(path, f"{where}.shard_samples missing or not an object")


def check_ash(path, doc):
    ash = doc.get("ash")
    if not isinstance(ash, dict):
        fail(path, "missing 'ash' section")
    if not isinstance(ash.get("sampler_hz"), (int, float)):
        fail(path, "ash.sampler_hz missing or not a number")
    for key in ("ticks", "db_samples_total"):
        if not isinstance(ash.get(key), int):
            fail(path, f"ash.{key} missing or not an int")
    check_ash_window(path, "ash.window", ash.get("window"))


def check_wal(path, doc):
    """The "wal" section bench_wal_durability attaches: durable-ingest
    throughput per fsync policy plus recovery time. Optional — only the
    WAL bench emits it — but when present the shape is enforced so
    bench_compare.py can diff it."""
    wal = doc.get("wal")
    if wal is None:
        return
    if not isinstance(wal, dict):
        fail(path, "'wal' is not an object")
    ingest = wal.get("ingest")
    if not isinstance(ingest, list) or not ingest:
        fail(path, "wal.ingest missing or empty")
    policies = set()
    for i, entry in enumerate(ingest):
        where = f"wal.ingest[{i}]"
        if not isinstance(entry, dict):
            fail(path, f"{where} is not an object")
        if not isinstance(entry.get("policy"), str):
            fail(path, f"{where} missing 'policy'")
        for key in ("docs_per_sec", "ingest_ms"):
            if not isinstance(entry.get(key), (int, float)) \
                    or entry[key] <= 0:
                fail(path, f"{where} missing positive '{key}'")
        if not isinstance(entry.get("fsyncs"), int):
            fail(path, f"{where} missing int 'fsyncs'")
        policies.add(entry["policy"])
    missing = {"off", "group", "always"} - policies
    if missing:
        fail(path, f"wal.ingest missing policies {missing}")
    recovery = wal.get("recovery")
    if not isinstance(recovery, dict):
        fail(path, "wal.recovery missing or not an object")
    if not isinstance(recovery.get("ms"), (int, float)):
        fail(path, "wal.recovery.ms missing or not a number")
    for key in ("lsns_replayed", "docs"):
        if not isinstance(recovery.get(key), int) or recovery[key] <= 0:
            fail(path, f"wal.recovery.{key} missing or not positive — "
                       f"the recovery leg replayed nothing")


MEM_SUBSYSTEMS = {"table-heap", "oson-vc", "index-postings", "dataguide",
                  "imc", "path-stats", "wal-buffers", "plan-working-set"}


def check_memory(path, doc):
    """The "memory" section (ISSUE 9): tracker totals plus the
    per-subsystem split. Required on every bench — the harness always
    emits it, with all-zero values under -DFSDM_TELEMETRY=OFF."""
    mem = doc.get("memory")
    if not isinstance(mem, dict):
        fail(path, "missing 'memory' section")
    for key in ("total_bytes", "peak_bytes"):
        if not isinstance(mem.get(key), int) or mem[key] < 0:
            fail(path, f"memory.{key} missing or not a non-negative int")
    subs = mem.get("subsystems")
    if not isinstance(subs, dict):
        fail(path, "memory.subsystems missing or not an object")
    if set(subs) != MEM_SUBSYSTEMS:
        fail(path, f"memory.subsystems keys {sorted(subs)} != expected "
                   f"{sorted(MEM_SUBSYSTEMS)}")
    for name, entry in subs.items():
        for key in ("bytes", "peak_bytes"):
            if not isinstance(entry.get(key), int) or entry[key] < 0:
                fail(path, f"memory.subsystems.{name}.{key} missing or "
                           f"not a non-negative int")
    split = sum(entry["bytes"] for entry in subs.values())
    if split > mem["total_bytes"]:
        fail(path, f"memory.subsystems sum to {split} bytes, more than "
                   f"total_bytes {mem['total_bytes']}")


LOG_COUNTERS = ("fsdm_log_records_total", "fsdm_log_dropped_total",
                "fsdm_incidents_total")


def check_log(path, doc):
    """The "log" section (ISSUE 10): structured-log and incident volume
    for the run. Required on every bench — the harness always emits it,
    all zeros under -DFSDM_TELEMETRY=OFF."""
    log = doc.get("log")
    if not isinstance(log, dict):
        fail(path, "missing 'log' section")
    for key in LOG_COUNTERS:
        if not isinstance(log.get(key), int) or log[key] < 0:
            fail(path, f"log.{key} missing or not a non-negative int")


def main():
    if len(sys.argv) < 2:
        fail("check_bench_json.py", "no files given")
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
