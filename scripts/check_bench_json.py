#!/usr/bin/env python3
"""Validates BENCH_*.json files emitted by the bench harness.

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]

Each file must parse as JSON and carry the harness schema:
  {"bench": str, "docs": int, "rows": [obj, ...], "metrics":
   {"counters": {...}, "gauges": {...}, "histograms": {...}}}
with at least one row and at least one fsdm_-prefixed counter (proof the
instrumented engine actually ran). Exits non-zero on the first violation.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not valid JSON: {e}")

    for key, want in (("bench", str), ("docs", int), ("rows", list),
                      ("metrics", dict)):
        if key not in doc:
            fail(path, f"missing key '{key}'")
        if not isinstance(doc[key], want):
            fail(path, f"'{key}' is {type(doc[key]).__name__}, "
                       f"expected {want.__name__}")
    if not doc["bench"]:
        fail(path, "'bench' is empty")
    if not doc["rows"]:
        fail(path, "'rows' is empty — the bench recorded nothing")
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict) or not row:
            fail(path, f"rows[{i}] is not a non-empty object")

    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(path, f"metrics.{section} missing or not an object")
    if not any(name.startswith("fsdm_") for name in metrics["counters"]):
        fail(path, "no fsdm_-prefixed counter in the metrics snapshot")
    print(f"{path}: ok ({len(doc['rows'])} rows, "
          f"{len(metrics['counters'])} counters)")


def main():
    if len(sys.argv) < 2:
        fail("check_bench_json.py", "no files given")
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
