#!/usr/bin/env python3
"""Validates incident bundle JSON files (ISSUE 10 satellite).

Usage: check_incident_json.py [--require-type TYPE] PATH [PATH ...]

PATH is a bundle file or a directory (every incident-*.json inside is
checked). Each bundle must be a self-contained diagnosis:

  * parses as JSON;
  * carries all five pillar sections beside the header: "incident",
    "log", "trace", "ash", "metrics", "engine_state";
  * the "incident" header has schema_version, a positive id, ts_us,
    and non-empty type/reason;
  * every "log" entry matches the structured record schema (ts_us,
    thread, level, component, event_id, message) with a known level;
  * the log slice's ts_us values are monotonically non-decreasing
    (the slice is merge-sorted at capture);
  * "trace" has an "armed" bool and an "events" array; "ash" a
    "samples" count; "engine_state" the "memory" and "query_monitor"
    built-ins.

With --require-type, at least one checked bundle must have that
incident type — CI uses this to assert that a chaos run actually
produced, say, a torn-tail incident. Exits non-zero listing every
violation.
"""

import argparse
import glob
import json
import os
import sys

PILLARS = ("incident", "log", "trace", "ash", "metrics", "engine_state")
LEVELS = {"debug", "info", "warn", "error"}
LOG_FIELDS = ("ts_us", "thread", "level", "component", "event_id", "message")


def check_bundle(path, failures):
    """Returns the bundle's incident type, or None on failure."""
    try:
        with open(path, encoding="utf-8") as f:
            bundle = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        failures.append(f"{path}: not valid JSON: {e}")
        return None

    ok = True
    for section in PILLARS:
        if section not in bundle:
            failures.append(f"{path}: missing section \"{section}\"")
            ok = False
    if not ok:
        return None

    header = bundle["incident"]
    if header.get("schema_version") != 1:
        failures.append(f"{path}: incident.schema_version != 1")
    if not isinstance(header.get("id"), int) or header["id"] < 1:
        failures.append(f"{path}: incident.id missing or < 1")
    if not isinstance(header.get("ts_us"), int):
        failures.append(f"{path}: incident.ts_us missing")
    for field in ("type", "reason"):
        if not header.get(field):
            failures.append(f"{path}: incident.{field} empty")

    log = bundle["log"]
    if not isinstance(log, list):
        failures.append(f"{path}: \"log\" is not an array")
        return header.get("type")
    prev_ts = 0
    for i, rec in enumerate(log):
        for field in LOG_FIELDS:
            if field not in rec:
                failures.append(f"{path}: log[{i}] missing \"{field}\"")
        level = rec.get("level")
        if level is not None and level not in LEVELS:
            failures.append(f"{path}: log[{i}] unknown level {level!r}")
        ts = rec.get("ts_us")
        if isinstance(ts, int):
            if ts < prev_ts:
                failures.append(
                    f"{path}: log[{i}].ts_us={ts} < previous {prev_ts} "
                    f"(slice must be time-ordered)")
            prev_ts = ts

    trace = bundle["trace"]
    if not isinstance(trace.get("armed"), bool):
        failures.append(f"{path}: trace.armed missing or not a bool")
    if not isinstance(trace.get("events"), list):
        failures.append(f"{path}: trace.events missing or not an array")

    if not isinstance(bundle["ash"].get("samples"), int):
        failures.append(f"{path}: ash.samples missing")

    state = bundle["engine_state"]
    for builtin in ("memory", "query_monitor"):
        if builtin not in state:
            failures.append(f"{path}: engine_state.{builtin} missing")

    return header.get("type")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--require-type", default=None,
                        help="fail unless a bundle of this type is present")
    parser.add_argument("paths", nargs="+")
    args = parser.parse_args()

    files = []
    for path in args.paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(
                os.path.join(path, "incident-*.json"))))
        else:
            files.append(path)
    if not files:
        print("check_incident_json: no bundles found under "
              f"{' '.join(args.paths)}", file=sys.stderr)
        sys.exit(1)

    failures = []
    types = set()
    for path in files:
        t = check_bundle(path, failures)
        if t:
            types.add(t)

    if args.require_type and args.require_type not in types:
        failures.append(
            f"no bundle of required type {args.require_type!r} "
            f"(saw: {sorted(types) or 'none'})")

    if failures:
        for f in failures:
            print(f"check_incident_json: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_incident_json: ok ({len(files)} bundles, "
          f"types: {', '.join(sorted(types))})")


if __name__ == "__main__":
    main()
