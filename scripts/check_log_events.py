#!/usr/bin/env python3
"""Lints the FSDM_LOG event-id space (ISSUE 10 satellite).

Usage: check_log_events.py [REPO_ROOT]

Every FSDM_LOG call site in src/ carries a stable numeric event id. This
check enforces:

  * every call site's id is an integer literal (greppable, stable);
  * no id is used by two different call sites (ids key the per-event
    rate limiter and must stay unique across the tree);
  * every id appears in README.md's "### Log event reference" table,
    and every table entry still has a live call site (bidirectional,
    like check_metrics_doc.py).

Exits non-zero listing every violation.
"""

import os
import re
import sys

# FSDM_LOG(level, "component", 1234, ... — the id is the third argument.
CALL_RE = re.compile(
    r'FSDM_LOG\(\s*[^,]+,\s*"([a-z_]+)"\s*,\s*([A-Za-z0-9_]+)\s*,')
DOC_RE = re.compile(r"^\|\s*`?(\d+)`?\s*\|")


def call_sites(src_dir):
    """{event_id: [(file, component), ...]} for every FSDM_LOG call."""
    out = {}
    bad = []
    for root, _dirs, files in os.walk(src_dir):
        for name in sorted(files):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, src_dir)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            for component, event_id in CALL_RE.findall(text):
                if not event_id.isdigit():
                    bad.append(f"src/{rel}: FSDM_LOG event id {event_id!r} "
                               f"is not an integer literal")
                    continue
                out.setdefault(int(event_id), []).append((rel, component))
    return out, bad


def documented_ids(readme_path):
    out = set()
    in_section = False
    with open(readme_path, encoding="utf-8") as f:
        for line in f:
            if line.startswith("#"):
                in_section = line.strip() == "### Log event reference"
                continue
            if not in_section:
                continue
            m = DOC_RE.match(line)
            if m:
                out.add(int(m.group(1)))
    return out


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    src_dir = os.path.join(root, "src")
    readme = os.path.join(root, "README.md")
    if not os.path.isdir(src_dir) or not os.path.isfile(readme):
        print(f"check_log_events: {root} is not the repo root "
              f"(need src/ and README.md)", file=sys.stderr)
        sys.exit(2)

    sites, failures = call_sites(src_dir)
    documented = documented_ids(readme)
    if not documented:
        print("check_log_events: README.md has no '### Log event reference' "
              "table", file=sys.stderr)
        sys.exit(1)

    for event_id, where in sorted(sites.items()):
        if len(where) > 1:
            locations = ", ".join(f"src/{f}" for f, _ in where)
            failures.append(f"event id {event_id} used by {len(where)} call "
                            f"sites ({locations}) — ids must be unique")
    for event_id in sorted(set(sites) - documented):
        f, component = sites[event_id][0]
        failures.append(f"undocumented: event id {event_id} "
                        f"(component \"{component}\", src/{f}) — add it to "
                        f"README.md 'Log event reference'")
    for event_id in sorted(documented - set(sites)):
        failures.append(f"stale doc: event id {event_id} documented in "
                        f"README.md but no FSDM_LOG site uses it")

    if failures:
        for f in failures:
            print(f"check_log_events: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_log_events: ok ({len(sites)} event ids, all unique and "
          f"documented)")


if __name__ == "__main__":
    main()
