#!/usr/bin/env python3
"""Gates the ASH sampler's overhead on a bench (ISSUE 7 acceptance).

Usage: check_sampler_overhead.py --on BENCH.json [BENCH.json ...]
                                 --off BENCH.json [BENCH.json ...]
                                 [--max-pct 3.0]

`--on` files come from runs with the sampler active (FSDM_ASH_HZ=1000),
`--off` files from runs with it disabled (FSDM_ASH_HZ=0). For each side the
score is the sum of every time-like cell ("ms"/"us" columns) across the
bench rows, minimized over the given files (min-of-N absorbs machine
noise, same as the bench harness's own best-of-reps timing). Fails when
    (on - off) / off * 100 > max-pct
i.e. when turning the sampler on costs more than the budgeted percentage.

Also sanity-checks the files: --on runs must have started the sampler
(ash.sampler_hz > 0 — ticks may be 0 because the sampler parks in
tickless idle while no query leases are active, e.g. the insert-only
fig7 bench), --off runs must show no sampler activity (sampler_hz == 0,
ticks == 0) — a guard against the CI job measuring the same
configuration twice.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_sampler_overhead: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def time_score(doc, path):
    total = 0.0
    cells = 0
    for row in doc.get("rows", []):
        for col, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            lowered = col.lower()
            if "ms" in lowered or "us" in lowered:
                total += float(value)
                cells += 1
    if cells == 0:
        fail(f"{path}: no time-like cells to score")
    return total


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--on", nargs="+", required=True, metavar="BENCH.json",
                    help="runs with the sampler enabled")
    ap.add_argument("--off", nargs="+", required=True, metavar="BENCH.json",
                    help="runs with the sampler disabled")
    ap.add_argument("--max-pct", type=float, default=3.0,
                    help="maximum tolerated sampler-on slowdown in percent")
    args = ap.parse_args()

    on_scores, off_scores = [], []
    for path in args.on:
        doc = load(path)
        ash = doc.get("ash", {})
        if not ash.get("sampler_hz", 0):
            fail(f"{path}: sampler-on run never started the sampler "
                 f"(was FSDM_ASH_HZ=0 leaking into the on-side?)")
        on_scores.append(time_score(doc, path))
    for path in args.off:
        doc = load(path)
        ash = doc.get("ash", {})
        if ash.get("sampler_hz", 0) or ash.get("ticks", 0):
            fail(f"{path}: sampler-off run shows sampler activity "
                 f"(hz={ash.get('sampler_hz')}, ticks={ash.get('ticks')})")
        off_scores.append(time_score(doc, path))

    on = min(on_scores)
    off = min(off_scores)
    if off <= 0:
        fail("off-side time score is zero — nothing to compare")
    pct = (on - off) / off * 100.0
    print(f"sampler off: {off:g} (min of {len(off_scores)}), "
          f"on: {on:g} (min of {len(on_scores)}), "
          f"overhead: {pct:+.2f}% (budget {args.max_pct:g}%)")
    if pct > args.max_pct:
        fail(f"sampler overhead {pct:+.2f}% exceeds budget "
             f"{args.max_pct:g}%")


if __name__ == "__main__":
    main()
