#!/usr/bin/env python3
"""Validates TRACE_*.json chrome-trace files emitted by the flight recorder.

Usage: check_trace_json.py TRACE_a.json [TRACE_b.json ...]

Each file must parse as JSON and carry the chrome trace-event schema the
flight recorder exports:
  {"traceEvents": [{"ph": "B"|"E"|"I"|"C", "ts": num, "pid": 1, "tid": int,
                    "cat": str, "name": str, ...}, ...],
   "displayTimeUnit": "ms"}
Per-thread B/E events must nest (balanced, never negative depth), and every
"E" with a dur_us arg must report a non-negative duration. Counter samples
("C" events — e.g. the ASH sampler's ash.active_sessions series) must carry
a numeric, non-negative args.value so trace viewers can chart them. Exits
non-zero on the first violation.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "missing 'traceEvents' array")
    if doc.get("displayTimeUnit") != "ms":
        fail(path, "'displayTimeUnit' is not \"ms\"")

    depth = {}  # tid -> open span count
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(path, f"traceEvents[{i}] is not an object")
        ph = e.get("ph")
        if ph not in ("B", "E", "I", "C"):
            fail(path, f"traceEvents[{i}] has unknown phase {ph!r}")
        for key, want in (("ts", (int, float)), ("tid", int),
                          ("cat", str), ("name", str)):
            if not isinstance(e.get(key), want):
                fail(path, f"traceEvents[{i}] missing or mistyped '{key}'")
        if e.get("pid") != 1:
            fail(path, f"traceEvents[{i}] pid is not 1")
        tid = e["tid"]
        if ph == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif ph == "E":
            depth[tid] = depth.get(tid, 0) - 1
            if depth[tid] < 0:
                fail(path, f"traceEvents[{i}] closes more spans than "
                           f"opened on tid {tid}")
            dur = e.get("args", {}).get("dur_us")
            if dur is not None and dur < 0:
                fail(path, f"traceEvents[{i}] has negative dur_us {dur}")
        elif ph == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(path, f"traceEvents[{i}] counter sample lacks a "
                           f"numeric args.value")
            if value < 0:
                fail(path, f"traceEvents[{i}] counter sample is negative "
                           f"({value})")

    unbalanced = {tid: d for tid, d in depth.items() if d != 0}
    if unbalanced:
        fail(path, f"unbalanced B/E per thread: {unbalanced}")
    if not events:
        fail(path, "'traceEvents' is empty — the recorder captured nothing")
    print(f"{path}: ok ({len(events)} events, {len(depth)} threads)")


def main():
    if len(sys.argv) < 2:
        fail("check_trace_json.py", "no files given")
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
