#!/usr/bin/env python3
"""Compares two sets of BENCH_*.json files and reports metric deltas.

Usage: bench_compare.py BASELINE_DIR CANDIDATE_DIR [--fail-threshold PCT]
                        [--markdown FILE]

Matches files by name (BENCH_fig7_insert.json etc.), pairs rows by their
first cell (the row label), and diffs every numeric cell. Prints a per-bench
table of % change. With --fail-threshold, exits non-zero if any time-like
metric (a column whose name contains "us", "ms", or "sec") regresses by more
than PCT percent; other columns are report-only. Without --fail-threshold
the script always exits 0 (report-only mode). --markdown additionally
writes the comparison as a GitHub-flavored table, which CI appends to the
job's step summary; candidate rows carrying the sharded-execution scaling
columns ("threads", "speedup vs 1 thread") are rendered as their own
scaling table there, and each candidate bench's ASH window contributes a
"top wait class per bench" table (DB-time samples, cpu share, dominant
non-CPU wait class). Candidate benches carrying the "log" section are
summarized in a structured-log volume table (records / drops / incidents).
"""

import argparse
import json
import os
import sys


def load_dir(path):
    benches = {}
    try:
        names = sorted(os.listdir(path))
    except OSError as e:
        print(f"bench_compare: cannot list {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        full = os.path.join(path, name)
        try:
            with open(full, encoding="utf-8") as f:
                benches[name] = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_compare: skipping {full}: {e}", file=sys.stderr)
    return benches


def row_key(row):
    # The harness emits rows as ordered objects; the first cell is the row
    # label (mode / query name). Fall back to the whole row repr.
    for value in row.values():
        return str(value)
    return repr(row)


def numeric_cells(row):
    out = {}
    for key, value in row.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def is_time_metric(column):
    lowered = column.lower()
    return any(tok in lowered for tok in ("us", "ms", "sec"))


def compare(name, base, cand, threshold, table):
    regressions = []
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    lines = []
    for row in cand.get("rows", []):
        key = row_key(row)
        if key not in base_rows:
            lines.append(f"  {key}: new row (no baseline)")
            continue
        base_cells = numeric_cells(base_rows[key])
        for col, value in sorted(numeric_cells(row).items()):
            if col not in base_cells:
                continue
            old = base_cells[col]
            if old == 0.0:
                if value != 0.0:
                    lines.append(f"  {key}.{col}: {old:g} -> {value:g}")
                    table.append((name, f"{key}.{col}", old, value, None, ""))
                continue
            pct = (value - old) / old * 100.0
            marker = ""
            if (threshold is not None and is_time_metric(col)
                    and pct > threshold):
                marker = "  <-- REGRESSION"
                regressions.append(f"{name} {key}.{col} +{pct:.1f}%")
            if abs(pct) >= 0.05 or marker:
                lines.append(f"  {key}.{col}: {old:g} -> {value:g} "
                             f"({pct:+.1f}%){marker}")
                table.append((name, f"{key}.{col}", old, value, pct,
                              "regression" if marker else ""))
    missing = set(base_rows) - {row_key(r) for r in cand.get("rows", [])}
    for key in sorted(missing):
        lines.append(f"  {key}: row missing from candidate")
    print(name)
    if lines:
        print("\n".join(lines))
    else:
        print("  no numeric change")
    return regressions


def collect_wait_classes(benches):
    """Per-bench ASH summary from the whole-run "ash" window: DB-time
    samples, CPU share, and the dominant non-CPU wait class."""
    out = []
    for name in sorted(benches):
        window = benches[name].get("ash", {}).get("window")
        if not isinstance(window, dict):
            continue
        db = window.get("db_samples", 0)
        classes = window.get("wait_classes", {})
        cpu = classes.get("cpu", 0)
        waits = {cls: n for cls, n in classes.items() if cls != "cpu"}
        top = max(waits.items(), key=lambda kv: kv[1]) if waits else None
        out.append((name, db, cpu, top))
    return out


def write_wait_class_markdown(f, wait_classes):
    f.write("\n### Top wait class per bench (ASH)\n\n")
    f.write("| bench | DB-time samples | cpu % | top wait class | wait % |\n")
    f.write("|---|---:|---:|---|---:|\n")
    for name, db, cpu, top in wait_classes:
        if db == 0:
            f.write(f"| {name} | 0 | n/a | (no samples) | n/a |\n")
            continue
        cpu_pct = f"{100.0 * cpu / db:.1f}%"
        if top is None:
            f.write(f"| {name} | {db} | {cpu_pct} | (none) | n/a |\n")
        else:
            cls, n = top
            f.write(f"| {name} | {db} | {cpu_pct} | {cls} "
                    f"| {100.0 * n / db:.1f}% |\n")


SPEEDUP_COL = "speedup vs 1 thread"


def collect_scaling(benches):
    """Rows carrying the morsel-parallel scaling columns (shards, threads,
    speedup vs 1 thread) from the sharded-execution ablation."""
    out = []
    for name in sorted(benches):
        for row in benches[name].get("rows", []):
            cells = numeric_cells(row)
            if SPEEDUP_COL in cells and "threads" in cells:
                out.append((name, cells.get("shards"), cells["threads"],
                            cells.get("ms"), cells[SPEEDUP_COL]))
    return out


def write_scaling_markdown(f, scaling):
    f.write("\n### Morsel-parallel scaling (speedup vs 1 thread)\n\n")
    f.write("| bench | shards | threads | ms | speedup |\n")
    f.write("|---|---:|---:|---:|---:|\n")
    for name, shards, threads, ms, speedup in scaling:
        shards_s = f"{shards:g}" if shards is not None else "?"
        ms_s = f"{ms:g}" if ms is not None else "?"
        f.write(f"| {name} | {shards_s} | {threads:g} | {ms_s} "
                f"| {speedup:g}x |\n")


def collect_wal(base, cand):
    """Durable-ingest throughput per fsync policy plus recovery time from
    the "wal" section bench_wal_durability attaches. Rows pair the
    candidate numbers with the baseline's (when the baseline ran the
    bench) so fsync-path regressions show up next to the policy name."""
    ingest = []
    recovery = None
    for name in sorted(cand):
        wal = cand[name].get("wal")
        if not isinstance(wal, dict):
            continue
        base_wal = base.get(name, {}).get("wal", {})
        base_by_policy = {e.get("policy"): e
                          for e in base_wal.get("ingest", [])
                          if isinstance(e, dict)}
        for entry in wal.get("ingest", []):
            if not isinstance(entry, dict):
                continue
            old = base_by_policy.get(entry.get("policy"), {})
            ingest.append((name, entry.get("policy", "?"),
                           old.get("docs_per_sec"),
                           entry.get("docs_per_sec"),
                           entry.get("fsyncs")))
        rec = wal.get("recovery")
        if isinstance(rec, dict):
            recovery = (name, base_wal.get("recovery", {}).get("ms"),
                        rec.get("ms"), rec.get("lsns_replayed"),
                        rec.get("docs"))
    if not ingest and recovery is None:
        return None
    return ingest, recovery


def write_wal_markdown(f, wal):
    ingest, recovery = wal
    f.write("\n### WAL durable ingest (docs/sec per fsync policy)\n\n")
    f.write("| bench | policy | baseline | candidate | delta | fsyncs |\n")
    f.write("|---|---|---:|---:|---:|---:|\n")
    for name, policy, old, new, fsyncs in ingest:
        old_s = f"{old:g}" if old is not None else "n/a"
        new_s = f"{new:g}" if new is not None else "?"
        if old and new:
            delta = f"{100.0 * (new - old) / old:+.1f}%"
        else:
            delta = "n/a"
        fsyncs_s = f"{fsyncs:d}" if fsyncs is not None else "?"
        f.write(f"| {name} | {policy} | {old_s} | {new_s} | {delta} "
                f"| {fsyncs_s} |\n")
    if recovery is not None:
        name, old_ms, new_ms, lsns, docs = recovery
        old_s = f"{old_ms:g} ms" if old_ms is not None else "n/a"
        f.write(f"\nRecovery ({name}): {new_ms:g} ms to replay "
                f"{lsns} LSNs into {docs} docs "
                f"(baseline {old_s}).\n")


def collect_memory(base, cand):
    """Per-bench memory footprint deltas from the "memory" section
    (ISSUE 9): tracker total and peak, paired with the baseline's when the
    baseline ran the bench. Report-only — memory is workload-sized, not a
    pass/fail latency."""
    out = []
    for name in sorted(cand):
        mem = cand[name].get("memory")
        if not isinstance(mem, dict):
            continue
        base_mem = base.get(name, {}).get("memory", {})
        out.append((name, base_mem.get("total_bytes"),
                    mem.get("total_bytes"), base_mem.get("peak_bytes"),
                    mem.get("peak_bytes")))
    return out


def write_memory_markdown(f, memory):
    f.write("\n### Memory footprint (tracker total / peak)\n\n")
    f.write("| bench | baseline total | candidate total | delta "
            "| baseline peak | candidate peak |\n")
    f.write("|---|---:|---:|---:|---:|---:|\n")
    for name, old_total, new_total, old_peak, new_peak in memory:
        def fmt(v):
            return f"{v:,}" if isinstance(v, int) else "n/a"
        if isinstance(old_total, int) and old_total > 0 \
                and isinstance(new_total, int):
            delta = f"{100.0 * (new_total - old_total) / old_total:+.1f}%"
        else:
            delta = "n/a"
        f.write(f"| {name} | {fmt(old_total)} | {fmt(new_total)} | {delta} "
                f"| {fmt(old_peak)} | {fmt(new_peak)} |\n")


def collect_log(base, cand):
    """Per-bench structured-log volume from the "log" section (ISSUE 10):
    records emitted, records dropped (ring overwrite), and incidents
    raised, paired with the baseline's when the baseline ran the bench.
    Report-only — but a jump in log volume or a non-zero incident count
    on a clean bench run is the first thing to look at when a time-like
    metric regresses."""
    out = []
    for name in sorted(cand):
        log = cand[name].get("log")
        if not isinstance(log, dict):
            continue
        base_log = base.get(name, {}).get("log", {})
        out.append((name,
                    base_log.get("fsdm_log_records_total"),
                    log.get("fsdm_log_records_total"),
                    log.get("fsdm_log_dropped_total"),
                    log.get("fsdm_incidents_total")))
    return out


def write_log_markdown(f, log):
    f.write("\n### Structured-log volume (records / drops / incidents)\n\n")
    f.write("| bench | baseline records | candidate records | dropped "
            "| incidents |\n")
    f.write("|---|---:|---:|---:|---:|\n")
    for name, old_records, records, dropped, incidents in log:
        def fmt(v):
            return f"{v:,}" if isinstance(v, int) else "n/a"
        mark = " :warning:" if isinstance(incidents, int) and incidents \
            else ""
        f.write(f"| {name} | {fmt(old_records)} | {fmt(records)} "
                f"| {fmt(dropped)} | {fmt(incidents)}{mark} |\n")


def write_markdown(path, table, threshold, scaling=None, wait_classes=None,
                   wal=None, memory=None, log=None):
    with open(path, "w", encoding="utf-8") as f:
        f.write("### Bench comparison vs baseline\n\n")
        if not table:
            f.write("No numeric change against the baseline.\n")
        else:
            f.write("| bench | metric | baseline | candidate | delta | |\n")
            f.write("|---|---|---:|---:|---:|---|\n")
            for name, metric, old, new, pct, flag in table:
                delta = f"{pct:+.1f}%" if pct is not None else "n/a"
                mark = ":warning:" if flag else ""
                f.write(f"| {name} | {metric} | {old:g} | {new:g} "
                        f"| {delta} | {mark} |\n")
            if threshold is not None:
                f.write(f"\nFail threshold: +{threshold:g}% on time-like "
                        f"metrics.\n")
        if scaling:
            write_scaling_markdown(f, scaling)
        if wal:
            write_wal_markdown(f, wal)
        if memory:
            write_memory_markdown(f, memory)
        if log:
            write_log_markdown(f, log)
        if wait_classes:
            write_wait_class_markdown(f, wait_classes)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline_dir")
    ap.add_argument("candidate_dir")
    ap.add_argument("--fail-threshold", "--threshold", dest="fail_threshold",
                    type=float, default=None,
                    help="fail if a time-like metric regresses by more "
                         "than this percent")
    ap.add_argument("--markdown", default=None, metavar="FILE",
                    help="also write the comparison as a GitHub-flavored "
                         "markdown table (for step summaries)")
    args = ap.parse_args()

    base = load_dir(args.baseline_dir)
    cand = load_dir(args.candidate_dir)
    if not base:
        print(f"bench_compare: no BENCH_*.json in {args.baseline_dir}",
              file=sys.stderr)
        sys.exit(2)
    if not cand:
        print(f"bench_compare: no BENCH_*.json in {args.candidate_dir}",
              file=sys.stderr)
        sys.exit(2)

    regressions = []
    table = []
    for name in sorted(set(base) | set(cand)):
        if name not in cand:
            print(f"{name}\n  missing from candidate")
            continue
        if name not in base:
            print(f"{name}\n  new bench (no baseline)")
            continue
        regressions += compare(name, base[name], cand[name],
                               args.fail_threshold, table)

    if args.markdown:
        write_markdown(args.markdown, table, args.fail_threshold,
                       scaling=collect_scaling(cand),
                       wait_classes=collect_wait_classes(cand),
                       wal=collect_wal(base, cand),
                       memory=collect_memory(base, cand),
                       log=collect_log(base, cand))

    if regressions:
        print(f"\n{len(regressions)} regression(s) above "
              f"{args.fail_threshold:g}%:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
