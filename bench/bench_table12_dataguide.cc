// Table 12: JSON DataGuide statistics per collection — number of distinct
// paths ($DG row count), DMDV column count (root-to-leaf paths only), and
// DMDV fan-out ratio (DMDV rows / documents).

#include "bench/harness.h"
#include "dataguide/views.h"
#include "workloads/generators.h"

namespace fsdm {
namespace {

void Run() {
  using benchutil::Fmt;
  printf("=== Table 12: JSON DataGuide Statistics ===\n");
  size_t small_docs = benchutil::DocCount(200);
  double big_scale = 0.02;

  benchutil::PrintHeader({"collection", "distinct paths", "DMDV columns",
                          "DMDV fan-out"});
  for (const std::string& name : workloads::Table10CollectionNames()) {
    bool big = name == "TwitterMsgArchive" || name == "SensorData";
    size_t n = big ? 2 : small_docs;

    rdbms::Table table(
        "C", {{.name = "DID", .type = rdbms::ColumnType::kNumber},
              {.name = "JDOC",
               .type = rdbms::ColumnType::kJson,
               .check_is_json = true}});
    dataguide::DataGuide guide;
    Rng rng(7);
    for (size_t i = 0; i < n; ++i) {
      std::string text = workloads::Collection(name, &rng, i + 1, big_scale);
      Result<size_t> ins = table.Insert(
          {Value::Int64(static_cast<int64_t>(i + 1)), Value::String(text)});
      if (!ins.ok() || !guide.AddJsonText(text).ok()) {
        fprintf(stderr, "%s: ingest failed\n", name.c_str());
        exit(1);
      }
    }

    // Distinct paths: $DG rows excluding the '$' root (as in Table 2).
    size_t distinct = guide.distinct_path_count() - 1;

    // DMDV from the root; columns = root-to-leaf projections.
    Result<dataguide::DmdvView> view = dataguide::CreateViewOnPath(
        &table, "JDOC", sqljson::JsonStorage::kText, guide, "$", "V");
    if (!view.ok()) {
      fprintf(stderr, "%s: view generation failed: %s\n", name.c_str(),
              view.status().ToString().c_str());
      exit(1);
    }
    size_t dmdv_columns =
        sqljson::JsonTableOutputColumns(view.value().def).size();

    Result<rdbms::OperatorPtr> plan = view.value().MakePlan();
    Result<size_t> rows =
        plan.ok() ? benchutil::Drain(plan.value().get()) : Result<size_t>(plan.status());
    if (!rows.ok()) {
      fprintf(stderr, "%s: DMDV scan failed: %s\n", name.c_str(),
              rows.status().ToString().c_str());
      exit(1);
    }
    double fanout = static_cast<double>(rows.value()) / n;

    benchutil::PrintRow({name, std::to_string(distinct),
                         std::to_string(dmdv_columns), Fmt(fanout, 1)});
  }
  printf(
      "\nExpected shape (paper): NOBENCH ~1011 distinct paths (1000 sparse\n"
      "+ commons); YCSB exactly 10/10 with fan-out 1; the archive/sensor\n"
      "collections have huge fan-out (document = thousands of detail "
      "rows).\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("table12_dataguide");
  fsdm::Run();
  return 0;
}
