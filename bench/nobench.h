#ifndef FSDM_BENCH_NOBENCH_H_
#define FSDM_BENCH_NOBENCH_H_

// Shared NOBENCH fixture for Figures 5 and 6: a JsonCollection carrying the
// hidden OSON virtual column and the three JSON_VALUE virtual columns
// ($.str1, $.num, $.dyn1) of §6.4, plus the eleven NOBENCH query plans
// parameterized by document access mode.

#include "bench/harness.h"
#include "collection/collection.h"
#include "imc/column_store.h"

namespace fsdm::benchutil {

struct NbDataset {
  rdbms::Database db;
  std::unique_ptr<collection::JsonCollection> coll;
  rdbms::Table* table = nullptr;  // == coll->table()
  // Predicate parameters sampled from the generated data.
  std::string q5_str1;
  int64_t num_lo = 0, num_hi = 0;
  std::string q8_word;
  std::string q9_sparse_field;

  static NbDataset Build(size_t n_docs, uint64_t seed = 42);
};

/// How a query accesses documents.
struct NbAccess {
  /// Row source factory (table scan or IMC scan).
  std::function<rdbms::OperatorPtr()> source;
  /// JSON column name within the source and its storage kind.
  std::string json_column;
  sqljson::JsonStorage storage;
};

/// TEXT-MODE: scan the base table, evaluate over JSON text.
NbAccess TextAccess(const NbDataset& ds);
/// OSON-IMC-MODE: scan an IMC store holding the hidden OSON column.
NbAccess OsonImcAccess(const NbDataset& ds, const imc::ColumnStore* store);

/// The eleven NOBENCH queries as plan factories. 1-based indexing;
/// queries[0] is Q1.
using NbQuery = std::function<Result<rdbms::OperatorPtr>(const NbDataset&,
                                                         const NbAccess&)>;
const std::vector<std::pair<std::string, NbQuery>>& NobenchQueries();

}  // namespace fsdm::benchutil

#endif  // FSDM_BENCH_NOBENCH_H_
