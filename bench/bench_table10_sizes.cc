// Table 10: average per-document size under JSON text, BSON and OSON
// encoding, across the paper's 12 collections (§6.1).

#include "bench/harness.h"
#include "bson/bson.h"
#include "oson/oson.h"
#include "workloads/generators.h"

namespace fsdm {
namespace {

struct SizeRow {
  std::string name;
  double json = 0, bson = 0, oson = 0;
};

void Run() {
  using benchutil::Fmt;
  printf("=== Table 10: Avg Size with JSON, BSON, OSON encoding ===\n");
  // Large single-document collections use few documents; small ones many.
  size_t small_docs = benchutil::DocCount(200);
  double big_scale = 0.02;  // TwitterMsgArchive ~100KB, SensorData ~650KB

  benchutil::PrintHeader(
      {"collection", "avg JSON bytes", "avg BSON bytes", "avg OSON bytes"});
  for (const std::string& name : workloads::Table10CollectionNames()) {
    bool big = name == "TwitterMsgArchive" || name == "SensorData";
    size_t n = big ? 2 : small_docs;
    Rng rng(7);
    uint64_t total_json = 0, total_bson = 0, total_oson = 0;
    for (size_t i = 0; i < n; ++i) {
      std::string text = workloads::Collection(name, &rng, i + 1, big_scale);
      Result<std::string> bs = bson::EncodeFromText(text);
      Result<std::string> os = oson::EncodeFromText(text);
      if (!bs.ok() || !os.ok()) {
        fprintf(stderr, "%s: encode failed\n", name.c_str());
        exit(1);
      }
      total_json += text.size();
      total_bson += bs.value().size();
      total_oson += os.value().size();
    }
    benchutil::PrintRow({name, Fmt(double(total_json) / n, 0),
                         Fmt(double(total_bson) / n, 0),
                         Fmt(double(total_oson) / n, 0)});
  }
  printf(
      "\nExpected shape (paper): small docs similar across formats; the\n"
      "large repetitive documents (TwitterMsgArchive, SensorData) shrink\n"
      "markedly under OSON because repeated field names are stored once\n"
      "in the dictionary segment.\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("table10_sizes");
  fsdm::Run();
  return 0;
}
