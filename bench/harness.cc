#include "bench/harness.h"

#include <algorithm>

#include "bson/bson.h"
#include "oson/oson.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/incident.h"
#include "telemetry/log.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "telemetry/workload_repo.h"

namespace fsdm::benchutil {

size_t DocCount(size_t default_count) {
  size_t n = default_count;
  const char* env = getenv("FSDM_DOCS");
  if (env != nullptr) {
    long v = atol(env);
    if (v > 0) n = static_cast<size_t>(v);
  }
  BenchJson::Global().SetDocs(n);
  return n;
}

void PrintHeader(const std::vector<std::string>& cols) {
  std::string line, rule;
  for (const std::string& c : cols) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%-22s", c.c_str());
    line += buf;
  }
  rule.assign(line.size(), '-');
  printf("%s\n%s\n", line.c_str(), rule.c_str());
  BenchJson::Global().SetHeader(cols);
}

void PrintRow(const std::vector<std::string>& cells) {
  std::string line;
  for (const std::string& c : cells) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%-22s", c.c_str());
    line += buf;
  }
  printf("%s\n", line.c_str());
  BenchJson::Global().AddRowCells(cells);
}

// --- BenchJson --------------------------------------------------------------

namespace {

// A cell is numeric when strtod consumes it entirely ("1.23", "42").
bool ParseNumericCell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  double v = strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  *out = v;
  return true;
}

void WriteGlobalBenchJson() { BenchJson::Global().Write(); }

}  // namespace

BenchJson& BenchJson::Global() {
  static BenchJson* sink = new BenchJson();
  return *sink;
}

void BenchJson::Init(const std::string& name) {
  if (!name_.empty()) return;
  name_ = name;
  // Benches run with the flight recorder armed: the per-run chrome trace
  // (TRACE_<name>.json) is part of the machine-readable output, and fig7
  // doubles as the armed-tracing overhead measurement (DESIGN.md).
  telemetry::FlightRecorder::Global().Arm();
  // And with the ASH sampler running (FSDM_ASH_HZ tunes the rate, 0
  // disables): its ring becomes the "ash" section of BENCH_<name>.json,
  // and the per-row workload snapshots diff against it.
  telemetry::ActivitySampler::Global().Start();
  // And with the fatal-signal incident hook installed: a bench crash
  // leaves behind a self-contained diagnosis bundle, not just a core.
  telemetry::IncidentManager::Global().InstallFatalSignalHandler();
  atexit(WriteGlobalBenchJson);
}

void BenchJson::SetHeader(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void BenchJson::AddRowCells(const std::vector<std::string>& cells) {
  // One metrics-history tick per printed row: the snapshot ring then holds
  // per-phase deltas (counter_rates_per_sec in the JSON output).
  telemetry::MetricsRegistry::Global().TickHistory();
  // And one workload-repository snapshot, labeled by the row's first cell,
  // so ash_report.py can diff any two row boundaries.
  telemetry::WorkloadRepository::Global().TakeSnapshot(
      cells.empty() ? "row-" + std::to_string(rows_.size() + 1) : cells[0]);
  BeginRow();
  for (size_t i = 0; i < cells.size(); ++i) {
    const std::string key =
        i < header_.size() ? header_[i] : "col" + std::to_string(i);
    double v = 0;
    if (ParseNumericCell(cells[i], &v)) {
      Num(key, v);
    } else {
      Str(key, cells[i]);
    }
  }
}

void BenchJson::BeginRow() { rows_.emplace_back(); }

void BenchJson::Num(const std::string& key, double v) {
  if (rows_.empty()) BeginRow();
  std::string& row = rows_.back();
  if (!row.empty()) row += ",";
  row += "\"" + telemetry::JsonEscape(key) + "\":";
  telemetry::AppendJsonNumber(&row, v);
}

void BenchJson::Str(const std::string& key, const std::string& v) {
  if (rows_.empty()) BeginRow();
  std::string& row = rows_.back();
  if (!row.empty()) row += ",";
  row += "\"" + telemetry::JsonEscape(key) + "\":\"" +
         telemetry::JsonEscape(v) + "\"";
}

void BenchJson::SetExtraSection(const std::string& key,
                                const std::string& json) {
  for (auto& [k, v] : extra_sections_) {
    if (k == key) {
      v = json;
      return;
    }
  }
  extra_sections_.emplace_back(key, json);
}

void BenchJson::Write() const {
  if (name_.empty()) return;
  // Capture the memory section BEFORE the final workload snapshot ticks:
  // the "bench-end" snapshot re-reads the tracker, so ordering this way
  // makes the "memory" section and the snapshot's MEM_* columns agree.
  const uint64_t mem_total = telemetry::MemoryTracker::Global().Refresh();
  const uint64_t mem_peak = telemetry::MemoryTracker::Global().PeakBytes();
  // Final snapshot so the tail window (last row -> exit) is captured, then
  // stop the sampler — its thread must not keep mutating the ring while
  // the sections below serialize it.
  telemetry::WorkloadRepository::Global().TakeSnapshot("bench-end");
  telemetry::ActivitySampler::Global().Stop();
  std::string path;
  const char* dir = getenv("FSDM_BENCH_JSON_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/";
  }
  path += "BENCH_" + name_ + ".json";

  std::string out = "{\"bench\":\"" + telemetry::JsonEscape(name_) + "\"";
  out += ",\"docs\":" + std::to_string(docs_);
  out += ",\"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ",";
    out += "{" + rows_[i] + "}";
  }
  out += "],\"metrics\":";
  out += telemetry::MetricsRegistry::Global().ToJson();

  for (const auto& [key, json] : extra_sections_) {
    out += ",\"" + telemetry::JsonEscape(key) + "\":" + json;
  }

  // Whole-run counter rates from the snapshot history (one tick per row);
  // absent when fewer than two ticks happened.
  const telemetry::SnapshotHistory& hist =
      telemetry::MetricsRegistry::Global().history();
  if (hist.size() >= 2) {
    const size_t span = hist.size() - 1;
    out += ",\"history_ticks\":" + std::to_string(hist.size());
    out += ",\"counter_rates_per_sec\":{";
    bool first = true;
    for (const auto& [cname, value] : hist.Newest(0).counters) {
      (void)value;
      if (!first) out += ",";
      first = false;
      out += "\"" + telemetry::JsonEscape(cname) + "\":";
      telemetry::AppendJsonNumber(&out, hist.CounterRatePerSec(cname, span));
    }
    out += "}";
  }

  // ASH time model over the whole run plus the AWR-style per-row workload
  // snapshots (ISSUE 7). Present — with zero samples — even when the
  // sampler is disabled, so consumers can rely on the shape.
  const telemetry::ActivitySampler& sampler =
      telemetry::ActivitySampler::Global();
  out += ",\"ash\":{\"sampler_hz\":";
  telemetry::AppendJsonNumber(&out, sampler.hz());
  out += ",\"ticks\":" + std::to_string(sampler.ticks());
  out += ",\"db_samples_total\":" + std::to_string(sampler.db_samples_total());
  out += ",\"window\":" + telemetry::AshAggregateJson(sampler.Aggregate());
  out += "}";

  // Memory attribution (ISSUE 9). Always all eight subsystems, in enum
  // order, zeros included — consumers (check_bench_json.py,
  // bench_compare.py) rely on the shape, telemetry-off builds included.
  // peak_bytes is the tracker's per-subsystem high-water (ratcheted at
  // Refresh/Charge time), a real simultaneous peak — not a sum of
  // per-entry peaks reached at different times.
  out += ",\"memory\":{\"total_bytes\":" + std::to_string(mem_total);
  out += ",\"peak_bytes\":" + std::to_string(mem_peak);
  out += ",\"subsystems\":{";
  for (size_t i = 0; i < telemetry::kMemSubsystemCount; ++i) {
    const auto subsystem = static_cast<telemetry::MemSubsystem>(i);
    const telemetry::MemoryTracker& tracker =
        telemetry::MemoryTracker::Global();
    if (i > 0) out += ",";
    out += "\"" + std::string(telemetry::MemSubsystemName(subsystem)) +
           "\":{\"bytes\":" + std::to_string(tracker.SubsystemBytes(subsystem)) +
           ",\"peak_bytes\":" +
           std::to_string(tracker.SubsystemPeakBytes(subsystem)) + "}";
  }
  out += "}}";

  // Structured-log counters (ISSUE 10). Present — all zeros — under
  // telemetry-off builds too; fig7's overhead gate compares arms that
  // both carry the instrumented call sites, so these make the log
  // volume behind a regression visible in bench_compare.py.
  out += ",\"log\":{\"fsdm_log_records_total\":" +
         std::to_string(telemetry::EngineLog::Global().total_records());
  out += ",\"fsdm_log_dropped_total\":" +
         std::to_string(telemetry::EngineLog::Global().TotalDropped());
  out += ",\"fsdm_incidents_total\":" +
         std::to_string(telemetry::IncidentManager::Global().total_raised());
  out += "}";

  std::vector<telemetry::WorkloadSnapshot> snaps =
      telemetry::WorkloadRepository::Global().Snapshots();
  out += ",\"workload_snapshots\":[";
  for (size_t i = 0; i < snaps.size(); ++i) {
    if (i > 0) out += ",";
    out += telemetry::WorkloadRepository::SnapshotJson(snaps[i]);
  }
  out += "]";
  out += "}\n";

  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    return;
  }
  fwrite(out.data(), 1, out.size(), f);
  fclose(f);

  // The matching flight-recorder dump, next to the BENCH json.
  if (telemetry::FlightRecorder::Global().armed()) {
    std::string trace_path;
    if (dir != nullptr && dir[0] != '\0') {
      trace_path = std::string(dir) + "/";
    }
    trace_path += "TRACE_" + name_ + ".json";
    if (!telemetry::FlightRecorder::Global().DumpChromeTrace(trace_path)) {
      fprintf(stderr, "BenchJson: cannot write %s\n", trace_path.c_str());
    }
  }
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

const char* PoStorageName(PoStorage storage) {
  switch (storage) {
    case PoStorage::kText:
      return "JSON";
    case PoStorage::kBson:
      return "BSON";
    case PoStorage::kOson:
      return "OSON";
    case PoStorage::kRel:
      return "REL";
  }
  return "?";
}

PoDataset PoDataset::Build(size_t n_docs, uint64_t seed) {
  PoDataset ds;
  using rdbms::ColumnDef;
  using rdbms::ColumnType;

  collection::CollectionOptions text_opts;
  // Figures 3/4 time scans and view expansion, not index probes; skip the
  // posting maintenance during the load.
  text_opts.attach_search_index = false;
  Result<std::unique_ptr<collection::JsonCollection>> text_coll =
      collection::JsonCollection::Create(&ds.db, "PO_TEXT", text_opts);
  if (!text_coll.ok()) {
    fprintf(stderr, "PO_TEXT collection: %s\n",
            text_coll.status().ToString().c_str());
    exit(1);
  }
  ds.text_coll = text_coll.MoveValue();
  ds.text_table = ds.text_coll->table();
  ds.bson_table =
      ds.db.CreateTable("PO_BSON",
                        {{.name = "DID", .type = ColumnType::kNumber},
                         {.name = "JDOC", .type = ColumnType::kRaw}})
          .MoveValue();
  ds.oson_table =
      ds.db.CreateTable("PO_OSON",
                        {{.name = "DID", .type = ColumnType::kNumber},
                         {.name = "JDOC", .type = ColumnType::kRaw}})
          .MoveValue();
  ds.master_tab =
      ds.db.CreateTable("PURCHASE_MASTER_TAB",
                        {{.name = "ID", .type = ColumnType::kNumber},
                         {.name = "REFERENCE", .type = ColumnType::kString},
                         {.name = "REQUESTOR", .type = ColumnType::kString},
                         {.name = "COSTCENTER", .type = ColumnType::kString},
                         {.name = "PODATE", .type = ColumnType::kString},
                         {.name = "INSTRUCTIONS",
                          .type = ColumnType::kString}})
          .MoveValue();
  ds.detail_tab =
      ds.db.CreateTable("LINEITEM_DETAIL_TAB",
                        {{.name = "PO_ID", .type = ColumnType::kNumber},
                         {.name = "ITEMNO", .type = ColumnType::kNumber},
                         {.name = "PARTNO", .type = ColumnType::kString},
                         {.name = "DESCRIPTION", .type = ColumnType::kString},
                         {.name = "QUANTITY", .type = ColumnType::kNumber},
                         {.name = "UNITPRICE", .type = ColumnType::kNumber}})
          .MoveValue();

  Rng rng(seed);
  for (size_t i = 0; i < n_docs; ++i) {
    workloads::PurchaseOrderRelational po =
        workloads::PurchaseOrderRows(&rng, static_cast<int64_t>(i + 1));
    std::string text = workloads::RenderPurchaseOrder(po);
    Value did = Value::Int64(static_cast<int64_t>(i + 1));

    auto insert_or_die = [&](Result<size_t> r, const char* what) {
      if (!r.ok()) {
        fprintf(stderr, "%s insert failed: %s\n", what,
                r.status().ToString().c_str());
        exit(1);
      }
    };
    insert_or_die(ds.text_coll->Insert(did, text), "text");
    insert_or_die(ds.bson_table->Insert(
                      {did, Value::Binary(bson::EncodeFromText(text)
                                              .MoveValue())}),
                  "bson");
    insert_or_die(ds.oson_table->Insert(
                      {did, Value::Binary(oson::EncodeFromText(text)
                                              .MoveValue())}),
                  "oson");
    insert_or_die(
        ds.master_tab->Insert({Value::Int64(po.id),
                               Value::String(po.reference),
                               Value::String(po.requestor),
                               Value::String(po.costcenter),
                               Value::String(po.podate),
                               Value::String(po.instructions)}),
        "master");
    for (const auto& item : po.items) {
      insert_or_die(
          ds.detail_tab->Insert(
              {Value::Int64(po.id), Value::Int64(item.itemno),
               Value::String(item.partno), Value::String(item.description),
               Value::Int64(item.quantity),
               Value::Dec(Decimal::FromString(item.unitprice).MoveValue())}),
          "detail");
      if (ds.sample_partnos.size() < 3 &&
          (ds.sample_partnos.empty() ||
           ds.sample_partnos.back() != item.partno)) {
        ds.sample_partnos.push_back(item.partno);
      }
    }
    if (i == n_docs / 2) {
      ds.sample_reference = po.reference;
      ds.sample_requestor = po.requestor;
      ds.sample_partno = po.items[0].partno;
    }
  }
  return ds;
}

namespace {

using rdbms::Col;
using sqljson::JsonStorage;
using sqljson::JsonTableColumn;
using sqljson::JsonTableDef;
using sqljson::Returning;

JsonStorage ToJsonStorage(PoStorage storage) {
  switch (storage) {
    case PoStorage::kText:
      return JsonStorage::kText;
    case PoStorage::kBson:
      return JsonStorage::kBson;
    default:
      return JsonStorage::kOson;
  }
}

const rdbms::Table* JsonTableFor(const PoDataset& ds, PoStorage storage) {
  switch (storage) {
    case PoStorage::kText:
      return ds.text_table;
    case PoStorage::kBson:
      return ds.bson_table;
    default:
      return ds.oson_table;
  }
}

JsonTableDef MvDef() {
  JsonTableDef def;
  def.columns = {
      {"ID", "$.purchaseOrder.id", Returning::kNumber},
      {"REFERENCE", "$.purchaseOrder.reference", Returning::kString},
      {"REQUESTOR", "$.purchaseOrder.requestor", Returning::kString},
      {"COSTCENTER", "$.purchaseOrder.costcenter", Returning::kString},
      {"PODATE", "$.purchaseOrder.podate", Returning::kString},
      {"INSTRUCTIONS", "$.purchaseOrder.instructions", Returning::kString},
  };
  return def;
}

JsonTableDef DmdvDef() {
  JsonTableDef def = MvDef();
  JsonTableDef items;
  items.row_path = "$.purchaseOrder.items[*]";
  items.columns = {
      {"ITEMNO", "$.itemno", Returning::kNumber},
      {"PARTNO", "$.partno", Returning::kString},
      {"DESCRIPTION", "$.description", Returning::kString},
      {"QUANTITY", "$.quantity", Returning::kNumber},
      {"UNITPRICE", "$.unitprice", Returning::kNumber},
  };
  def.nested.push_back(std::move(items));
  return def;
}

}  // namespace

Result<rdbms::OperatorPtr> PoMv(const PoDataset& ds, PoStorage storage) {
  if (storage == PoStorage::kRel) {
    return rdbms::Scan(ds.master_tab);
  }
  const rdbms::Table* table = JsonTableFor(ds, storage);
  return sqljson::JsonTable(rdbms::Scan(table), "JDOC",
                            ToJsonStorage(storage), MvDef());
}

Result<rdbms::OperatorPtr> PoItemDmdv(const PoDataset& ds,
                                      PoStorage storage) {
  if (storage == PoStorage::kRel) {
    // Master-detail join: the de-normalized view over physically shredded
    // tables (§6.3's REL method pays a hash join here).
    return rdbms::HashJoin(rdbms::Scan(ds.detail_tab),
                           rdbms::Scan(ds.master_tab), {Col("PO_ID")},
                           {Col("ID")}, rdbms::JoinType::kInner);
  }
  const rdbms::Table* table = JsonTableFor(ds, storage);
  return sqljson::JsonTable(rdbms::Scan(table), "JDOC",
                            ToJsonStorage(storage), DmdvDef());
}

namespace {

Result<rdbms::OperatorPtr> FilteredSource(const PoDataset& ds,
                                          PoStorage storage,
                                          const std::string& exists_path) {
  const rdbms::Table* table = JsonTableFor(ds, storage);
  FSDM_ASSIGN_OR_RETURN(
      rdbms::ExprPtr exists,
      sqljson::JsonExists("JDOC", exists_path, ToJsonStorage(storage)));
  return rdbms::Filter(rdbms::Scan(table), std::move(exists));
}

}  // namespace

Result<rdbms::OperatorPtr> PoItemDmdvPushdown(const PoDataset& ds,
                                              PoStorage storage,
                                              const std::string& exists_path) {
  if (storage == PoStorage::kRel) return PoItemDmdv(ds, storage);
  FSDM_ASSIGN_OR_RETURN(rdbms::OperatorPtr src,
                        FilteredSource(ds, storage, exists_path));
  return sqljson::JsonTable(std::move(src), "JDOC", ToJsonStorage(storage),
                            DmdvDef());
}

Result<rdbms::OperatorPtr> PoMvPushdown(const PoDataset& ds,
                                        PoStorage storage,
                                        const std::string& exists_path) {
  if (storage == PoStorage::kRel) return PoMv(ds, storage);
  FSDM_ASSIGN_OR_RETURN(rdbms::OperatorPtr src,
                        FilteredSource(ds, storage, exists_path));
  return sqljson::JsonTable(std::move(src), "JDOC", ToJsonStorage(storage),
                            MvDef());
}

Result<size_t> Drain(rdbms::Operator* op) {
  FSDM_RETURN_NOT_OK(op->Open());
  rdbms::Row row;
  size_t n = 0;
  while (true) {
    FSDM_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    ++n;
  }
  op->Close();
  return n;
}

}  // namespace fsdm::benchutil
