// Figure 6: Q6/Q7/Q10/Q11 under OSON-IMC-MODE vs VC-IMC-MODE. The VC mode
// materializes the three JSON_VALUE virtual columns ($.str1, $.num,
// $.dyn1) into the columnar store at population time; the four queries'
// predicates/projections then run as vectorized column scans (§5.2.1).

#include "bench/nobench.h"

namespace fsdm {
namespace {

using imc::ColumnStore;
using rdbms::CompareOp;

void Run() {
  size_t docs = benchutil::DocCount(8000);
  printf("=== Figure 6: OSON-IMC vs VC-IMC, %zu NOBENCH docs ===\n", docs);
  benchutil::NbDataset ds = benchutil::NbDataset::Build(docs);

  // The OSON-only store is an ad-hoc side-by-side comparison set; the VC
  // store is the collection's managed default population (key + OSON image
  // + every declared virtual column).
  ColumnStore oson_store =
      ds.coll
          ->MaterializeColumns({ds.coll->key_column(), ds.coll->oson_column()})
          .MoveValue();
  if (Status pop = ds.coll->PopulateImc(); !pop.ok()) {
    fprintf(stderr, "IMC population failed: %s\n", pop.ToString().c_str());
    exit(1);
  }
  const ColumnStore& vc_store = *ds.coll->imc();
  benchutil::NbAccess oson_access = benchutil::OsonImcAccess(ds, &oson_store);

  Value lo = Value::Int64(ds.num_lo), hi = Value::Int64(ds.num_hi);

  // VC-IMC variants of the four queries: predicates/joins over the typed
  // columns, no per-row document decoding.
  auto vc_q6 = [&]() -> Result<size_t> {
    FSDM_ASSIGN_OR_RETURN(
        std::vector<rdbms::Row> rows,
        vc_store.FilterScan({{"NUM_VC", CompareOp::kGe, lo},
                             {"NUM_VC", CompareOp::kLe, hi}},
                            {"DID", "NUM_VC"}));
    return rows.size();
  };
  auto vc_q7 = [&]() -> Result<size_t> {
    // DYN1_VC is NULL for string-typed dyn1 values; NULLs never match.
    FSDM_ASSIGN_OR_RETURN(
        std::vector<rdbms::Row> rows,
        vc_store.FilterScan({{"DYN1_VC", CompareOp::kGe, lo},
                             {"DYN1_VC", CompareOp::kLe, hi}},
                            {"DID", "DYN1_VC"}));
    return rows.size();
  };
  auto vc_q10 = [&]() -> Result<size_t> {
    // Columnar filter on num; group the few survivors by thousandth read
    // from the OSON image.
    FSDM_ASSIGN_OR_RETURN(
        std::vector<uint32_t> sel,
        vc_store.FilterPositions({{"NUM_VC", CompareOp::kGe, lo},
                                  {"NUM_VC", CompareOp::kLe, hi}}));
    const imc::ColumnVector* img = vc_store.column(ds.coll->oson_column());
    std::map<int64_t, int64_t> groups;
    jsonpath::PathExpression path =
        jsonpath::PathExpression::Parse("$.thousandth").MoveValue();
    jsonpath::PathEvaluator eval(&path);
    for (uint32_t i : sel) {
      Value v = img->GetValue(i);
      FSDM_ASSIGN_OR_RETURN(oson::OsonDom dom,
                            oson::OsonDom::Open(v.AsBinary()));
      FSDM_ASSIGN_OR_RETURN(std::optional<Value> th, eval.FirstScalar(dom));
      if (th.has_value()) ++groups[th->AsInt64()];
    }
    return groups.size();
  };
  auto vc_q11 = [&]() -> Result<size_t> {
    // Join via columns: left filtered on NUM_VC, key = nested_obj.str from
    // the OSON image (not a VC); right key = STR1_VC column.
    FSDM_ASSIGN_OR_RETURN(
        std::vector<uint32_t> sel,
        vc_store.FilterPositions({{"NUM_VC", CompareOp::kGe, lo},
                                  {"NUM_VC", CompareOp::kLe, hi}}));
    const imc::ColumnVector* img = vc_store.column(ds.coll->oson_column());
    const imc::ColumnVector* str1 = vc_store.column("STR1_VC");
    // Build side: str1 column values.
    std::map<std::string, int64_t> build;
    for (uint32_t i = 0; i < vc_store.row_count(); ++i) {
      Value v = str1->GetValue(i);
      if (!v.is_null()) ++build[v.AsString()];
    }
    jsonpath::PathExpression path =
        jsonpath::PathExpression::Parse("$.nested_obj.str").MoveValue();
    jsonpath::PathEvaluator eval(&path);
    size_t matches = 0;
    for (uint32_t i : sel) {
      Value v = img->GetValue(i);
      FSDM_ASSIGN_OR_RETURN(oson::OsonDom dom,
                            oson::OsonDom::Open(v.AsBinary()));
      FSDM_ASSIGN_OR_RETURN(std::optional<Value> key, eval.FirstScalar(dom));
      if (key.has_value()) {
        auto it = build.find(key->AsString());
        if (it != build.end()) matches += it->second;
      }
    }
    return matches;
  };

  auto time_vc = [&](const std::function<Result<size_t>()>& fn) {
    double best = 1e300;
    for (int r = 0; r < 3; ++r) {
      benchutil::Timer t;
      Result<size_t> n = fn();
      if (!n.ok()) {
        fprintf(stderr, "VC query failed: %s\n", n.status().ToString().c_str());
        exit(1);
      }
      best = std::min(best, t.ElapsedMs());
    }
    return best;
  };

  const auto& queries = benchutil::NobenchQueries();
  struct Case {
    const char* name;
    size_t query_index;  // into NobenchQueries()
    std::function<Result<size_t>()> vc;
  };
  std::vector<Case> cases = {{"Q6", 5, vc_q6},
                             {"Q7", 6, vc_q7},
                             {"Q10", 9, vc_q10},
                             {"Q11", 10, vc_q11}};

  benchutil::PrintHeader({"query", "OSON-IMC ms", "VC-IMC ms", "speedup"});
  for (const Case& c : cases) {
    const auto& query = queries[c.query_index].second;
    double t_oson =
        benchutil::TimeQuery([&] { return query(ds, oson_access); }, 3);
    double t_vc = time_vc(c.vc);
    benchutil::PrintRow({c.name, benchutil::Fmt(t_oson),
                         benchutil::Fmt(t_vc),
                         benchutil::Fmt(t_vc > 0 ? t_oson / t_vc : 0, 1) +
                             "x"});
  }
  printf(
      "\nExpected shape (paper): VC-IMC significantly faster than\n"
      "OSON-IMC on all four queries — the predicate columns are already\n"
      "materialized in columnar form, so no per-document navigation at "
      "all.\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("fig6_vc_imc");
  fsdm::Run();
  return 0;
}
