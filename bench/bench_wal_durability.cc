// WAL durability bench (ISSUE 8): durable-ingest throughput of NOBENCH
// documents under each fsync policy — none (no WAL at all), off, group,
// always — plus recovery: time to reopen the directory and replay the log
// back into a full collection stack. The "wal" section of the BENCH json
// (validated by scripts/check_bench_json.py, diffed by bench_compare.py)
// carries docs/sec per policy and the recovery time with the LSN count it
// replayed.

#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "wal/wal.h"

namespace fsdm {
namespace {

namespace fs = std::filesystem;

struct PolicyResult {
  std::string name;
  double insert_ms = 0;
  double docs_per_sec = 0;
  uint64_t fsyncs = 0;
};

fs::path BenchDir() {
  return fs::temp_directory_path() / "fsdm_bench_wal_durability";
}

collection::CollectionOptions DurableOptions(wal::FsyncPolicy policy) {
  collection::CollectionOptions options;
  options.wal_dir = BenchDir().string();
  options.wal_fsync = policy;
  return options;
}

PolicyResult IngestOnce(const std::vector<std::string>& docs,
                        const wal::FsyncPolicy* policy) {
  fs::remove_all(BenchDir());
  PolicyResult res;
  rdbms::Database db;
  collection::CollectionOptions options;
  if (policy != nullptr) {
    options = DurableOptions(*policy);
    res.name = wal::FsyncPolicyName(*policy);
  } else {
    res.name = "none";
  }
  auto coll = collection::JsonCollection::Create(&db, "WALBENCH", options)
                  .MoveValue();
  benchutil::Timer t;
  for (size_t i = 0; i < docs.size(); ++i) {
    Result<size_t> r =
        coll->Insert(Value::Int64(static_cast<int64_t>(i)), docs[i]);
    if (!r.ok()) {
      fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
      exit(1);
    }
  }
  res.insert_ms = t.ElapsedMs();
  res.docs_per_sec = 1000.0 * static_cast<double>(docs.size()) /
                     (res.insert_ms > 0 ? res.insert_ms : 1e-9);
  if (coll->wal() != nullptr) res.fsyncs = coll->wal()->fsyncs();
  return res;
}

void Run() {
  const size_t docs_n = benchutil::DocCount(2000);
  printf("=== WAL durability: ingest %zu NOBENCH docs per fsync policy ===\n",
         docs_n);
  Rng rng(20160626);
  std::vector<std::string> docs;
  docs.reserve(docs_n);
  for (size_t i = 0; i < docs_n; ++i) {
    docs.push_back(workloads::Nobench(&rng, static_cast<int64_t>(i)));
  }

  const wal::FsyncPolicy kPolicies[] = {
      wal::FsyncPolicy::kOff, wal::FsyncPolicy::kGroup,
      wal::FsyncPolicy::kAlways};
  std::vector<PolicyResult> results;
  // Throwaway warmup so the first measured run doesn't absorb the
  // allocator/page-cache cold start.
  (void)IngestOnce(docs, nullptr);
  results.push_back(IngestOnce(docs, nullptr));
  for (const wal::FsyncPolicy& p : kPolicies) {
    results.push_back(IngestOnce(docs, &p));
  }
  // The "always" run is the one left on disk: recover from it — the
  // worst-case log (one record per op, no checkpoint).
  double recovery_ms = 0;
  uint64_t replayed_lsns = 0;
  size_t recovered_docs = 0;
  {
    rdbms::Database db;
    benchutil::Timer t;
    auto coll = collection::JsonCollection::Create(
        &db, "WALRECOVER", DurableOptions(wal::FsyncPolicy::kOff));
    if (!coll.ok()) {
      fprintf(stderr, "recovery failed: %s\n",
              coll.status().ToString().c_str());
      exit(1);
    }
    recovery_ms = t.ElapsedMs();
    replayed_lsns = coll.value()->wal()->recovery().max_lsn;
    recovered_docs = coll.value()->document_count();
  }
  fs::remove_all(BenchDir());

  benchutil::PrintHeader(
      {"policy", "ingest ms", "docs/sec", "fsyncs", "vs none"});
  std::string wal_json = "{\"ingest\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const PolicyResult& r = results[i];
    benchutil::PrintRow(
        {r.name, benchutil::Fmt(r.insert_ms), benchutil::Fmt(r.docs_per_sec, 0),
         std::to_string(r.fsyncs),
         benchutil::Fmt(r.insert_ms / results[0].insert_ms, 2) + "x"});
    if (i > 0) wal_json += ",";
    wal_json += "{\"policy\":\"" + r.name +
                "\",\"docs_per_sec\":" + benchutil::Fmt(r.docs_per_sec, 1) +
                ",\"ingest_ms\":" + benchutil::Fmt(r.insert_ms, 3) +
                ",\"fsyncs\":" + std::to_string(r.fsyncs) + "}";
  }
  printf("\nrecovery: %zu docs, %llu LSNs replayed in %.2f ms (%.0f LSN/s)\n",
         recovered_docs, static_cast<unsigned long long>(replayed_lsns),
         recovery_ms,
         1000.0 * static_cast<double>(replayed_lsns) /
             (recovery_ms > 0 ? recovery_ms : 1e-9));
  wal_json += "],\"recovery\":{\"ms\":" + benchutil::Fmt(recovery_ms, 3) +
              ",\"lsns_replayed\":" + std::to_string(replayed_lsns) +
              ",\"docs\":" + std::to_string(recovered_docs) + "}}";
  benchutil::BenchJson::Global().SetExtraSection("wal", wal_json);
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("wal_durability");
  fsdm::Run();
  return 0;
}
