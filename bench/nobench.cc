#include "bench/nobench.h"

#include "json/parser.h"

namespace fsdm::benchutil {

namespace {
using rdbms::AggSpec;
using rdbms::Col;
using rdbms::Lit;
using rdbms::OperatorPtr;
using sqljson::JsonStorage;
using sqljson::JsonValue;
using sqljson::Returning;
}  // namespace

NbDataset NbDataset::Build(size_t n_docs, uint64_t seed) {
  NbDataset ds;
  collection::CollectionOptions opts;
  // The figures compare scan-side access modes; posting maintenance would
  // only tax the load phase, so the collection runs without a search index
  // (its own DataGuide still tracks the documents).
  opts.attach_search_index = false;
  Result<std::unique_ptr<collection::JsonCollection>> coll =
      collection::JsonCollection::Create(&ds.db, "NB", opts);
  if (!coll.ok()) {
    fprintf(stderr, "NOBENCH collection: %s\n",
            coll.status().ToString().c_str());
    exit(1);
  }
  ds.coll = coll.MoveValue();
  ds.table = ds.coll->table();
  // The three JSON_VALUE VCs of §6.4. Hidden: TEXT-MODE scans must not pay
  // for materializing them; the IMC requests them by name at population
  // time (§5.2.1).
  (void)ds.coll->AddVirtualColumn("STR1_VC", "$.str1", Returning::kString);
  (void)ds.coll->AddVirtualColumn("NUM_VC", "$.num", Returning::kNumber);
  (void)ds.coll->AddVirtualColumn("DYN1_VC", "$.dyn1", Returning::kNumber);

  Rng rng(seed);
  for (size_t i = 0; i < n_docs; ++i) {
    std::string doc = workloads::Nobench(&rng, static_cast<int64_t>(i));
    Result<size_t> ins =
        ds.coll->Insert(Value::Int64(static_cast<int64_t>(i)), doc);
    if (!ins.ok()) {
      fprintf(stderr, "NOBENCH insert failed: %s\n",
              ins.status().ToString().c_str());
      exit(1);
    }
    if (i == n_docs / 3) {
      // Sample predicate parameters from a real document.
      auto parsed = json::Parse(doc).MoveValue();
      ds.q5_str1 = parsed->GetField("str1")->scalar().AsString();
      for (size_t f = 0; f < parsed->field_count(); ++f) {
        if (parsed->field_name(f).rfind("sparse_", 0) == 0) {
          ds.q9_sparse_field = parsed->field_name(f);
          break;
        }
      }
      ds.q8_word =
          parsed->GetField("nested_arr")->element(0)->scalar().AsString();
    }
  }
  ds.num_lo = 100000;
  ds.num_hi = 150000;  // ~5% selectivity over [0, 1e6)
  return ds;
}

NbAccess TextAccess(const NbDataset& ds) {
  NbAccess a;
  const collection::JsonCollection* coll = ds.coll.get();
  a.source = [coll] { return coll->Scan(); };
  a.json_column = ds.coll->json_column();
  a.storage = JsonStorage::kText;
  return a;
}

NbAccess OsonImcAccess(const NbDataset& ds, const imc::ColumnStore* store) {
  NbAccess a;
  std::string key = ds.coll->key_column();
  std::string oson = ds.coll->oson_column();
  a.source = [store, key, oson] { return store->Scan({key, oson}); };
  a.json_column = std::move(oson);
  a.storage = JsonStorage::kOson;
  return a;
}

namespace {

Result<rdbms::ExprPtr> JV(const NbAccess& a, const char* path,
                          Returning ret = Returning::kAny) {
  return JsonValue(a.json_column, path, a.storage, ret);
}

// Projection queries Q1-Q4.
Result<OperatorPtr> ProjectPaths(const NbAccess& a,
                                 std::vector<const char*> paths) {
  std::vector<std::pair<std::string, rdbms::ExprPtr>> cols;
  for (const char* p : paths) {
    FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr e, JV(a, p));
    cols.emplace_back(p, std::move(e));
  }
  return rdbms::Project(a.source(), std::move(cols));
}

Result<OperatorPtr> Q1(const NbDataset&, const NbAccess& a) {
  return ProjectPaths(a, {"$.str1", "$.num"});
}
Result<OperatorPtr> Q2(const NbDataset&, const NbAccess& a) {
  return ProjectPaths(a, {"$.nested_obj.str", "$.nested_obj.num"});
}
Result<OperatorPtr> Q3(const NbDataset&, const NbAccess& a) {
  return ProjectPaths(a, {"$.sparse_110", "$.sparse_119"});
}
Result<OperatorPtr> Q4(const NbDataset&, const NbAccess& a) {
  return ProjectPaths(a, {"$.sparse_550", "$.sparse_559"});
}

Result<OperatorPtr> Q5(const NbDataset& ds, const NbAccess& a) {
  // WHERE str1 = ?
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr str1, JV(a, "$.str1",
                                                Returning::kString));
  return rdbms::Filter(a.source(),
                       rdbms::Eq(std::move(str1),
                                 Lit(Value::String(ds.q5_str1))));
}

Result<OperatorPtr> Q6(const NbDataset& ds, const NbAccess& a) {
  // WHERE num BETWEEN lo AND hi.
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr num, JV(a, "$.num",
                                               Returning::kNumber));
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr num2, JV(a, "$.num",
                                                Returning::kNumber));
  return rdbms::Filter(
      a.source(),
      rdbms::And(rdbms::Ge(std::move(num), Lit(Value::Int64(ds.num_lo))),
                 rdbms::Le(std::move(num2), Lit(Value::Int64(ds.num_hi)))));
}

Result<OperatorPtr> Q7(const NbDataset& ds, const NbAccess& a) {
  // WHERE dyn1 BETWEEN lo AND hi (dynamically typed; strings -> NULL).
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr d1, JV(a, "$.dyn1",
                                              Returning::kNumber));
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr d2, JV(a, "$.dyn1",
                                              Returning::kNumber));
  return rdbms::Filter(
      a.source(),
      rdbms::And(rdbms::Ge(std::move(d1), Lit(Value::Int64(ds.num_lo))),
                 rdbms::Le(std::move(d2), Lit(Value::Int64(ds.num_hi)))));
}

Result<OperatorPtr> Q8(const NbDataset& ds, const NbAccess& a) {
  // WHERE ? IN nested_arr.
  FSDM_ASSIGN_OR_RETURN(
      rdbms::ExprPtr exists,
      sqljson::JsonExists(a.json_column,
                          "$.nested_arr?(@ == \"" + ds.q8_word + "\")",
                          a.storage));
  return rdbms::Filter(a.source(), std::move(exists));
}

Result<OperatorPtr> Q9(const NbDataset& ds, const NbAccess& a) {
  // WHERE sparse_XXX IS NOT NULL (sparse-field probe).
  FSDM_ASSIGN_OR_RETURN(
      rdbms::ExprPtr exists,
      sqljson::JsonExists(a.json_column, "$." + ds.q9_sparse_field,
                          a.storage));
  return rdbms::Filter(a.source(), std::move(exists));
}

Result<OperatorPtr> Q10(const NbDataset& ds, const NbAccess& a) {
  // SELECT thousandth, count(*) WHERE num BETWEEN ... GROUP BY thousandth.
  FSDM_ASSIGN_OR_RETURN(OperatorPtr filtered, Q6(ds, a));
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr th, JV(a, "$.thousandth",
                                              Returning::kNumber));
  return rdbms::GroupBy(std::move(filtered), {std::move(th)}, {"THOUSANDTH"},
                        {{AggSpec::Kind::kCountStar, nullptr, "CNT"}});
}

Result<OperatorPtr> Q11(const NbDataset& ds, const NbAccess& a) {
  // Self-join: left.nested_obj.str = right.str1, left side narrowed by the
  // num range (NOBENCH's join query shape).
  FSDM_ASSIGN_OR_RETURN(OperatorPtr left, Q6(ds, a));
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr lkey, JV(a, "$.nested_obj.str",
                                                Returning::kString));
  OperatorPtr right = a.source();
  FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr rkey, JV(a, "$.str1",
                                                Returning::kString));
  // Project join keys before the join so each side decodes its documents
  // exactly once.
  OperatorPtr lproj = rdbms::Project(
      std::move(left), {{"LKEY", std::move(lkey)}});
  OperatorPtr rproj = rdbms::Project(
      std::move(right), {{"RKEY", std::move(rkey)}});
  return rdbms::HashJoin(std::move(lproj), std::move(rproj), {Col("LKEY")},
                         {Col("RKEY")}, rdbms::JoinType::kInner);
}

}  // namespace

const std::vector<std::pair<std::string, NbQuery>>& NobenchQueries() {
  static const auto* queries =
      new std::vector<std::pair<std::string, NbQuery>>{
          {"Q1", Q1}, {"Q2", Q2}, {"Q3", Q3}, {"Q4", Q4},
          {"Q5", Q5}, {"Q6", Q6}, {"Q7", Q7}, {"Q8", Q8},
          {"Q9", Q9}, {"Q10", Q10}, {"Q11", Q11}};
  return *queries;
}

}  // namespace fsdm::benchutil
