// Figure 4: storage size of the purchase-order collection under the four
// storage methods (JSON / BSON / OSON / REL incl. PK+FK index estimate).

#include "bench/harness.h"

namespace fsdm {
namespace {

void Run() {
  size_t docs = benchutil::DocCount(4000);
  printf("=== Figure 4: storage size, %zu purchaseOrder docs ===\n", docs);
  benchutil::PoDataset ds = benchutil::PoDataset::Build(docs);

  size_t json_b = ds.text_table->EstimateStorageBytes();
  size_t bson_b = ds.bson_table->EstimateStorageBytes();
  size_t oson_b = ds.oson_table->EstimateStorageBytes();
  // REL: both tables plus the primary/foreign key index estimate (8 bytes
  // key + 8 bytes rowid per indexed row, as the paper's REL method counts
  // its PK and FK indices).
  size_t rel_tables = ds.master_tab->EstimateStorageBytes() +
                      ds.detail_tab->EstimateStorageBytes();
  size_t rel_index =
      ds.master_tab->row_count() * 16 + ds.detail_tab->row_count() * 16;
  size_t rel_b = rel_tables + rel_index;

  benchutil::PrintHeader({"storage", "MB", "vs REL"});
  auto mb = [](size_t b) { return benchutil::Fmt(b / (1024.0 * 1024.0)); };
  auto ratio = [&](size_t b) {
    return benchutil::Fmt(100.0 * b / rel_b, 1) + "%";
  };
  benchutil::PrintRow({"JSON", mb(json_b), ratio(json_b)});
  benchutil::PrintRow({"BSON", mb(bson_b), ratio(bson_b)});
  benchutil::PrintRow({"OSON", mb(oson_b), ratio(oson_b)});
  benchutil::PrintRow({"REL (tables+idx)", mb(rel_b), "100.0%"});
  printf(
      "\nExpected shape (paper): BSON marginally biggest; JSON and OSON of\n"
      "similar size; both ~20%% above REL, the price of self-contained\n"
      "schema-flexible storage vs. a central dictionary (§6.3).\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("fig4_storage");
  fsdm::Run();
  return 0;
}
