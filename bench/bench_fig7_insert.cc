// Figure 7: insertion time of 10k structurally identical NOBENCH documents
// in three modes — no IS JSON constraint, IS JSON constraint, IS JSON +
// DataGuide maintenance (§6.5). DataGuide maintenance piggybacks on the
// constraint's parse, so for a homogeneous collection its marginal cost is
// the structural hash-lookup walk only.

#include "bench/harness.h"
#include "index/search_index.h"

namespace fsdm {
namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;

double InsertAll(const std::vector<std::string>& docs, bool is_json,
                 bool dataguide) {
  rdbms::Table table(
      "NB", {{.name = "DID", .type = ColumnType::kNumber},
             {.name = "JDOC",
              .type = is_json ? ColumnType::kJson : ColumnType::kString,
              .check_is_json = is_json}});
  std::unique_ptr<index::JsonSearchIndex> idx;
  if (dataguide) {
    index::JsonSearchIndex::Options opts;
    opts.maintain_postings = false;  // isolate the DataGuide cost
    idx = index::JsonSearchIndex::Create(&table, "JDOC", opts).MoveValue();
  }
  benchutil::Timer t;
  for (size_t i = 0; i < docs.size(); ++i) {
    Result<size_t> r = table.Insert(
        {Value::Int64(static_cast<int64_t>(i)), Value::String(docs[i])});
    if (!r.ok()) {
      fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
      exit(1);
    }
  }
  return t.ElapsedMs();
}

void Run() {
  size_t docs_n = benchutil::DocCount(10000);
  printf("=== Figure 7: insert time of %zu identical-structure docs ===\n",
         docs_n);
  // Identical structure: one generated document reused for every row.
  Rng rng(1);
  std::string doc = workloads::Nobench(&rng, 0);
  std::vector<std::string> docs(docs_n, doc);

  double base = 1e300, json = 1e300, dg = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    base = std::min(base, InsertAll(docs, false, false));
    json = std::min(json, InsertAll(docs, true, false));
    dg = std::min(dg, InsertAll(docs, true, true));
  }

  benchutil::PrintHeader({"mode", "ms", "overhead vs base"});
  auto pct = [&](double v) {
    return benchutil::Fmt(100.0 * (v - base) / base, 1) + "%";
  };
  benchutil::PrintRow({"no-json-constraint", benchutil::Fmt(base), "-"});
  benchutil::PrintRow({"json-constraint", benchutil::Fmt(json), pct(json)});
  benchutil::PrintRow(
      {"json-constraint-dataguide", benchutil::Fmt(dg), pct(dg)});
  printf("dataguide marginal overhead vs json-constraint: %s\n",
         benchutil::Fmt(100.0 * (dg - json) / json, 1).c_str());
  printf(
      "\nExpected shape (paper): IS JSON adds ~9%%, DataGuide a further\n"
      "single-digit percentage for homogeneous collections (no $DG "
      "writes\nafter the first document). Our base insert is far cheaper "
      "than\nOracle's full row path, so percentages run higher; the "
      "ordering\nand the small marginal DataGuide cost are the signal.\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("fig7_insert");
  fsdm::Run();
  return 0;
}
