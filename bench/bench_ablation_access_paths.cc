// Ablations beyond the paper's figures:
//   (a) access paths for a selective JSON_EXISTS predicate — full text
//       scan vs OSON scan vs search-index posting lookup (§3.2.1);
//   (b) §7 set encoding — shared-dictionary memory footprint and query
//       time vs self-contained per-instance images.

#include "bench/harness.h"
#include "collection/collection.h"
#include "json/parser.h"
#include "jsonpath/evaluator.h"
#include "oson/set_encoding.h"
#include "rdbms/parallel.h"

namespace fsdm {
namespace {

constexpr const char* kRarePath = "$.purchaseOrder.foreign_id";

void AccessPathAblation(size_t docs_n) {
  printf("--- (a) access paths for JSON_EXISTS(%s) ---\n", kRarePath);
  // One collection carries all three access paths: text scan over the
  // document column, OSON navigation over the hidden virtual column
  // populated into the IMC (encoded once, §5.2.2), and the search index's
  // postings (§3.2.1). The router picks among them from DataGuide
  // statistics; we also time each path explicitly.
  rdbms::Database db;
  auto coll = collection::JsonCollection::Create(&db, "PO").MoveValue();

  Rng rng(8);
  for (size_t i = 0; i < docs_n; ++i) {
    std::string doc = workloads::PurchaseOrder(&rng, i + 1);
    // ~2% of documents get the rare field the predicate probes.
    if (rng.NextBool(0.02)) {
      doc.insert(doc.find("\"items\""),
                 "\"foreign_id\":\"F" + std::to_string(i) + "\",");
    }
    if (!coll->Insert(Value::Int64(static_cast<int64_t>(i + 1)),
                      std::move(doc))
             .ok()) {
      fprintf(stderr, "insert failed\n");
      exit(1);
    }
  }
  if (Status pop =
          coll->PopulateImc({coll->key_column(), coll->oson_column()});
      !pop.ok()) {
    fprintf(stderr, "IMC population failed: %s\n", pop.ToString().c_str());
    exit(1);
  }
  const imc::ColumnStore* store = coll->imc();

  auto time_plan = [&](auto make_plan) {
    double best = 1e300;
    size_t rows = 0;
    for (int r = 0; r < 3; ++r) {
      benchutil::Timer t;
      rdbms::OperatorPtr plan = make_plan();
      Result<size_t> n = benchutil::Drain(plan.get());
      if (!n.ok()) {
        fprintf(stderr, "%s\n", n.status().ToString().c_str());
        exit(1);
      }
      rows = n.value();
      best = std::min(best, t.ElapsedMs());
    }
    return std::pair<double, size_t>(best, rows);
  };

  auto [t_text, n1] = time_plan([&] {
    auto exists = coll->JsonExistsExpr(kRarePath).MoveValue();
    return rdbms::Filter(coll->Scan(), std::move(exists));
  });
  auto [t_oson, n2] = time_plan([&] {
    auto exists = sqljson::JsonExists(coll->oson_column(), kRarePath,
                                      sqljson::JsonStorage::kOson)
                      .MoveValue();
    return rdbms::Filter(
        store->Scan({coll->key_column(), coll->oson_column()}),
        std::move(exists));
  });
  // The routed plan: an existence predicate on a ~2% path warrants the
  // posting lookup, and the router's DataGuide statistics say so.
  auto routed = coll->Route({collection::PathPredicate::Exists(kRarePath)})
                    .MoveValue();
  printf("router: %s (%s)\n", collection::AccessPathName(routed.access_path),
         routed.reason.c_str());
  auto [t_index, n3] = time_plan([&] {
    // Re-route into the outer RoutedPlan: the plan's instrumentation
    // points into the trace it owns, so the trace must outlive the drain.
    routed = coll->Route({collection::PathPredicate::Exists(kRarePath)})
                 .MoveValue();
    return std::move(routed.plan);
  });
  if (n1 != n3 || n2 != n3) {
    fprintf(stderr, "access paths disagree: %zu %zu %zu\n", n1, n2, n3);
    exit(1);
  }
  benchutil::PrintHeader({"access path", "ms", "speedup vs text"});
  benchutil::PrintRow({"text scan + exists", benchutil::Fmt(t_text), "1.0x"});
  benchutil::PrintRow({"OSON-IMC scan + exists", benchutil::Fmt(t_oson),
                       benchutil::Fmt(t_text / t_oson, 1) + "x"});
  benchutil::PrintRow({"routed: index postings", benchutil::Fmt(t_index),
                       benchutil::Fmt(t_text / t_index, 1) + "x"});
  printf("(matching rows: %zu of %zu)\n\n", n3, docs_n);

  // (c) The ISSUE 5 cost model: route one query per shape, drain it, and
  // report the router's cardinality estimate against the actual row count.
  // scripts/check_stats.py consumes these rows from the BENCH json and
  // fails CI when an estimate is missing or the median misestimation
  // ratio blows past 10x.
  printf("--- (c) cost-based routing: estimated vs actual rows ---\n");
  using collection::PathPredicate;
  struct Shape {
    const char* name;
    std::vector<PathPredicate> preds;
  };
  const std::vector<Shape> shapes = {
      {"exists rare path", {PathPredicate::Exists(kRarePath)}},
      {"equality on costcenter",
       {PathPredicate::Compare("$.purchaseOrder.costcenter",
                               rdbms::CompareOp::kEq,
                               Value::String("CC7"))}},
      {"conjunction eq+exists",
       {PathPredicate::Compare("$.purchaseOrder.costcenter",
                               rdbms::CompareOp::kEq, Value::String("CC7")),
        PathPredicate::Exists(kRarePath)}},
  };
  benchutil::PrintHeader(
      {"query shape", "access path", "est rows", "actual rows", "ms"});
  for (const Shape& shape : shapes) {
    double best_ms = 1e300;
    size_t rows = 0;
    double est = -1;
    const char* path_name = "";
    for (int r = 0; r < 3; ++r) {
      benchutil::Timer t;
      auto rp = coll->Route(shape.preds).MoveValue();
      Result<size_t> n = benchutil::Drain(rp.plan.get());
      if (!n.ok()) {
        fprintf(stderr, "%s\n", n.status().ToString().c_str());
        exit(1);
      }
      rows = n.value();
      best_ms = std::min(best_ms, t.ElapsedMs());
      est = rp.trace.decision.est_out_rows;
      path_name = collection::AccessPathName(rp.access_path);
    }
    benchutil::PrintRow({shape.name, path_name, benchutil::Fmt(est, 1),
                         std::to_string(rows), benchutil::Fmt(best_ms)});
  }
  printf("\n");
}

// (d) ISSUE 6: sharded collections drained morsel-parallel. One routed
// range scan (not index-answerable, so every shard pays a real full-scan
// morsel) over a 4-shard collection, at 1/2/4 worker threads; the
// speedup-vs-1-thread column is what CI's scaling check and the
// bench_compare.py markdown summary read. The run at the largest thread
// count is last so the flight-recorder dump (TRACE_*.json) ends with a
// stitched multi-worker span tree.
void ShardScalingAblation(size_t docs_n) {
  printf("--- (d) sharded morsel-parallel scaling (4 shards) ---\n");
  rdbms::Database db;
  collection::CollectionOptions opts;
  opts.shard_count = 4;
  auto coll = collection::JsonCollection::Create(&db, "POS", opts)
                  .MoveValue();
  Rng rng(21);
  for (size_t i = 0; i < docs_n; ++i) {
    if (!coll->Insert(Value::Int64(static_cast<int64_t>(i + 1)),
                      workloads::PurchaseOrder(&rng, i + 1))
             .ok()) {
      fprintf(stderr, "insert failed\n");
      exit(1);
    }
  }

  // A half-selective range on a numeric path: no posting path answers an
  // inequality, so every shard routes to a full document scan — the
  // morsel shape that actually scales with workers.
  const std::vector<collection::PathPredicate> preds = {
      collection::PathPredicate::Compare(
          "$.purchaseOrder.id", rdbms::CompareOp::kGt,
          Value::Int64(static_cast<int64_t>(docs_n / 2)))};

  size_t expect_rows = 0;
  {
    auto probe = coll->Route(preds).MoveValue();
    expect_rows = benchutil::Drain(probe.plan.get()).MoveValue();
  }

  // Route + drain end-to-end, best of 5 (the RoutedPlan owns the trace
  // the plan's instrumentation points into, so it stays in scope for the
  // drain).
  auto time_routed = [&] {
    double best = 1e300;
    for (int r = 0; r < 5; ++r) {
      benchutil::Timer t;
      auto rp = coll->Route(preds).MoveValue();
      Result<size_t> n = benchutil::Drain(rp.plan.get());
      if (!n.ok()) {
        fprintf(stderr, "%s\n", n.status().ToString().c_str());
        exit(1);
      }
      if (n.value() != expect_rows) {
        fprintf(stderr, "parallel drain row mismatch: %zu != %zu\n",
                n.value(), expect_rows);
        exit(1);
      }
      best = std::min(best, t.ElapsedMs());
    }
    return best;
  };

  // The leading label keeps row keys unique for bench_compare.py (rows
  // pair by first cell); shards/threads/speedup stay plain numbers so the
  // BENCH json cells parse as JSON numbers for the CI scaling checks.
  benchutil::PrintHeader(
      {"scaling config", "shards", "threads", "ms", "speedup vs 1 thread"});
  double t1 = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    rdbms::WorkerPool::Global().Resize(threads);
    double best = time_routed();
    if (threads == 1) t1 = best;
    benchutil::PrintRow({"4 shards @ " + std::to_string(threads) + " thr",
                         "4", std::to_string(threads), benchutil::Fmt(best),
                         benchutil::Fmt(t1 / best, 2)});
  }
  printf("(matching rows: %zu of %zu; worker pool left at 4 threads)\n\n",
         expect_rows, docs_n);
}

void SetEncodingAblation(size_t docs_n) {
  printf("--- (b) §7 set encoding vs self-contained OSON ---\n");
  Rng rng(13);
  std::vector<std::string> texts;
  std::vector<std::unique_ptr<json::JsonNode>> trees;
  for (size_t i = 0; i < docs_n; ++i) {
    texts.push_back(workloads::PurchaseOrder(&rng, i + 1));
    trees.push_back(json::Parse(texts.back()).MoveValue());
  }

  // Self-contained images.
  std::vector<std::string> self_images;
  size_t self_bytes = 0;
  for (const auto& tree : trees) {
    self_images.push_back(oson::Encode(*tree).MoveValue());
    self_bytes += self_images.back().size();
  }

  // Set-encoded images + one shared dictionary.
  oson::SetEncoder enc;
  for (const auto& tree : trees) enc.CollectNames(*tree);
  if (!enc.FinalizeDictionary().ok()) exit(1);
  std::vector<std::string> set_images;
  size_t set_bytes = enc.dictionary().MemoryBytes();
  for (const auto& tree : trees) {
    set_images.push_back(enc.Encode(*tree).MoveValue());
    set_bytes += set_images.back().size();
  }

  // Query both stores: singleton JSON_VALUE over every document.
  jsonpath::PathExpression path =
      jsonpath::PathExpression::Parse("$.purchaseOrder.costcenter")
          .MoveValue();
  auto time_query = [&](auto open_dom) {
    double best = 1e300;
    for (int r = 0; r < 5; ++r) {
      jsonpath::PathEvaluator eval(&path);
      benchutil::Timer t;
      size_t hits = 0;
      for (size_t i = 0; i < docs_n; ++i) {
        auto dom = open_dom(i);
        Result<std::optional<Value>> v = eval.FirstScalar(dom);
        if (v.ok() && v.value().has_value()) ++hits;
      }
      if (hits != docs_n) {
        fprintf(stderr, "query missed documents\n");
        exit(1);
      }
      best = std::min(best, t.ElapsedMs());
    }
    return best;
  };
  double t_self = time_query([&](size_t i) {
    return oson::OsonDom::Open(self_images[i]).MoveValue();
  });
  double t_set = time_query([&](size_t i) {
    return oson::OpenSetImage(set_images[i], &enc.dictionary()).MoveValue();
  });

  benchutil::PrintHeader({"store", "MB", "query ms", ""});
  benchutil::PrintRow({"self-contained",
                       benchutil::Fmt(self_bytes / 1048576.0),
                       benchutil::Fmt(t_self), ""});
  benchutil::PrintRow({"set-encoded",
                       benchutil::Fmt(set_bytes / 1048576.0),
                       benchutil::Fmt(t_set),
                       benchutil::Fmt(100.0 * set_bytes / self_bytes, 1) +
                           "% of bytes"});
}

void Run() {
  size_t docs = benchutil::DocCount(4000);
  printf("=== Ablations: access paths & set encoding, %zu docs ===\n\n",
         docs);
  AccessPathAblation(docs);
  ShardScalingAblation(docs);
  SetEncodingAblation(docs);
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("ablation_access_paths");
  fsdm::Run();
  return 0;
}
