// Table 11: average share of the OSON image taken by each of the three
// segments (field-id-name dictionary / tree-node navigation / leaf values).

#include "bench/harness.h"
#include "oson/oson.h"
#include "workloads/generators.h"

namespace fsdm {
namespace {

void Run() {
  using benchutil::Fmt;
  printf("=== Table 11: OSON Three-Segment Size Statistics ===\n");
  size_t small_docs = benchutil::DocCount(200);
  double big_scale = 0.02;

  benchutil::PrintHeader({"collection", "dict seg %", "tree seg %",
                          "value seg %", "(header %)"});
  for (const std::string& name : workloads::Table10CollectionNames()) {
    bool big = name == "TwitterMsgArchive" || name == "SensorData";
    size_t n = big ? 2 : small_docs;
    Rng rng(7);
    double dict = 0, tree = 0, value = 0, header = 0;
    for (size_t i = 0; i < n; ++i) {
      std::string text = workloads::Collection(name, &rng, i + 1, big_scale);
      Result<std::string> enc = oson::EncodeFromText(text);
      if (!enc.ok()) {
        fprintf(stderr, "%s: encode failed\n", name.c_str());
        exit(1);
      }
      oson::OsonDom dom = oson::OsonDom::Open(enc.value()).MoveValue();
      oson::SegmentStats s = dom.segment_stats();
      double total = static_cast<double>(s.total_size);
      dict += 100.0 * s.dictionary_size / total;
      tree += 100.0 * s.tree_size / total;
      value += 100.0 * s.values_size / total;
      header += 100.0 * s.header_size / total;
    }
    benchutil::PrintRow({name, Fmt(dict / n), Fmt(tree / n), Fmt(value / n),
                         Fmt(header / n)});
  }
  printf(
      "\nExpected shape (paper): the dictionary share dominates small\n"
      "documents (30-60%%) and collapses to ~0%% for the large repetitive\n"
      "collections; YCSB's long random strings put >80%% in the value "
      "segment.\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("table11_segments");
  fsdm::Run();
  return 0;
}
