// Figure 9: transient DataGuide aggregation time at 25/50/75/99% document
// sampling (Q1 of Table 9), compared against creating the persistent
// DataGuide via JSON search index construction over the same collection
// (§6.6).

#include "bench/harness.h"
#include "dataguide/views.h"
#include "index/search_index.h"

namespace fsdm {
namespace {

void Run() {
  size_t docs_n = benchutil::DocCount(20000);
  printf("=== Figure 9: transient DataGuide aggregation, %zu NOBENCH docs "
         "===\n",
         docs_n);

  rdbms::Table table("NB",
                     {{.name = "DID", .type = rdbms::ColumnType::kNumber},
                      {.name = "JDOC",
                       .type = rdbms::ColumnType::kJson,
                       .check_is_json = true}});
  Rng rng(3);
  for (size_t i = 0; i < docs_n; ++i) {
    Result<size_t> r = table.Insert(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::String(workloads::Nobench(&rng, static_cast<int64_t>(i)))});
    if (!r.ok()) {
      fprintf(stderr, "insert failed\n");
      exit(1);
    }
  }

  benchutil::PrintHeader({"sample %", "agg time ms", "paths found"});
  double t99 = 0;
  for (double pct : {25.0, 50.0, 75.0, 99.0}) {
    double best = 1e300;
    size_t paths = 0;
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<dataguide::DataGuide> guides;
      auto plan = rdbms::GroupBy(
          rdbms::Sample(rdbms::Scan(&table), pct, /*seed=*/5), {}, {},
          {dataguide::JsonDataGuideAggInto(rdbms::Col("JDOC"), "dg",
                                           &guides)});
      benchutil::Timer t;
      Result<std::vector<rdbms::Row>> rows = rdbms::Collect(plan.get());
      if (!rows.ok()) {
        fprintf(stderr, "agg failed: %s\n", rows.status().ToString().c_str());
        exit(1);
      }
      best = std::min(best, t.ElapsedMs());
      paths = guides.empty() ? 0 : guides[0].distinct_path_count();
    }
    if (pct == 99.0) t99 = best;
    benchutil::PrintRow({benchutil::Fmt(pct, 0), benchutil::Fmt(best),
                         std::to_string(paths)});
  }

  // Persistent DataGuide: build the search index (back-fill) over the
  // full collection.
  double t_persistent = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    benchutil::Timer t;
    index::JsonSearchIndex::Options opts;
    opts.maintain_postings = false;
    auto idx =
        index::JsonSearchIndex::Create(&table, "JDOC", opts).MoveValue();
    // Persist the final $DG table rendering.
    std::vector<rdbms::Row> dg_rows = idx->DgRows();
    (void)dg_rows;
    t_persistent = std::min(t_persistent, t.ElapsedMs());
    idx->Detach();
  }
  printf("\npersistent dataguide (index creation): %s ms (%s%% vs 99%% "
         "transient)\n",
         benchutil::Fmt(t_persistent).c_str(),
         benchutil::Fmt(100.0 * (t_persistent - t99) / t99, 1).c_str());
  printf(
      "\nExpected shape (paper): aggregation time linear in the sample\n"
      "fraction; persistent creation ~27%% above the 99%% transient run\n"
      "(same computation plus $DG persistence).\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("fig9_transient");
  fsdm::Run();
  return 0;
}
