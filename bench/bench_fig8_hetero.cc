// Figure 8: insertion with DataGuide maintenance enabled, homogeneous
// collection (identical structure, $DG written once) vs heterogeneous
// collection (every document adds a unique new field, forcing a $DG write
// per insert) — §6.5's second experiment.

#include "bench/harness.h"
#include "index/search_index.h"

namespace fsdm {
namespace {

double InsertAll(const std::vector<std::string>& docs, size_t* dg_writes) {
  rdbms::Table table("NB",
                     {{.name = "DID", .type = rdbms::ColumnType::kNumber},
                      {.name = "JDOC",
                       .type = rdbms::ColumnType::kJson,
                       .check_is_json = true}});
  index::JsonSearchIndex::Options opts;
  opts.maintain_postings = false;
  auto idx = index::JsonSearchIndex::Create(&table, "JDOC", opts).MoveValue();
  benchutil::Timer t;
  for (size_t i = 0; i < docs.size(); ++i) {
    Result<size_t> r = table.Insert(
        {Value::Int64(static_cast<int64_t>(i)), Value::String(docs[i])});
    if (!r.ok()) {
      fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
      exit(1);
    }
  }
  double ms = t.ElapsedMs();
  *dg_writes = idx->dg_write_count();
  return ms;
}

void Run() {
  size_t docs_n = benchutil::DocCount(10000);
  printf("=== Figure 8: homogeneous vs heterogeneous inserts (%zu docs, "
         "DataGuide on) ===\n",
         docs_n);

  Rng rng(1);
  std::string homo_doc = workloads::Nobench(&rng, 0);
  std::vector<std::string> homo(docs_n, homo_doc);

  workloads::NobenchOptions hetero_opt;
  hetero_opt.unique_field_per_doc = true;
  std::vector<std::string> hetero;
  Rng rng2(1);
  for (size_t i = 0; i < docs_n; ++i) {
    hetero.push_back(
        workloads::Nobench(&rng2, static_cast<int64_t>(i), hetero_opt));
  }

  size_t homo_writes = 0, hetero_writes = 0;
  double t_homo = 1e300, t_hetero = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t_homo = std::min(t_homo, InsertAll(homo, &homo_writes));
    t_hetero = std::min(t_hetero, InsertAll(hetero, &hetero_writes));
  }

  benchutil::PrintHeader({"collection", "ms", "$DG writes"});
  benchutil::PrintRow({"homo", benchutil::Fmt(t_homo),
                       std::to_string(homo_writes)});
  benchutil::PrintRow({"hetero", benchutil::Fmt(t_hetero),
                       std::to_string(hetero_writes)});
  printf("hetero / homo ratio: %sx\n",
         benchutil::Fmt(t_hetero / t_homo, 2).c_str());
  printf(
      "\nExpected shape (paper): the heterogeneous collection costs about\n"
      "2x the homogeneous one — every insert discovers a new path and\n"
      "writes it to $DG (%zu writes vs %zu).\n",
      hetero_writes, homo_writes);
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("fig8_hetero");
  fsdm::Run();
  return 0;
}
