// Figure 3: execution time of the nine OLAP queries of Table 13 over the
// purchase-order collection stored as JSON text, BSON, OSON and relational
// decomposition (REL). The views po_mv / po_item_dmdv abstract the storage
// difference; WHERE predicates evaluate inside the view scan.

#include <functional>

#include "bench/harness.h"

namespace fsdm {
namespace {

using benchutil::PoDataset;
using benchutil::PoStorage;
using rdbms::AggSpec;
using rdbms::Col;
using rdbms::Lit;
using rdbms::OperatorPtr;

using QueryFn =
    std::function<Result<OperatorPtr>(const PoDataset&, PoStorage)>;

Result<OperatorPtr> Q1(const PoDataset& ds, PoStorage st) {
  // select count(*) from po_mv p where p.reference = ?; the predicate is
  // pushed down as JSON_EXISTS on the documents (§6.3).
  FSDM_ASSIGN_OR_RETURN(
      OperatorPtr mv,
      PoMvPushdown(ds, st,
                   "$.purchaseOrder?(@.reference == \"" +
                       ds.sample_reference + "\")"));
  return rdbms::GroupBy(
      rdbms::Filter(std::move(mv),
                    rdbms::Eq(Col("REFERENCE"),
                              Lit(Value::String(ds.sample_reference)))),
      {}, {}, {{AggSpec::Kind::kCountStar, nullptr, "CNT"}});
}

Result<OperatorPtr> Q2(const PoDataset& ds, PoStorage st) {
  // select costcenter, count(*) from po_mv group by costcenter order by 1
  FSDM_ASSIGN_OR_RETURN(OperatorPtr mv, PoMv(ds, st));
  return rdbms::Sort(
      rdbms::GroupBy(std::move(mv), {Col("COSTCENTER")}, {"COSTCENTER"},
                     {{AggSpec::Kind::kCountStar, nullptr, "CNT"}}),
      {{Col("COSTCENTER"), true}});
}

Result<OperatorPtr> Q3(const PoDataset& ds, PoStorage st) {
  // select costcenter, count(*) from po_item_dmdv where PARTNO = ?
  // group by costcenter; partno predicate pushed down as JSON_EXISTS.
  FSDM_ASSIGN_OR_RETURN(
      OperatorPtr dmdv,
      PoItemDmdvPushdown(ds, st,
                         "$.purchaseOrder.items?(@.partno == \"" +
                             ds.sample_partno + "\")"));
  return rdbms::GroupBy(
      rdbms::Filter(std::move(dmdv),
                    rdbms::Eq(Col("PARTNO"),
                              Lit(Value::String(ds.sample_partno)))),
      {Col("COSTCENTER")}, {"COSTCENTER"},
      {{AggSpec::Kind::kCountStar, nullptr, "CNT"}});
}

std::vector<std::pair<std::string, rdbms::ExprPtr>> WideProjection() {
  std::vector<std::pair<std::string, rdbms::ExprPtr>> cols;
  for (const char* c : {"REFERENCE", "INSTRUCTIONS", "ITEMNO", "PARTNO",
                        "DESCRIPTION", "QUANTITY", "UNITPRICE"}) {
    cols.emplace_back(c, Col(c));
  }
  return cols;
}

Result<OperatorPtr> Q4(const PoDataset& ds, PoStorage st) {
  // select <cols> from po_item_dmdv d where REQUESTOR = ? and
  // d.QUANTITY > ? and d.UNITPRICE > ?; requestor pushed down.
  FSDM_ASSIGN_OR_RETURN(
      OperatorPtr dmdv,
      PoItemDmdvPushdown(ds, st,
                         "$.purchaseOrder?(@.requestor == \"" +
                             ds.sample_requestor + "\")"));
  rdbms::ExprPtr pred = rdbms::And(
      rdbms::Eq(Col("REQUESTOR"), Lit(Value::String(ds.sample_requestor))),
      rdbms::And(rdbms::Gt(Col("QUANTITY"), Lit(Value::Int64(2))),
                 rdbms::Gt(Col("UNITPRICE"), Lit(Value::Int64(50)))));
  return rdbms::Project(rdbms::Filter(std::move(dmdv), std::move(pred)),
                        WideProjection());
}

Result<OperatorPtr> Q5(const PoDataset& ds, PoStorage st) {
  // select ... from po_item_dmdv where PARTNO in (?, ?, ?); pushed down
  // as a disjunctive path predicate.
  std::string in_pred = "$.purchaseOrder.items?(";
  for (size_t i = 0; i < ds.sample_partnos.size(); ++i) {
    if (i) in_pred += " || ";
    in_pred += "@.partno == \"" + ds.sample_partnos[i] + "\"";
  }
  in_pred += ")";
  FSDM_ASSIGN_OR_RETURN(OperatorPtr dmdv,
                        PoItemDmdvPushdown(ds, st, in_pred));
  std::vector<Value> parts;
  for (const std::string& p : ds.sample_partnos) {
    parts.push_back(Value::String(p));
  }
  std::vector<std::pair<std::string, rdbms::ExprPtr>> cols;
  for (const char* c : {"REFERENCE", "ITEMNO", "PARTNO", "DESCRIPTION"}) {
    cols.emplace_back(c, Col(c));
  }
  return rdbms::Project(
      rdbms::Filter(std::move(dmdv), rdbms::In(Col("PARTNO"), parts)),
      std::move(cols));
}

Result<OperatorPtr> Q6(const PoDataset& ds, PoStorage st) {
  // select Partno, Reference, Quantity, QUANTITY - LAG(QUANTITY, 1,
  // QUANTITY) over (ORDER BY SUBSTR(REFERENCE, INSTR(REFERENCE,'-')+1))
  // from po_item_dmdv where Partno = ? order by ... desc
  FSDM_ASSIGN_OR_RETURN(
      OperatorPtr dmdv,
      PoItemDmdvPushdown(ds, st,
                         "$.purchaseOrder.items?(@.partno == \"" +
                             ds.sample_partno + "\")"));
  rdbms::ExprPtr order_key = rdbms::Func(
      "SUBSTR",
      {Col("REFERENCE"),
       rdbms::Add(rdbms::Func("INSTR", {Col("REFERENCE"),
                                        Lit(Value::String("-"))}),
                  Lit(Value::Int64(1)))});
  OperatorPtr filtered = rdbms::Filter(
      std::move(dmdv),
      rdbms::Eq(Col("PARTNO"), Lit(Value::String(ds.sample_partno))));
  OperatorPtr lagged =
      rdbms::WindowLag(std::move(filtered), Col("QUANTITY"), 1,
                       Col("QUANTITY"), {{order_key, true}}, "LAG_QTY");
  OperatorPtr diffed = rdbms::Project(
      std::move(lagged),
      {{"PARTNO", Col("PARTNO")},
       {"REFERENCE", Col("REFERENCE")},
       {"QUANTITY", Col("QUANTITY")},
       {"DIFFERENCE", rdbms::Sub(Col("QUANTITY"), Col("LAG_QTY"))}});
  rdbms::ExprPtr order_key2 = rdbms::Func(
      "SUBSTR",
      {Col("REFERENCE"),
       rdbms::Add(rdbms::Func("INSTR", {Col("REFERENCE"),
                                        Lit(Value::String("-"))}),
                  Lit(Value::Int64(1)))});
  return rdbms::Sort(std::move(diffed), {{order_key2, false}});
}

Result<OperatorPtr> Q7(const PoDataset& ds, PoStorage st) {
  // select sum(quantity * unitprice) from po_item_dmdv group by costcenter
  // order by 1
  FSDM_ASSIGN_OR_RETURN(OperatorPtr dmdv, PoItemDmdv(ds, st));
  OperatorPtr agg = rdbms::GroupBy(
      std::move(dmdv), {Col("COSTCENTER")}, {"COSTCENTER"},
      {{AggSpec::Kind::kSum, rdbms::Mul(Col("QUANTITY"), Col("UNITPRICE")),
        "TOTAL"}});
  return rdbms::Sort(rdbms::Project(std::move(agg),
                                    {{"TOTAL", Col("TOTAL")}}),
                     {{Col("TOTAL"), true}});
}

Result<OperatorPtr> Q8(const PoDataset& ds, PoStorage st) {
  FSDM_ASSIGN_OR_RETURN(
      OperatorPtr dmdv,
      PoItemDmdvPushdown(
          ds, st, "$.purchaseOrder.items?(@.quantity > 15 && "
                  "@.unitprice > 800)"));
  rdbms::ExprPtr pred =
      rdbms::And(rdbms::Gt(Col("QUANTITY"), Lit(Value::Int64(15))),
                 rdbms::Gt(Col("UNITPRICE"), Lit(Value::Int64(800))));
  return rdbms::Project(rdbms::Filter(std::move(dmdv), std::move(pred)),
                        WideProjection());
}

Result<OperatorPtr> Q9(const PoDataset& ds, PoStorage st) {
  FSDM_ASSIGN_OR_RETURN(OperatorPtr dmdv, PoItemDmdv(ds, st));
  return rdbms::Project(std::move(dmdv), WideProjection());
}

void Run() {
  size_t docs = benchutil::DocCount(4000);
  printf("=== Figure 3: OLAP query time (ms), %zu purchaseOrder docs ===\n",
         docs);
  PoDataset ds = PoDataset::Build(docs);

  const std::vector<std::pair<std::string, QueryFn>> queries = {
      {"Q1", Q1}, {"Q2", Q2}, {"Q3", Q3}, {"Q4", Q4}, {"Q5", Q5},
      {"Q6", Q6}, {"Q7", Q7}, {"Q8", Q8}, {"Q9", Q9}};
  const std::vector<PoStorage> storages = {PoStorage::kText, PoStorage::kBson,
                                           PoStorage::kOson, PoStorage::kRel};

  benchutil::PrintHeader({"query", "JSON", "BSON", "OSON", "REL",
                          "JSON/OSON ratio"});
  for (const auto& [name, fn] : queries) {
    std::vector<std::string> row = {name};
    double text_ms = 0, oson_ms = 0;
    for (PoStorage st : storages) {
      double ms = benchutil::TimeQuery([&] { return fn(ds, st); });
      if (st == PoStorage::kText) text_ms = ms;
      if (st == PoStorage::kOson) oson_ms = ms;
      row.push_back(benchutil::Fmt(ms));
    }
    row.push_back(benchutil::Fmt(oson_ms > 0 ? text_ms / oson_ms : 0, 1) +
                  "x");
    benchutil::PrintRow(row);
  }
  printf(
      "\nExpected shape (paper): OSON 5-10x faster than JSON text on the\n"
      "DMDV queries, BSON between the two (serial field scans), and OSON\n"
      "on par with REL (no join needed, binary field access).\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("fig3_olap");
  fsdm::Run();
  return 0;
}
