// Micro-benchmarks (google-benchmark) for the format-level operations the
// paper's macro results rest on: per-document field navigation and
// encoding cost in each representation, plus OSON design ablations
// (leaf-value dedup, field-id binary search vs. BSON's serial name scan).

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "bson/bson.h"
#include "common/hash.h"
#include "common/rng.h"
#include "json/parser.h"
#include "jsonpath/evaluator.h"
#include "jsonpath/streaming.h"
#include "oson/oson.h"
#include "workloads/generators.h"

namespace fsdm {
namespace {

std::string SampleDoc() {
  Rng rng(123);
  return workloads::PurchaseOrder(&rng, 1);
}

// --- JSON_VALUE-style navigation: $.purchaseOrder.items[2].unitprice ----

void BM_Navigate_TextParse(benchmark::State& state) {
  std::string doc = SampleDoc();
  jsonpath::PathExpression path =
      jsonpath::PathExpression::Parse("$.purchaseOrder.items[2].unitprice")
          .MoveValue();
  jsonpath::PathEvaluator eval(&path);
  for (auto _ : state) {
    auto tree = json::Parse(doc).MoveValue();  // per-document parse: the
    json::TreeDom dom(tree.get());             // TEXT-mode cost
    auto v = eval.FirstScalar(dom);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Navigate_TextParse);

void BM_Navigate_TextStreaming(benchmark::State& state) {
  // The §5.1 streaming engine: no DOM, stops at the first match.
  std::string doc = SampleDoc();
  jsonpath::PathExpression path =
      jsonpath::PathExpression::Parse("$.purchaseOrder.costcenter")
          .MoveValue();
  for (auto _ : state) {
    auto v = jsonpath::StreamingPathEngine::FirstScalar(doc, path);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Navigate_TextStreaming);

void BM_Navigate_Bson(benchmark::State& state) {
  std::string bytes = bson::EncodeFromText(SampleDoc()).MoveValue();
  jsonpath::PathExpression path =
      jsonpath::PathExpression::Parse("$.purchaseOrder.items[2].unitprice")
          .MoveValue();
  jsonpath::PathEvaluator eval(&path);
  for (auto _ : state) {
    auto dom = bson::BsonDom::Open(bytes).MoveValue();
    auto v = eval.FirstScalar(dom);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Navigate_Bson);

void BM_Navigate_Oson(benchmark::State& state) {
  std::string bytes = oson::EncodeFromText(SampleDoc()).MoveValue();
  jsonpath::PathExpression path =
      jsonpath::PathExpression::Parse("$.purchaseOrder.items[2].unitprice")
          .MoveValue();
  jsonpath::PathEvaluator eval(&path);
  for (auto _ : state) {
    auto dom = oson::OsonDom::Open(bytes).MoveValue();
    auto v = eval.FirstScalar(dom);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Navigate_Oson);

// --- Field lookup in a wide object: binary search vs serial scan --------

std::string WideObject(int n_fields) {
  std::string doc = "{";
  for (int i = 0; i < n_fields; ++i) {
    if (i) doc += ",";
    doc += "\"field_" + std::to_string(i) + "\":" + std::to_string(i);
  }
  doc += "}";
  return doc;
}

void BM_WideLookup_Bson(benchmark::State& state) {
  std::string bytes =
      bson::EncodeFromText(WideObject(static_cast<int>(state.range(0))))
          .MoveValue();
  auto dom = bson::BsonDom::Open(bytes).MoveValue();
  std::string last = "field_" + std::to_string(state.range(0) - 1);
  for (auto _ : state) {
    auto ref = dom.GetFieldValue(dom.root(), last);  // serial name scan
    benchmark::DoNotOptimize(ref);
  }
}
BENCHMARK(BM_WideLookup_Bson)->Arg(16)->Arg(128)->Arg(1024);

void BM_WideLookup_Oson(benchmark::State& state) {
  std::string bytes =
      oson::EncodeFromText(WideObject(static_cast<int>(state.range(0))))
          .MoveValue();
  auto dom = oson::OsonDom::Open(bytes).MoveValue();
  std::string last = "field_" + std::to_string(state.range(0) - 1);
  uint32_t hash = FieldNameHash(last);
  uint32_t cache = ~0u;
  for (auto _ : state) {
    auto ref = dom.GetFieldValueHashed(dom.root(), last, hash, &cache);
    benchmark::DoNotOptimize(ref);  // hash-id binary search + look-back
  }
}
BENCHMARK(BM_WideLookup_Oson)->Arg(16)->Arg(128)->Arg(1024);

// --- Encoding cost ------------------------------------------------------

void BM_Encode_Bson(benchmark::State& state) {
  std::string doc = SampleDoc();
  for (auto _ : state) {
    auto bytes = bson::EncodeFromText(doc);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_Encode_Bson);

void BM_Encode_Oson(benchmark::State& state) {
  std::string doc = SampleDoc();
  for (auto _ : state) {
    auto bytes = oson::EncodeFromText(doc);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_Encode_Oson);

// --- Ablation: leaf-value dedup space effect ----------------------------

void BM_Ablation_OsonDedup(benchmark::State& state) {
  Rng rng(7);
  std::string doc = workloads::Collection("SensorData", &rng, 1, 0.01);
  oson::EncodeOptions opts;
  opts.dedup_leaf_values = state.range(0) == 1;
  size_t size = 0;
  for (auto _ : state) {
    auto bytes = oson::EncodeFromText(doc, opts);
    size = bytes.value().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["image_bytes"] = static_cast<double>(size);
}
BENCHMARK(BM_Ablation_OsonDedup)->Arg(0)->Arg(1);

// Console reporter that additionally records every run into the BenchJson
// sink, so this binary emits BENCH_micro_navigation.json like the plain
// harness benches do.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      benchutil::BenchJson& sink = benchutil::BenchJson::Global();
      sink.BeginRow();
      sink.Str("name", run.benchmark_name());
      sink.Num("real_time_ns", run.GetAdjustedRealTime());
      sink.Num("cpu_time_ns", run.GetAdjustedCPUTime());
      sink.Num("iterations", static_cast<double>(run.iterations));
      for (const auto& [counter_name, counter] : run.counters) {
        sink.Num(counter_name, counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace
}  // namespace fsdm

int main(int argc, char** argv) {
  fsdm::benchutil::BenchJson::Global().Init("micro_navigation");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fsdm::JsonMirrorReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
