#ifndef FSDM_BENCH_HARNESS_H_
#define FSDM_BENCH_HARNESS_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"
#include "sqljson/json_table.h"
#include "sqljson/operators.h"
#include "workloads/generators.h"

namespace fsdm::benchutil {

/// Wall-clock timer in milliseconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Document count override: FSDM_DOCS=<n> scales every bench. The paper's
/// absolute scales (100k POs, 64M NOBENCH docs) are CLI-tunable; the
/// defaults keep a full bench sweep in the minutes range — the figures
/// compare ratios, not absolute times (§6 note). Also records the resolved
/// count into the BenchJson sink.
size_t DocCount(size_t default_count);

/// Aligned table printing for paper-style output. Both calls additionally
/// mirror into the BenchJson sink, so the machine-readable output tracks
/// the printed tables without per-bench wiring.
void PrintHeader(const std::vector<std::string>& cols);
void PrintRow(const std::vector<std::string>& cells);
std::string Fmt(double v, int decimals = 2);

/// Machine-readable bench output: a process-global sink that mirrors every
/// printed table row and, at exit, writes
///   BENCH_<name>.json = {"bench": <name>, "docs": N,
///                        "rows": [{<header col>: <cell>, ...}, ...],
///                        "metrics": <MetricsRegistry::ToJson()>}
/// to the working directory (or $FSDM_BENCH_JSON_DIR when set). Cells that
/// parse fully as numbers are emitted as JSON numbers, everything else as
/// strings. Call Init() once near the top of main(); rows recorded through
/// PrintRow() (or Num()/Str() for benches that format their own output)
/// are flushed automatically via atexit.
class BenchJson {
 public:
  static BenchJson& Global();

  /// Sets the bench name and registers the atexit writer (idempotent).
  void Init(const std::string& name);
  void SetDocs(size_t docs) { docs_ = docs; }

  void SetHeader(std::vector<std::string> cols);
  /// Records one row keyed by the current header's column names.
  void AddRowCells(const std::vector<std::string>& cells);
  /// Manual row construction for benches without PrintRow tables.
  void BeginRow();
  void Num(const std::string& key, double v);
  void Str(const std::string& key, const std::string& v);

  /// Attaches a bench-specific top-level section: `"key": <json>` emitted
  /// verbatim next to "rows"/"metrics". `json` must be a complete JSON
  /// value (the WAL bench uses this for its durability summary, which
  /// check_bench_json.py validates under the "wal" key).
  void SetExtraSection(const std::string& key, const std::string& json);

  /// Writes BENCH_<name>.json; no-op before Init().
  void Write() const;

 private:
  std::string name_;
  size_t docs_ = 0;
  std::vector<std::string> header_;
  std::vector<std::string> rows_;  // encoded JSON object bodies
  std::vector<std::pair<std::string, std::string>> extra_sections_;
};

/// The §6.3 purchase-order dataset in all four storage methods. The TEXT
/// method is the full document stack (a JsonCollection); BSON/OSON-as-blob
/// and the shredded relational pair are comparison baselines below the
/// facade, so they stay raw tables.
struct PoDataset {
  rdbms::Database db;
  std::unique_ptr<collection::JsonCollection> text_coll;  // DID, JDOC JSON
  rdbms::Table* text_table = nullptr;   // == text_coll->table()
  rdbms::Table* bson_table = nullptr;   // DID NUMBER, JDOC RAW (BSON)
  rdbms::Table* oson_table = nullptr;   // DID NUMBER, JDOC RAW (OSON)
  rdbms::Table* master_tab = nullptr;   // REL purchase_master_tab
  rdbms::Table* detail_tab = nullptr;   // REL lineitem_detail_tab
  // Handy parameter values drawn from generated data (for predicates).
  std::string sample_reference;
  std::string sample_requestor;
  std::string sample_partno;
  std::vector<std::string> sample_partnos;  // three for the IN query

  static PoDataset Build(size_t n_docs, uint64_t seed = 20160626);
};

enum class PoStorage { kText, kBson, kOson, kRel };
const char* PoStorageName(PoStorage storage);

/// po_mv: the master view projecting the singleton scalar fields
/// (DID, ID, REFERENCE, REQUESTOR, COSTCENTER, PODATE, INSTRUCTIONS).
Result<rdbms::OperatorPtr> PoMv(const PoDataset& ds, PoStorage storage);

/// po_item_dmdv: de-normalized master-detail view; master fields repeat
/// for each line item (columns of po_mv + ITEMNO, PARTNO, DESCRIPTION,
/// QUANTITY, UNITPRICE). REL storage computes it as a hash join.
Result<rdbms::OperatorPtr> PoItemDmdv(const PoDataset& ds, PoStorage storage);

/// Like PoItemDmdv/PoMv, but with a WHERE predicate pushed down onto the
/// base documents as JSON_EXISTS(exists_path) *before* JSON_TABLE
/// expansion — the paper's pushdown (§6.3: "WHERE predicates on the views
/// are pushed down as JSON_EXISTS() with JSON path predicates"). REL
/// ignores the path (its predicate applies on the view as usual).
Result<rdbms::OperatorPtr> PoItemDmdvPushdown(const PoDataset& ds,
                                              PoStorage storage,
                                              const std::string& exists_path);
Result<rdbms::OperatorPtr> PoMvPushdown(const PoDataset& ds,
                                        PoStorage storage,
                                        const std::string& exists_path);

/// Runs a plan to completion, returning the row count.
Result<size_t> Drain(rdbms::Operator* op);

/// Times `make_plan()` end-to-end (build + execute + drain), best of
/// `reps`. Returns milliseconds.
template <typename MakePlan>
double TimeQuery(const MakePlan& make_plan, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    Result<rdbms::OperatorPtr> plan = make_plan();
    if (!plan.ok()) {
      fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
      exit(1);
    }
    Result<size_t> rows = Drain(plan.value().get());
    if (!rows.ok()) {
      fprintf(stderr, "exec error: %s\n", rows.status().ToString().c_str());
      exit(1);
    }
    best = std::min(best, t.ElapsedMs());
  }
  return best;
}

}  // namespace fsdm::benchutil

#endif  // FSDM_BENCH_HARNESS_H_
