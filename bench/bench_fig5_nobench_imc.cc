// Figure 5: the eleven NOBENCH queries, TEXT-MODE (documents parsed from
// buffer-cached JSON text per query) vs OSON-IMC-MODE (hidden OSON virtual
// column populated once into the in-memory column store; queries navigate
// the binary image directly, §5.2.2 / §6.4).

#include "bench/nobench.h"

namespace fsdm {
namespace {

void Run() {
  size_t docs = benchutil::DocCount(8000);
  printf("=== Figure 5: NOBENCH TEXT-MODE vs OSON-IMC-MODE, %zu docs ===\n",
         docs);
  benchutil::NbDataset ds = benchutil::NbDataset::Build(docs);

  // Populate the collection-managed IMC store with just the key and the
  // hidden OSON image: OSON() runs once per row here, not per query.
  benchutil::Timer populate;
  Status pop = ds.coll->PopulateImc(
      {ds.coll->key_column(), ds.coll->oson_column()});
  if (!pop.ok()) {
    fprintf(stderr, "IMC population failed: %s\n", pop.ToString().c_str());
    exit(1);
  }
  const imc::ColumnStore* store = ds.coll->imc();
  printf("IMC population (OSON encode of %zu docs): %.1f ms, %.1f MB\n\n",
         docs, populate.ElapsedMs(),
         store->MemoryBytes() / (1024.0 * 1024.0));

  benchutil::NbAccess text = benchutil::TextAccess(ds);
  benchutil::NbAccess imc_access = benchutil::OsonImcAccess(ds, store);

  benchutil::PrintHeader({"query", "TEXT-MODE ms", "OSON-IMC ms",
                          "speedup"});
  for (const auto& [name, query] : benchutil::NobenchQueries()) {
    double t_text =
        benchutil::TimeQuery([&] { return query(ds, text); }, /*reps=*/2);
    double t_imc =
        benchutil::TimeQuery([&] { return query(ds, imc_access); }, 2);
    benchutil::PrintRow({name, benchutil::Fmt(t_text),
                         benchutil::Fmt(t_imc),
                         benchutil::Fmt(t_imc > 0 ? t_text / t_imc : 0, 1) +
                             "x"});
  }
  printf(
      "\nExpected shape (paper): OSON-IMC significantly faster on every\n"
      "query — TEXT-MODE pays a full parse per document per query, the\n"
      "IMC mode jumps through the pre-encoded OSON tree.\n");
}

}  // namespace
}  // namespace fsdm

int main() {
  fsdm::benchutil::BenchJson::Global().Init("fig5_nobench_imc");
  fsdm::Run();
  return 0;
}
