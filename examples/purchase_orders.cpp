// The §6.3 purchase-order scenario: a JSON collection queried through
// generated De-normalized Master-Detail Views (DMDV), over both text and
// OSON storage, with OLAP aggregation on top.

#include <cstdio>

#include "dataguide/views.h"
#include "rdbms/executor.h"
#include "sqljson/operators.h"
#include "workloads/generators.h"

using namespace fsdm;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto&& _r = (expr);                                           \
    if (!_r.ok()) {                                             \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

int main() {
  rdbms::Database db;
  rdbms::Table* po =
      db.CreateTable("PO", {{.name = "DID", .type = rdbms::ColumnType::kNumber},
                            {.name = "JCOL",
                             .type = rdbms::ColumnType::kJson,
                             .check_is_json = true}})
          .MoveValue();

  // Hidden OSON virtual column (§5.2.2): queries can transparently use the
  // binary image instead of re-parsing text.
  rdbms::ColumnDef oson_vc;
  oson_vc.name = "SYS_OSON";
  oson_vc.type = rdbms::ColumnType::kRaw;
  oson_vc.hidden = true;
  oson_vc.virtual_expr = sqljson::OsonConstructor("JCOL");
  {
    Status st = po->AddVirtualColumn(std::move(oson_vc));
    if (!st.ok()) {
      fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Load a small generated collection and grow the DataGuide as we go.
  dataguide::DataGuide guide;
  Rng rng(2016);
  for (int64_t i = 1; i <= 200; ++i) {
    std::string doc = workloads::PurchaseOrder(&rng, i);
    CHECK_OK(po->Insert({Value::Int64(i), Value::String(doc)}));
    CHECK_OK(guide.AddJsonText(doc));
  }
  printf("collection: %zu documents, %zu distinct DataGuide paths\n\n",
         po->row_count(), guide.distinct_path_count());

  // CreateViewOnPath('$'): the full DMDV of Table 8.
  auto view = dataguide::CreateViewOnPath(po, "JCOL",
                                          sqljson::JsonStorage::kText, guide,
                                          "$", "PO_RV");
  CHECK_OK(view);
  printf("DMDV '%s' columns:", view.value().name.c_str());
  for (const auto& c : view.value().OutputColumns()) printf(" %s", c.c_str());
  printf("\n\n");

  // First rows of the view: master fields repeat per line item.
  auto plan = view.value().MakePlan();
  CHECK_OK(plan);
  auto limited = rdbms::Limit(std::move(plan).MoveValue(), 5);
  auto rows = rdbms::CollectStrings(limited.get());
  CHECK_OK(rows);
  printf("first DMDV rows (master repeated per item):\n");
  for (const auto& row : rows.value()) printf("  %s\n", row.c_str());

  // OLAP over the view: revenue per cost center (Q7 of Table 13).
  auto view_plan2 = view.value().MakePlan().MoveValue();
  auto agg = rdbms::Sort(
      rdbms::GroupBy(
          std::move(view_plan2), {rdbms::Col("JCOL$costcenter")},
          {"COSTCENTER"},
          {{rdbms::AggSpec::Kind::kSum,
            rdbms::Mul(rdbms::Col("JCOL$quantity"),
                       rdbms::Col("JCOL$unitprice")),
            "REVENUE"}}),
      {{rdbms::Col("REVENUE"), /*ascending=*/false}});
  auto top = rdbms::Limit(std::move(agg), 5);
  auto agg_rows = rdbms::CollectStrings(top.get());
  CHECK_OK(agg_rows);
  printf("\ntop cost centers by revenue (sum(quantity*unitprice)):\n");
  for (const auto& row : agg_rows.value()) printf("  %s\n", row.c_str());

  // The same predicate evaluated against text vs the OSON image.
  for (auto [label, column, storage] :
       {std::tuple{"text", "JCOL", sqljson::JsonStorage::kText},
        std::tuple{"oson", "SYS_OSON", sqljson::JsonStorage::kOson}}) {
    auto exists = sqljson::JsonExists(
        column, "$.purchaseOrder.items?(@.quantity >= 19)", storage);
    CHECK_OK(exists);
    // Hidden column must be exposed for the OSON variant.
    auto scan = rdbms::Scan(po, /*include_hidden=*/true);
    auto filtered = rdbms::Filter(std::move(scan), exists.MoveValue());
    auto counted = rdbms::GroupBy(
        std::move(filtered), {}, {},
        {{rdbms::AggSpec::Kind::kCountStar, nullptr, "CNT"}});
    auto result = rdbms::CollectStrings(counted.get());
    CHECK_OK(result);
    printf("\norders with an item of quantity >= 19 [%s storage]: %s",
           label, result.value()[0].c_str());
  }
  printf("\n");
  return 0;
}
