// The §6.3 purchase-order scenario: a JsonCollection queried through
// generated De-normalized Master-Detail Views (DMDV), over both text and
// the collection's hidden OSON virtual column, with OLAP aggregation on
// top.

#include <cstdio>

#include "collection/collection.h"
#include "rdbms/executor.h"
#include "workloads/generators.h"

using namespace fsdm;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto&& _r = (expr);                                           \
    if (!_r.ok()) {                                             \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

int main() {
  rdbms::Database db;
  collection::CollectionOptions opts;
  opts.json_column = "JCOL";
  // No search index here; the collection still maintains its own DataGuide
  // off the IS JSON constraint's parse.
  opts.attach_search_index = false;
  auto po = collection::JsonCollection::Create(&db, "PO", opts).MoveValue();

  // Load a small generated collection; the DataGuide grows as we go.
  Rng rng(2016);
  for (int64_t i = 1; i <= 200; ++i) {
    CHECK_OK(po->Insert(Value::Int64(i), workloads::PurchaseOrder(&rng, i)));
  }
  printf("collection: %zu documents, %zu distinct DataGuide paths\n\n",
         po->document_count(), po->dataguide().distinct_path_count());

  // CreateViewOnPath('$'): the full DMDV of Table 8.
  auto view = po->CreateView("$", "PO_RV");
  CHECK_OK(view);
  printf("DMDV '%s' columns:", view.value().name.c_str());
  for (const auto& c : view.value().OutputColumns()) printf(" %s", c.c_str());
  printf("\n\n");

  // First rows of the view: master fields repeat per line item.
  auto plan = view.value().MakePlan();
  CHECK_OK(plan);
  auto limited = rdbms::Limit(std::move(plan).MoveValue(), 5);
  auto rows = rdbms::CollectStrings(limited.get());
  CHECK_OK(rows);
  printf("first DMDV rows (master repeated per item):\n");
  for (const auto& row : rows.value()) printf("  %s\n", row.c_str());

  // OLAP over the view: revenue per cost center (Q7 of Table 13).
  auto view_plan2 = view.value().MakePlan().MoveValue();
  auto agg = rdbms::Sort(
      rdbms::GroupBy(
          std::move(view_plan2), {rdbms::Col("JCOL$costcenter")},
          {"COSTCENTER"},
          {{rdbms::AggSpec::Kind::kSum,
            rdbms::Mul(rdbms::Col("JCOL$quantity"),
                       rdbms::Col("JCOL$unitprice")),
            "REVENUE"}}),
      {{rdbms::Col("REVENUE"), /*ascending=*/false}});
  auto top = rdbms::Limit(std::move(agg), 5);
  auto agg_rows = rdbms::CollectStrings(top.get());
  CHECK_OK(agg_rows);
  printf("\ntop cost centers by revenue (sum(quantity*unitprice)):\n");
  for (const auto& row : agg_rows.value()) printf("  %s\n", row.c_str());

  // The same predicate evaluated against text vs the hidden OSON image the
  // collection installed (§5.2.2).
  for (auto [label, column, storage] :
       {std::tuple{"text", po->json_column().c_str(),
                   sqljson::JsonStorage::kText},
        std::tuple{"oson", po->oson_column().c_str(),
                   sqljson::JsonStorage::kOson}}) {
    auto exists = sqljson::JsonExists(
        column, "$.purchaseOrder.items?(@.quantity >= 19)", storage);
    CHECK_OK(exists);
    // Hidden column must be exposed for the OSON variant.
    auto scan = po->Scan(/*include_hidden=*/true);
    auto filtered = rdbms::Filter(std::move(scan), exists.MoveValue());
    auto counted = rdbms::GroupBy(
        std::move(filtered), {}, {},
        {{rdbms::AggSpec::Kind::kCountStar, nullptr, "CNT"}});
    auto result = rdbms::CollectStrings(counted.get());
    CHECK_OK(result);
    printf("\norders with an item of quantity >= 19 [%s storage]: %s",
           label, result.value()[0].c_str());
  }
  printf("\n");
  return 0;
}
