// The §3.2.1 schema-evolution walk-through: the paper's exact documents
// (Tables 1, 3, 5) inserted one by one, showing how $DG grows deeper when
// a child hierarchy appears and wider when a sibling hierarchy appears —
// without any DDL.

#include <cstdio>

#include "collection/collection.h"
#include "index/search_index.h"

using namespace fsdm;

namespace {

constexpr const char* kDoc1 =
    R"({"purchaseOrder":{"id":1,"podate":"2014-09-08",
        "items":[{"name":"phone","price":100,"quantity":2},
                 {"name":"ipad","price":350.86,"quantity":3}]}})";
constexpr const char* kDoc2 =
    R"({"purchaseOrder":{"id":2,"podate":"2015-03-04",
        "items":[{"name":"table","price":52.78,"quantity":2},
                 {"name":"chair","price":35.24,"quantity":4}]}})";
// Table 3: new child hierarchy "parts" under items + top-level foreign_id.
constexpr const char* kDoc3 =
    R"({"purchaseOrder":{"id":2,"podate":"2015-06-03","foreign_id":"CDEG35",
        "items":[
          {"name":"TV","price":345.55,"quantity":1,
           "parts":[{"partName":"remoteCon","partQuantity":"1"}]},
          {"name":"PC","price":546.78,"quantity":10,
           "parts":[{"partName":"mouse","partQuantity":"2"},
                    {"partName":"keyboard","partQuantity":"1"}]}]}})";
// Table 5: new sibling hierarchy "discount_items".
constexpr const char* kDoc5 =
    R"({"purchaseOrder":{"id":4,"podate":"2015-08-03",
        "items":[{"name":"SSD","price":200,"quantity":1}],
        "discount_items":[
          {"dis_itemName":"cable","dis_itemPrice":5,"dis_itemQuanitty":2,
           "dis_parts":[{"dis_partName":"plug","dis_partQuantity":3}]}]}})";

void PrintDg(const index::JsonSearchIndex& idx) {
  printf("  %-55s %s\n", "PATH", "TYPE");
  for (const rdbms::Row& row : idx.DgRows()) {
    printf("  %-55s %s\n", row[0].AsString().c_str(),
           row[1].AsString().c_str());
  }
}

}  // namespace

int main() {
  rdbms::Database db;
  auto po = collection::JsonCollection::Create(&db, "PO").MoveValue();
  const index::JsonSearchIndex* idx = po->search_index();

  auto insert = [&](int64_t id, const char* doc) {
    size_t before = idx->dataguide().distinct_path_count();
    auto r = po->Insert(Value::Int64(id), doc);
    if (!r.ok()) {
      fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
      exit(1);
    }
    return idx->dataguide().distinct_path_count() - before;
  };

  printf("== after the two documents of Table 1 ==\n");
  insert(1, kDoc1);
  insert(2, kDoc2);
  PrintDg(*idx);

  printf("\n== Table 3's document: the DataGuide grows DEEPER ==\n");
  size_t added = insert(3, kDoc3);
  printf("(%zu new $DG rows — the parts hierarchy and foreign_id)\n", added);
  PrintDg(*idx);

  printf("\n== Table 5's document: the DataGuide grows WIDER ==\n");
  added = insert(4, kDoc5);
  printf("(%zu new $DG rows — the sibling discount_items hierarchy)\n",
         added);
  PrintDg(*idx);

  printf("\n== getDataGuide() hierarchical form ==\n%s\n",
         idx->GetDataGuide(/*hierarchical=*/true).c_str());
  return 0;
}
