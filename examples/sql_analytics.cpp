// SQL-text analytics over a schema-less JSON collection: the Table 13
// query shapes typed as plain SQL, first over JSON text, then transparently
// rewritten onto the hidden OSON virtual column (§5.2.2) — same SQL, same
// answers, different physical access.

#include <chrono>
#include <cstdio>

#include "collection/collection.h"
#include "sql/parser.h"
#include "workloads/generators.h"

using namespace fsdm;

static double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int main() {
  rdbms::Database db;
  collection::CollectionOptions opts;
  // The SQL session installs its own hidden OSON column on UseOsonFor()
  // (§5.2.2), so the collection skips its default one; no index either —
  // this example is about the SQL surface.
  opts.install_oson_column = false;
  opts.attach_search_index = false;
  auto po = collection::JsonCollection::Create(&db, "PO", opts).MoveValue();
  Rng rng(77);
  for (int64_t i = 1; i <= 1500; ++i) {
    auto r = po->Insert(Value::Int64(i), workloads::PurchaseOrder(&rng, i));
    if (!r.ok()) {
      fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  const char* queries[] = {
      // Q2-style: orders per cost center.
      "SELECT JSON_VALUE(JDOC, '$.purchaseOrder.costcenter') AS cc, COUNT(*) "
      "FROM PO GROUP BY JSON_VALUE(JDOC, '$.purchaseOrder.costcenter') "
      "ORDER BY 2 DESC LIMIT 5",
      // Existence predicate with a path filter.
      "SELECT COUNT(*) FROM PO WHERE "
      "JSON_EXISTS(JDOC, '$.purchaseOrder.items[*]?(@.quantity > 18)')",
      // Scalar projection + SQL functions.
      "SELECT SUBSTR(JSON_VALUE(JDOC, '$.purchaseOrder.reference'), 1, 12), "
      "JSON_VALUE(JDOC, '$.purchaseOrder.id' RETURNING NUMBER) "
      "FROM PO WHERE JSON_VALUE(JDOC, '$.purchaseOrder.id' RETURNING "
      "NUMBER) BETWEEN 3 AND 5 ORDER BY 2",
  };

  for (int pass = 0; pass < 2; ++pass) {
    sql::SqlSession session(&db);
    if (pass == 1) {
      // §5.2.2: same SQL text now navigates the hidden OSON image.
      if (!session.UseOsonFor("PO", "JDOC").ok()) return 1;
    }
    printf("=== pass %d: %s ===\n", pass + 1,
           pass == 0 ? "JSON text storage" : "transparent OSON rewrite");
    for (const char* q : queries) {
      auto t0 = std::chrono::steady_clock::now();
      auto rows = session.Query(q);
      if (!rows.ok()) {
        fprintf(stderr, "query failed: %s\n  %s\n", q,
                rows.status().ToString().c_str());
        return 1;
      }
      printf("%.60s...\n", q);
      for (const auto& row : rows.value()) printf("    %s\n", row.c_str());
      printf("    (%.2f ms)\n", MsSince(t0));
    }
    printf("\n");
  }
  printf(
      "Identical result sets; pass 2 answered every SQL/JSON operator from\n"
      "the OSON binary image instead of re-parsing text.\n");
  return 0;
}
