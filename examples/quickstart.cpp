// Quickstart: "write without schema, read with schema".
//
// A JsonCollection bundles the whole document stack — table with IS JSON
// constraint, search index, DataGuide — behind one facade. Store
// schema-less JSON, let the DataGuide derive itself, then add JSON_VALUE
// virtual columns and query the collection relationally.

#include <cstdio>

#include "collection/collection.h"
#include "rdbms/executor.h"

using namespace fsdm;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto&& _r = (expr);                                           \
    if (!_r.ok()) {                                             \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

int main() {
  // 1. A collection: backing table with a JSON document column (no schema
  //    declared for the documents), search index, and persistent DataGuide
  //    — wired in one call.
  rdbms::Database db;
  collection::CollectionOptions opts;
  opts.key_column = "ID";
  opts.json_column = "DOC";
  auto coll = collection::JsonCollection::Create(&db, "EVENTS", opts)
                  .MoveValue();

  // 2. Write without schema.
  const char* docs[] = {
      R"({"user":"ada","action":"login","device":{"os":"linux","ver":6}})",
      R"({"user":"grace","action":"purchase","amount":99.95,
          "items":[{"sku":"A-1","qty":2},{"sku":"B-9","qty":1}]})",
      R"({"user":"ada","action":"logout","device":{"os":"linux","ver":6}})",
  };
  for (const char* doc : docs) CHECK_OK(coll->Insert(doc));
  // Malformed documents are rejected by the IS JSON constraint:
  auto bad = coll->Insert("{oops");
  printf("malformed insert rejected: %s\n\n", bad.status().ToString().c_str());

  // 3. Read with schema: the DataGuide was derived automatically.
  printf("getDataGuide() [flat form]:\n%s\n\n",
         coll->search_index()->GetDataGuide(false).c_str());

  // 4. AddVC(): project singleton scalars as virtual columns.
  auto added = coll->AddInferredVirtualColumns();
  CHECK_OK(added);
  printf("virtual columns added:");
  for (const auto& name : added.value()) printf(" %s", name.c_str());
  printf("\n\n");

  // 5. Ordinary SQL over the virtual columns.
  auto plan = rdbms::Project(
      rdbms::Filter(coll->Scan(),
                    rdbms::Eq(rdbms::Col("DOC$user"),
                              rdbms::Lit(Value::String("ada")))),
      {{"ID", rdbms::Col("ID")}, {"ACTION", rdbms::Col("DOC$action")}});
  auto rows = rdbms::CollectStrings(plan.get());
  CHECK_OK(rows);
  printf("SELECT id, action WHERE user = 'ada':\n");
  for (const auto& row : rows.value()) printf("  %s\n", row.c_str());

  // 6. Routed execution: the collection picks the access path (here the
  //    index's value postings) from its DataGuide statistics.
  auto routed = coll->Route({collection::PathPredicate::Compare(
                    "$.user", rdbms::CompareOp::kEq,
                    Value::String("ada"))})
                    .MoveValue();
  printf("\nrouter chose: %s (%s)\n",
         collection::AccessPathName(routed.access_path),
         routed.reason.c_str());
  auto routed_rows = rdbms::CollectStrings(routed.plan.get());
  CHECK_OK(routed_rows);
  for (const auto& row : routed_rows.value()) printf("  %s\n", row.c_str());

  // 7. Ad-hoc structural search through the index.
  printf("\ndocs containing path $.items: ");
  for (size_t r : coll->search_index()->DocsWithPath("$.items")) {
    printf("row%zu ", r);
  }
  printf("\ndocs with keyword 'purchase' under $.action: ");
  for (size_t r :
       coll->search_index()->DocsWithKeyword("$.action", "purchase")) {
    printf("row%zu ", r);
  }
  printf("\n");
  return 0;
}
