// Quickstart: "write without schema, read with schema".
//
// Stores schema-less JSON documents in a table with an IS JSON constraint,
// lets the JSON search index derive the DataGuide automatically, then adds
// JSON_VALUE virtual columns and queries the collection relationally.

#include <cstdio>

#include "dataguide/views.h"
#include "index/search_index.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"
#include "sqljson/operators.h"

using namespace fsdm;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto&& _r = (expr);                                           \
    if (!_r.ok()) {                                             \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

int main() {
  // 1. A table with a JSON document column — no schema declared for the
  //    documents themselves.
  rdbms::Database db;
  rdbms::Table* events =
      db.CreateTable("EVENTS",
                     {{.name = "ID", .type = rdbms::ColumnType::kNumber},
                      {.name = "DOC",
                       .type = rdbms::ColumnType::kJson,
                       .check_is_json = true}})
          .MoveValue();

  // 2. A schema-agnostic search index; the persistent DataGuide rides on
  //    its maintenance.
  auto index = index::JsonSearchIndex::Create(events, "DOC").MoveValue();

  // 3. Write without schema.
  const char* docs[] = {
      R"({"user":"ada","action":"login","device":{"os":"linux","ver":6}})",
      R"({"user":"grace","action":"purchase","amount":99.95,
          "items":[{"sku":"A-1","qty":2},{"sku":"B-9","qty":1}]})",
      R"({"user":"ada","action":"logout","device":{"os":"linux","ver":6}})",
  };
  int64_t id = 0;
  for (const char* doc : docs) {
    CHECK_OK(events->Insert({Value::Int64(++id), Value::String(doc)}));
  }
  // Malformed documents are rejected by the IS JSON constraint:
  auto bad = events->Insert({Value::Int64(99), Value::String("{oops")});
  printf("malformed insert rejected: %s\n\n", bad.status().ToString().c_str());

  // 4. Read with schema: the DataGuide was derived automatically.
  printf("getDataGuide() [flat form]:\n%s\n\n",
         index->GetDataGuide(false).c_str());

  // 5. AddVC(): project singleton scalars as virtual columns.
  auto added = dataguide::AddVc(events, "DOC", sqljson::JsonStorage::kText,
                                index->dataguide());
  CHECK_OK(added);
  printf("virtual columns added:");
  for (const auto& name : added.value()) printf(" %s", name.c_str());
  printf("\n\n");

  // 6. Ordinary SQL over the virtual columns.
  auto plan = rdbms::Project(
      rdbms::Filter(rdbms::Scan(events),
                    rdbms::Eq(rdbms::Col("DOC$user"),
                              rdbms::Lit(Value::String("ada")))),
      {{"ID", rdbms::Col("ID")}, {"ACTION", rdbms::Col("DOC$action")}});
  auto rows = rdbms::CollectStrings(plan.get());
  CHECK_OK(rows);
  printf("SELECT id, action WHERE user = 'ada':\n");
  for (const auto& row : rows.value()) printf("  %s\n", row.c_str());

  // 7. Ad-hoc structural search through the index.
  printf("\ndocs containing path $.items: ");
  for (size_t r : index->DocsWithPath("$.items")) printf("row%zu ", r);
  printf("\ndocs with keyword 'purchase' under $.action: ");
  for (size_t r : index->DocsWithKeyword("$.action", "purchase")) {
    printf("row%zu ", r);
  }
  printf("\n");
  return 0;
}
