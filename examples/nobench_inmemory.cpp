// The §6.4 in-memory scenario on NOBENCH data: JSON text on "disk", the
// collection's hidden OSON virtual column and a JSON_VALUE virtual column
// loaded into the in-memory column store, and the same query answered
// three ways (text parse / OSON navigation / columnar scan) — plus the
// access-path router choosing the columnar scan on its own, and DML
// invalidating the store through the collection's observer.

#include <chrono>
#include <cstdio>

#include "collection/collection.h"
#include "rdbms/executor.h"
#include "workloads/generators.h"

using namespace fsdm;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto&& _r = (expr);                                           \
    if (!_r.ok()) {                                             \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

static double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int main() {
  rdbms::Database db;
  collection::CollectionOptions opts;
  opts.attach_search_index = false;  // this example is about the IMC
  auto nb = collection::JsonCollection::Create(&db, "NB", opts).MoveValue();
  CHECK_OK(nb->AddVirtualColumn("NUM_VC", "$.num",
                                sqljson::Returning::kNumber));

  Rng rng(99);
  const size_t kDocs = 3000;
  for (size_t i = 0; i < kDocs; ++i) {
    CHECK_OK(nb->Insert(Value::Int64(static_cast<int64_t>(i)),
                        workloads::Nobench(&rng, static_cast<int64_t>(i))));
  }
  printf("loaded %zu NOBENCH documents (JSON text on disk)\n", kDocs);

  // Populate the collection-managed IMC store once: this is where OSON()
  // and JSON_VALUE() evaluate, not at query time. The default population
  // set is the key, the OSON image, and every declared virtual column.
  auto t0 = std::chrono::steady_clock::now();
  CHECK_OK(nb->EnsureImc());
  const imc::ColumnStore* store = nb->imc();
  printf("IMC populated in %.1f ms (%.1f MB in memory)\n\n", MsSince(t0),
         store->MemoryBytes() / (1024.0 * 1024.0));

  // The query: count documents with num in [100000, 150000).
  // (a) TEXT-MODE: parse every document.
  t0 = std::chrono::steady_clock::now();
  auto text_num = nb->JsonValueExpr("$.num", sqljson::Returning::kNumber)
                      .MoveValue();
  auto text_plan = rdbms::GroupBy(
      rdbms::Filter(
          nb->Scan(),
          rdbms::And(rdbms::Ge(text_num, rdbms::Lit(Value::Int64(100000))),
                     rdbms::Lt(text_num, rdbms::Lit(Value::Int64(150000))))),
      {}, {}, {{rdbms::AggSpec::Kind::kCountStar, nullptr, "CNT"}});
  auto text_rows = rdbms::CollectStrings(text_plan.get());
  CHECK_OK(text_rows);
  printf("TEXT-MODE:  count=%s   %.2f ms\n", text_rows.value()[0].c_str(),
         MsSince(t0));

  // (b) OSON-IMC-MODE: navigate the in-memory binary image.
  t0 = std::chrono::steady_clock::now();
  auto oson_num =
      sqljson::JsonValue(nb->oson_column(), "$.num",
                         sqljson::JsonStorage::kOson,
                         sqljson::Returning::kNumber)
          .MoveValue();
  auto oson_plan = rdbms::GroupBy(
      rdbms::Filter(
          store->Scan({nb->key_column(), nb->oson_column()}),
          rdbms::And(rdbms::Ge(oson_num, rdbms::Lit(Value::Int64(100000))),
                     rdbms::Lt(oson_num, rdbms::Lit(Value::Int64(150000))))),
      {}, {}, {{rdbms::AggSpec::Kind::kCountStar, nullptr, "CNT"}});
  auto oson_rows = rdbms::CollectStrings(oson_plan.get());
  CHECK_OK(oson_rows);
  printf("OSON-IMC:   count=%s   %.2f ms\n", oson_rows.value()[0].c_str(),
         MsSince(t0));

  // (c) VC-IMC-MODE: the router sees a populated store whose columns cover
  //     the predicate and picks the vectorized scan by itself.
  t0 = std::chrono::steady_clock::now();
  auto routed =
      nb->Route({collection::PathPredicate::Compare(
                     "$.num", rdbms::CompareOp::kGe, Value::Int64(100000)),
                 collection::PathPredicate::Compare(
                     "$.num", rdbms::CompareOp::kLt, Value::Int64(150000))})
          .MoveValue();
  auto vc_rows = rdbms::CollectStrings(routed.plan.get());
  CHECK_OK(vc_rows);
  printf("VC-IMC:     count=%zu   %.2f ms   [router: %s]\n",
         vc_rows.value().size(), MsSince(t0),
         collection::AccessPathName(routed.access_path));

  // DML invalidates the store through the observer hook — no stale reads.
  CHECK_OK(nb->Insert(workloads::Nobench(&rng, 1 << 20)));
  printf("\nafter one insert: imc_valid=%s (invalidations=%zu)\n",
         nb->imc_valid() ? "true" : "false", nb->imc_invalidations());

  printf(
      "\nSame answer three ways; each mode shifts more work from query\n"
      "time to load time — the dual-format insight of §5.2.\n");
  return 0;
}
