// The §6.4 in-memory scenario on NOBENCH data: JSON text on "disk", the
// hidden OSON virtual column and three JSON_VALUE virtual columns loaded
// into the in-memory column store, and the same query answered three ways
// (text parse / OSON navigation / columnar scan).

#include <chrono>
#include <cstdio>

#include "imc/column_store.h"
#include "rdbms/executor.h"
#include "sqljson/operators.h"
#include "workloads/generators.h"

using namespace fsdm;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto&& _r = (expr);                                           \
    if (!_r.ok()) {                                             \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

static double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int main() {
  rdbms::Database db;
  rdbms::Table* nb =
      db.CreateTable("NB", {{.name = "DID", .type = rdbms::ColumnType::kNumber},
                            {.name = "JDOC",
                             .type = rdbms::ColumnType::kJson,
                             .check_is_json = true}})
          .MoveValue();

  // Hidden OSON image + the three VCs of §6.4.
  rdbms::ColumnDef oson_vc;
  oson_vc.name = "SYS_OSON";
  oson_vc.type = rdbms::ColumnType::kRaw;
  oson_vc.hidden = true;
  oson_vc.virtual_expr = sqljson::OsonConstructor("JDOC");
  (void)nb->AddVirtualColumn(std::move(oson_vc));
  rdbms::ColumnDef num_vc;
  num_vc.name = "NUM_VC";
  num_vc.type = rdbms::ColumnType::kNumber;
  num_vc.virtual_expr =
      sqljson::JsonValue("JDOC", "$.num", sqljson::JsonStorage::kText,
                         sqljson::Returning::kNumber)
          .MoveValue();
  (void)nb->AddVirtualColumn(std::move(num_vc));

  Rng rng(99);
  const size_t kDocs = 3000;
  for (size_t i = 0; i < kDocs; ++i) {
    CHECK_OK(nb->Insert({Value::Int64(static_cast<int64_t>(i)),
                         Value::String(workloads::Nobench(
                             &rng, static_cast<int64_t>(i)))}));
  }
  printf("loaded %zu NOBENCH documents (JSON text on disk)\n", kDocs);

  // Populate the IMC store once: this is where OSON() and JSON_VALUE()
  // evaluate, not at query time.
  auto t0 = std::chrono::steady_clock::now();
  auto store =
      imc::ColumnStore::Populate(*nb, {"DID", "SYS_OSON", "NUM_VC"})
          .MoveValue();
  printf("IMC populated in %.1f ms (%.1f MB in memory)\n\n", MsSince(t0),
         store.MemoryBytes() / (1024.0 * 1024.0));

  // The query: count documents with num in [100000, 150000).
  // (a) TEXT-MODE: parse every document.
  t0 = std::chrono::steady_clock::now();
  auto text_num =
      sqljson::JsonValue("JDOC", "$.num", sqljson::JsonStorage::kText,
                         sqljson::Returning::kNumber)
          .MoveValue();
  auto text_plan = rdbms::GroupBy(
      rdbms::Filter(
          rdbms::Scan(nb),
          rdbms::And(rdbms::Ge(text_num, rdbms::Lit(Value::Int64(100000))),
                     rdbms::Lt(text_num, rdbms::Lit(Value::Int64(150000))))),
      {}, {}, {{rdbms::AggSpec::Kind::kCountStar, nullptr, "CNT"}});
  auto text_rows = rdbms::CollectStrings(text_plan.get());
  CHECK_OK(text_rows);
  printf("TEXT-MODE:  count=%s   %.2f ms\n", text_rows.value()[0].c_str(),
         MsSince(t0));

  // (b) OSON-IMC-MODE: navigate the in-memory binary image.
  t0 = std::chrono::steady_clock::now();
  auto oson_num =
      sqljson::JsonValue("SYS_OSON", "$.num", sqljson::JsonStorage::kOson,
                         sqljson::Returning::kNumber)
          .MoveValue();
  auto oson_plan = rdbms::GroupBy(
      rdbms::Filter(
          store.Scan({"DID", "SYS_OSON"}),
          rdbms::And(rdbms::Ge(oson_num, rdbms::Lit(Value::Int64(100000))),
                     rdbms::Lt(oson_num, rdbms::Lit(Value::Int64(150000))))),
      {}, {}, {{rdbms::AggSpec::Kind::kCountStar, nullptr, "CNT"}});
  auto oson_rows = rdbms::CollectStrings(oson_plan.get());
  CHECK_OK(oson_rows);
  printf("OSON-IMC:   count=%s   %.2f ms\n", oson_rows.value()[0].c_str(),
         MsSince(t0));

  // (c) VC-IMC-MODE: vectorized scan over the materialized column.
  t0 = std::chrono::steady_clock::now();
  auto vc_rows = store.FilterScan(
      {{"NUM_VC", rdbms::CompareOp::kGe, Value::Int64(100000)},
       {"NUM_VC", rdbms::CompareOp::kLt, Value::Int64(150000)}},
      {"DID"});
  CHECK_OK(vc_rows);
  printf("VC-IMC:     count=%zu   %.2f ms\n", vc_rows.value().size(),
         MsSince(t0));

  printf(
      "\nSame answer three ways; each mode shifts more work from query\n"
      "time to load time — the dual-format insight of §5.2.\n");
  return 0;
}
