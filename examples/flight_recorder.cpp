// The ISSUE 4 flight recorder end to end: arm the recorder, run NOBENCH
// DML and a routed query, then look at what the engine did three ways —
// a chrome trace dumped to disk (load it in chrome://tracing or
// https://ui.perfetto.dev), the TELEMETRY$EVENTS relation queried through
// the SQL mini-engine, and the slow-query log capturing the query's
// EXPLAIN ANALYZE tree because the threshold was set to zero.

#include <cstdio>

#include "collection/collection.h"
#include "collection/router.h"
#include "rdbms/executor.h"
#include "sql/parser.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slow_query.h"
#include "workloads/generators.h"

using namespace fsdm;

#define CHECK_OK(expr)                                                 \
  do {                                                                 \
    auto&& _r = (expr);                                                \
    if (!_r.ok()) {                                                    \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                        \
    }                                                                  \
  } while (0)

int main() {
  if (!telemetry::kEnabled) {
    printf("built with -DFSDM_TELEMETRY=OFF; nothing to record\n");
    return 0;
  }
  telemetry::FlightRecorder::Global().Arm();
  telemetry::SlowQueryLog::Global().SetThresholdUs(0);  // capture everything

  rdbms::Database db;
  auto nb = collection::JsonCollection::Create(&db, "NB").MoveValue();

  Rng rng(7);
  const size_t kDocs = 500;
  for (size_t i = 0; i < kDocs; ++i) {
    CHECK_OK(nb->Insert(Value::Int64(static_cast<int64_t>(i)),
                        workloads::Nobench(&rng, static_cast<int64_t>(i))));
  }
  printf("loaded %zu NOBENCH documents with the recorder armed\n", kDocs);

  // A routed query: the router span, the winner instant and the operator
  // open/close spans all land in the trace.
  auto routed = collection::RoutePredicates(
                    *nb, {collection::PathPredicate::Exists(
                             "$.sparse_110")})
                    .MoveValue();
  auto rows = rdbms::Collect(routed.plan.get());
  CHECK_OK(rows);
  printf("routed query (%s) returned %zu rows\n\n",
         routed.trace.decision.winner.c_str(), rows.value().size());

  // 1. The chrome trace.
  const char* trace_path = "flight_recorder_trace.json";
  if (telemetry::FlightRecorder::Global().DumpChromeTrace(trace_path)) {
    printf("chrome trace written to %s — open chrome://tracing and load "
           "it\n\n", trace_path);
  }

  // 2. The same events through SQL.
  sql::SqlSession session(&db);
  auto dml = session.Query(
      "SELECT CATEGORY, NAME, DUR_US FROM TELEMETRY$EVENTS "
      "WHERE PHASE = 'E' AND CATEGORY = 'collection' LIMIT 5");
  CHECK_OK(dml);
  printf("TELEMETRY$EVENTS (first 5 collection span-ends):\n");
  for (const std::string& row : dml.value()) printf("  %s\n", row.c_str());

  // 3. The slow-query log: every query qualified at threshold 0.
  auto slow = session.Query(
      "SELECT ACCESS_PATH, ELAPSED_US, ROWS, EVENT_COUNT "
      "FROM TELEMETRY$SLOW_QUERIES");
  CHECK_OK(slow);
  printf("\nTELEMETRY$SLOW_QUERIES:\n");
  for (const std::string& row : slow.value()) printf("  %s\n", row.c_str());

  auto snap = telemetry::SlowQueryLog::Global().Snapshot();
  if (!snap.empty()) {
    printf("\ncaptured trace for the slowest query:\n%s\n",
           snap.back().trace_text.c_str());
  }
  return 0;
}
