// Telemetry tour: EXPLAIN ANALYZE traces for routed queries, plus the
// engine-wide metrics registry queried through SQL (TELEMETRY$METRICS) and
// rendered as Prometheus text.

#include <cstdio>

#include "collection/collection.h"
#include "rdbms/executor.h"
#include "sql/parser.h"
#include "telemetry/telemetry.h"

using namespace fsdm;

#define CHECK_OK(expr)                                                 \
  do {                                                                 \
    auto&& _r = (expr);                                                \
    if (!_r.ok()) {                                                    \
      fprintf(stderr, "FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                        \
    }                                                                  \
  } while (0)

int main() {
  rdbms::Database db;
  auto coll = collection::JsonCollection::Create(&db, "ORDERS").MoveValue();

  // A small corpus: every doc has status/total, ~1 in 4 carries "rush".
  for (int i = 0; i < 40; ++i) {
    std::string doc = "{\"status\":\"s" + std::to_string(i % 4) +
                      "\",\"total\":" + std::to_string(i * 25);
    if (i % 4 == 0) doc += ",\"rush\":true";
    doc += "}";
    CHECK_OK(coll->Insert(std::move(doc)));
  }

  // 1. Route a conjunctive query and execute it: the trace records the
  //    router's candidate ranking and one span per operator.
  auto routed = coll->Route(
      {collection::PathPredicate::Compare("$.status", rdbms::CompareOp::kEq,
                                          Value::String("s1")),
       collection::PathPredicate::Compare("$.total", rdbms::CompareOp::kLt,
                                          Value::Int64(500))});
  CHECK_OK(routed);
  auto rows = rdbms::Collect(routed.value().plan.get());
  CHECK_OK(rows);
  printf("query returned %zu rows\n\n%s\n", rows.value().size(),
         routed.value().trace.Render().c_str());

  // 2. The same DML/query activity fed the process-wide registry; read it
  //    back through the mini SQL engine's TELEMETRY$METRICS relation.
  sql::SqlSession session(&db);
  auto metrics = session.Query(
      "SELECT NAME, VALUE FROM TELEMETRY$METRICS WHERE KIND = 'counter' "
      "ORDER BY NAME");
  CHECK_OK(metrics);
  printf("SELECT NAME, VALUE FROM TELEMETRY$METRICS WHERE KIND = 'counter':\n");
  for (const std::string& row : metrics.value()) {
    printf("  %s\n", row.c_str());
  }

  // 3. Or scrape it: counters/gauges verbatim, histograms as summaries.
  std::string prom = telemetry::MetricsRegistry::Global().ToPrometheusText();
  printf("\nPrometheus exposition (first 400 bytes):\n%.400s...\n",
         prom.c_str());
  return 0;
}
