#ifndef FSDM_WORKLOADS_GENERATORS_H_
#define FSDM_WORKLOADS_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace fsdm::workloads {

/// Deterministic JSON document generators for the paper's evaluation
/// collections (§6.1, Tables 10-12). Customer data sets are proprietary;
/// these synthetic equivalents match the *structural profile* the tables
/// report — approximate document size, distinct path count, and DMDV
/// fan-out — which is what the size/shape experiments measure.
/// All emit compact (whitespace-free) JSON text.

/// purchaseOrder (§6.3): master scalars + line-item detail array. The field
/// vocabulary covers every column the Table 13 OLAP queries touch
/// (reference, requestor, costcenter, instructions; itemno, partno,
/// description, quantity, unitprice).
struct PurchaseOrderOptions {
  int min_items = 3;
  int max_items = 7;
  int num_costcenters = 20;
  int num_requestors = 1000;
  int num_parts = 2000;
};
std::string PurchaseOrder(Rng* rng, int64_t id,
                          const PurchaseOrderOptions& options = {});

/// Relational decomposition of a purchase order, for the REL storage method
/// of §6.3 (master row + one row per line item).
struct PurchaseOrderRelational {
  // master
  int64_t id;
  std::string reference;
  std::string requestor;
  std::string costcenter;
  std::string instructions;
  std::string podate;
  // details
  struct Item {
    int64_t itemno;
    std::string partno;
    std::string description;
    int64_t quantity;
    std::string unitprice;  // decimal text
  };
  std::vector<Item> items;
};
PurchaseOrderRelational PurchaseOrderRows(Rng* rng, int64_t id,
                                          const PurchaseOrderOptions& options = {});
/// Renders the relational form as the equivalent JSON document (the two
/// representations stay consistent for REL-vs-document comparisons).
std::string RenderPurchaseOrder(const PurchaseOrderRelational& po);

/// NOBENCH [6]: 11 common fields + ~1000 sparse fields (10 per document,
/// clustered), dynamic-typed dyn1, nested object and array. `unique_suffix`
/// appends a per-document field for the heterogeneous-insert experiment
/// (Fig. 8).
struct NobenchOptions {
  int sparse_fields_total = 1000;
  int sparse_fields_per_doc = 10;
  bool unique_field_per_doc = false;  // hetero mode: doc i adds "uniq_i"
};
std::string Nobench(Rng* rng, int64_t id, const NobenchOptions& options = {});

/// YCSB [31]: 10 fields of 100-byte random strings.
std::string Ycsb(Rng* rng, int64_t id);

/// The remaining Table 10/12 collections, keyed by name. Supported names:
/// workOrder, salesOrder, eventMessage, bookOrder, LoanNotes, TwitterMsg,
/// AcquisionDoc, TwitterMsgArchive, SensorData.
/// `scale` shrinks the large-document collections (1.0 = paper-like sizes;
/// TwitterMsgArchive ~5MB and SensorData ~40MB at scale 1).
std::string Collection(const std::string& name, Rng* rng, int64_t id,
                       double scale = 1.0);

/// All collection names of Table 10, in the paper's row order (including
/// purchaseOrder / NOBENCHDoc / YCSBDoc).
std::vector<std::string> Table10CollectionNames();

}  // namespace fsdm::workloads

#endif  // FSDM_WORKLOADS_GENERATORS_H_
