#include "workloads/generators.h"

#include <algorithm>

#include "json/serializer.h"

namespace fsdm::workloads {

namespace {

void Kv(std::string* out, const char* key, const std::string& value,
        bool quote = true) {
  json::AppendQuoted(out, key);
  out->push_back(':');
  if (quote) {
    json::AppendQuoted(out, value);
  } else {
    out->append(value);
  }
}

void KvNum(std::string* out, const char* key, int64_t v) {
  Kv(out, key, std::to_string(v), /*quote=*/false);
}

std::string Money(Rng* rng, int64_t lo, int64_t hi) {
  return std::to_string(rng->Range(lo, hi)) + "." +
         std::to_string(rng->Range(10, 99));
}

const char* kWords[] = {"alpha", "bravo",  "charlie", "delta", "echo",
                        "foxtrot", "golf", "hotel",   "india", "juliet",
                        "kilo",  "lima",   "mike",    "november", "oscar",
                        "papa",  "quebec", "romeo",   "sierra", "tango"};

std::string Sentence(Rng* rng, int words) {
  std::string s;
  for (int i = 0; i < words; ++i) {
    if (i) s.push_back(' ');
    s += kWords[rng->Uniform(20)];
  }
  return s;
}

std::string IsoDate(Rng* rng) {
  char buf[16];
  snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
           static_cast<int>(rng->Range(2013, 2016)),
           static_cast<int>(rng->Range(1, 12)),
           static_cast<int>(rng->Range(1, 28)));
  return buf;
}

}  // namespace

PurchaseOrderRelational PurchaseOrderRows(Rng* rng, int64_t id,
                                          const PurchaseOrderOptions& opt) {
  PurchaseOrderRelational po;
  po.id = id;
  int64_t requestor_id = rng->Range(0, opt.num_requestors - 1);
  po.requestor = "requestor-" + std::to_string(requestor_id);
  po.reference = po.requestor + "-" + std::to_string(id);
  po.costcenter =
      "CC" + std::to_string(rng->Range(1, opt.num_costcenters));
  po.instructions = Sentence(rng, 14);
  po.podate = IsoDate(rng);
  int n_items =
      static_cast<int>(rng->Range(opt.min_items, opt.max_items));
  for (int i = 0; i < n_items; ++i) {
    PurchaseOrderRelational::Item item;
    item.itemno = i + 1;
    item.partno =
        "9736" + std::to_string(1000000 + rng->Range(0, opt.num_parts - 1));
    item.description = Sentence(rng, 6);
    item.quantity = rng->Range(1, 20);
    item.unitprice = Money(rng, 5, 900);
    po.items.push_back(std::move(item));
  }
  return po;
}

std::string RenderPurchaseOrder(const PurchaseOrderRelational& po) {
  std::string out = "{\"purchaseOrder\":{";
  KvNum(&out, "id", po.id);
  out.push_back(',');
  Kv(&out, "reference", po.reference);
  out.push_back(',');
  Kv(&out, "requestor", po.requestor);
  out.push_back(',');
  Kv(&out, "costcenter", po.costcenter);
  out.push_back(',');
  Kv(&out, "podate", po.podate);
  out.push_back(',');
  Kv(&out, "instructions", po.instructions);
  out += ",\"items\":[";
  for (size_t i = 0; i < po.items.size(); ++i) {
    const auto& item = po.items[i];
    if (i) out.push_back(',');
    out.push_back('{');
    KvNum(&out, "itemno", item.itemno);
    out.push_back(',');
    Kv(&out, "partno", item.partno);
    out.push_back(',');
    Kv(&out, "description", item.description);
    out.push_back(',');
    KvNum(&out, "quantity", item.quantity);
    out.push_back(',');
    Kv(&out, "unitprice", item.unitprice, /*quote=*/false);
    out.push_back('}');
  }
  out += "]}}";
  return out;
}

std::string PurchaseOrder(Rng* rng, int64_t id,
                          const PurchaseOrderOptions& options) {
  return RenderPurchaseOrder(PurchaseOrderRows(rng, id, options));
}

std::string Nobench(Rng* rng, int64_t id, const NobenchOptions& opt) {
  std::string out = "{";
  Kv(&out, "str1", Sentence(rng, 1) + "-" + std::to_string(rng->Uniform(100)));
  out.push_back(',');
  Kv(&out, "str2", Sentence(rng, 2));
  out.push_back(',');
  KvNum(&out, "num", rng->Range(0, 1000000));
  out.push_back(',');
  Kv(&out, "bool", rng->NextBool() ? "true" : "false", /*quote=*/false);
  out.push_back(',');
  // dyn1/dyn2: dynamically typed (§NOBENCH) — number in half the docs,
  // string in the other half.
  if (rng->NextBool()) {
    KvNum(&out, "dyn1", rng->Range(0, 1000000));
  } else {
    Kv(&out, "dyn1", std::to_string(rng->Range(0, 1000000)));
  }
  out.push_back(',');
  if (rng->NextBool()) {
    KvNum(&out, "dyn2", rng->Range(0, 100));
  } else {
    Kv(&out, "dyn2", Sentence(rng, 1));
  }
  out.push_back(',');
  out += "\"nested_obj\":{";
  Kv(&out, "str", Sentence(rng, 1) + "-" + std::to_string(rng->Uniform(100)));
  out.push_back(',');
  KvNum(&out, "num", rng->Range(0, 1000000));
  out += "},\"nested_arr\":[";
  int n_arr = static_cast<int>(rng->Range(2, 6));
  for (int i = 0; i < n_arr; ++i) {
    if (i) out.push_back(',');
    json::AppendQuoted(&out, kWords[rng->Uniform(20)]);
  }
  out += "],";
  KvNum(&out, "thousandth", rng->Range(0, 999));
  // Sparse fields: a clustered window of the sparse id space.
  int group = static_cast<int>(
      rng->Uniform(opt.sparse_fields_total / opt.sparse_fields_per_doc));
  for (int i = 0; i < opt.sparse_fields_per_doc; ++i) {
    int sid = group * opt.sparse_fields_per_doc + i;
    out.push_back(',');
    std::string key = "sparse_" + std::to_string(sid);
    Kv(&out, key.c_str(), Sentence(rng, 1));
  }
  if (opt.unique_field_per_doc) {
    out.push_back(',');
    std::string key = "uniq_" + std::to_string(id);
    Kv(&out, key.c_str(), std::to_string(id), /*quote=*/false);
  }
  out += "}";
  return out;
}

std::string Ycsb(Rng* rng, int64_t id) {
  std::string out = "{";
  Kv(&out, "key", "user" + std::to_string(id));
  for (int f = 0; f < 10; ++f) {
    out.push_back(',');
    std::string key = "field" + std::to_string(f);
    Kv(&out, key.c_str(), rng->AlphaNum(100));
  }
  out += "}";
  return out;
}

namespace {

// Generic nested-collection builder: emits `fields` scalar fields at each
// of `levels` object levels plus a detail array of `fanout` small objects.
std::string GenericDoc(Rng* rng, int64_t id, int top_fields, int levels,
                       int level_fields, int fanout, int item_fields,
                       const char* flavor) {
  std::string out = "{";
  Kv(&out, "docType", flavor);
  out.push_back(',');
  KvNum(&out, "id", id);
  for (int f = 0; f < top_fields; ++f) {
    out.push_back(',');
    std::string key = std::string(flavor) + "_f" + std::to_string(f);
    if (f % 3 == 0) {
      KvNum(&out, key.c_str(), rng->Range(0, 100000));
    } else {
      Kv(&out, key.c_str(), Sentence(rng, 2));
    }
  }
  // Nested single-child levels (grow deeper).
  for (int l = 0; l < levels; ++l) {
    out += ",\"level" + std::to_string(l) + "\":{";
    for (int f = 0; f < level_fields; ++f) {
      if (f) out.push_back(',');
      std::string key = "l" + std::to_string(l) + "_f" + std::to_string(f);
      if (f % 2 == 0) {
        KvNum(&out, key.c_str(), rng->Range(0, 9999));
      } else {
        Kv(&out, key.c_str(), kWords[rng->Uniform(20)]);
      }
    }
  }
  for (int l = 0; l < levels; ++l) out += "}";
  // Detail array (drives the DMDV fan-out of Table 12).
  out += ",\"entries\":[";
  for (int i = 0; i < fanout; ++i) {
    if (i) out.push_back(',');
    out.push_back('{');
    for (int f = 0; f < item_fields; ++f) {
      if (f) out.push_back(',');
      std::string key = "e" + std::to_string(f);
      if (f % 2 == 0) {
        KvNum(&out, key.c_str(), rng->Range(0, 99999));
      } else {
        Kv(&out, key.c_str(), kWords[rng->Uniform(20)]);
      }
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

// Twitter-style message: many optional fields -> large distinct path count.
std::string TwitterMsg(Rng* rng, int64_t id) {
  std::string out = "{";
  KvNum(&out, "tweet_id", 500000000000ll + id);
  out.push_back(',');
  Kv(&out, "created_at", IsoDate(rng));
  out.push_back(',');
  Kv(&out, "text", Sentence(rng, static_cast<int>(rng->Range(6, 20))));
  out += ",\"user\":{";
  KvNum(&out, "uid", rng->Range(1, 10000000));
  out.push_back(',');
  Kv(&out, "screen_name", kWords[rng->Uniform(20)] +
                              std::to_string(rng->Uniform(10000)));
  out.push_back(',');
  KvNum(&out, "followers", rng->Range(0, 100000));
  out.push_back(',');
  Kv(&out, "lang", rng->NextBool() ? "en" : "de");
  // Optional profile block in half the docs.
  if (rng->NextBool()) {
    out += ",\"profile\":{";
    Kv(&out, "bio", Sentence(rng, 8));
    out.push_back(',');
    Kv(&out, "location", kWords[rng->Uniform(20)]);
    out += "}";
  }
  out += "}";
  // Optional entity blocks: each subset occurrence contributes paths.
  if (rng->NextBool()) {
    out += ",\"entities\":{\"hashtags\":[";
    int n = static_cast<int>(rng->Range(1, 4));
    for (int i = 0; i < n; ++i) {
      if (i) out.push_back(',');
      out += "{\"tag\":";
      json::AppendQuoted(&out, kWords[rng->Uniform(20)]);
      out += ",\"pos\":" + std::to_string(rng->Uniform(140)) + "}";
    }
    out += "]";
    if (rng->NextBool()) {
      out += ",\"urls\":[{\"url\":\"https://t.co/";
      out += rng->AlphaNum(8);
      out += "\",\"expanded\":\"https://example.com/";
      out += rng->AlphaNum(12);
      out += "\"}]";
    }
    out += "}";
  }
  if (rng->NextBool(0.3)) {
    out += ",\"retweeted_status\":{\"tweet_id\":" +
           std::to_string(400000000000ll + rng->Uniform(1000000)) +
           ",\"text\":";
    json::AppendQuoted(&out, Sentence(rng, 10));
    out += "}";
  }
  // A band of rarely-present fields to push the distinct path count up.
  for (int i = 0; i < 40; ++i) {
    if (rng->NextBool(0.08)) {
      out += ",\"opt_" + std::to_string(i) + "\":";
      if (i % 2) {
        json::AppendQuoted(&out, kWords[rng->Uniform(20)]);
      } else {
        out += std::to_string(rng->Uniform(1000));
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace

std::string Collection(const std::string& name, Rng* rng, int64_t id,
                       double scale) {
  if (name == "workOrder") {
    return GenericDoc(rng, id, 6, 2, 4, 4, 5, "wo");
  }
  if (name == "salesOrder") {
    return GenericDoc(rng, id, 5, 1, 4, 2, 5, "so");
  }
  if (name == "eventMessage") {
    return GenericDoc(rng, id, 14, 4, 8, 9, 6, "ev");
  }
  if (name == "purchaseOrder") {
    return PurchaseOrder(rng, id);
  }
  if (name == "bookOrder") {
    return GenericDoc(rng, id, 16, 4, 10, 11, 6, "bk");
  }
  if (name == "LoanNotes") {
    // Very wide: many distinct (mostly short) fields.
    return GenericDoc(rng, id, 60, 6, 12, 2, 8, "ln");
  }
  if (name == "TwitterMsg") {
    return TwitterMsg(rng, id);
  }
  if (name == "AcquisionDoc") {
    return GenericDoc(rng, id, 10, 3, 8, 28, 6, "aq");
  }
  if (name == "NOBENCHDoc") {
    return Nobench(rng, id);
  }
  if (name == "YCSBDoc") {
    return Ycsb(rng, id);
  }
  if (name == "TwitterMsgArchive") {
    // A message archive: one document holding thousands of tweets
    // (medium ~5MB at scale 1).
    int n = std::max(2, static_cast<int>(5405 * scale));
    std::string out = "{\"archive\":\"twitter\",\"messages\":[";
    for (int i = 0; i < n; ++i) {
      if (i) out.push_back(',');
      out += TwitterMsg(rng, id * 100000 + i);
    }
    out += "]}";
    return out;
  }
  if (name == "SensorData") {
    // Large repetitive readings document (~40MB at scale 1).
    int n = std::max(2, static_cast<int>(32100 * scale));
    std::string out =
        "{\"sensor\":{\"station\":\"st-" + std::to_string(id) +
        "\",\"readings\":[";
    for (int i = 0; i < n; ++i) {
      if (i) out.push_back(',');
      out += "{\"ts\":" + std::to_string(1400000000 + i * 60) +
             ",\"temp\":" + Money(rng, -20, 45) +
             ",\"hum\":" + std::to_string(rng->Range(0, 100)) +
             ",\"pressure\":" + Money(rng, 950, 1050) + ",\"flags\":[" +
             std::to_string(rng->Uniform(4)) + "," +
             std::to_string(rng->Uniform(4)) + "]}";
    }
    out += "]}}";
    return out;
  }
  return "{}";
}

std::vector<std::string> Table10CollectionNames() {
  return {"workOrder",    "salesOrder", "eventMessage", "purchaseOrder",
          "bookOrder",    "LoanNotes",  "TwitterMsg",   "AcquisionDoc",
          "NOBENCHDoc",   "YCSBDoc",    "TwitterMsgArchive", "SensorData"};
}

}  // namespace fsdm::workloads
