#ifndef FSDM_BSON_BSON_H_
#define FSDM_BSON_BSON_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "json/dom.h"
#include "json/node.h"

namespace fsdm::bson {

/// BSON (bsonspec.org) encoder/decoder — the baseline binary format the
/// paper compares OSON against (§2, §6). Supported element types:
///   0x01 double, 0x02 string, 0x03 document, 0x04 array, 0x08 bool,
///   0x09 UTC datetime, 0x0A null, 0x10 int32, 0x12 int64.
/// JSON numbers encode as int32/int64 when integral, double otherwise
/// (decimal values beyond double precision lose digits — BSON without
/// decimal128 cannot represent them, which is part of the gap the paper
/// identifies).
///
/// The root must be a JSON object (BSON documents are maps).
Result<std::string> Encode(const json::JsonNode& doc);

/// Parses JSON text and encodes it in one step.
Result<std::string> EncodeFromText(std::string_view json_text);

/// Full decode back to a node tree.
Result<std::unique_ptr<json::JsonNode>> Decode(std::string_view bytes);

/// Dom implementation over serialized BSON bytes. Navigation is the
/// serial/skip scan the paper describes: finding a field walks the element
/// list comparing NUL-terminated names, skipping child containers via their
/// leading length words; array access by index skips i elements. No random
/// field access — that is OSON's advantage.
class BsonDom final : public json::Dom {
 public:
  /// Validates the outer document framing. `bytes` must outlive the Dom.
  static Result<BsonDom> Open(std::string_view bytes);

  NodeRef root() const override;
  json::NodeKind GetNodeType(NodeRef node) const override;
  size_t GetFieldCount(NodeRef object) const override;
  void GetFieldAt(NodeRef object, size_t i, std::string_view* name,
                  NodeRef* child) const override;
  NodeRef GetFieldValue(NodeRef object, std::string_view name) const override;
  size_t GetArrayLength(NodeRef array) const override;
  NodeRef GetArrayElement(NodeRef array, size_t index) const override;
  ScalarType GetScalarType(NodeRef scalar) const override;
  Status GetScalarValue(NodeRef scalar, Value* out) const override;

 private:
  explicit BsonDom(std::string_view bytes) : data_(bytes) {}

  // NodeRef packs (value offset << 8) | bson type byte.
  static NodeRef MakeRef(size_t offset, uint8_t type) {
    return (static_cast<NodeRef>(offset) << 8) | type;
  }
  static size_t RefOffset(NodeRef ref) { return ref >> 8; }
  static uint8_t RefType(NodeRef ref) { return ref & 0xff; }

  // Iterates elements of the container at `doc_offset`; returns false when
  // exhausted or malformed.
  bool NextElement(size_t* cursor, std::string_view* name, uint8_t* type,
                   size_t* value_offset) const;
  // Size in bytes of a value of `type` at `offset`; SIZE_MAX on corruption.
  size_t ValueSize(uint8_t type, size_t offset) const;

  std::string_view data_;
};

}  // namespace fsdm::bson

#endif  // FSDM_BSON_BSON_H_
