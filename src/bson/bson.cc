#include "bson/bson.h"

#include <cstring>

#include "common/varint.h"
#include "json/parser.h"

namespace fsdm::bson {

namespace {

// BSON element type bytes.
constexpr uint8_t kTypeDouble = 0x01;
constexpr uint8_t kTypeString = 0x02;
constexpr uint8_t kTypeDocument = 0x03;
constexpr uint8_t kTypeArray = 0x04;
constexpr uint8_t kTypeBool = 0x08;
constexpr uint8_t kTypeDatetime = 0x09;
constexpr uint8_t kTypeNull = 0x0A;
constexpr uint8_t kTypeInt32 = 0x10;
constexpr uint8_t kTypeInt64 = 0x12;

void PutInt32At(std::string* out, size_t pos, int32_t v) {
  EncodeFixed32(reinterpret_cast<uint8_t*>(out->data() + pos),
                static_cast<uint32_t>(v));
}

void PutInt64(std::string* out, int64_t v) {
  PutFixed32(out, static_cast<uint32_t>(static_cast<uint64_t>(v)));
  PutFixed32(out, static_cast<uint32_t>(static_cast<uint64_t>(v) >> 32));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutInt64(out, static_cast<int64_t>(bits));
}

Status EncodeValue(const json::JsonNode& node, std::string* out,
                   uint8_t* type_out);

Status EncodeDocument(const json::JsonNode& node, bool as_array,
                      std::string* out) {
  size_t len_pos = out->size();
  PutFixed32(out, 0);  // patched below
  size_t count = as_array ? node.array_size() : node.field_count();
  for (size_t i = 0; i < count; ++i) {
    std::string name;
    const json::JsonNode* child;
    if (as_array) {
      name = std::to_string(i);
      child = node.element(i);
    } else {
      name = node.field_name(i);
      child = node.field_value(i);
    }
    if (name.find('\0') != std::string::npos) {
      return Status::InvalidArgument(
          "BSON cannot encode a field name containing NUL");
    }
    size_t type_pos = out->size();
    out->push_back(0);  // type patched below
    out->append(name);
    out->push_back('\0');
    uint8_t type = 0;
    FSDM_RETURN_NOT_OK(EncodeValue(*child, out, &type));
    (*out)[type_pos] = static_cast<char>(type);
  }
  out->push_back('\0');
  PutInt32At(out, len_pos, static_cast<int32_t>(out->size() - len_pos));
  return Status::Ok();
}

Status EncodeValue(const json::JsonNode& node, std::string* out,
                   uint8_t* type_out) {
  switch (node.kind()) {
    case json::NodeKind::kObject:
      *type_out = kTypeDocument;
      return EncodeDocument(node, /*as_array=*/false, out);
    case json::NodeKind::kArray:
      *type_out = kTypeArray;
      return EncodeDocument(node, /*as_array=*/true, out);
    case json::NodeKind::kScalar:
      break;
  }
  const Value& v = node.scalar();
  switch (v.type()) {
    case ScalarType::kNull:
      *type_out = kTypeNull;
      return Status::Ok();
    case ScalarType::kBool:
      *type_out = kTypeBool;
      out->push_back(v.AsBool() ? 1 : 0);
      return Status::Ok();
    case ScalarType::kInt64: {
      int64_t i = v.AsInt64();
      if (i >= INT32_MIN && i <= INT32_MAX) {
        *type_out = kTypeInt32;
        PutFixed32(out, static_cast<uint32_t>(static_cast<int32_t>(i)));
      } else {
        *type_out = kTypeInt64;
        PutInt64(out, i);
      }
      return Status::Ok();
    }
    case ScalarType::kDouble:
      *type_out = kTypeDouble;
      PutDouble(out, v.AsDouble());
      return Status::Ok();
    case ScalarType::kDecimal:
      // BSON (without decimal128) approximates decimals as doubles.
      *type_out = kTypeDouble;
      PutDouble(out, v.AsDecimal().ToDouble());
      return Status::Ok();
    case ScalarType::kString: {
      *type_out = kTypeString;
      PutFixed32(out, static_cast<uint32_t>(v.AsString().size() + 1));
      out->append(v.AsString());
      out->push_back('\0');
      return Status::Ok();
    }
    case ScalarType::kTimestamp:
      *type_out = kTypeDatetime;
      PutInt64(out, v.AsTimestamp() / 1000);  // BSON datetime is millis
      return Status::Ok();
    case ScalarType::kDate:
      *type_out = kTypeDatetime;
      PutInt64(out, static_cast<int64_t>(v.AsDate()) * 86400000);
      return Status::Ok();
    case ScalarType::kBinary:
      return Status::Unsupported("BSON binary subtype encoding not supported");
  }
  return Status::Internal("unhandled scalar type");
}

}  // namespace

Result<std::string> Encode(const json::JsonNode& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("BSON root must be a JSON object");
  }
  std::string out;
  FSDM_RETURN_NOT_OK(EncodeDocument(doc, /*as_array=*/false, &out));
  return out;
}

Result<std::string> EncodeFromText(std::string_view json_text) {
  FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> doc,
                        json::Parse(json_text));
  return Encode(*doc);
}

// ---------------------------------------------------------------------------
// BsonDom
// ---------------------------------------------------------------------------

Result<BsonDom> BsonDom::Open(std::string_view bytes) {
  if (bytes.size() < 5) return Status::Corruption("BSON image too small");
  uint32_t len =
      DecodeFixed32(reinterpret_cast<const uint8_t*>(bytes.data()));
  if (len != bytes.size()) {
    return Status::Corruption("BSON length header mismatch");
  }
  if (bytes.back() != '\0') {
    return Status::Corruption("BSON document missing terminator");
  }
  return BsonDom(bytes);
}

json::Dom::NodeRef BsonDom::root() const { return MakeRef(0, kTypeDocument); }

json::NodeKind BsonDom::GetNodeType(NodeRef node) const {
  switch (RefType(node)) {
    case kTypeDocument:
      return json::NodeKind::kObject;
    case kTypeArray:
      return json::NodeKind::kArray;
    default:
      return json::NodeKind::kScalar;
  }
}

bool BsonDom::NextElement(size_t* cursor, std::string_view* name,
                          uint8_t* type, size_t* value_offset) const {
  if (*cursor >= data_.size()) return false;
  uint8_t t = static_cast<uint8_t>(data_[*cursor]);
  if (t == 0) return false;  // document terminator
  size_t name_start = *cursor + 1;
  size_t nul = data_.find('\0', name_start);
  if (nul == std::string_view::npos) return false;
  *name = data_.substr(name_start, nul - name_start);
  *type = t;
  *value_offset = nul + 1;
  size_t vsize = ValueSize(t, *value_offset);
  if (vsize == SIZE_MAX) return false;
  *cursor = *value_offset + vsize;
  return true;
}

size_t BsonDom::ValueSize(uint8_t type, size_t offset) const {
  switch (type) {
    case kTypeDouble:
    case kTypeDatetime:
    case kTypeInt64:
      return 8;
    case kTypeBool:
      return 1;
    case kTypeNull:
      return 0;
    case kTypeInt32:
      return 4;
    case kTypeString: {
      if (offset + 4 > data_.size()) return SIZE_MAX;
      uint32_t len = DecodeFixed32(
          reinterpret_cast<const uint8_t*>(data_.data() + offset));
      return 4 + len;
    }
    case kTypeDocument:
    case kTypeArray: {
      if (offset + 4 > data_.size()) return SIZE_MAX;
      return DecodeFixed32(
          reinterpret_cast<const uint8_t*>(data_.data() + offset));
    }
    default:
      return SIZE_MAX;
  }
}

size_t BsonDom::GetFieldCount(NodeRef object) const {
  size_t cursor = RefOffset(object) + 4;
  std::string_view name;
  uint8_t type;
  size_t voff;
  size_t count = 0;
  while (NextElement(&cursor, &name, &type, &voff)) ++count;
  return count;
}

void BsonDom::GetFieldAt(NodeRef object, size_t i, std::string_view* name,
                         NodeRef* child) const {
  size_t cursor = RefOffset(object) + 4;
  uint8_t type;
  size_t voff;
  size_t index = 0;
  while (NextElement(&cursor, name, &type, &voff)) {
    if (index == i) {
      *child = MakeRef(voff, type);
      return;
    }
    ++index;
  }
  *child = kInvalidNode;
}

json::Dom::NodeRef BsonDom::GetFieldValue(NodeRef object,
                                    std::string_view target) const {
  size_t cursor = RefOffset(object) + 4;
  std::string_view name;
  uint8_t type;
  size_t voff;
  while (NextElement(&cursor, &name, &type, &voff)) {
    if (name == target) return MakeRef(voff, type);
  }
  return kInvalidNode;
}

size_t BsonDom::GetArrayLength(NodeRef array) const {
  return GetFieldCount(array);
}

json::Dom::NodeRef BsonDom::GetArrayElement(NodeRef array, size_t index) const {
  size_t cursor = RefOffset(array) + 4;
  std::string_view name;
  uint8_t type;
  size_t voff;
  size_t i = 0;
  while (NextElement(&cursor, &name, &type, &voff)) {
    if (i == index) return MakeRef(voff, type);
    ++i;
  }
  return kInvalidNode;
}

ScalarType BsonDom::GetScalarType(NodeRef scalar) const {
  switch (RefType(scalar)) {
    case kTypeDouble:
      return ScalarType::kDouble;
    case kTypeString:
      return ScalarType::kString;
    case kTypeBool:
      return ScalarType::kBool;
    case kTypeDatetime:
      return ScalarType::kTimestamp;
    case kTypeInt32:
    case kTypeInt64:
      return ScalarType::kInt64;
    default:
      return ScalarType::kNull;
  }
}

Status BsonDom::GetScalarValue(NodeRef scalar, Value* out) const {
  size_t off = RefOffset(scalar);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data_.data()) + off;
  switch (RefType(scalar)) {
    case kTypeDouble: {
      if (off + 8 > data_.size()) return Status::Corruption("truncated double");
      uint64_t bits = static_cast<uint64_t>(DecodeFixed32(p)) |
                      (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return Status::Ok();
    }
    case kTypeString: {
      if (off + 4 > data_.size()) return Status::Corruption("truncated string");
      uint32_t len = DecodeFixed32(p);
      if (len == 0 || off + 4 + len > data_.size()) {
        return Status::Corruption("bad string length");
      }
      *out = Value::String(std::string(data_.substr(off + 4, len - 1)));
      return Status::Ok();
    }
    case kTypeBool:
      if (off + 1 > data_.size()) return Status::Corruption("truncated bool");
      *out = Value::Bool(data_[off] != 0);
      return Status::Ok();
    case kTypeDatetime: {
      if (off + 8 > data_.size()) return Status::Corruption("truncated date");
      uint64_t bits = static_cast<uint64_t>(DecodeFixed32(p)) |
                      (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
      *out = Value::Timestamp(static_cast<int64_t>(bits) * 1000);
      return Status::Ok();
    }
    case kTypeNull:
      *out = Value::Null();
      return Status::Ok();
    case kTypeInt32: {
      if (off + 4 > data_.size()) return Status::Corruption("truncated int32");
      *out = Value::Int64(static_cast<int32_t>(DecodeFixed32(p)));
      return Status::Ok();
    }
    case kTypeInt64: {
      if (off + 8 > data_.size()) return Status::Corruption("truncated int64");
      uint64_t bits = static_cast<uint64_t>(DecodeFixed32(p)) |
                      (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
      *out = Value::Int64(static_cast<int64_t>(bits));
      return Status::Ok();
    }
    default:
      return Status::Corruption("not a scalar node");
  }
}

namespace {

Result<std::unique_ptr<json::JsonNode>> DecodeNode(const BsonDom& dom,
                                                   json::Dom::NodeRef ref) {
  switch (dom.GetNodeType(ref)) {
    case json::NodeKind::kObject: {
      auto obj = json::JsonNode::MakeObject();
      size_t n = dom.GetFieldCount(ref);
      for (size_t i = 0; i < n; ++i) {
        std::string_view name;
        json::Dom::NodeRef child;
        dom.GetFieldAt(ref, i, &name, &child);
        if (child == json::Dom::kInvalidNode) {
          return Status::Corruption("BSON element walk failed");
        }
        FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> sub,
                              DecodeNode(dom, child));
        obj->AddField(std::string(name), std::move(sub));
      }
      return obj;
    }
    case json::NodeKind::kArray: {
      auto arr = json::JsonNode::MakeArray();
      size_t n = dom.GetArrayLength(ref);
      for (size_t i = 0; i < n; ++i) {
        json::Dom::NodeRef child = dom.GetArrayElement(ref, i);
        if (child == json::Dom::kInvalidNode) {
          return Status::Corruption("BSON array walk failed");
        }
        FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> sub,
                              DecodeNode(dom, child));
        arr->Append(std::move(sub));
      }
      return arr;
    }
    case json::NodeKind::kScalar: {
      Value v;
      FSDM_RETURN_NOT_OK(dom.GetScalarValue(ref, &v));
      return json::JsonNode::MakeScalar(std::move(v));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<std::unique_ptr<json::JsonNode>> Decode(std::string_view bytes) {
  FSDM_ASSIGN_OR_RETURN(BsonDom dom, BsonDom::Open(bytes));
  return DecodeNode(dom, dom.root());
}

}  // namespace fsdm::bson
