#include "index/search_index.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

#include "fault/fault.h"
#include "json/parser.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/log.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/telemetry.h"

namespace fsdm::index {

namespace {

/// Accounting constant for one posting-map entry: red-black node overhead
/// plus the inline vector header. An approximation, but the same one on
/// the incremental and recompute sides, so reconciliation is exact.
constexpr uint64_t kPostingEntryBytes =
    4 * sizeof(void*) + sizeof(std::vector<size_t>);

uint64_t PostingKeyBytes(const std::string& key) {
  return telemetry::OwnedStringBytes(key);
}

uint64_t PostingKeyBytes(const std::pair<std::string, std::string>& key) {
  return telemetry::OwnedStringBytes(key.first) +
         telemetry::OwnedStringBytes(key.second);
}

/// Looks up (creating if absent) the posting list for `key`, charging new
/// entries to the incremental byte counter. Both the insert and the erase
/// paths create entries — operator[] semantics predate the accounting.
template <typename Map, typename Key>
std::vector<size_t>* PostingSlot(Map* map, const Key& key,
                                 std::atomic<uint64_t>* bytes) {
  auto [it, inserted] = map->try_emplace(key);
  if (inserted) {
    bytes->fetch_add(kPostingEntryBytes + PostingKeyBytes(it->first),
                     std::memory_order_relaxed);
  }
  return &it->second;
}

void InsertPosting(std::vector<size_t>* postings, size_t row_id,
                   std::atomic<uint64_t>* bytes) {
  auto it = std::lower_bound(postings->begin(), postings->end(), row_id);
  if (it == postings->end() || *it != row_id) {
    postings->insert(it, row_id);
    bytes->fetch_add(sizeof(size_t), std::memory_order_relaxed);
    FSDM_COUNT("fsdm_index_postings_appended_total", 1);
  }
}

void ErasePosting(std::vector<size_t>* postings, size_t row_id,
                  std::atomic<uint64_t>* bytes) {
  auto it = std::lower_bound(postings->begin(), postings->end(), row_id);
  if (it != postings->end() && *it == row_id) {
    postings->erase(it);
    bytes->fetch_sub(sizeof(size_t), std::memory_order_relaxed);
    FSDM_COUNT("fsdm_index_postings_erased_total", 1);
  }
}

}  // namespace

std::vector<std::string> TokenizeKeywords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (unsigned char c : text) {
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

Result<std::unique_ptr<JsonSearchIndex>> JsonSearchIndex::Create(
    rdbms::Table* table, const std::string& json_column,
    const Options& options) {
  // Resolve the column's position within the *physical* row layout, since
  // observers receive physical rows.
  size_t pos = rdbms::Schema::npos;
  const std::vector<size_t>& physical = table->physical_columns();
  for (size_t i = 0; i < physical.size(); ++i) {
    if (table->columns()[physical[i]].name == json_column) {
      pos = i;
      break;
    }
  }
  if (pos == rdbms::Schema::npos) {
    return Status::NotFound("physical column '" + json_column + "' on " +
                            table->name());
  }
  if (table->columns()[table->physical_columns()[pos]].type !=
      rdbms::ColumnType::kJson) {
    return Status::InvalidArgument("JSON search index requires a JSON column");
  }

  std::unique_ptr<JsonSearchIndex> idx(
      new JsonSearchIndex(table, pos, options));
  idx->dg_table_ = std::make_unique<rdbms::Table>(
      table->name() + "$DG",
      std::vector<rdbms::ColumnDef>{
          {.name = "PATH", .type = rdbms::ColumnType::kString},
          {.name = "TYPE", .type = rdbms::ColumnType::kString}});
  // Back-fill existing rows.
  for (size_t r = 0; r < table->row_count(); ++r) {
    if (!table->IsLive(r)) continue;
    FSDM_RETURN_NOT_OK(idx->IndexDocument(r, table->StoredRow(r)[pos]));
  }
  table->AddObserver(idx.get());
  return idx;
}

JsonSearchIndex::~JsonSearchIndex() { Detach(); }

void JsonSearchIndex::Detach() {
  if (!detached_ && table_ != nullptr) {
    table_->RemoveObserver(this);
    detached_ = true;
  }
}

Status JsonSearchIndex::OnInsert(size_t row_id, const rdbms::Row& row) {
  if (degraded_) return Status::Ok();  // maintenance suspended until Rebuild
  return IndexDocument(row_id, row[json_col_pos_]);
}

Status JsonSearchIndex::OnDelete(size_t row_id, const rdbms::Row& row) {
  if (degraded_) return Status::Ok();
  return UnindexDocument(row_id, row[json_col_pos_]);
}

Status JsonSearchIndex::OnReplace(size_t row_id, const rdbms::Row& old_row,
                                  const rdbms::Row& new_row) {
  if (degraded_) return Status::Ok();
  // One replace is one maintenance event: one replaced-docs count and one
  // combined latency observation, never a delete plus an insert.
  FSDM_COUNT("fsdm_index_docs_replaced_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_index_maintain_us");
  FSDM_TRACE_SPAN(span, "index", "index.replace");
  return ReplaceDocumentImpl(row_id, old_row[json_col_pos_],
                             new_row[json_col_pos_]);
}

namespace {

/// Shared walk for index/unindex: visits every node with its path.
template <typename Visit>
Status WalkPaths(const json::Dom& dom, json::Dom::NodeRef node,
                 std::string* path, const Visit& visit) {
  FSDM_RETURN_NOT_OK(visit(*path, node));
  switch (dom.GetNodeType(node)) {
    case json::NodeKind::kObject: {
      size_t n = dom.GetFieldCount(node);
      for (size_t i = 0; i < n; ++i) {
        std::string_view name;
        json::Dom::NodeRef child;
        dom.GetFieldAt(node, i, &name, &child);
        size_t mark = path->size();
        path->push_back('.');
        path->append(name);
        FSDM_RETURN_NOT_OK(WalkPaths(dom, child, path, visit));
        path->resize(mark);
      }
      return Status::Ok();
    }
    case json::NodeKind::kArray: {
      size_t n = dom.GetArrayLength(node);
      for (size_t i = 0; i < n; ++i) {
        // Elements share the array's path (the index is positional-blind,
        // like the paper's path postings).
        FSDM_RETURN_NOT_OK(
            WalkPaths(dom, dom.GetArrayElement(node, i), path, visit));
      }
      return Status::Ok();
    }
    case json::NodeKind::kScalar:
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<JsonSearchIndex::ParsedDoc> JsonSearchIndex::ParseDoc(
    const Value& doc, bool use_dml_parse) const {
  ParsedDoc parsed;
  if (use_dml_parse) {
    // Reuse the DOM the IS JSON constraint parsed on this DML when
    // available (§3.2.1); otherwise (back-fill path) parse here.
    parsed.tree = table_->ParsedJsonForObserver(json_col_pos_);
    if (parsed.tree != nullptr) return parsed;
  }
  FSDM_ASSIGN_OR_RETURN(parsed.owned, json::Parse(doc.AsString()));
  parsed.tree = parsed.owned.get();
  return parsed;
}

Result<JsonSearchIndex::DocPostings> JsonSearchIndex::StagePostings(
    const json::Dom& dom) const {
  DocPostings staged;
  std::string path = "$";
  Status st = WalkPaths(
      dom, dom.root(), &path,
      [&](const std::string& p, json::Dom::NodeRef node) -> Status {
        staged.paths.push_back(p);
        if (dom.GetNodeType(node) == json::NodeKind::kScalar) {
          Value v;
          FSDM_RETURN_NOT_OK(dom.GetScalarValue(node, &v));
          if (!v.is_null()) {
            staged.values.emplace_back(p, v.ToDisplayString());
            if (v.type() == ScalarType::kString) {
              for (const std::string& tok : TokenizeKeywords(v.AsString())) {
                staged.keywords.emplace_back(p, tok);
              }
            }
          }
        }
        return Status::Ok();
      });
  FSDM_RETURN_NOT_OK(st);
  return staged;
}

void JsonSearchIndex::ApplyPostings(const DocPostings& staged, size_t row_id) {
  for (const std::string& p : staged.paths) {
    InsertPosting(PostingSlot(&path_postings_, p, &postings_bytes_), row_id,
                  &postings_bytes_);
  }
  for (const auto& [p, display] : staged.values) {
    InsertPosting(PostingSlot(&value_postings_, std::make_pair(p, display),
                              &postings_bytes_),
                  row_id, &postings_bytes_);
  }
  for (const auto& [p, tok] : staged.keywords) {
    InsertPosting(PostingSlot(&keyword_postings_, std::make_pair(p, tok),
                              &postings_bytes_),
                  row_id, &postings_bytes_);
  }
}

void JsonSearchIndex::ErasePostings(const DocPostings& staged, size_t row_id) {
  for (const std::string& p : staged.paths) {
    ErasePosting(PostingSlot(&path_postings_, p, &postings_bytes_), row_id,
                 &postings_bytes_);
  }
  for (const auto& [p, display] : staged.values) {
    ErasePosting(PostingSlot(&value_postings_, std::make_pair(p, display),
                             &postings_bytes_),
                 row_id, &postings_bytes_);
  }
  for (const auto& [p, tok] : staged.keywords) {
    ErasePosting(PostingSlot(&keyword_postings_, std::make_pair(p, tok),
                             &postings_bytes_),
                 row_id, &postings_bytes_);
  }
}

Status JsonSearchIndex::MaintainDataGuide(const json::Dom& dom) {
  if (!options_.maintain_dataguide) return Status::Ok();
  // Fires *before* AddDocument so the in-memory guide and the $DG side
  // table always move together (their counts are a consistency invariant).
  FSDM_FAULT_POINT("index.insert.dataguide");
  std::vector<const dataguide::PathEntry*> new_entries;
  FSDM_ASSIGN_OR_RETURN(
      int new_paths,
      dataguide_.AddDocument(dom, &new_entries, options_.scalar_sink));
  // Persisting to $DG only happens when structure actually changed —
  // the common case terminates after the in-memory structural check.
  if (new_paths > 0) {
    ++dg_writes_;
    FSDM_COUNT("fsdm_index_dataguide_writes_total", 1);
    FSDM_TRACE_SPAN(span, "index", "dg.persist");
    span.AddNumberArg("new_paths", static_cast<double>(new_paths));
    for (const dataguide::PathEntry* e : new_entries) {
      Status persisted =
          dg_table_
              ->Insert(
                  {Value::String(e->path), Value::String(e->TypeString())})
              .status();
      if (!persisted.ok()) {
        // AddDocument already taught the in-memory guide these paths, so a
        // retry sees new_paths == 0 and never re-attempts this write: the
        // $DG side table is permanently behind unless Rebuild() re-derives
        // it from the guide. Degrade so that healing path runs.
        MarkDegraded("$DG persist failed: " + persisted.message());
        return persisted;
      }
    }
  }
  return Status::Ok();
}

Status JsonSearchIndex::IndexDocument(size_t row_id, const Value& doc) {
  FSDM_COUNT("fsdm_index_docs_indexed_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_index_maintain_us");
  FSDM_TRACE_SPAN(span, "index", "index.insert");
  return IndexDocumentImpl(row_id, doc);
}

Status JsonSearchIndex::UnindexDocument(size_t row_id, const Value& doc) {
  FSDM_COUNT("fsdm_index_docs_unindexed_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_index_maintain_us");
  FSDM_TRACE_SPAN(span, "index", "index.remove");
  return UnindexDocumentImpl(row_id, doc);
}

Status JsonSearchIndex::IndexDocumentImpl(size_t row_id, const Value& doc) {
  if (doc.is_null()) return Status::Ok();
  FSDM_ASSIGN_OR_RETURN(ParsedDoc parsed, ParseDoc(doc, true));
  json::TreeDom dom(parsed.tree);

  DocPostings staged;
  if (options_.maintain_postings) {
    FSDM_FAULT_POINT("index.insert.postings");
    FSDM_ASSIGN_OR_RETURN(staged, StagePostings(dom));
    ApplyPostings(staged, row_id);
  }
  Status dg = MaintainDataGuide(dom);
  if (!dg.ok()) {
    // The postings already landed; take them back out so the failed insert
    // leaves no trace. If even that compensation fails the postings are
    // untrustworthy and the index degrades.
    if (options_.maintain_postings) {
      Status undone = FSDM_FAULT_STATUS("index.undo.postings");
      if (undone.ok()) {
        ErasePostings(staged, row_id);
      } else {
        MarkDegraded("insert rollback failed on row " +
                     std::to_string(row_id) + ": " + undone.message());
      }
    }
    return dg;
  }
  ++indexed_docs_;
  return Status::Ok();
}

Status JsonSearchIndex::UnindexDocumentImpl(size_t row_id, const Value& doc) {
  if (doc.is_null()) return Status::Ok();
  if (options_.maintain_postings) {
    FSDM_FAULT_POINT("index.remove.postings");
    FSDM_ASSIGN_OR_RETURN(ParsedDoc parsed, ParseDoc(doc, false));
    json::TreeDom dom(parsed.tree);
    FSDM_ASSIGN_OR_RETURN(DocPostings staged, StagePostings(dom));
    ErasePostings(staged, row_id);
  }
  // The DataGuide is additive: no path removal on delete (§3.4).
  if (indexed_docs_ > 0) --indexed_docs_;
  return Status::Ok();
}

Status JsonSearchIndex::ReplaceDocumentImpl(size_t row_id,
                                            const Value& old_doc,
                                            const Value& new_doc) {
  // Stage both documents before mutating anything: a failure here (parse
  // error, injected fault) leaves the index byte-identical, where the old
  // unindex-then-reindex flow would have lost the old document's postings.
  FSDM_FAULT_POINT("index.replace.stage");
  ParsedDoc new_parsed;
  if (!new_doc.is_null()) {
    FSDM_ASSIGN_OR_RETURN(new_parsed, ParseDoc(new_doc, true));
  }
  DocPostings old_staged;
  DocPostings new_staged;
  if (options_.maintain_postings) {
    if (!old_doc.is_null()) {
      FSDM_ASSIGN_OR_RETURN(ParsedDoc old_parsed, ParseDoc(old_doc, false));
      json::TreeDom old_dom(old_parsed.tree);
      FSDM_ASSIGN_OR_RETURN(old_staged, StagePostings(old_dom));
    }
    if (!new_doc.is_null()) {
      json::TreeDom new_dom(new_parsed.tree);
      FSDM_ASSIGN_OR_RETURN(new_staged, StagePostings(new_dom));
    }
    ErasePostings(old_staged, row_id);
    ApplyPostings(new_staged, row_id);
  }
  Status dg = Status::Ok();
  if (!new_doc.is_null()) {
    json::TreeDom new_dom(new_parsed.tree);
    dg = MaintainDataGuide(new_dom);
  }
  if (!dg.ok()) {
    if (options_.maintain_postings) {
      Status undone = FSDM_FAULT_STATUS("index.undo.postings");
      if (undone.ok()) {
        ErasePostings(new_staged, row_id);
        ApplyPostings(old_staged, row_id);
      } else {
        MarkDegraded("replace rollback failed on row " +
                     std::to_string(row_id) + ": " + undone.message());
      }
    }
    return dg;
  }
  if (!old_doc.is_null() && new_doc.is_null()) {
    if (indexed_docs_ > 0) --indexed_docs_;
  } else if (old_doc.is_null() && !new_doc.is_null()) {
    ++indexed_docs_;
  }
  return Status::Ok();
}

Status JsonSearchIndex::UndoInsert(size_t row_id, const rdbms::Row& row) {
  if (degraded_) return Status::Ok();
  const Value& doc = row[json_col_pos_];
  if (doc.is_null()) return Status::Ok();
  Status undone = FSDM_FAULT_STATUS("index.undo.postings");
  if (undone.ok() && options_.maintain_postings) {
    undone = [&]() -> Status {
      FSDM_ASSIGN_OR_RETURN(ParsedDoc parsed, ParseDoc(doc, true));
      json::TreeDom dom(parsed.tree);
      FSDM_ASSIGN_OR_RETURN(DocPostings staged, StagePostings(dom));
      ErasePostings(staged, row_id);
      return Status::Ok();
    }();
  }
  if (!undone.ok()) {
    MarkDegraded("undo of insert failed on row " + std::to_string(row_id) +
                 ": " + undone.message());
    return undone;
  }
  if (indexed_docs_ > 0) --indexed_docs_;
  // DataGuide additions stay (additive semantics, §3.4).
  return Status::Ok();
}

Status JsonSearchIndex::UndoDelete(size_t row_id, const rdbms::Row& row) {
  if (degraded_) return Status::Ok();
  const Value& doc = row[json_col_pos_];
  if (doc.is_null()) return Status::Ok();
  Status undone = FSDM_FAULT_STATUS("index.undo.postings");
  if (undone.ok() && options_.maintain_postings) {
    undone = [&]() -> Status {
      FSDM_ASSIGN_OR_RETURN(ParsedDoc parsed, ParseDoc(doc, false));
      json::TreeDom dom(parsed.tree);
      FSDM_ASSIGN_OR_RETURN(DocPostings staged, StagePostings(dom));
      ApplyPostings(staged, row_id);
      return Status::Ok();
    }();
  }
  if (!undone.ok()) {
    MarkDegraded("undo of delete failed on row " + std::to_string(row_id) +
                 ": " + undone.message());
    return undone;
  }
  ++indexed_docs_;
  return Status::Ok();
}

Status JsonSearchIndex::UndoReplace(size_t row_id, const rdbms::Row& old_row,
                                    const rdbms::Row& new_row) {
  if (degraded_) return Status::Ok();
  const Value& old_doc = old_row[json_col_pos_];
  const Value& new_doc = new_row[json_col_pos_];
  Status undone = FSDM_FAULT_STATUS("index.undo.postings");
  if (undone.ok() && options_.maintain_postings) {
    undone = [&]() -> Status {
      DocPostings old_staged;
      DocPostings new_staged;
      if (!new_doc.is_null()) {
        FSDM_ASSIGN_OR_RETURN(ParsedDoc parsed, ParseDoc(new_doc, true));
        json::TreeDom dom(parsed.tree);
        FSDM_ASSIGN_OR_RETURN(new_staged, StagePostings(dom));
      }
      if (!old_doc.is_null()) {
        FSDM_ASSIGN_OR_RETURN(ParsedDoc parsed, ParseDoc(old_doc, false));
        json::TreeDom dom(parsed.tree);
        FSDM_ASSIGN_OR_RETURN(old_staged, StagePostings(dom));
      }
      ErasePostings(new_staged, row_id);
      ApplyPostings(old_staged, row_id);
      return Status::Ok();
    }();
  }
  if (!undone.ok()) {
    MarkDegraded("undo of replace failed on row " + std::to_string(row_id) +
                 ": " + undone.message());
    return undone;
  }
  if (!old_doc.is_null() && new_doc.is_null()) {
    ++indexed_docs_;
  } else if (old_doc.is_null() && !new_doc.is_null()) {
    if (indexed_docs_ > 0) --indexed_docs_;
  }
  return Status::Ok();
}

void JsonSearchIndex::MarkDegraded(std::string reason) {
  if (!degraded_) {
    FSDM_COUNT("fsdm_index_degraded_total", 1);
    FSDM_TRACE_INSTANT_TEXT("index", "index.degraded", "reason", reason);
    FSDM_LOG(telemetry::LogLevel::kWarn, "index", 1101,
             "search index degraded: " + reason);
  }
  degraded_ = true;
  degraded_reason_ = std::move(reason);
}

Status JsonSearchIndex::Rebuild() {
  // Fires before any mutation: a refused rebuild leaves the index exactly
  // as it was (still degraded if it was degraded).
  FSDM_FAULT_POINT("index.rebuild");
  FSDM_COUNT("fsdm_index_rebuilds_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_index_rebuild_us");
  FSDM_TRACE_SPAN(span, "index", "postings.rebuild");
  path_postings_.clear();
  value_postings_.clear();
  keyword_postings_.clear();
  postings_bytes_.store(0, std::memory_order_relaxed);
  indexed_docs_ = 0;
  Status failure;
  for (size_t r = 0; r < table_->row_count() && failure.ok(); ++r) {
    if (!table_->IsLive(r)) continue;
    const Value& doc = table_->StoredRow(r)[json_col_pos_];
    if (doc.is_null()) continue;
    failure = [&]() -> Status {
      FSDM_ASSIGN_OR_RETURN(ParsedDoc parsed, ParseDoc(doc, false));
      json::TreeDom dom(parsed.tree);
      if (options_.maintain_postings) {
        FSDM_ASSIGN_OR_RETURN(DocPostings staged, StagePostings(dom));
        ApplyPostings(staged, r);
      }
      // Re-run DataGuide maintenance too: documents inserted while the
      // index was degraded never had their structure guided. Frequencies
      // may over-count (additive semantics tolerate that).
      FSDM_RETURN_NOT_OK(MaintainDataGuide(dom));
      ++indexed_docs_;
      return Status::Ok();
    }();
  }
  if (failure.ok() && dg_table_ != nullptr) {
    // Re-derive the $DG side table from the in-memory guide. A failed
    // persist (or writes skipped while degraded) leaves it behind, and the
    // known-path fast path above never re-attempts those rows.
    auto fresh_dg = std::make_unique<rdbms::Table>(
        table_->name() + "$DG",
        std::vector<rdbms::ColumnDef>{
            {.name = "PATH", .type = rdbms::ColumnType::kString},
            {.name = "TYPE", .type = rdbms::ColumnType::kString}});
    for (const dataguide::PathEntry* e : dataguide_.SortedEntries()) {
      failure = fresh_dg
                    ->Insert({Value::String(e->path),
                              Value::String(e->TypeString())})
                    .status();
      if (!failure.ok()) break;
    }
    if (failure.ok()) dg_table_ = std::move(fresh_dg);
  }
  if (!failure.ok()) {
    path_postings_.clear();
    value_postings_.clear();
    keyword_postings_.clear();
    postings_bytes_.store(0, std::memory_order_relaxed);
    indexed_docs_ = 0;
    if (!degraded_) FSDM_COUNT("fsdm_index_degraded_total", 1);
    degraded_ = true;
    degraded_reason_ = "rebuild failed: " + failure.message();
    return failure;
  }
  degraded_ = false;
  degraded_reason_.clear();
  return Status::Ok();
}

void JsonSearchIndex::VerifyPostings(std::vector<std::string>* problems) const {
  if (!options_.maintain_postings) return;
  std::map<std::string, std::vector<size_t>> shadow_paths;
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      shadow_values;
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      shadow_keywords;
  for (size_t r = 0; r < table_->row_count(); ++r) {
    if (!table_->IsLive(r)) continue;
    const Value& doc = table_->StoredRow(r)[json_col_pos_];
    if (doc.is_null()) continue;
    Result<ParsedDoc> parsed = ParseDoc(doc, false);
    if (!parsed.ok()) {
      problems->push_back("row " + std::to_string(r) + " unparseable: " +
                          parsed.status().message());
      continue;
    }
    json::TreeDom dom(parsed.value().tree);
    Result<DocPostings> staged = StagePostings(dom);
    if (!staged.ok()) {
      problems->push_back("row " + std::to_string(r) + " unstageable: " +
                          staged.status().message());
      continue;
    }
    // Sorted-unique insert without the maintenance telemetry counters (a
    // consistency check must not look like index activity).
    auto add = [](std::vector<size_t>* postings, size_t row_id) {
      auto it = std::lower_bound(postings->begin(), postings->end(), row_id);
      if (it == postings->end() || *it != row_id) postings->insert(it, row_id);
    };
    for (const std::string& p : staged.value().paths) {
      add(&shadow_paths[p], r);
    }
    for (const auto& [p, display] : staged.value().values) {
      add(&shadow_values[{p, display}], r);
    }
    for (const auto& [p, tok] : staged.value().keywords) {
      add(&shadow_keywords[{p, tok}], r);
    }
  }
  // Compare shadow vs live, ignoring keys whose posting list is empty (the
  // live maps accumulate empty vectors through operator[] on erase paths).
  auto compare = [&](const auto& live, const auto& shadow,
                     const auto& render) {
    for (const auto& [key, docs] : shadow) {
      auto it = live.find(key);
      const std::vector<size_t>* have =
          it == live.end() ? nullptr : &it->second;
      if (have == nullptr || *have != docs) {
        problems->push_back("posting " + render(key) + ": index has " +
                            std::to_string(have ? have->size() : 0) +
                            " docs, table implies " +
                            std::to_string(docs.size()));
      }
    }
    for (const auto& [key, docs] : live) {
      if (docs.empty()) continue;
      if (!shadow.count(key)) {
        problems->push_back("posting " + render(key) + ": index has " +
                            std::to_string(docs.size()) +
                            " docs, table implies 0 (spurious)");
      }
    }
  };
  compare(path_postings_, shadow_paths,
          [](const std::string& k) { return k; });
  compare(value_postings_, shadow_values,
          [](const std::pair<std::string, std::string>& k) {
            return k.first + "=" + k.second;
          });
  compare(keyword_postings_, shadow_keywords,
          [](const std::pair<std::string, std::string>& k) {
            return k.first + "~" + k.second;
          });
}

std::vector<size_t> JsonSearchIndex::DocsWithPath(
    const std::string& path) const {
  FSDM_COUNT("fsdm_index_lookups_total", 1);
  auto it = path_postings_.find(path);
  std::vector<size_t> docs =
      it == path_postings_.end() ? std::vector<size_t>{} : it->second;
  FSDM_OBSERVE_SIZE("fsdm_index_lookup_postings_len", docs.size());
  return docs;
}

std::vector<size_t> JsonSearchIndex::DocsWithValue(const std::string& path,
                                                   const Value& value) const {
  FSDM_COUNT("fsdm_index_lookups_total", 1);
  auto it = value_postings_.find({path, value.ToDisplayString()});
  std::vector<size_t> docs =
      it == value_postings_.end() ? std::vector<size_t>{} : it->second;
  FSDM_OBSERVE_SIZE("fsdm_index_lookup_postings_len", docs.size());
  return docs;
}

std::vector<size_t> JsonSearchIndex::DocsWithKeyword(
    const std::string& path, const std::string& keyword) const {
  FSDM_COUNT("fsdm_index_lookups_total", 1);
  std::vector<std::string> tokens = TokenizeKeywords(keyword);
  if (tokens.empty()) return {};
  // Conjunction over the keyword's tokens.
  std::vector<size_t> acc;
  for (size_t i = 0; i < tokens.size(); ++i) {
    auto it = keyword_postings_.find({path, tokens[i]});
    if (it == keyword_postings_.end()) return {};
    if (i == 0) {
      acc = it->second;
    } else {
      std::vector<size_t> merged;
      std::set_intersection(acc.begin(), acc.end(), it->second.begin(),
                            it->second.end(), std::back_inserter(merged));
      acc = std::move(merged);
    }
  }
  FSDM_OBSERVE_SIZE("fsdm_index_lookup_postings_len", acc.size());
  return acc;
}

rdbms::Schema JsonSearchIndex::DgSchema() const {
  return rdbms::Schema({"PATH", "TYPE", "LENGTH", "FREQUENCY", "NULL_COUNT",
                        "MIN", "MAX"});
}

std::vector<rdbms::Row> JsonSearchIndex::DgRows() const {
  std::vector<rdbms::Row> rows;
  for (const dataguide::PathEntry* e : dataguide_.SortedEntries()) {
    rdbms::Row row;
    row.push_back(Value::String(e->path));
    row.push_back(Value::String(e->TypeString()));
    row.push_back(e->kind == json::NodeKind::kScalar
                      ? Value::Int64(static_cast<int64_t>(e->max_length))
                      : Value::Null());
    row.push_back(Value::Int64(static_cast<int64_t>(e->frequency)));
    row.push_back(Value::Int64(static_cast<int64_t>(e->null_count)));
    row.push_back(e->min_value.value_or(Value::Null()));
    row.push_back(e->max_value.value_or(Value::Null()));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string JsonSearchIndex::GetDataGuide(bool hierarchical) const {
  return hierarchical ? dataguide_.ToHierarchicalJson()
                      : dataguide_.ToFlatJson();
}

namespace {

/// Row source over a posting list: materializes only the matching rows.
class PostingScanOp final : public rdbms::Operator {
 public:
  PostingScanOp(const rdbms::Table* table, std::vector<size_t> row_ids)
      : table_(table), row_ids_(std::move(row_ids)) {
    schema_ = table->OutputSchema();
  }

  Status Open() override {
    next_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    while (next_ < row_ids_.size()) {
      size_t id = row_ids_[next_++];
      if (!table_->IsLive(id)) continue;
      FSDM_ASSIGN_OR_RETURN(*out, table_->MaterializeRow(id));
      return true;
    }
    return false;
  }

  void Close() override {}

 private:
  const rdbms::Table* table_;
  std::vector<size_t> row_ids_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr IndexedPathScan(const rdbms::Table* table,
                                   const JsonSearchIndex* index,
                                   std::string path) {
  return std::make_unique<PostingScanOp>(table, index->DocsWithPath(path));
}

rdbms::OperatorPtr IndexedValueScan(const rdbms::Table* table,
                                    const JsonSearchIndex* index,
                                    std::string path, Value value) {
  return std::make_unique<PostingScanOp>(table,
                                         index->DocsWithValue(path, value));
}

rdbms::OperatorPtr IndexedKeywordScan(const rdbms::Table* table,
                                      const JsonSearchIndex* index,
                                      std::string path, std::string keyword) {
  return std::make_unique<PostingScanOp>(
      table, index->DocsWithKeyword(path, keyword));
}

rdbms::OperatorPtr IndexedIntersectionScan(const rdbms::Table* table,
                                           const JsonSearchIndex* index,
                                           const std::vector<IndexTerm>& terms,
                                           IntersectionInfo* info) {
  std::vector<std::vector<size_t>> lists;
  lists.reserve(terms.size());
  size_t total = 0;
  for (const IndexTerm& t : terms) {
    lists.push_back(t.value.has_value() ? index->DocsWithValue(t.path, *t.value)
                                        : index->DocsWithPath(t.path));
    total += lists.back().size();
  }
  if (info != nullptr) info->total_postings = total;
  std::vector<size_t> acc;
  if (!terms.empty()) {
    // Smallest list first bounds every intermediate by the rarest term.
    std::sort(lists.begin(), lists.end(),
              [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
                return a.size() < b.size();
              });
    acc = std::move(lists.front());
    for (size_t i = 1; i < lists.size() && !acc.empty(); ++i) {
      std::vector<size_t> merged;
      std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                            lists[i].end(), std::back_inserter(merged));
      acc = std::move(merged);
    }
  }
  if (info != nullptr) info->matched = acc.size();
  return std::make_unique<PostingScanOp>(table, std::move(acc));
}

size_t JsonSearchIndex::posting_count() const {
  size_t n = 0;
  for (const auto& [k, v] : path_postings_) n += v.size();
  for (const auto& [k, v] : value_postings_) n += v.size();
  for (const auto& [k, v] : keyword_postings_) n += v.size();
  return n;
}

uint64_t JsonSearchIndex::RecomputeMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& [k, v] : path_postings_) {
    total += kPostingEntryBytes + PostingKeyBytes(k) + v.size() * sizeof(size_t);
  }
  for (const auto& [k, v] : value_postings_) {
    total += kPostingEntryBytes + PostingKeyBytes(k) + v.size() * sizeof(size_t);
  }
  for (const auto& [k, v] : keyword_postings_) {
    total += kPostingEntryBytes + PostingKeyBytes(k) + v.size() * sizeof(size_t);
  }
  return total;
}

}  // namespace fsdm::index
