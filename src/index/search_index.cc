#include "index/search_index.h"

#include <algorithm>
#include <cctype>

#include "json/parser.h"
#include "telemetry/telemetry.h"

namespace fsdm::index {

namespace {

void InsertPosting(std::vector<size_t>* postings, size_t row_id) {
  auto it = std::lower_bound(postings->begin(), postings->end(), row_id);
  if (it == postings->end() || *it != row_id) {
    postings->insert(it, row_id);
    FSDM_COUNT("fsdm_index_postings_appended_total", 1);
  }
}

void ErasePosting(std::vector<size_t>* postings, size_t row_id) {
  auto it = std::lower_bound(postings->begin(), postings->end(), row_id);
  if (it != postings->end() && *it == row_id) {
    postings->erase(it);
    FSDM_COUNT("fsdm_index_postings_erased_total", 1);
  }
}

}  // namespace

std::vector<std::string> TokenizeKeywords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (unsigned char c : text) {
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

Result<std::unique_ptr<JsonSearchIndex>> JsonSearchIndex::Create(
    rdbms::Table* table, const std::string& json_column,
    const Options& options) {
  // Resolve the column's position within the *physical* row layout, since
  // observers receive physical rows.
  size_t pos = rdbms::Schema::npos;
  const std::vector<size_t>& physical = table->physical_columns();
  for (size_t i = 0; i < physical.size(); ++i) {
    if (table->columns()[physical[i]].name == json_column) {
      pos = i;
      break;
    }
  }
  if (pos == rdbms::Schema::npos) {
    return Status::NotFound("physical column '" + json_column + "' on " +
                            table->name());
  }
  if (table->columns()[table->physical_columns()[pos]].type !=
      rdbms::ColumnType::kJson) {
    return Status::InvalidArgument("JSON search index requires a JSON column");
  }

  std::unique_ptr<JsonSearchIndex> idx(
      new JsonSearchIndex(table, pos, options));
  idx->dg_table_ = std::make_unique<rdbms::Table>(
      table->name() + "$DG",
      std::vector<rdbms::ColumnDef>{
          {.name = "PATH", .type = rdbms::ColumnType::kString},
          {.name = "TYPE", .type = rdbms::ColumnType::kString}});
  // Back-fill existing rows.
  for (size_t r = 0; r < table->row_count(); ++r) {
    if (!table->IsLive(r)) continue;
    FSDM_RETURN_NOT_OK(idx->IndexDocument(r, table->StoredRow(r)[pos]));
  }
  table->AddObserver(idx.get());
  return idx;
}

JsonSearchIndex::~JsonSearchIndex() { Detach(); }

void JsonSearchIndex::Detach() {
  if (!detached_ && table_ != nullptr) {
    table_->RemoveObserver(this);
    detached_ = true;
  }
}

Status JsonSearchIndex::OnInsert(size_t row_id, const rdbms::Row& row) {
  return IndexDocument(row_id, row[json_col_pos_]);
}

Status JsonSearchIndex::OnDelete(size_t row_id, const rdbms::Row& row) {
  return UnindexDocument(row_id, row[json_col_pos_]);
}

Status JsonSearchIndex::OnReplace(size_t row_id, const rdbms::Row& old_row,
                                  const rdbms::Row& new_row) {
  // One replace is one maintenance event: the in_replace_ flag stops the
  // unindex+index pair below from double-counting as a delete plus an
  // insert, and the combined latency lands in one histogram observation.
  FSDM_COUNT("fsdm_index_docs_replaced_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_index_maintain_us");
  in_replace_ = true;
  Status st = UnindexDocument(row_id, old_row[json_col_pos_]);
  if (st.ok()) st = IndexDocument(row_id, new_row[json_col_pos_]);
  in_replace_ = false;
  return st;
}

namespace {

/// Shared walk for index/unindex: visits every node with its path.
template <typename Visit>
Status WalkPaths(const json::Dom& dom, json::Dom::NodeRef node,
                 std::string* path, const Visit& visit) {
  FSDM_RETURN_NOT_OK(visit(*path, node));
  switch (dom.GetNodeType(node)) {
    case json::NodeKind::kObject: {
      size_t n = dom.GetFieldCount(node);
      for (size_t i = 0; i < n; ++i) {
        std::string_view name;
        json::Dom::NodeRef child;
        dom.GetFieldAt(node, i, &name, &child);
        size_t mark = path->size();
        path->push_back('.');
        path->append(name);
        FSDM_RETURN_NOT_OK(WalkPaths(dom, child, path, visit));
        path->resize(mark);
      }
      return Status::Ok();
    }
    case json::NodeKind::kArray: {
      size_t n = dom.GetArrayLength(node);
      for (size_t i = 0; i < n; ++i) {
        // Elements share the array's path (the index is positional-blind,
        // like the paper's path postings).
        FSDM_RETURN_NOT_OK(
            WalkPaths(dom, dom.GetArrayElement(node, i), path, visit));
      }
      return Status::Ok();
    }
    case json::NodeKind::kScalar:
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status JsonSearchIndex::IndexDocument(size_t row_id, const Value& doc) {
  if (in_replace_) return IndexDocumentImpl(row_id, doc);
  FSDM_COUNT("fsdm_index_docs_indexed_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_index_maintain_us");
  return IndexDocumentImpl(row_id, doc);
}

Status JsonSearchIndex::UnindexDocument(size_t row_id, const Value& doc) {
  if (in_replace_) return UnindexDocumentImpl(row_id, doc);
  FSDM_COUNT("fsdm_index_docs_unindexed_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_index_maintain_us");
  return UnindexDocumentImpl(row_id, doc);
}

Status JsonSearchIndex::IndexDocumentImpl(size_t row_id, const Value& doc) {
  if (doc.is_null()) return Status::Ok();
  // Reuse the DOM the IS JSON constraint parsed on this DML when
  // available (§3.2.1); otherwise (back-fill path) parse here.
  std::unique_ptr<json::JsonNode> owned;
  const json::JsonNode* tree = table_->ParsedJsonForObserver(json_col_pos_);
  if (tree == nullptr) {
    FSDM_ASSIGN_OR_RETURN(owned, json::Parse(doc.AsString()));
    tree = owned.get();
  }
  json::TreeDom dom(tree);

  if (options_.maintain_postings) {
    std::string path = "$";
    Status st = WalkPaths(
        dom, dom.root(), &path,
        [&](const std::string& p, json::Dom::NodeRef node) -> Status {
          InsertPosting(&path_postings_[p], row_id);
          if (dom.GetNodeType(node) == json::NodeKind::kScalar) {
            Value v;
            FSDM_RETURN_NOT_OK(dom.GetScalarValue(node, &v));
            if (!v.is_null()) {
              InsertPosting(&value_postings_[{p, v.ToDisplayString()}],
                            row_id);
              if (v.type() == ScalarType::kString) {
                for (const std::string& tok :
                     TokenizeKeywords(v.AsString())) {
                  InsertPosting(&keyword_postings_[{p, tok}], row_id);
                }
              }
            }
          }
          return Status::Ok();
        });
    FSDM_RETURN_NOT_OK(st);
  }

  if (options_.maintain_dataguide) {
    std::vector<const dataguide::PathEntry*> new_entries;
    FSDM_ASSIGN_OR_RETURN(int new_paths,
                          dataguide_.AddDocument(dom, &new_entries));
    // Persisting to $DG only happens when structure actually changed —
    // the common case terminates after the in-memory structural check.
    if (new_paths > 0) {
      ++dg_writes_;
      FSDM_COUNT("fsdm_index_dataguide_writes_total", 1);
      for (const dataguide::PathEntry* e : new_entries) {
        FSDM_RETURN_NOT_OK(
            dg_table_
                ->Insert({Value::String(e->path),
                          Value::String(e->TypeString())})
                .status());
      }
    }
  }
  ++indexed_docs_;
  return Status::Ok();
}

Status JsonSearchIndex::UnindexDocumentImpl(size_t row_id, const Value& doc) {
  if (doc.is_null()) return Status::Ok();
  if (options_.maintain_postings) {
    FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> tree,
                          json::Parse(doc.AsString()));
    json::TreeDom dom(tree.get());
    std::string path = "$";
    Status st = WalkPaths(
        dom, dom.root(), &path,
        [&](const std::string& p, json::Dom::NodeRef node) -> Status {
          ErasePosting(&path_postings_[p], row_id);
          if (dom.GetNodeType(node) == json::NodeKind::kScalar) {
            Value v;
            FSDM_RETURN_NOT_OK(dom.GetScalarValue(node, &v));
            if (!v.is_null()) {
              ErasePosting(&value_postings_[{p, v.ToDisplayString()}],
                           row_id);
              if (v.type() == ScalarType::kString) {
                for (const std::string& tok :
                     TokenizeKeywords(v.AsString())) {
                  ErasePosting(&keyword_postings_[{p, tok}], row_id);
                }
              }
            }
          }
          return Status::Ok();
        });
    FSDM_RETURN_NOT_OK(st);
  }
  // The DataGuide is additive: no path removal on delete (§3.4).
  if (indexed_docs_ > 0) --indexed_docs_;
  return Status::Ok();
}

std::vector<size_t> JsonSearchIndex::DocsWithPath(
    const std::string& path) const {
  FSDM_COUNT("fsdm_index_lookups_total", 1);
  auto it = path_postings_.find(path);
  std::vector<size_t> docs =
      it == path_postings_.end() ? std::vector<size_t>{} : it->second;
  FSDM_OBSERVE_SIZE("fsdm_index_lookup_postings_len", docs.size());
  return docs;
}

std::vector<size_t> JsonSearchIndex::DocsWithValue(const std::string& path,
                                                   const Value& value) const {
  FSDM_COUNT("fsdm_index_lookups_total", 1);
  auto it = value_postings_.find({path, value.ToDisplayString()});
  std::vector<size_t> docs =
      it == value_postings_.end() ? std::vector<size_t>{} : it->second;
  FSDM_OBSERVE_SIZE("fsdm_index_lookup_postings_len", docs.size());
  return docs;
}

std::vector<size_t> JsonSearchIndex::DocsWithKeyword(
    const std::string& path, const std::string& keyword) const {
  FSDM_COUNT("fsdm_index_lookups_total", 1);
  std::vector<std::string> tokens = TokenizeKeywords(keyword);
  if (tokens.empty()) return {};
  // Conjunction over the keyword's tokens.
  std::vector<size_t> acc;
  for (size_t i = 0; i < tokens.size(); ++i) {
    auto it = keyword_postings_.find({path, tokens[i]});
    if (it == keyword_postings_.end()) return {};
    if (i == 0) {
      acc = it->second;
    } else {
      std::vector<size_t> merged;
      std::set_intersection(acc.begin(), acc.end(), it->second.begin(),
                            it->second.end(), std::back_inserter(merged));
      acc = std::move(merged);
    }
  }
  FSDM_OBSERVE_SIZE("fsdm_index_lookup_postings_len", acc.size());
  return acc;
}

rdbms::Schema JsonSearchIndex::DgSchema() const {
  return rdbms::Schema({"PATH", "TYPE", "LENGTH", "FREQUENCY", "NULL_COUNT",
                        "MIN", "MAX"});
}

std::vector<rdbms::Row> JsonSearchIndex::DgRows() const {
  std::vector<rdbms::Row> rows;
  for (const dataguide::PathEntry* e : dataguide_.SortedEntries()) {
    rdbms::Row row;
    row.push_back(Value::String(e->path));
    row.push_back(Value::String(e->TypeString()));
    row.push_back(e->kind == json::NodeKind::kScalar
                      ? Value::Int64(static_cast<int64_t>(e->max_length))
                      : Value::Null());
    row.push_back(Value::Int64(static_cast<int64_t>(e->frequency)));
    row.push_back(Value::Int64(static_cast<int64_t>(e->null_count)));
    row.push_back(e->min_value.value_or(Value::Null()));
    row.push_back(e->max_value.value_or(Value::Null()));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string JsonSearchIndex::GetDataGuide(bool hierarchical) const {
  return hierarchical ? dataguide_.ToHierarchicalJson()
                      : dataguide_.ToFlatJson();
}

namespace {

/// Row source over a posting list: materializes only the matching rows.
class PostingScanOp final : public rdbms::Operator {
 public:
  PostingScanOp(const rdbms::Table* table, std::vector<size_t> row_ids)
      : table_(table), row_ids_(std::move(row_ids)) {
    schema_ = table->OutputSchema();
  }

  Status Open() override {
    next_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    while (next_ < row_ids_.size()) {
      size_t id = row_ids_[next_++];
      if (!table_->IsLive(id)) continue;
      FSDM_ASSIGN_OR_RETURN(*out, table_->MaterializeRow(id));
      return true;
    }
    return false;
  }

  void Close() override {}

 private:
  const rdbms::Table* table_;
  std::vector<size_t> row_ids_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr IndexedPathScan(const rdbms::Table* table,
                                   const JsonSearchIndex* index,
                                   std::string path) {
  return std::make_unique<PostingScanOp>(table, index->DocsWithPath(path));
}

rdbms::OperatorPtr IndexedValueScan(const rdbms::Table* table,
                                    const JsonSearchIndex* index,
                                    std::string path, Value value) {
  return std::make_unique<PostingScanOp>(table,
                                         index->DocsWithValue(path, value));
}

rdbms::OperatorPtr IndexedKeywordScan(const rdbms::Table* table,
                                      const JsonSearchIndex* index,
                                      std::string path, std::string keyword) {
  return std::make_unique<PostingScanOp>(
      table, index->DocsWithKeyword(path, keyword));
}

size_t JsonSearchIndex::posting_count() const {
  size_t n = 0;
  for (const auto& [k, v] : path_postings_) n += v.size();
  for (const auto& [k, v] : value_postings_) n += v.size();
  for (const auto& [k, v] : keyword_postings_) n += v.size();
  return n;
}

}  // namespace fsdm::index
