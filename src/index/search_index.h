#ifndef FSDM_INDEX_SEARCH_INDEX_H_
#define FSDM_INDEX_SEARCH_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dataguide/dataguide.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"

namespace fsdm::index {

/// Schema-agnostic JSON search index (§3.2.1): an inverted index over every
/// JSON field path and every leaf scalar value of a JSON text column
/// (strings tokenized into keywords for full-text search), maintained
/// incrementally as a TableObserver on the base table's DML path.
///
/// The persistent JSON DataGuide is a component of this index: structural
/// analysis happens on the same parse the IS JSON constraint already paid
/// for, and new paths are persisted into the $DG side table. For documents
/// that introduce no new structure the DataGuide step is a pure hash-lookup
/// pass (the paper's fast common case).
///
/// The persistent DataGuide is additive: deletes remove postings but never
/// remove $DG rows (§3.4).
class JsonSearchIndex final : public rdbms::TableObserver {
 public:
  struct Options {
    /// Maintain the persistent DataGuide ($DG) alongside the postings.
    bool maintain_dataguide = true;
    /// Maintain inverted postings (paths/values/keywords). Disable to
    /// isolate DataGuide maintenance cost in benchmarks.
    bool maintain_postings = true;
  };

  /// Attaches to `table` as an observer and back-fills from existing rows.
  /// The index does not own the table; call Detach() (or destroy the
  /// index) before the table goes away.
  static Result<std::unique_ptr<JsonSearchIndex>> Create(
      rdbms::Table* table, const std::string& json_column,
      const Options& options);
  static Result<std::unique_ptr<JsonSearchIndex>> Create(
      rdbms::Table* table, const std::string& json_column) {
    return Create(table, json_column, Options());
  }

  ~JsonSearchIndex() override;
  void Detach();

  // --- TableObserver --------------------------------------------------------
  Status OnInsert(size_t row_id, const rdbms::Row& row) override;
  Status OnDelete(size_t row_id, const rdbms::Row& row) override;
  Status OnReplace(size_t row_id, const rdbms::Row& old_row,
                   const rdbms::Row& new_row) override;

  // --- Ad-hoc queries (JSON_EXISTS / JSON_VALUE / JSON_TEXTCONTAINS
  //     pushdown) --------------------------------------------------------
  /// Row ids of documents containing the structural path ("$.a.b").
  std::vector<size_t> DocsWithPath(const std::string& path) const;
  /// Row ids of documents where `path` holds exactly `value` (scalar
  /// comparison by canonical display form).
  std::vector<size_t> DocsWithValue(const std::string& path,
                                    const Value& value) const;
  /// Row ids of documents where any string under `path` contains the
  /// keyword (lowercased token match).
  std::vector<size_t> DocsWithKeyword(const std::string& path,
                                      const std::string& keyword) const;

  // --- Persistent DataGuide --------------------------------------------
  const dataguide::DataGuide& dataguide() const { return dataguide_; }

  /// Renders the $DG side table (§3.2.1, Tables 2/4/6): one row per
  /// distinct path with its type string and statistics. Schema:
  /// (PATH, TYPE, LENGTH, FREQUENCY, NULL_COUNT, MIN, MAX).
  rdbms::Schema DgSchema() const;
  std::vector<rdbms::Row> DgRows() const;

  /// The live $DG side table maintained incrementally on the DML path
  /// (PATH, TYPE columns; statistics live in DgRows()).
  const rdbms::Table* dg_table() const { return dg_table_.get(); }

  /// getDataGuide(): flat or hierarchical JSON rendering (§3.2.2).
  std::string GetDataGuide(bool hierarchical = false) const;

  // --- Introspection ----------------------------------------------------
  size_t indexed_document_count() const { return indexed_docs_; }
  size_t posting_count() const;
  /// Number of $DG persistence events (documents that introduced at least
  /// one new path) — what Figures 7/8 measure indirectly.
  size_t dg_write_count() const { return dg_writes_; }

 private:
  JsonSearchIndex(rdbms::Table* table, size_t json_col_pos, Options options)
      : table_(table), json_col_pos_(json_col_pos), options_(options) {}

  /// Telemetry wrappers around the *Impl workers: count one document and
  /// record one maintenance-latency observation per DML event. OnReplace
  /// sets in_replace_ so the unindex+index pair inside a replace reports
  /// as a single replace, not a delete+insert (ISSUE 2 satellite fix).
  Status IndexDocument(size_t row_id, const Value& doc);
  Status UnindexDocument(size_t row_id, const Value& doc);
  Status IndexDocumentImpl(size_t row_id, const Value& doc);
  Status UnindexDocumentImpl(size_t row_id, const Value& doc);

  rdbms::Table* table_;
  size_t json_col_pos_;  // position within the physical row
  Options options_;

  // (path, canonical scalar display) -> sorted row ids.
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      value_postings_;
  // path -> sorted row ids.
  std::map<std::string, std::vector<size_t>> path_postings_;
  // (path, lowercased token) -> sorted row ids.
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      keyword_postings_;

  dataguide::DataGuide dataguide_;
  // The persistent $DG side table (§3.2.1): one row per distinct path,
  // appended when a document introduces new structure.
  std::unique_ptr<rdbms::Table> dg_table_;
  size_t indexed_docs_ = 0;
  size_t dg_writes_ = 0;
  bool in_replace_ = false;
  bool detached_ = false;
};

/// Splits a string into lowercase alphanumeric tokens (the tokenizer the
/// keyword postings use).
std::vector<std::string> TokenizeKeywords(std::string_view text);

/// Index-backed access paths (§3.2.1: JSON_EXISTS / JSON_VALUE equality /
/// JSON_TEXTCONTAINS predicates evaluated through the inverted index
/// instead of scanning every document). Emits the base table's rows (in
/// row-id order) whose documents the index reports as matching.
rdbms::OperatorPtr IndexedPathScan(const rdbms::Table* table,
                                   const JsonSearchIndex* index,
                                   std::string path);
rdbms::OperatorPtr IndexedValueScan(const rdbms::Table* table,
                                    const JsonSearchIndex* index,
                                    std::string path, Value value);
rdbms::OperatorPtr IndexedKeywordScan(const rdbms::Table* table,
                                      const JsonSearchIndex* index,
                                      std::string path, std::string keyword);

}  // namespace fsdm::index

#endif  // FSDM_INDEX_SEARCH_INDEX_H_
