#ifndef FSDM_INDEX_SEARCH_INDEX_H_
#define FSDM_INDEX_SEARCH_INDEX_H_

#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dataguide/dataguide.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"

namespace fsdm::index {

/// Schema-agnostic JSON search index (§3.2.1): an inverted index over every
/// JSON field path and every leaf scalar value of a JSON text column
/// (strings tokenized into keywords for full-text search), maintained
/// incrementally as a TableObserver on the base table's DML path.
///
/// The persistent JSON DataGuide is a component of this index: structural
/// analysis happens on the same parse the IS JSON constraint already paid
/// for, and new paths are persisted into the $DG side table. For documents
/// that introduce no new structure the DataGuide step is a pure hash-lookup
/// pass (the paper's fast common case).
///
/// The persistent DataGuide is additive: deletes remove postings but never
/// remove $DG rows (§3.4).
///
/// Failure semantics (ISSUE 3): every maintenance operation stages its
/// posting keys from the document *before* mutating the maps, so a failure
/// during staging (parse error, injected fault) leaves the index
/// byte-identical — in particular a replace is stage-then-swap, never
/// unindex-then-reindex. When a failure strikes after the postings were
/// applied (DataGuide persistence) or during a compensation callback from
/// the table, the index first tries to undo its own partial work; if that
/// undo itself fails it enters a *degraded* state: all maintenance and
/// undo callbacks become no-ops (so errors don't cascade), degraded()
/// turns true, and the router stops trusting the postings until Rebuild()
/// reconstructs them from the live table rows. DataGuide additions are
/// never rolled back (additive semantics, §3.4): after a rollback the
/// guide's frequencies may over-count, which consistency checks must
/// tolerate as `guide frequency >= observed frequency`.
class JsonSearchIndex final : public rdbms::TableObserver {
 public:
  struct Options {
    /// Maintain the persistent DataGuide ($DG) alongside the postings.
    bool maintain_dataguide = true;
    /// Maintain inverted postings (paths/values/keywords). Disable to
    /// isolate DataGuide maintenance cost in benchmarks.
    bool maintain_postings = true;
    /// Optional observer fed every scalar leaf the DataGuide walk visits
    /// (ISSUE 5: the collection's PathStatsRepository rides here, so
    /// value-level statistics cost no extra parse or walk). Not owned;
    /// must outlive the index. Only fires when maintain_dataguide is on.
    dataguide::ScalarSink* scalar_sink = nullptr;
  };

  /// Attaches to `table` as an observer and back-fills from existing rows.
  /// The index does not own the table; call Detach() (or destroy the
  /// index) before the table goes away.
  static Result<std::unique_ptr<JsonSearchIndex>> Create(
      rdbms::Table* table, const std::string& json_column,
      const Options& options);
  static Result<std::unique_ptr<JsonSearchIndex>> Create(
      rdbms::Table* table, const std::string& json_column) {
    return Create(table, json_column, Options());
  }

  ~JsonSearchIndex() override;
  void Detach();

  // --- TableObserver --------------------------------------------------------
  Status OnInsert(size_t row_id, const rdbms::Row& row) override;
  Status OnDelete(size_t row_id, const rdbms::Row& row) override;
  Status OnReplace(size_t row_id, const rdbms::Row& old_row,
                   const rdbms::Row& new_row) override;
  Status UndoInsert(size_t row_id, const rdbms::Row& row) override;
  Status UndoDelete(size_t row_id, const rdbms::Row& row) override;
  Status UndoReplace(size_t row_id, const rdbms::Row& old_row,
                     const rdbms::Row& new_row) override;

  // --- Crash consistency ------------------------------------------------
  /// True after a compensation failure left the postings untrustworthy.
  /// While degraded, maintenance is suspended and posting-backed access
  /// paths must not be used.
  bool degraded() const { return degraded_; }
  const std::string& degraded_reason() const { return degraded_reason_; }
  /// Test/ops hook: force the degraded state without an actual failure.
  void MarkDegraded(std::string reason);

  /// Reconstructs the postings (and DataGuide coverage) from the live
  /// table rows and clears the degraded state. On failure the index stays
  /// (or becomes) degraded with the failure recorded.
  Status Rebuild();

  /// Compares the posting maps against a shadow rebuild from the live
  /// table rows, appending one line per divergence (missing or spurious
  /// posting) to `problems`. No-op when postings are not maintained.
  void VerifyPostings(std::vector<std::string>* problems) const;

  // --- Ad-hoc queries (JSON_EXISTS / JSON_VALUE / JSON_TEXTCONTAINS
  //     pushdown) --------------------------------------------------------
  /// Row ids of documents containing the structural path ("$.a.b").
  std::vector<size_t> DocsWithPath(const std::string& path) const;
  /// Row ids of documents where `path` holds exactly `value` (scalar
  /// comparison by canonical display form).
  std::vector<size_t> DocsWithValue(const std::string& path,
                                    const Value& value) const;
  /// Row ids of documents where any string under `path` contains the
  /// keyword (lowercased token match).
  std::vector<size_t> DocsWithKeyword(const std::string& path,
                                      const std::string& keyword) const;

  // --- Persistent DataGuide --------------------------------------------
  const dataguide::DataGuide& dataguide() const { return dataguide_; }

  /// Renders the $DG side table (§3.2.1, Tables 2/4/6): one row per
  /// distinct path with its type string and statistics. Schema:
  /// (PATH, TYPE, LENGTH, FREQUENCY, NULL_COUNT, MIN, MAX).
  rdbms::Schema DgSchema() const;
  std::vector<rdbms::Row> DgRows() const;

  /// The live $DG side table maintained incrementally on the DML path
  /// (PATH, TYPE columns; statistics live in DgRows()).
  const rdbms::Table* dg_table() const { return dg_table_.get(); }

  /// getDataGuide(): flat or hierarchical JSON rendering (§3.2.2).
  std::string GetDataGuide(bool hierarchical = false) const;

  // --- Introspection ----------------------------------------------------
  size_t indexed_document_count() const { return indexed_docs_; }
  size_t posting_count() const;

  /// In-memory footprint of the posting maps (ISSUE 9 memory attribution):
  /// per-entry node overhead + owned key strings (by size()) + row-id
  /// payloads. Maintained incrementally on every posting mutation, O(1) to
  /// read — the collection's index-postings memory reporter polls this.
  uint64_t MemoryBytes() const {
    return postings_bytes_.load(std::memory_order_relaxed);
  }
  /// Exact O(postings) walk with the same formula; the accounting unit
  /// test pins MemoryBytes() == RecomputeMemoryBytes() across DML mixes,
  /// rollbacks and rebuilds.
  uint64_t RecomputeMemoryBytes() const;
  /// Number of $DG persistence events (documents that introduced at least
  /// one new path) — what Figures 7/8 measure indirectly.
  size_t dg_write_count() const { return dg_writes_; }

 private:
  JsonSearchIndex(rdbms::Table* table, size_t json_col_pos, Options options)
      : table_(table), json_col_pos_(json_col_pos), options_(options) {}

  /// Staged posting keys of one document (the row id is supplied at apply
  /// time). Staging walks the document without touching the maps; the
  /// apply/erase phases are then pure in-memory map mutations that cannot
  /// fail, which is what makes stage-then-swap atomic.
  struct DocPostings {
    std::vector<std::string> paths;
    std::vector<std::pair<std::string, std::string>> values;    // path, display
    std::vector<std::pair<std::string, std::string>> keywords;  // path, token
  };

  /// Owns the parse when the IS JSON constraint's DOM was unavailable.
  struct ParsedDoc {
    std::unique_ptr<json::JsonNode> owned;
    const json::JsonNode* tree = nullptr;
  };
  /// `doc` must be non-null. When `use_dml_parse`, borrows the DOM the IS
  /// JSON check already built for the in-flight DML (§3.2.1) if present.
  Result<ParsedDoc> ParseDoc(const Value& doc, bool use_dml_parse) const;

  Result<DocPostings> StagePostings(const json::Dom& dom) const;
  void ApplyPostings(const DocPostings& staged, size_t row_id);
  void ErasePostings(const DocPostings& staged, size_t row_id);

  /// DataGuide + $DG side-table maintenance for one document.
  Status MaintainDataGuide(const json::Dom& dom);

  /// Telemetry wrappers around the *Impl workers: count one document and
  /// record one maintenance-latency observation per DML event (a replace
  /// reports as one replace, not a delete+insert — ISSUE 2 satellite fix).
  Status IndexDocument(size_t row_id, const Value& doc);
  Status UnindexDocument(size_t row_id, const Value& doc);
  Status IndexDocumentImpl(size_t row_id, const Value& doc);
  Status UnindexDocumentImpl(size_t row_id, const Value& doc);
  Status ReplaceDocumentImpl(size_t row_id, const Value& old_doc,
                             const Value& new_doc);

  rdbms::Table* table_;
  size_t json_col_pos_;  // position within the physical row
  Options options_;

  // (path, canonical scalar display) -> sorted row ids.
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      value_postings_;
  // path -> sorted row ids.
  std::map<std::string, std::vector<size_t>> path_postings_;
  // (path, lowercased token) -> sorted row ids.
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      keyword_postings_;

  dataguide::DataGuide dataguide_;
  // Incremental accounting over the three posting maps; reset with them.
  // Atomic (relaxed) because DML mutates it while MemoryTracker reporter
  // callbacks read it from other threads (workload-snapshot tick,
  // TELEMETRY$MEMORY refresh).
  std::atomic<uint64_t> postings_bytes_{0};
  // The persistent $DG side table (§3.2.1): one row per distinct path,
  // appended when a document introduces new structure.
  std::unique_ptr<rdbms::Table> dg_table_;
  size_t indexed_docs_ = 0;
  size_t dg_writes_ = 0;
  bool detached_ = false;
  bool degraded_ = false;
  std::string degraded_reason_;
};

/// Splits a string into lowercase alphanumeric tokens (the tokenizer the
/// keyword postings use).
std::vector<std::string> TokenizeKeywords(std::string_view text);

/// Index-backed access paths (§3.2.1: JSON_EXISTS / JSON_VALUE equality /
/// JSON_TEXTCONTAINS predicates evaluated through the inverted index
/// instead of scanning every document). Emits the base table's rows (in
/// row-id order) whose documents the index reports as matching.
rdbms::OperatorPtr IndexedPathScan(const rdbms::Table* table,
                                   const JsonSearchIndex* index,
                                   std::string path);
rdbms::OperatorPtr IndexedValueScan(const rdbms::Table* table,
                                    const JsonSearchIndex* index,
                                    std::string path, Value value);
rdbms::OperatorPtr IndexedKeywordScan(const rdbms::Table* table,
                                      const JsonSearchIndex* index,
                                      std::string path, std::string keyword);

/// One conjunct of a posting-list intersection: a path-equals-value term
/// when `value` is set, a bare path-existence term otherwise.
struct IndexTerm {
  std::string path;
  std::optional<Value> value;
};

/// Statistics of the intersection IndexedIntersectionScan performed, for
/// the router's cost feedback.
struct IntersectionInfo {
  size_t total_postings = 0;  // summed input posting-list lengths
  size_t matched = 0;         // rows surviving the intersection
};

/// Conjunctive access path (ISSUE 5 / ROADMAP "Router cost model"): fetches
/// one posting list per term, intersects them smallest-first (sorted row-id
/// merge with early exit on an empty intermediate), and emits the surviving
/// base-table rows in row-id order. With zero terms emits nothing.
rdbms::OperatorPtr IndexedIntersectionScan(const rdbms::Table* table,
                                           const JsonSearchIndex* index,
                                           const std::vector<IndexTerm>& terms,
                                           IntersectionInfo* info = nullptr);

}  // namespace fsdm::index

#endif  // FSDM_INDEX_SEARCH_INDEX_H_
