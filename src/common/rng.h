#ifndef FSDM_COMMON_RNG_H_
#define FSDM_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace fsdm {

/// Deterministic xorshift64* generator for workload synthesis. Seeded
/// explicitly so every benchmark and test run regenerates identical
/// collections.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x853c49e6748fea9bull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, bound).
  uint64_t Uniform(uint64_t bound) { return bound ? Next() % bound : 0; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  /// Lowercase alphanumeric string of the given length.
  std::string AlphaNum(size_t len) {
    static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) s.push_back(kChars[Uniform(36)]);
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace fsdm

#endif  // FSDM_COMMON_RNG_H_
