#ifndef FSDM_COMMON_CRC32C_H_
#define FSDM_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum the WAL uses for per-record and segment-header framing
/// (ISSUE 8). Chosen over plain CRC-32 for its better burst-error
/// detection; this is the same polynomial iSCSI, ext4 and LevelDB's log
/// format use. Software slicing-by-8 implementation: ~1 byte/cycle,
/// plenty for a log that also pays an fsync per group.

namespace fsdm {

/// CRC of `data[0, n)` continuing from `seed` (pass 0 for a fresh CRC).
/// The seed parameter lets callers checksum discontiguous spans
/// (header-with-crc-field-zeroed + payload) without copying.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Masked form for values stored inside the region they protect, borrowed
/// from LevelDB: a CRC of data that itself contains CRCs is weak, so the
/// stored value is rotated and offset. Unmask(Mask(c)) == c.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace fsdm

#endif  // FSDM_COMMON_CRC32C_H_
