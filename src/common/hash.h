#ifndef FSDM_COMMON_HASH_H_
#define FSDM_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace fsdm {

/// FNV-1a 32-bit. Used for OSON field-name hash ids (§4.2.1): the same
/// function must be applied at encode time and at SQL/JSON path compile time
/// so that pre-computed hash ids in the query plan match the per-document
/// dictionary.
inline uint32_t FieldNameHash(std::string_view name) {
  uint32_t h = 2166136261u;
  for (unsigned char c : name) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

/// FNV-1a 64-bit for general hashing (hash join keys, interning).
inline uint64_t Hash64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace fsdm

#endif  // FSDM_COMMON_HASH_H_
