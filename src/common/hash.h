#ifndef FSDM_COMMON_HASH_H_
#define FSDM_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace fsdm {

/// FNV-1a 32-bit. Used for OSON field-name hash ids (§4.2.1): the same
/// function must be applied at encode time and at SQL/JSON path compile time
/// so that pre-computed hash ids in the query plan match the per-document
/// dictionary.
inline uint32_t FieldNameHash(std::string_view name) {
  uint32_t h = 2166136261u;
  for (unsigned char c : name) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

/// FNV-1a 64-bit for general hashing (hash join keys, interning).
inline uint64_t Hash64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Seed for shard placement hashing (ISSUE 6). A fixed, documented value —
/// NOT std::hash, whose result is implementation-defined — so a document
/// key lands on the same shard on every platform, build, and run, and the
/// placement regression test can pin exact shard assignments. Arbitrary
/// odd constant; changing it re-shards every existing collection, so it is
/// part of the on-disk-equivalent contract and must never change.
inline constexpr uint64_t kShardPlacementSeed = 0x5344'4d53'4841'5244ull;

/// Placement hash for sharded collections: shard = ShardPlacementHash(key)
/// % shard_count, where `key` is the document key's canonical display
/// string (Value::ToDisplayString), so integer key 7 and string key "7"
/// hash identically to their SQL-visible representation. Seeded FNV-1a 64.
inline uint64_t ShardPlacementHash(std::string_view key) {
  return Hash64(key, kShardPlacementSeed);
}

}  // namespace fsdm

#endif  // FSDM_COMMON_HASH_H_
