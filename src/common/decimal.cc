#include "common/decimal.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>

namespace fsdm {

namespace {

// Rounds a digit vector (most significant first) to at most max_digits,
// using round-half-up. May carry out of the leading digit, in which case the
// vector grows back by one and *exponent is bumped.
void RoundDigits(std::vector<uint8_t>* digits, long* exponent,
                 int max_digits) {
  if (static_cast<int>(digits->size()) <= max_digits) return;
  bool round_up = (*digits)[max_digits] >= 5;
  digits->resize(max_digits);
  if (round_up) {
    int i = max_digits - 1;
    while (i >= 0) {
      if ((*digits)[i] == 9) {
        (*digits)[i] = 0;
        --i;
      } else {
        (*digits)[i]++;
        break;
      }
    }
    if (i < 0) {
      digits->insert(digits->begin(), 1);
      digits->resize(max_digits);  // keep cap after carry
      ++*exponent;
    }
  }
}

}  // namespace

Decimal Decimal::Make(int sign, long exponent, std::vector<uint8_t> digits) {
  // Strip leading zeros (adjusting exponent) and trailing zeros.
  size_t lead = 0;
  while (lead < digits.size() && digits[lead] == 0) ++lead;
  if (lead > 0) {
    digits.erase(digits.begin(), digits.begin() + lead);
    exponent -= static_cast<long>(lead);
  }
  while (!digits.empty() && digits.back() == 0) digits.pop_back();
  if (digits.empty() || sign == 0) return Decimal();

  RoundDigits(&digits, &exponent, kMaxDigits);
  // Rounding can leave trailing zeros ("0.999..9" -> "1.000..0").
  while (!digits.empty() && digits.back() == 0) digits.pop_back();
  if (digits.empty()) return Decimal();

  Decimal d;
  d.sign_ = static_cast<int8_t>(sign < 0 ? -1 : 1);
  d.exponent_ = static_cast<int32_t>(exponent);
  d.digits_ = std::move(digits);
  return d;
}

Decimal Decimal::FromInt64(int64_t v) {
  if (v == 0) return Decimal();
  int sign = 1;
  uint64_t mag;
  if (v < 0) {
    sign = -1;
    mag = static_cast<uint64_t>(-(v + 1)) + 1;  // avoid INT64_MIN overflow
  } else {
    mag = static_cast<uint64_t>(v);
  }
  std::vector<uint8_t> digits;
  while (mag > 0) {
    digits.push_back(static_cast<uint8_t>(mag % 10));
    mag /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  long exponent = static_cast<long>(digits.size());
  return Make(sign, exponent, std::move(digits));
}

Result<Decimal> Decimal::FromDouble(double v) {
  if (std::isnan(v) || std::isinf(v)) {
    return Status::InvalidArgument("non-finite double has no Decimal value");
  }
  // Shortest round-tripping decimal text.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (strtod(buf, nullptr) == v) break;
  }
  return FromString(buf);
}

Result<Decimal> Decimal::FromString(std::string_view text) {
  const char* p = text.data();
  const char* end = p + text.size();
  if (p == end) return Status::ParseError("empty number");

  int sign = 1;
  if (*p == '-') {
    sign = -1;
    ++p;
  } else if (*p == '+') {
    ++p;
  }

  std::vector<uint8_t> digits;
  long exponent = 0;
  bool seen_digit = false;
  bool seen_point = false;
  long frac_digits = 0;
  long int_digits = 0;

  while (p < end) {
    char c = *p;
    if (c >= '0' && c <= '9') {
      seen_digit = true;
      digits.push_back(static_cast<uint8_t>(c - '0'));
      if (seen_point) {
        ++frac_digits;
      } else {
        ++int_digits;
      }
      ++p;
    } else if (c == '.' && !seen_point) {
      seen_point = true;
      ++p;
    } else {
      break;
    }
  }
  if (!seen_digit) return Status::ParseError("number has no digits");

  long exp_part = 0;
  if (p < end && (*p == 'e' || *p == 'E')) {
    ++p;
    int esign = 1;
    if (p < end && (*p == '-' || *p == '+')) {
      if (*p == '-') esign = -1;
      ++p;
    }
    if (p == end || *p < '0' || *p > '9') {
      return Status::ParseError("malformed exponent");
    }
    while (p < end && *p >= '0' && *p <= '9') {
      exp_part = exp_part * 10 + (*p - '0');
      if (exp_part > 1000000) return Status::ParseError("exponent overflow");
      ++p;
    }
    exp_part *= esign;
  }
  if (p != end) return Status::ParseError("trailing characters after number");

  exponent = int_digits + exp_part;
  (void)frac_digits;
  return Make(sign, exponent, std::move(digits));
}

bool Decimal::IsInteger() const {
  if (is_zero()) return true;
  return exponent_ >= static_cast<int32_t>(digits_.size());
}

std::string Decimal::ToString() const {
  if (is_zero()) return "0";
  std::string out;
  if (sign_ < 0) out.push_back('-');

  long n = static_cast<long>(digits_.size());
  long e = exponent_;
  // Plain notation when it stays compact.
  if (e >= 1 && e <= 21 && e >= n) {
    // Integer with trailing zeros: d1..dn 0...0
    for (uint8_t d : digits_) out.push_back(static_cast<char>('0' + d));
    out.append(static_cast<size_t>(e - n), '0');
  } else if (e >= 1 && e <= 21) {
    // d1..de . d(e+1)..dn
    for (long i = 0; i < e; ++i)
      out.push_back(static_cast<char>('0' + digits_[i]));
    out.push_back('.');
    for (long i = e; i < n; ++i)
      out.push_back(static_cast<char>('0' + digits_[i]));
  } else if (e <= 0 && e > -6) {
    out += "0.";
    out.append(static_cast<size_t>(-e), '0');
    for (uint8_t d : digits_) out.push_back(static_cast<char>('0' + d));
  } else {
    // Scientific: d1.d2..dn E (e-1)
    out.push_back(static_cast<char>('0' + digits_[0]));
    if (n > 1) {
      out.push_back('.');
      for (long i = 1; i < n; ++i)
        out.push_back(static_cast<char>('0' + digits_[i]));
    }
    char buf[16];
    snprintf(buf, sizeof(buf), "E%+ld", e - 1);
    out += buf;
  }
  return out;
}

double Decimal::ToDouble() const {
  if (is_zero()) return 0.0;
  return strtod(ToString().c_str(), nullptr);
}

Result<int64_t> Decimal::ToInt64() const {
  if (is_zero()) return int64_t{0};
  if (!IsInteger()) return Status::InvalidArgument("not an integer");
  if (exponent_ > 19) return Status::OutOfRange("exceeds int64 range");
  uint64_t mag = 0;
  long n = static_cast<long>(digits_.size());
  for (long i = 0; i < exponent_; ++i) {
    uint8_t d = i < n ? digits_[i] : 0;
    if (mag > (UINT64_MAX - d) / 10) return Status::OutOfRange("int64 overflow");
    mag = mag * 10 + d;
  }
  if (sign_ > 0) {
    if (mag > static_cast<uint64_t>(INT64_MAX))
      return Status::OutOfRange("int64 overflow");
    return static_cast<int64_t>(mag);
  }
  if (mag > static_cast<uint64_t>(INT64_MAX) + 1)
    return Status::OutOfRange("int64 overflow");
  return static_cast<int64_t>(-static_cast<int64_t>(mag - 1) - 1);
}

void Decimal::EncodeBinary(std::string* out) const {
  if (is_zero()) {
    out->push_back(static_cast<char>(0x80));
    return;
  }
  // Re-express as base-100: value = 0.P1P2... * 100^E. Align the decimal
  // exponent to an even boundary by left-padding one zero digit if odd.
  long dexp = exponent_;
  std::vector<uint8_t> dec = digits_;
  if (dexp & 1) {
    // Odd exponents need a leading zero so pairs align; (dexp+1) is even.
    dec.insert(dec.begin(), 0);
    ++dexp;
  }
  long e100 = dexp / 2;
  if (dec.size() & 1) dec.push_back(0);

  if (sign_ > 0) {
    out->push_back(static_cast<char>(0xC0 + std::clamp(e100, -62L, 62L)));
    for (size_t i = 0; i < dec.size(); i += 2) {
      uint8_t pair = static_cast<uint8_t>(dec[i] * 10 + dec[i + 1]);
      out->push_back(static_cast<char>(pair + 1));
    }
  } else {
    out->push_back(static_cast<char>(0x40 - std::clamp(e100, -62L, 62L)));
    for (size_t i = 0; i < dec.size(); i += 2) {
      uint8_t pair = static_cast<uint8_t>(dec[i] * 10 + dec[i + 1]);
      out->push_back(static_cast<char>(101 - pair));
    }
    out->push_back(static_cast<char>(0x66));  // terminator orders negatives
  }
}

Result<Decimal> Decimal::DecodeBinary(const uint8_t* data, size_t len) {
  if (len == 0) return Status::Corruption("empty decimal image");
  uint8_t header = data[0];
  if (header == 0x80) {
    if (len != 1) return Status::Corruption("zero decimal with trailing bytes");
    return Decimal();
  }
  bool negative = header < 0x80;
  long e100;
  size_t mant_len;
  if (negative) {
    e100 = 0x40 - static_cast<long>(header);
    if (len < 3 || data[len - 1] != 0x66) {
      return Status::Corruption("negative decimal missing terminator");
    }
    mant_len = len - 2;
  } else {
    e100 = static_cast<long>(header) - 0xC0;
    if (len < 2) return Status::Corruption("decimal image truncated");
    mant_len = len - 1;
  }

  std::vector<uint8_t> digits;
  digits.reserve(mant_len * 2);
  for (size_t i = 0; i < mant_len; ++i) {
    uint8_t b = data[1 + i];
    uint8_t pair;
    if (negative) {
      if (b < 1 || b > 101) return Status::Corruption("bad mantissa byte");
      pair = static_cast<uint8_t>(101 - b);
    } else {
      if (b < 1 || b > 100) return Status::Corruption("bad mantissa byte");
      pair = static_cast<uint8_t>(b - 1);
    }
    digits.push_back(static_cast<uint8_t>(pair / 10));
    digits.push_back(static_cast<uint8_t>(pair % 10));
  }
  return Make(negative ? -1 : 1, e100 * 2, std::move(digits));
}

int Decimal::CompareTo(const Decimal& other) const {
  if (sign_ != other.sign_) return sign_ < other.sign_ ? -1 : 1;
  if (sign_ == 0) return 0;
  int mag;  // comparison of magnitudes
  if (exponent_ != other.exponent_) {
    mag = exponent_ < other.exponent_ ? -1 : 1;
  } else {
    size_t n = std::min(digits_.size(), other.digits_.size());
    mag = 0;
    for (size_t i = 0; i < n; ++i) {
      if (digits_[i] != other.digits_[i]) {
        mag = digits_[i] < other.digits_[i] ? -1 : 1;
        break;
      }
    }
    if (mag == 0 && digits_.size() != other.digits_.size()) {
      mag = digits_.size() < other.digits_.size() ? -1 : 1;
    }
  }
  return sign_ > 0 ? mag : -mag;
}

Decimal Decimal::Negated() const {
  Decimal d = *this;
  d.sign_ = static_cast<int8_t>(-d.sign_);
  return d;
}

Decimal Decimal::Add(const Decimal& other) const {
  if (is_zero()) return other;
  if (other.is_zero()) return *this;

  // Work on magnitude digit strings aligned at a common exponent.
  auto aligned = [](const Decimal& d, long top_exp) {
    std::vector<uint8_t> v;
    long lead_zeros = top_exp - d.exponent_;
    v.insert(v.end(), static_cast<size_t>(lead_zeros), 0);
    v.insert(v.end(), d.digits_.begin(), d.digits_.end());
    return v;
  };
  long top = std::max(exponent_, other.exponent_) + 1;  // +1 headroom for carry
  std::vector<uint8_t> a = aligned(*this, top);
  std::vector<uint8_t> b = aligned(other, top);
  size_t n = std::max(a.size(), b.size());
  a.resize(n, 0);
  b.resize(n, 0);

  if (sign_ == other.sign_) {
    // Magnitude addition.
    std::vector<uint8_t> sum(n, 0);
    int carry = 0;
    for (size_t i = n; i-- > 0;) {
      int s = a[i] + b[i] + carry;
      sum[i] = static_cast<uint8_t>(s % 10);
      carry = s / 10;
    }
    // top had headroom, so carry must be consumed.
    return Make(sign_, top, std::move(sum));
  }

  // Opposite signs: subtract smaller magnitude from larger.
  int cmp = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      cmp = a[i] < b[i] ? -1 : 1;
      break;
    }
  }
  if (cmp == 0) return Decimal();
  const std::vector<uint8_t>& big = cmp > 0 ? a : b;
  const std::vector<uint8_t>& small = cmp > 0 ? b : a;
  int result_sign = cmp > 0 ? sign_ : other.sign_;
  std::vector<uint8_t> diff(n, 0);
  int borrow = 0;
  for (size_t i = n; i-- > 0;) {
    int s = big[i] - small[i] - borrow;
    if (s < 0) {
      s += 10;
      borrow = 1;
    } else {
      borrow = 0;
    }
    diff[i] = static_cast<uint8_t>(s);
  }
  return Make(result_sign, top, std::move(diff));
}

Decimal Decimal::Subtract(const Decimal& other) const {
  return Add(other.Negated());
}

Decimal Decimal::Multiply(const Decimal& other) const {
  if (is_zero() || other.is_zero()) return Decimal();
  size_t na = digits_.size();
  size_t nb = other.digits_.size();
  std::vector<int> acc(na + nb, 0);
  for (size_t i = na; i-- > 0;) {
    for (size_t j = nb; j-- > 0;) {
      acc[i + j + 1] += digits_[i] * other.digits_[j];
    }
  }
  for (size_t k = acc.size(); k-- > 1;) {
    acc[k - 1] += acc[k] / 10;
    acc[k] %= 10;
  }
  std::vector<uint8_t> digits(acc.begin(), acc.end());
  long exponent = static_cast<long>(exponent_) + other.exponent_;
  return Make(sign_ * other.sign_, exponent, std::move(digits));
}

Result<Decimal> Decimal::DivideApprox(const Decimal& other) const {
  if (other.is_zero()) return Status::InvalidArgument("division by zero");
  return FromDouble(ToDouble() / other.ToDouble());
}

}  // namespace fsdm
