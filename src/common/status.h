#ifndef FSDM_COMMON_STATUS_H_
#define FSDM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fsdm {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention: every fallible public function returns a Status (or a
/// Result<T>); exceptions never cross the API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,      ///< malformed JSON / path / binary image
  kNotFound,        ///< named entity (table, column, path) absent
  kAlreadyExists,   ///< duplicate name on creation
  kOutOfRange,      ///< index or offset outside the valid range
  kCorruption,      ///< binary image fails structural validation
  kConstraintViolation,  ///< e.g. IS JSON check constraint rejected a row
  kUnsupported,     ///< valid request outside the implemented subset
  kUnavailable,     ///< entity exists but refuses service (quarantined)
  kInternal,
};

/// Return-value error channel. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error, in the spirit of arrow::Result. The error case carries a
/// non-OK Status; the value case holds T.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out; callers must have checked ok().
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define FSDM_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::fsdm::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression and binds its value, or propagates the
/// error Status.
#define FSDM_ASSIGN_OR_RETURN(lhs, expr)        \
  auto FSDM_CONCAT_(_res, __LINE__) = (expr);   \
  if (!FSDM_CONCAT_(_res, __LINE__).ok())       \
    return FSDM_CONCAT_(_res, __LINE__).status(); \
  lhs = FSDM_CONCAT_(_res, __LINE__).MoveValue()

#define FSDM_CONCAT_IMPL_(a, b) a##b
#define FSDM_CONCAT_(a, b) FSDM_CONCAT_IMPL_(a, b)

}  // namespace fsdm

#endif  // FSDM_COMMON_STATUS_H_
