#include "common/crc32c.h"

#include <array>

namespace fsdm {
namespace {

/// 8 slicing tables, built once at first use. Table 0 is the classic
/// byte-at-a-time table for the reflected Castagnoli polynomial; table k
/// advances a byte's contribution k extra bytes through the register.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;

  while (n >= 8) {
    // Fold 8 bytes at once: each byte goes through the table that
    // accounts for its distance from the end of the block.
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xFFu] ^ t[6][(crc >> 8) & 0xFFu] ^
          t[5][(crc >> 16) & 0xFFu] ^ t[4][(crc >> 24) & 0xFFu] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace fsdm
