#include "common/value.h"

#include <cstdio>
#include <cstdlib>

#include "common/hash.h"

namespace fsdm {

std::string_view ScalarTypeName(ScalarType type) {
  switch (type) {
    case ScalarType::kNull:
      return "null";
    case ScalarType::kBool:
      return "boolean";
    case ScalarType::kInt64:
    case ScalarType::kDouble:
    case ScalarType::kDecimal:
      return "number";
    case ScalarType::kString:
      return "string";
    case ScalarType::kDate:
      return "date";
    case ScalarType::kTimestamp:
      return "timestamp";
    case ScalarType::kBinary:
      return "binary";
  }
  return "unknown";
}

Value Value::Date(int32_t days) { return Value(Repr(DateRepr{days})); }
Value Value::Timestamp(int64_t micros) {
  return Value(Repr(TimestampRepr{micros}));
}
Value Value::Binary(std::string bytes) {
  return Value(Repr(BinaryRepr{std::move(bytes)}));
}

ScalarType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return ScalarType::kNull;
    case 1:
      return ScalarType::kBool;
    case 2:
      return ScalarType::kInt64;
    case 3:
      return ScalarType::kDouble;
    case 4:
      return ScalarType::kDecimal;
    case 5:
      return ScalarType::kString;
    case 6:
      return ScalarType::kDate;
    case 7:
      return ScalarType::kTimestamp;
    default:
      return ScalarType::kBinary;
  }
}

bool Value::IsNumeric() const {
  ScalarType t = type();
  return t == ScalarType::kInt64 || t == ScalarType::kDouble ||
         t == ScalarType::kDecimal;
}

int32_t Value::AsDate() const { return std::get<DateRepr>(repr_).days; }
int64_t Value::AsTimestamp() const {
  return std::get<TimestampRepr>(repr_).micros;
}
const std::string& Value::AsBinary() const {
  return std::get<BinaryRepr>(repr_).bytes;
}

double Value::NumericAsDouble() const {
  switch (type()) {
    case ScalarType::kInt64:
      return static_cast<double>(AsInt64());
    case ScalarType::kDouble:
      return AsDouble();
    case ScalarType::kDecimal:
      return AsDecimal().ToDouble();
    default:
      return 0.0;
  }
}

Decimal Value::NumericAsDecimal() const {
  switch (type()) {
    case ScalarType::kInt64:
      return Decimal::FromInt64(AsInt64());
    case ScalarType::kDouble: {
      Result<Decimal> d = Decimal::FromDouble(AsDouble());
      return d.ok() ? d.MoveValue() : Decimal();
    }
    case ScalarType::kDecimal:
      return AsDecimal();
    default:
      return Decimal();
  }
}

namespace {

int Spaceship(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

template <typename T>
int Spaceship(const T& a, const T& b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

}  // namespace

Result<int> Value::CompareTo(const Value& other) const {
  ScalarType ta = type();
  ScalarType tb = other.type();
  if (ta == ScalarType::kNull || tb == ScalarType::kNull) {
    if (ta == tb) return 0;
    return ta == ScalarType::kNull ? -1 : 1;
  }
  if (IsNumeric() && other.IsNumeric()) {
    // Exact path when both are int64; exact decimal path unless a double is
    // involved.
    if (ta == ScalarType::kInt64 && tb == ScalarType::kInt64) {
      return Spaceship(AsInt64(), other.AsInt64());
    }
    if (ta != ScalarType::kDouble && tb != ScalarType::kDouble) {
      return NumericAsDecimal().CompareTo(other.NumericAsDecimal());
    }
    return Spaceship(NumericAsDouble(), other.NumericAsDouble());
  }
  if (ta != tb) {
    return Status::InvalidArgument(
        std::string("cannot compare ") + std::string(ScalarTypeName(ta)) +
        " with " + std::string(ScalarTypeName(tb)));
  }
  switch (ta) {
    case ScalarType::kBool:
      return Spaceship(AsBool() ? 1 : 0, other.AsBool() ? 1 : 0);
    case ScalarType::kString:
      return Spaceship(AsString(), other.AsString());
    case ScalarType::kDate:
      return Spaceship(AsDate(), other.AsDate());
    case ScalarType::kTimestamp:
      return Spaceship(AsTimestamp(), other.AsTimestamp());
    case ScalarType::kBinary:
      return Spaceship(AsBinary(), other.AsBinary());
    default:
      return Status::Internal("unexpected type in CompareTo");
  }
}

bool Value::EqualsForGrouping(const Value& other) const {
  ScalarType ta = type();
  ScalarType tb = other.type();
  if (ta == ScalarType::kNull || tb == ScalarType::kNull) return ta == tb;
  if (IsNumeric() && other.IsNumeric()) {
    Result<int> cmp = CompareTo(other);
    return cmp.ok() && cmp.value() == 0;
  }
  if (ta != tb) return false;
  Result<int> cmp = CompareTo(other);
  return cmp.ok() && cmp.value() == 0;
}

uint64_t Value::HashForGrouping() const {
  switch (type()) {
    case ScalarType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ScalarType::kBool:
      return AsBool() ? 2 : 1;
    case ScalarType::kInt64:
    case ScalarType::kDouble:
    case ScalarType::kDecimal: {
      // Hash the canonical decimal binary image so numerically equal values
      // collide regardless of representation.
      std::string enc;
      NumericAsDecimal().EncodeBinary(&enc);
      return Hash64(enc, /*seed=*/3);
    }
    case ScalarType::kString:
      return Hash64(AsString(), /*seed=*/5);
    case ScalarType::kDate:
      return Hash64(std::string_view(
                        reinterpret_cast<const char*>(&std::get<DateRepr>(repr_).days),
                        sizeof(int32_t)),
                    /*seed=*/7);
    case ScalarType::kTimestamp: {
      int64_t v = AsTimestamp();
      return Hash64(std::string_view(reinterpret_cast<const char*>(&v),
                                     sizeof(v)),
                    /*seed=*/11);
    }
    case ScalarType::kBinary:
      return Hash64(AsBinary(), /*seed=*/13);
  }
  return 0;
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ScalarType::kNull:
      return "NULL";
    case ScalarType::kBool:
      return AsBool() ? "true" : "false";
    case ScalarType::kInt64:
      return std::to_string(AsInt64());
    case ScalarType::kDouble: {
      // Shortest representation that round-trips the double.
      char buf[40];
      double d = AsDouble();
      for (int prec = 15; prec <= 17; ++prec) {
        snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (strtod(buf, nullptr) == d) break;
      }
      return buf;
    }
    case ScalarType::kDecimal:
      return AsDecimal().ToString();
    case ScalarType::kString:
      return AsString();
    case ScalarType::kDate: {
      char buf[24];
      snprintf(buf, sizeof(buf), "DATE(%d)", AsDate());
      return buf;
    }
    case ScalarType::kTimestamp: {
      char buf[40];
      snprintf(buf, sizeof(buf), "TS(%lld)",
               static_cast<long long>(AsTimestamp()));
      return buf;
    }
    case ScalarType::kBinary:
      return "<binary:" + std::to_string(AsBinary().size()) + "B>";
  }
  return "?";
}

}  // namespace fsdm
