#ifndef FSDM_COMMON_VALUE_H_
#define FSDM_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/decimal.h"
#include "common/status.h"

namespace fsdm {

/// Scalar type tags shared by the SQL engine, the JSON scalar model and the
/// binary codecs. JSON itself only has string/number/bool/null; like BSON
/// and OSON we extend the set with date/timestamp/binary so typed virtual
/// columns can round-trip engine-native values.
enum class ScalarType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,    ///< fast path for integral numbers that fit in 64 bits
  kDouble,   ///< IEEE-754 binary64 encoding option for JSON numbers
  kDecimal,  ///< engine-native Decimal (default JSON number encoding)
  kString,
  kDate,       ///< days since 1970-01-01
  kTimestamp,  ///< microseconds since epoch
  kBinary,     ///< raw bytes
};

/// Returns a stable lowercase name ("number", "string", ...) matching the
/// vocabulary the paper's DataGuide tables use. Int64/double/decimal all
/// report "number".
std::string_view ScalarTypeName(ScalarType type);

/// A SQL scalar value. Small, copyable; strings are owned.
class Value {
 public:
  /// SQL NULL.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value Dec(Decimal v) { return Value(Repr(std::move(v))); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Date(int32_t days);
  static Value Timestamp(int64_t micros);
  static Value Binary(std::string bytes);

  ScalarType type() const;
  bool is_null() const { return type() == ScalarType::kNull; }
  /// True for int64/double/decimal.
  bool IsNumeric() const;

  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const Decimal& AsDecimal() const { return std::get<Decimal>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  int32_t AsDate() const;
  int64_t AsTimestamp() const;
  const std::string& AsBinary() const;

  /// Any numeric kind to double (lossy for wide decimals).
  double NumericAsDouble() const;
  /// Any numeric kind to Decimal (exact).
  Decimal NumericAsDecimal() const;

  /// SQL-style three-way comparison with numeric coercion across
  /// int64/double/decimal. Returns error for incomparable type pairs
  /// (e.g. string vs number); NULL compares less than everything else
  /// (NULLS FIRST total order for sorting — predicate evaluation handles
  /// NULL separately).
  Result<int> CompareTo(const Value& other) const;

  /// Equality used by hash join/group-by keys: type-tagged, no coercion
  /// except among numeric kinds.
  bool EqualsForGrouping(const Value& other) const;
  /// Hash consistent with EqualsForGrouping.
  uint64_t HashForGrouping() const;

  /// Display form: SQL-ish text (strings unquoted). NULL -> "NULL".
  std::string ToDisplayString() const;

 private:
  // Date/timestamp/binary piggyback on tagged wrappers so the variant can
  // distinguish them from int64/string.
  struct DateRepr {
    int32_t days;
  };
  struct TimestampRepr {
    int64_t micros;
  };
  struct BinaryRepr {
    std::string bytes;
  };
  using Repr = std::variant<std::monostate, bool, int64_t, double, Decimal,
                            std::string, DateRepr, TimestampRepr, BinaryRepr>;

  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace fsdm

#endif  // FSDM_COMMON_VALUE_H_
