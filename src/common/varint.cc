#include "common/varint.h"

namespace fsdm {

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

const uint8_t* GetVarint64(const uint8_t* p, const uint8_t* limit,
                           uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = *p++;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const uint8_t* GetVarint32(const uint8_t* p, const uint8_t* limit,
                           uint32_t* value) {
  uint64_t v64 = 0;
  const uint8_t* q = GetVarint64(p, limit, &v64);
  if (q == nullptr || v64 > UINT32_MAX) return nullptr;
  *value = static_cast<uint32_t>(v64);
  return q;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutFixed16(std::string* dst, uint16_t value) {
  dst->push_back(static_cast<char>(value & 0xff));
  dst->push_back(static_cast<char>(value >> 8));
}

void PutFixed32(std::string* dst, uint32_t value) {
  dst->push_back(static_cast<char>(value & 0xff));
  dst->push_back(static_cast<char>((value >> 8) & 0xff));
  dst->push_back(static_cast<char>((value >> 16) & 0xff));
  dst->push_back(static_cast<char>((value >> 24) & 0xff));
}

uint16_t DecodeFixed16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

uint32_t DecodeFixed32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void EncodeFixed16(uint8_t* p, uint16_t value) {
  p[0] = static_cast<uint8_t>(value & 0xff);
  p[1] = static_cast<uint8_t>(value >> 8);
}

void EncodeFixed32(uint8_t* p, uint32_t value) {
  p[0] = static_cast<uint8_t>(value & 0xff);
  p[1] = static_cast<uint8_t>((value >> 8) & 0xff);
  p[2] = static_cast<uint8_t>((value >> 16) & 0xff);
  p[3] = static_cast<uint8_t>((value >> 24) & 0xff);
}

}  // namespace fsdm
