#include "common/status.h"

namespace fsdm {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fsdm
