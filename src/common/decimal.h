#ifndef FSDM_COMMON_DECIMAL_H_
#define FSDM_COMMON_DECIMAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fsdm {

/// Arbitrary-precision (up to 40 significant digits) decimal number in the
/// style of the Oracle NUMBER type. This is the engine-native scalar numeric
/// format: SQL expression evaluation, OSON leaf values and the in-memory
/// column store all use it, so JSON numbers cross the JSON<->SQL boundary
/// without reformatting (OSON design criterion 3, §4.1).
///
/// Value model: sign * 0.d1 d2 ... dn * 10^exponent with d1 != 0 and
/// dn != 0 (normalized), or exact zero.
///
/// The binary image produced by EncodeBinary() is order-preserving under
/// unsigned bytewise (memcmp) comparison, like Oracle NUMBER:
///   - zero encodes as the single byte 0x80;
///   - positive values: header 0xC0+E (E = base-100 exponent), then base-100
///     mantissa digits each stored as d+1 (range 1..100);
///   - negative values: header 0x40-E, mantissa digits stored as 101-d, then
///     a 0x66 terminator so that shorter (greater) negatives sort above
///     longer ones.
class Decimal {
 public:
  /// Zero.
  Decimal() = default;

  static Decimal FromInt64(int64_t v);
  /// Converts via the shortest decimal string that round-trips the double.
  /// Infinities and NaN are rejected.
  static Result<Decimal> FromDouble(double v);
  /// Parses a JSON-grammar number ("-12.5e+3"). Leading '+' also accepted.
  static Result<Decimal> FromString(std::string_view text);

  /// Decodes an EncodeBinary() image; consumes exactly `len` bytes.
  static Result<Decimal> DecodeBinary(const uint8_t* data, size_t len);

  bool is_zero() const { return sign_ == 0; }
  bool is_negative() const { return sign_ < 0; }
  /// True if the value has no fractional part.
  bool IsInteger() const;

  /// Number of significant decimal digits (0 for zero).
  int digit_count() const { return static_cast<int>(digits_.size()); }

  /// Canonical text form: plain decimal notation when the exponent is
  /// moderate, scientific otherwise ("1.5E+40"). Round-trips via FromString.
  std::string ToString() const;

  /// Nearest double (may lose precision for >17 digits).
  double ToDouble() const;

  /// Exact conversion to int64; fails if fractional or out of range.
  Result<int64_t> ToInt64() const;

  /// Appends the order-preserving binary image to *out.
  void EncodeBinary(std::string* out) const;

  /// Three-way comparison: -1, 0, +1.
  int CompareTo(const Decimal& other) const;

  Decimal Negated() const;
  Decimal Add(const Decimal& other) const;
  Decimal Subtract(const Decimal& other) const;
  Decimal Multiply(const Decimal& other) const;
  /// Division via double arithmetic (sufficient for AVG-style aggregates).
  Result<Decimal> DivideApprox(const Decimal& other) const;

  bool operator==(const Decimal& other) const { return CompareTo(other) == 0; }
  bool operator<(const Decimal& other) const { return CompareTo(other) < 0; }

  /// Hard cap on stored significant digits; excess digits are rounded.
  static constexpr int kMaxDigits = 40;

 private:
  // Builds a normalized value; rounds to kMaxDigits.
  static Decimal Make(int sign, long exponent, std::vector<uint8_t> digits);

  int8_t sign_ = 0;       // -1, 0, +1
  int32_t exponent_ = 0;  // decimal point position; see class comment
  std::vector<uint8_t> digits_;  // significant digits, most significant first
};

}  // namespace fsdm

#endif  // FSDM_COMMON_DECIMAL_H_
