#ifndef FSDM_COMMON_VARINT_H_
#define FSDM_COMMON_VARINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fsdm {

/// LEB128-style unsigned varint, used for counts and lengths in the binary
/// codecs. At most 5 bytes for a uint32, 10 for a uint64.
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Decodes a varint from [p, limit). Returns the byte past the varint, or
/// nullptr on truncated/overlong input.
const uint8_t* GetVarint32(const uint8_t* p, const uint8_t* limit,
                           uint32_t* value);
const uint8_t* GetVarint64(const uint8_t* p, const uint8_t* limit,
                           uint64_t* value);

/// Number of bytes PutVarint32 would append.
int VarintLength(uint64_t value);

/// Fixed-width little-endian writers/readers used where random access needs
/// a predictable width (OSON node offsets).
void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
uint16_t DecodeFixed16(const uint8_t* p);
uint32_t DecodeFixed32(const uint8_t* p);
void EncodeFixed16(uint8_t* p, uint16_t value);
void EncodeFixed32(uint8_t* p, uint32_t value);

}  // namespace fsdm

#endif  // FSDM_COMMON_VARINT_H_
