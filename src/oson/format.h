#ifndef FSDM_OSON_FORMAT_H_
#define FSDM_OSON_FORMAT_H_

#include <cstdint>

namespace fsdm::oson::internal {

// Image header layout (little-endian fixed-width fields):
//   0..3   magic "OSON"
//   4      version
//   5      flags
//   6..9   u32 field_count
//   10..13 u32 dict_names_size
//   14..17 u32 tree_size
//   18..21 u32 values_size
//   22..25 u32 root_offset (within tree segment)
// followed by: hash array (4B * field_count, sorted by (hash, name)),
// name-offset array (off_width * field_count, offsets into the name blob),
// name blob (varint length + bytes each), tree segment, value segment.
inline constexpr char kMagic[4] = {'O', 'S', 'O', 'N'};
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderSize = 26;

// Flag bits.
inline constexpr uint8_t kFlagWideOffsets = 0x01;  // 4-byte offsets
inline constexpr uint8_t kFlagUnsharedLeaves = 0x02;  // in-place updatable
inline constexpr uint8_t kFlagIdWidthShift = 2;  // bits 2-3: 0->1B,1->2B,2->4B
// Set-encoded image (§7): no dictionary segment; field ids reference an
// external SharedDictionary supplied at open time.
inline constexpr uint8_t kFlagExternalDict = 0x10;

// Tree node header byte: bits 6-7 node kind, bits 0-3 scalar subtype.
inline constexpr uint8_t kKindObject = 0x00;
inline constexpr uint8_t kKindArray = 0x40;
inline constexpr uint8_t kKindScalar = 0x80;
inline constexpr uint8_t kKindMask = 0xC0;
inline constexpr uint8_t kSubtypeMask = 0x0F;

// Scalar subtypes. Null/true/false are inline in the header byte; the rest
// carry an offset into the leaf-scalar-value segment.
enum Subtype : uint8_t {
  kSubNull = 0,
  kSubTrue = 1,
  kSubFalse = 2,
  kSubDecimal = 3,   // varint length + Decimal binary image
  kSubDouble = 4,    // 8 bytes LE
  kSubString = 5,    // varint length + UTF-8 bytes
  kSubDate = 6,      // 4 bytes LE, days since epoch
  kSubTimestamp = 7,  // 8 bytes LE, micros since epoch
  kSubBinary = 8,    // varint length + bytes
};

inline bool SubtypeIsInline(uint8_t sub) { return sub <= kSubFalse; }

}  // namespace fsdm::oson::internal

#endif  // FSDM_OSON_FORMAT_H_
