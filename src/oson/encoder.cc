#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/varint.h"
#include "fault/fault.h"
#include "json/parser.h"
#include "oson/format.h"
#include "oson/oson.h"
#include "oson/set_encoding.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace fsdm::oson {

namespace {

using internal::Subtype;

struct DictEntry {
  uint32_t hash;
  std::string name;
  uint32_t id = 0;  // ordinal in (hash, name) order
};

// Collects distinct field names from the tree.
void CollectNames(const json::JsonNode& node,
                  std::map<std::string, DictEntry>* names) {
  switch (node.kind()) {
    case json::NodeKind::kObject:
      for (size_t i = 0; i < node.field_count(); ++i) {
        const std::string& name = node.field_name(i);
        if (!names->count(name)) {
          (*names)[name] = DictEntry{FieldNameHash(name), name};
        }
        CollectNames(*node.field_value(i), names);
      }
      break;
    case json::NodeKind::kArray:
      for (size_t i = 0; i < node.array_size(); ++i) {
        CollectNames(*node.element(i), names);
      }
      break;
    case json::NodeKind::kScalar:
      break;
  }
}

class Encoder {
 public:
  Encoder(const EncodeOptions& options, uint8_t off_width,
          const SharedDictionary* ext_dict = nullptr)
      : options_(options), off_width_(off_width), ext_dict_(ext_dict) {}

  Status Run(const json::JsonNode& doc, std::string* out) {
    size_t dict_size = 0;
    if (ext_dict_ != nullptr) {
      // Set encoding: ids come from the shared dictionary; the image
      // carries no dictionary segment of its own.
      dict_size = ext_dict_->field_count();
      id_width_ = dict_size <= 0xFF ? 1 : (dict_size <= 0xFFFF ? 2 : 4);
      return RunBody(doc, out, dict_size);
    }
    // 1. Build the field-id-name dictionary: entries sorted by (hash, name);
    //    the ordinal position is the field id (§4.2.1).
    std::map<std::string, DictEntry> names;
    CollectNames(doc, &names);
    dict_.reserve(names.size());
    for (auto& [name, entry] : names) dict_.push_back(entry);
    std::sort(dict_.begin(), dict_.end(), [](const DictEntry& a,
                                             const DictEntry& b) {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.name < b.name;
    });
    for (uint32_t i = 0; i < dict_.size(); ++i) {
      dict_[i].id = i;
      id_by_name_[dict_[i].name] = i;
    }
    id_width_ = dict_.size() <= 0xFF ? 1 : (dict_.size() <= 0xFFFF ? 2 : 4);
    BuildNameBlob();
    return RunBody(doc, out, dict_.size());
  }

 private:
  Status RunBody(const json::JsonNode& doc, std::string* out,
                 size_t dict_size) {
    // 2. Emit tree nodes post-order (children before parents) so child
    //    offsets are known when the parent is written; leaves stream into
    //    the value segment as encountered.
    uint64_t root_offset = 0;
    FSDM_RETURN_NOT_OK(EmitNode(doc, &root_offset));

    // 3. Bounds checks for the narrow-offset encoding.
    if (off_width_ == 2) {
      if (tree_.size() > 0xFFFF || values_.size() > 0xFFFF ||
          name_blob_.size() > 0xFFFF) {
        return Status::OutOfRange("image exceeds 2-byte offset range");
      }
    }

    // 4. Assemble the image.
    out->clear();
    out->append(internal::kMagic, 4);
    out->push_back(static_cast<char>(internal::kVersion));
    uint8_t flags = 0;
    if (off_width_ == 4) flags |= internal::kFlagWideOffsets;
    if (!options_.dedup_leaf_values || options_.updatable) {
      flags |= internal::kFlagUnsharedLeaves;
    }
    if (ext_dict_ != nullptr) flags |= internal::kFlagExternalDict;
    flags |= static_cast<uint8_t>((id_width_ == 1 ? 0 : (id_width_ == 2 ? 1 : 2))
                                  << internal::kFlagIdWidthShift);
    out->push_back(static_cast<char>(flags));
    PutFixed32(out, static_cast<uint32_t>(dict_size));
    PutFixed32(out, static_cast<uint32_t>(name_blob_.size()));
    PutFixed32(out, static_cast<uint32_t>(tree_.size()));
    PutFixed32(out, static_cast<uint32_t>(values_.size()));
    PutFixed32(out, static_cast<uint32_t>(root_offset));
    if (ext_dict_ == nullptr) {
      for (const DictEntry& e : dict_) PutFixed32(out, e.hash);
      for (const DictEntry& e : dict_) PutOffset(out, name_offsets_[e.id]);
      out->append(name_blob_);
    }
    out->append(tree_);
    out->append(values_);
    return Status::Ok();
  }

  // Lays out the name blob and per-field name offsets; requires the sorted
  // dictionary with assigned ids.
  void BuildNameBlob() {
    name_offsets_.resize(dict_.size());
    for (const DictEntry& e : dict_) {
      name_offsets_[e.id] = name_blob_.size();
      PutVarint32(&name_blob_, static_cast<uint32_t>(e.name.size()));
      name_blob_.append(e.name);
    }
  }

  void PutOffset(std::string* dst, uint64_t off) {
    if (off_width_ == 2) {
      PutFixed16(dst, static_cast<uint16_t>(off));
    } else {
      PutFixed32(dst, static_cast<uint32_t>(off));
    }
  }

  void PutFieldId(std::string* dst, uint32_t id) {
    if (id_width_ == 1) {
      dst->push_back(static_cast<char>(id));
    } else if (id_width_ == 2) {
      PutFixed16(dst, static_cast<uint16_t>(id));
    } else {
      PutFixed32(dst, id);
    }
  }

  // Appends the leaf encoding for `v`, returning its value-segment offset.
  // With dedup enabled, identical encodings share one slot.
  Status EmitLeaf(const Value& v, Subtype* subtype, uint64_t* value_offset) {
    std::string enc;
    switch (v.type()) {
      case ScalarType::kInt64:
        if (options_.numbers_as_double) {
          *subtype = internal::kSubDouble;
          uint64_t bits;
          double d = static_cast<double>(v.AsInt64());
          std::memcpy(&bits, &d, sizeof(bits));
          PutFixed32(&enc, static_cast<uint32_t>(bits));
          PutFixed32(&enc, static_cast<uint32_t>(bits >> 32));
        } else {
          *subtype = internal::kSubDecimal;
          std::string dec;
          Decimal::FromInt64(v.AsInt64()).EncodeBinary(&dec);
          PutVarint32(&enc, static_cast<uint32_t>(dec.size()));
          enc += dec;
        }
        break;
      case ScalarType::kDecimal:
        if (options_.numbers_as_double) {
          *subtype = internal::kSubDouble;
          uint64_t bits;
          double d = v.AsDecimal().ToDouble();
          std::memcpy(&bits, &d, sizeof(bits));
          PutFixed32(&enc, static_cast<uint32_t>(bits));
          PutFixed32(&enc, static_cast<uint32_t>(bits >> 32));
        } else {
          *subtype = internal::kSubDecimal;
          std::string dec;
          v.AsDecimal().EncodeBinary(&dec);
          PutVarint32(&enc, static_cast<uint32_t>(dec.size()));
          enc += dec;
        }
        break;
      case ScalarType::kDouble: {
        *subtype = internal::kSubDouble;
        uint64_t bits;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        PutFixed32(&enc, static_cast<uint32_t>(bits));
        PutFixed32(&enc, static_cast<uint32_t>(bits >> 32));
        break;
      }
      case ScalarType::kString:
        *subtype = internal::kSubString;
        PutVarint32(&enc, static_cast<uint32_t>(v.AsString().size()));
        enc += v.AsString();
        break;
      case ScalarType::kDate:
        *subtype = internal::kSubDate;
        PutFixed32(&enc, static_cast<uint32_t>(v.AsDate()));
        break;
      case ScalarType::kTimestamp: {
        *subtype = internal::kSubTimestamp;
        uint64_t bits = static_cast<uint64_t>(v.AsTimestamp());
        PutFixed32(&enc, static_cast<uint32_t>(bits));
        PutFixed32(&enc, static_cast<uint32_t>(bits >> 32));
        break;
      }
      case ScalarType::kBinary:
        *subtype = internal::kSubBinary;
        PutVarint32(&enc, static_cast<uint32_t>(v.AsBinary().size()));
        enc += v.AsBinary();
        break;
      default:
        return Status::Internal("inline subtype reached EmitLeaf");
    }

    bool share = options_.dedup_leaf_values && !options_.updatable;
    if (share) {
      auto it = leaf_cache_.find(enc);
      if (it != leaf_cache_.end()) {
        *value_offset = it->second;
        return Status::Ok();
      }
    }
    *value_offset = values_.size();
    values_.append(enc);
    if (share) leaf_cache_.emplace(std::move(enc), *value_offset);
    return Status::Ok();
  }

  Status EmitNode(const json::JsonNode& node, uint64_t* offset_out) {
    switch (node.kind()) {
      case json::NodeKind::kObject: {
        size_t n = node.field_count();
        // Children first.
        std::vector<std::pair<uint32_t, uint64_t>> children;  // (id, offset)
        children.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          uint64_t child_off = 0;
          FSDM_RETURN_NOT_OK(EmitNode(*node.field_value(i), &child_off));
          FSDM_ASSIGN_OR_RETURN(uint32_t id, ResolveId(node.field_name(i)));
          children.emplace_back(id, child_off);
        }
        // Child entries sorted by field id for binary-search lookup.
        std::sort(children.begin(), children.end());
        *offset_out = tree_.size();
        tree_.push_back(static_cast<char>(internal::kKindObject));
        PutVarint32(&tree_, static_cast<uint32_t>(n));
        for (const auto& [id, off] : children) PutFieldId(&tree_, id);
        for (const auto& [id, off] : children) PutOffset(&tree_, off);
        return Status::Ok();
      }
      case json::NodeKind::kArray: {
        size_t n = node.array_size();
        std::vector<uint64_t> offsets(n);
        for (size_t i = 0; i < n; ++i) {
          FSDM_RETURN_NOT_OK(EmitNode(*node.element(i), &offsets[i]));
        }
        *offset_out = tree_.size();
        tree_.push_back(static_cast<char>(internal::kKindArray));
        PutVarint32(&tree_, static_cast<uint32_t>(n));
        for (uint64_t off : offsets) PutOffset(&tree_, off);
        return Status::Ok();
      }
      case json::NodeKind::kScalar: {
        const Value& v = node.scalar();
        *offset_out = tree_.size();
        if (v.is_null()) {
          tree_.push_back(
              static_cast<char>(internal::kKindScalar | internal::kSubNull));
        } else if (v.type() == ScalarType::kBool) {
          tree_.push_back(static_cast<char>(
              internal::kKindScalar |
              (v.AsBool() ? internal::kSubTrue : internal::kSubFalse)));
        } else {
          Subtype sub = internal::kSubNull;
          uint64_t value_off = 0;
          FSDM_RETURN_NOT_OK(EmitLeaf(v, &sub, &value_off));
          tree_.push_back(static_cast<char>(internal::kKindScalar | sub));
          PutOffset(&tree_, value_off);
        }
        return Status::Ok();
      }
    }
    return Status::Internal("unreachable node kind");
  }

  Result<uint32_t> ResolveId(const std::string& name) const {
    if (ext_dict_ != nullptr) {
      std::optional<uint32_t> id =
          ext_dict_->LookupId(name, FieldNameHash(name));
      if (!id.has_value()) {
        return Status::InvalidArgument(
            "field '" + name + "' missing from the shared dictionary");
      }
      return *id;
    }
    return id_by_name_.at(name);
  }

  std::vector<DictEntry> dict_;
  const EncodeOptions& options_;
  const SharedDictionary* ext_dict_;
  uint8_t off_width_;
  uint8_t id_width_ = 1;
  std::map<std::string, uint32_t> id_by_name_;
  std::vector<uint64_t> name_offsets_;
  std::string name_blob_;
  std::string tree_;
  std::string values_;
  std::map<std::string, uint64_t> leaf_cache_;
};

}  // namespace

Result<std::string> Encode(const json::JsonNode& doc,
                           const EncodeOptions& options) {
  // Simulated codec failure before any bytes are produced.
  FSDM_FAULT_POINT("oson.encode");
  // Optimistic narrow-offset encode; fall back to 4-byte offsets when the
  // image is too large.
  FSDM_TRACE_SPAN(span, "oson", "oson.encode");
  for (uint8_t width : {uint8_t{2}, uint8_t{4}}) {
    Encoder enc(options, width);
    std::string out;
    Status st = enc.Run(doc, &out);
    if (st.ok()) {
      FSDM_COUNT("fsdm_oson_encodes_total", 1);
      FSDM_COUNT("fsdm_oson_encode_bytes_total", out.size());
      return out;
    }
    if (st.code() != StatusCode::kOutOfRange) return st;
  }
  return Status::Internal("unreachable");
}

// Used by SetEncoder (set_encoding.cc).
Result<std::string> EncodeWithSharedDictionary(
    const json::JsonNode& doc, const EncodeOptions& options,
    const SharedDictionary& dict) {
  FSDM_TRACE_SPAN(span, "oson", "oson.encode");
  for (uint8_t width : {uint8_t{2}, uint8_t{4}}) {
    Encoder enc(options, width, &dict);
    std::string out;
    Status st = enc.Run(doc, &out);
    if (st.ok()) {
      FSDM_COUNT("fsdm_oson_encodes_total", 1);
      FSDM_COUNT("fsdm_oson_encode_bytes_total", out.size());
      return out;
    }
    if (st.code() != StatusCode::kOutOfRange) return st;
  }
  return Status::Internal("unreachable");
}

Result<std::string> EncodeFromText(std::string_view json_text,
                                   const EncodeOptions& options) {
  FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> doc,
                        json::Parse(json_text));
  return Encode(*doc, options);
}

}  // namespace fsdm::oson
