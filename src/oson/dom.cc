#include <cstring>

#include "common/hash.h"
#include "common/varint.h"
#include "fault/fault.h"
#include "oson/format.h"
#include "oson/oson.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace fsdm::oson {

namespace {
using internal::Subtype;
}  // namespace

// Implemented in set_encoding.cc; thin shims so this file needs only the
// forward declaration of SharedDictionary.
std::string_view SharedDictFieldName(const SharedDictionary& dict,
                                     uint32_t id);
uint32_t SharedDictFieldHash(const SharedDictionary& dict, uint32_t id);
std::optional<uint32_t> SharedDictLookupId(const SharedDictionary& dict,
                                           std::string_view name,
                                           uint32_t hash);

Result<OsonDom> OsonDom::Open(std::string_view bytes) {
  return OpenInternal(bytes, nullptr);
}

Result<OsonDom> OsonDom::OpenInternal(std::string_view bytes,
                                      const SharedDictionary* dictionary) {
  // Simulated read failure before the image is inspected.
  FSDM_FAULT_POINT("oson.decode.open");
  if (bytes.size() < internal::kHeaderSize) {
    return Status::Corruption("OSON image smaller than header");
  }
  if (std::memcmp(bytes.data(), internal::kMagic, 4) != 0) {
    return Status::Corruption("bad OSON magic");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  if (p[4] != internal::kVersion) {
    return Status::Corruption("unsupported OSON version");
  }
  uint8_t flags = p[5];
  bool external = (flags & internal::kFlagExternalDict) != 0;
  if (external && dictionary == nullptr) {
    return Status::InvalidArgument(
        "set-encoded image requires its shared dictionary (OpenSetImage)");
  }
  if (!external && dictionary != nullptr) {
    return Status::InvalidArgument(
        "self-contained image opened with a shared dictionary");
  }

  OsonDom dom;
  dom.ext_dict_ = dictionary;
  dom.data_ = bytes;
  dom.off_width_ = (flags & internal::kFlagWideOffsets) ? 4 : 2;
  switch ((flags >> internal::kFlagIdWidthShift) & 0x3) {
    case 0:
      dom.id_width_ = 1;
      break;
    case 1:
      dom.id_width_ = 2;
      break;
    default:
      dom.id_width_ = 4;
      break;
  }
  dom.field_count_ = DecodeFixed32(p + 6);
  dom.dict_names_size_ = DecodeFixed32(p + 10);
  dom.tree_size_ = DecodeFixed32(p + 14);
  dom.values_size_ = DecodeFixed32(p + 18);
  dom.root_offset_ = DecodeFixed32(p + 22);

  dom.dict_hash_start_ = internal::kHeaderSize;
  if (external) {
    // No in-image dictionary; the tree segment starts right after the
    // header. field_count_ in the header is the shared dictionary's size
    // (it determines the field-id width).
    dom.dict_nameoff_start_ = dom.dict_hash_start_;
    dom.dict_names_start_ = dom.dict_hash_start_;
    dom.tree_start_ = internal::kHeaderSize;
  } else {
    dom.dict_nameoff_start_ = dom.dict_hash_start_ + 4ull * dom.field_count_;
    dom.dict_names_start_ =
        dom.dict_nameoff_start_ +
        static_cast<size_t>(dom.off_width_) * dom.field_count_;
    dom.tree_start_ = dom.dict_names_start_ + dom.dict_names_size_;
  }
  dom.values_start_ = dom.tree_start_ + dom.tree_size_;

  if (dom.values_start_ + dom.values_size_ != bytes.size()) {
    return Status::Corruption("OSON segment sizes do not match image size");
  }
  if (dom.root_offset_ >= dom.tree_size_ && dom.tree_size_ > 0) {
    return Status::Corruption("OSON root offset outside tree segment");
  }
  if (dom.tree_size_ == 0) {
    return Status::Corruption("OSON image has empty tree segment");
  }
  return dom;
}

json::NodeKind OsonDom::GetNodeType(NodeRef node) const {
  // Out-of-range refs (possible only on corrupted images) degrade to a
  // scalar whose GetScalarValue reports corruption.
  if (node >= tree_size_) return json::NodeKind::kScalar;
  uint8_t header = *TreePtr(node);
  switch (header & internal::kKindMask) {
    case internal::kKindObject:
      return json::NodeKind::kObject;
    case internal::kKindArray:
      return json::NodeKind::kArray;
    default:
      return json::NodeKind::kScalar;
  }
}

uint32_t OsonDom::ReadFieldId(const uint8_t* p, size_t i) const {
  switch (id_width_) {
    case 1:
      return p[i];
    case 2:
      return DecodeFixed16(p + i * 2);
    default:
      return DecodeFixed32(p + i * 4);
  }
}

json::Dom::NodeRef OsonDom::ReadOffset(const uint8_t* p, size_t i) const {
  if (off_width_ == 2) return DecodeFixed16(p + i * 2);
  return DecodeFixed32(p + i * 4);
}

bool OsonDom::DecodeContainer(NodeRef node, uint32_t* count,
                              const uint8_t** ids,
                              const uint8_t** offsets) const {
  if (node >= tree_size_) return false;
  const uint8_t* p = TreePtr(node);
  uint8_t kind = *p & internal::kKindMask;
  const uint8_t* limit =
      reinterpret_cast<const uint8_t*>(data_.data()) + tree_start_ + tree_size_;
  const uint8_t* q = GetVarint32(p + 1, limit, count);
  if (q == nullptr) return false;
  // Corruption guard: the id/offset arrays must fit inside the tree
  // segment, which also bounds the claimed child count.
  size_t per_child = (kind == internal::kKindObject ? id_width_ : 0) +
                     static_cast<size_t>(off_width_);
  if (static_cast<size_t>(limit - q) / per_child < *count) return false;
  if (kind == internal::kKindObject) {
    *ids = q;
    *offsets = q + static_cast<size_t>(*count) * id_width_;
  } else {
    *ids = nullptr;
    *offsets = q;
  }
  return true;
}

size_t OsonDom::GetFieldCount(NodeRef object) const {
  uint32_t count = 0;
  const uint8_t *ids, *offsets;
  if (!DecodeContainer(object, &count, &ids, &offsets)) return 0;
  return count;
}

void OsonDom::GetFieldAt(NodeRef object, size_t i, std::string_view* name,
                         NodeRef* child) const {
  uint32_t count = 0;
  const uint8_t *ids, *offsets;
  if (!DecodeContainer(object, &count, &ids, &offsets) || i >= count) {
    *child = kInvalidNode;
    return;
  }
  uint32_t id = ReadFieldId(ids, i);
  *name = FieldName(id);
  *child = ReadOffset(offsets, i);
}

std::string_view OsonDom::FieldName(uint32_t field_id) const {
  if (field_id >= field_count_) return {};
  if (ext_dict_ != nullptr) return SharedDictFieldName(*ext_dict_, field_id);
  const uint8_t* base = reinterpret_cast<const uint8_t*>(data_.data());
  size_t name_off;
  if (off_width_ == 2) {
    name_off = DecodeFixed16(base + dict_nameoff_start_ + field_id * 2);
  } else {
    name_off = DecodeFixed32(base + dict_nameoff_start_ + field_id * 4);
  }
  // A corrupted image can carry a name offset or length pointing outside
  // the dictionary segment; clamp both before touching the bytes.
  if (name_off >= dict_names_size_) return {};
  const uint8_t* p = base + dict_names_start_ + name_off;
  const uint8_t* name_limit = base + dict_names_start_ + dict_names_size_;
  uint32_t len = 0;
  const uint8_t* q = GetVarint32(p, name_limit, &len);
  if (q == nullptr || len > static_cast<size_t>(name_limit - q)) return {};
  return std::string_view(reinterpret_cast<const char*>(q), len);
}

uint32_t OsonDom::FieldHash(uint32_t field_id) const {
  if (field_id >= field_count_) return 0;
  if (ext_dict_ != nullptr) return SharedDictFieldHash(*ext_dict_, field_id);
  const uint8_t* base = reinterpret_cast<const uint8_t*>(data_.data());
  return DecodeFixed32(base + dict_hash_start_ + 4ull * field_id);
}

std::optional<uint32_t> OsonDom::LookupFieldId(std::string_view name,
                                               uint32_t hash) const {
  if (ext_dict_ != nullptr) return SharedDictLookupId(*ext_dict_, name, hash);
  // Binary search the hash-id array (sorted by hash, then name).
  uint32_t lo = 0, hi = field_count_;
  size_t probes = 0;
  while (lo < hi) {
    ++probes;
    uint32_t mid = lo + (hi - lo) / 2;
    if (FieldHash(mid) < hash) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  FSDM_OBSERVE_SIZE("fsdm_oson_dict_search_depth", probes);
  // Resolve collisions with a name check over the equal-hash run.
  for (uint32_t i = lo; i < field_count_ && FieldHash(i) == hash; ++i) {
    if (FieldName(i) == name) return i;
  }
  return std::nullopt;
}

json::Dom::NodeRef OsonDom::GetFieldValueById(NodeRef object,
                                              uint32_t field_id) const {
  uint32_t count = 0;
  const uint8_t *ids, *offsets;
  if (!DecodeContainer(object, &count, &ids, &offsets)) return kInvalidNode;
  // Binary search the sorted child field-id array (§4.2.2).
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    uint32_t mid_id = ReadFieldId(ids, mid);
    if (mid_id < field_id) {
      lo = mid + 1;
    } else if (mid_id > field_id) {
      hi = mid;
    } else {
      return ReadOffset(offsets, mid);
    }
  }
  return kInvalidNode;
}

json::Dom::NodeRef OsonDom::GetFieldValue(NodeRef object,
                                          std::string_view name) const {
  std::optional<uint32_t> id = LookupFieldId(name, FieldNameHash(name));
  if (!id.has_value()) return kInvalidNode;
  return GetFieldValueById(object, *id);
}

json::Dom::NodeRef OsonDom::GetFieldValueHashed(
    NodeRef object, std::string_view name, uint32_t hash,
    uint32_t* cached_field_id) const {
  // Single-row look-back (§4.2.1): on homogeneous collections the id the
  // name resolved to in the previous document usually holds for this one,
  // skipping the dictionary search entirely.
  if (cached_field_id != nullptr && *cached_field_id < field_count_ &&
      FieldHash(*cached_field_id) == hash &&
      FieldName(*cached_field_id) == name) {
    return GetFieldValueById(object, *cached_field_id);
  }
  std::optional<uint32_t> id = LookupFieldId(name, hash);
  if (!id.has_value()) return kInvalidNode;
  if (cached_field_id != nullptr) *cached_field_id = *id;
  return GetFieldValueById(object, *id);
}

size_t OsonDom::GetArrayLength(NodeRef array) const {
  uint32_t count = 0;
  const uint8_t *ids, *offsets;
  if (!DecodeContainer(array, &count, &ids, &offsets)) return 0;
  return count;
}

json::Dom::NodeRef OsonDom::GetArrayElement(NodeRef array,
                                            size_t index) const {
  uint32_t count = 0;
  const uint8_t *ids, *offsets;
  if (!DecodeContainer(array, &count, &ids, &offsets) || index >= count) {
    return kInvalidNode;
  }
  return ReadOffset(offsets, index);
}

ScalarType OsonDom::GetScalarType(NodeRef scalar) const {
  uint8_t sub = *TreePtr(scalar) & internal::kSubtypeMask;
  switch (sub) {
    case internal::kSubNull:
      return ScalarType::kNull;
    case internal::kSubTrue:
    case internal::kSubFalse:
      return ScalarType::kBool;
    case internal::kSubDecimal:
      return ScalarType::kDecimal;
    case internal::kSubDouble:
      return ScalarType::kDouble;
    case internal::kSubString:
      return ScalarType::kString;
    case internal::kSubDate:
      return ScalarType::kDate;
    case internal::kSubTimestamp:
      return ScalarType::kTimestamp;
    default:
      return ScalarType::kBinary;
  }
}

Status OsonDom::GetScalarValue(NodeRef scalar, Value* out) const {
  if (scalar >= tree_size_) {
    return Status::Corruption("scalar node ref outside tree segment");
  }
  const uint8_t* p = TreePtr(scalar);
  uint8_t sub = *p & internal::kSubtypeMask;
  if (sub == internal::kSubNull) {
    *out = Value::Null();
    return Status::Ok();
  }
  if (sub == internal::kSubTrue || sub == internal::kSubFalse) {
    *out = Value::Bool(sub == internal::kSubTrue);
    return Status::Ok();
  }
  if (scalar + 1 + off_width_ > tree_size_) {
    return Status::Corruption("scalar value offset truncated");
  }
  uint64_t value_off = off_width_ == 2 ? DecodeFixed16(p + 1)
                                       : DecodeFixed32(p + 1);
  const uint8_t* base = reinterpret_cast<const uint8_t*>(data_.data());
  const uint8_t* v = base + values_start_ + value_off;
  const uint8_t* limit = base + values_start_ + values_size_;
  if (v >= limit) return Status::Corruption("leaf offset out of range");

  switch (sub) {
    case internal::kSubDecimal: {
      uint32_t len = 0;
      const uint8_t* q = GetVarint32(v, limit, &len);
      if (q == nullptr || q + len > limit) {
        return Status::Corruption("truncated decimal leaf");
      }
      FSDM_ASSIGN_OR_RETURN(Decimal d, Decimal::DecodeBinary(q, len));
      // Integral decimals surface on the int64 fast path.
      if (d.IsInteger()) {
        Result<int64_t> i = d.ToInt64();
        if (i.ok()) {
          *out = Value::Int64(i.value());
          return Status::Ok();
        }
      }
      *out = Value::Dec(std::move(d));
      return Status::Ok();
    }
    case internal::kSubDouble: {
      if (v + 8 > limit) return Status::Corruption("truncated double leaf");
      uint64_t bits = static_cast<uint64_t>(DecodeFixed32(v)) |
                      (static_cast<uint64_t>(DecodeFixed32(v + 4)) << 32);
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return Status::Ok();
    }
    case internal::kSubString: {
      uint32_t len = 0;
      const uint8_t* q = GetVarint32(v, limit, &len);
      if (q == nullptr || q + len > limit) {
        return Status::Corruption("truncated string leaf");
      }
      *out = Value::String(
          std::string(reinterpret_cast<const char*>(q), len));
      return Status::Ok();
    }
    case internal::kSubDate: {
      if (v + 4 > limit) return Status::Corruption("truncated date leaf");
      *out = Value::Date(static_cast<int32_t>(DecodeFixed32(v)));
      return Status::Ok();
    }
    case internal::kSubTimestamp: {
      if (v + 8 > limit) return Status::Corruption("truncated ts leaf");
      uint64_t bits = static_cast<uint64_t>(DecodeFixed32(v)) |
                      (static_cast<uint64_t>(DecodeFixed32(v + 4)) << 32);
      *out = Value::Timestamp(static_cast<int64_t>(bits));
      return Status::Ok();
    }
    case internal::kSubBinary: {
      uint32_t len = 0;
      const uint8_t* q = GetVarint32(v, limit, &len);
      if (q == nullptr || q + len > limit) {
        return Status::Corruption("truncated binary leaf");
      }
      *out = Value::Binary(
          std::string(reinterpret_cast<const char*>(q), len));
      return Status::Ok();
    }
    default:
      return Status::Corruption("unknown scalar subtype");
  }
}

SegmentStats OsonDom::segment_stats() const {
  SegmentStats s;
  s.total_size = data_.size();
  s.header_size = internal::kHeaderSize;
  s.dictionary_size = tree_start_ - dict_hash_start_;
  s.tree_size = tree_size_;
  s.values_size = values_size_;
  s.field_count = field_count_;
  return s;
}

namespace {

Result<std::unique_ptr<json::JsonNode>> DecodeNode(const OsonDom& dom,
                                                   json::Dom::NodeRef ref,
                                                   int depth = 0) {
  // Corrupted offsets can form reference cycles; bound the recursion.
  if (depth > 1024) {
    return Status::Corruption("OSON node graph too deep (cycle?)");
  }
  switch (dom.GetNodeType(ref)) {
    case json::NodeKind::kObject: {
      auto obj = json::JsonNode::MakeObject();
      size_t n = dom.GetFieldCount(ref);
      for (size_t i = 0; i < n; ++i) {
        std::string_view name;
        json::Dom::NodeRef child = json::Dom::kInvalidNode;
        dom.GetFieldAt(ref, i, &name, &child);
        if (child == json::Dom::kInvalidNode) {
          return Status::Corruption("OSON object child walk failed");
        }
        FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> sub,
                              DecodeNode(dom, child, depth + 1));
        obj->AddField(std::string(name), std::move(sub));
      }
      return obj;
    }
    case json::NodeKind::kArray: {
      auto arr = json::JsonNode::MakeArray();
      size_t n = dom.GetArrayLength(ref);
      for (size_t i = 0; i < n; ++i) {
        json::Dom::NodeRef child = dom.GetArrayElement(ref, i);
        if (child == json::Dom::kInvalidNode) {
          return Status::Corruption("OSON array child walk failed");
        }
        FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> sub,
                              DecodeNode(dom, child, depth + 1));
        arr->Append(std::move(sub));
      }
      return arr;
    }
    case json::NodeKind::kScalar: {
      Value v;
      FSDM_RETURN_NOT_OK(dom.GetScalarValue(ref, &v));
      return json::JsonNode::MakeScalar(std::move(v));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<std::unique_ptr<json::JsonNode>> Decode(std::string_view bytes) {
  FSDM_COUNT("fsdm_oson_decodes_total", 1);
  FSDM_TRACE_SPAN(span, "oson", "oson.decode");
  span.AddNumberArg("bytes", static_cast<double>(bytes.size()));
  FSDM_ASSIGN_OR_RETURN(OsonDom dom, OsonDom::Open(bytes));
  return DecodeNode(dom, dom.root());
}

// ---------------------------------------------------------------------------
// OsonUpdater
// ---------------------------------------------------------------------------

Status OsonUpdater::UpdateLeaf(json::Dom::NodeRef ref,
                               const Value& new_value) {
  FSDM_ASSIGN_OR_RETURN(OsonDom dom, OsonDom::Open(*image_));
  const uint8_t* hdr = reinterpret_cast<const uint8_t*>(image_->data());
  if (!(hdr[5] & internal::kFlagUnsharedLeaves)) {
    return Status::Unsupported(
        "image encoded with shared leaves; re-encode with updatable=true");
  }
  if (dom.GetNodeType(ref) != json::NodeKind::kScalar) {
    return Status::InvalidArgument("node is not a scalar leaf");
  }

  // Resolve the node header and the current slot.
  SegmentStats stats = dom.segment_stats();
  size_t tree_start =
      internal::kHeaderSize + stats.dictionary_size + 0;  // dict incl names
  size_t values_start = tree_start + stats.tree_size;
  uint8_t* base = reinterpret_cast<uint8_t*>(image_->data());
  uint8_t* node = base + tree_start + ref;
  uint8_t sub = *node & internal::kSubtypeMask;
  uint8_t off_width = (hdr[5] & internal::kFlagWideOffsets) ? 4 : 2;

  // Inline booleans/null: toggling between true and false is in-place;
  // anything else changes the type class.
  if (internal::SubtypeIsInline(sub)) {
    if (new_value.type() == ScalarType::kBool &&
        (sub == internal::kSubTrue || sub == internal::kSubFalse)) {
      *node = static_cast<uint8_t>(
          internal::kKindScalar |
          (new_value.AsBool() ? internal::kSubTrue : internal::kSubFalse));
      return Status::Ok();
    }
    return Status::Unsupported("cannot retype an inline leaf in place");
  }

  uint64_t value_off = off_width == 2 ? DecodeFixed16(node + 1)
                                      : DecodeFixed32(node + 1);
  uint8_t* slot = base + values_start + value_off;
  uint8_t* limit = base + image_->size();

  // Encode the replacement payload.
  std::string enc;
  switch (sub) {
    case internal::kSubDecimal: {
      if (!new_value.IsNumeric()) {
        return Status::Unsupported("slot holds a number");
      }
      std::string dec;
      new_value.NumericAsDecimal().EncodeBinary(&dec);
      PutVarint32(&enc, static_cast<uint32_t>(dec.size()));
      enc += dec;
      break;
    }
    case internal::kSubDouble: {
      if (!new_value.IsNumeric()) {
        return Status::Unsupported("slot holds a number");
      }
      uint64_t bits;
      double d = new_value.NumericAsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutFixed32(&enc, static_cast<uint32_t>(bits));
      PutFixed32(&enc, static_cast<uint32_t>(bits >> 32));
      break;
    }
    case internal::kSubString: {
      if (new_value.type() != ScalarType::kString) {
        return Status::Unsupported("slot holds a string");
      }
      PutVarint32(&enc, static_cast<uint32_t>(new_value.AsString().size()));
      enc += new_value.AsString();
      break;
    }
    case internal::kSubDate: {
      if (new_value.type() != ScalarType::kDate) {
        return Status::Unsupported("slot holds a date");
      }
      PutFixed32(&enc, static_cast<uint32_t>(new_value.AsDate()));
      break;
    }
    case internal::kSubTimestamp: {
      if (new_value.type() != ScalarType::kTimestamp) {
        return Status::Unsupported("slot holds a timestamp");
      }
      uint64_t bits = static_cast<uint64_t>(new_value.AsTimestamp());
      PutFixed32(&enc, static_cast<uint32_t>(bits));
      PutFixed32(&enc, static_cast<uint32_t>(bits >> 32));
      break;
    }
    case internal::kSubBinary: {
      if (new_value.type() != ScalarType::kBinary) {
        return Status::Unsupported("slot holds binary data");
      }
      PutVarint32(&enc, static_cast<uint32_t>(new_value.AsBinary().size()));
      enc += new_value.AsBinary();
      break;
    }
    default:
      return Status::Corruption("unknown subtype");
  }

  // The existing slot size: fixed-width payloads are their width; varlen
  // payloads are varint + payload.
  size_t old_size;
  switch (sub) {
    case internal::kSubDouble:
    case internal::kSubTimestamp:
      old_size = 8;
      break;
    case internal::kSubDate:
      old_size = 4;
      break;
    default: {
      uint32_t len = 0;
      const uint8_t* q = GetVarint32(slot, limit, &len);
      if (q == nullptr) return Status::Corruption("corrupt leaf slot");
      old_size = static_cast<size_t>(q - slot) + len;
      break;
    }
  }
  if (enc.size() > old_size) {
    return Status::Unsupported(
        "new value does not fit the existing leaf slot (" +
        std::to_string(enc.size()) + " > " + std::to_string(old_size) + ")");
  }
  if (slot + old_size > limit) return Status::Corruption("slot out of range");
  std::memcpy(slot, enc.data(), enc.size());
  return Status::Ok();
}

}  // namespace fsdm::oson
