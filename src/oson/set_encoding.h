#ifndef FSDM_OSON_SET_ENCODING_H_
#define FSDM_OSON_SET_ENCODING_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "json/node.h"
#include "oson/oson.h"

namespace fsdm::oson {

/// §7 (future work): OSON *set encoding* for the in-memory store. The
/// common field-id-name dictionary segments are extracted from the
/// instances of a collection and merged into a single shared dictionary;
/// per-document images then carry no dictionary segment and reference the
/// shared one by global field id. This trades self-containment for
/// memory (one dictionary instead of N) and query speed: field-name-to-id
/// resolution happens once for the whole store, and the per-step cached
/// field id never misses across documents. Unlike Dremel, heterogeneous
/// collections remain fully supported — the dictionary is just names; the
/// per-instance tree segments still describe arbitrary structure.
class SharedDictionary {
 public:
  /// Collects distinct field names, then freezes the dictionary.
  class Builder {
   public:
    /// Adds every field name in `doc`.
    void CollectNames(const json::JsonNode& doc);
    /// Adds one name.
    void AddName(std::string_view name);
    /// Freezes into the (hash, name)-sorted dictionary.
    SharedDictionary Build() &&;

   private:
    std::map<std::string, uint32_t> names_;  // name -> hash
  };

  uint32_t field_count() const {
    return static_cast<uint32_t>(names_.size());
  }
  std::string_view FieldName(uint32_t id) const { return names_[id]; }
  uint32_t FieldHash(uint32_t id) const { return hashes_[id]; }
  /// Binary search over the hash-sorted entries; nullopt when absent.
  std::optional<uint32_t> LookupId(std::string_view name,
                                   uint32_t hash) const;

  /// Bytes of the dictionary payload (for memory accounting).
  size_t MemoryBytes() const;

 private:
  friend class Builder;
  std::vector<std::string> names_;   // indexed by id, (hash,name)-sorted
  std::vector<uint32_t> hashes_;     // parallel to names_
};

/// Encodes documents against a shared dictionary. Two-phase use:
///   SetEncoder enc;
///   for (doc : collection) enc.CollectNames(doc);   // phase 1
///   enc.FinalizeDictionary();
///   for (doc : collection) images.push_back(enc.Encode(doc));  // phase 2
/// The produced images have the kFlagExternalDict flag and MUST be opened
/// with OpenSetImage() + the encoder's dictionary.
class SetEncoder {
 public:
  explicit SetEncoder(EncodeOptions options = {}) : options_(options) {}

  void CollectNames(const json::JsonNode& doc) {
    builder_.CollectNames(doc);
  }
  Status FinalizeDictionary();

  const SharedDictionary& dictionary() const { return *dict_; }
  /// Transfers dictionary ownership (call after encoding everything).
  std::shared_ptr<const SharedDictionary> shared_dictionary() const {
    return dict_;
  }

  /// Encodes one document without a dictionary segment. Fails if a field
  /// name was not collected in phase 1.
  Result<std::string> Encode(const json::JsonNode& doc) const;

 private:
  EncodeOptions options_;
  SharedDictionary::Builder builder_;
  std::shared_ptr<const SharedDictionary> dict_;
};

/// Opens a set-encoded image against its shared dictionary. The returned
/// Dom behaves exactly like a self-contained OsonDom (all Dom methods,
/// LookupFieldId, GetFieldValueHashed with look-back).
Result<OsonDom> OpenSetImage(std::string_view bytes,
                             const SharedDictionary* dictionary);

}  // namespace fsdm::oson

#endif  // FSDM_OSON_SET_ENCODING_H_
