#include "oson/set_encoding.h"

#include <algorithm>

#include "common/hash.h"
#include "oson/format.h"

namespace fsdm::oson {

// Defined in encoder.cc.
Result<std::string> EncodeWithSharedDictionary(const json::JsonNode& doc,
                                               const EncodeOptions& options,
                                               const SharedDictionary& dict);

void SharedDictionary::Builder::AddName(std::string_view name) {
  names_.emplace(std::string(name), FieldNameHash(name));
}

void SharedDictionary::Builder::CollectNames(const json::JsonNode& doc) {
  switch (doc.kind()) {
    case json::NodeKind::kObject:
      for (size_t i = 0; i < doc.field_count(); ++i) {
        AddName(doc.field_name(i));
        CollectNames(*doc.field_value(i));
      }
      break;
    case json::NodeKind::kArray:
      for (size_t i = 0; i < doc.array_size(); ++i) {
        CollectNames(*doc.element(i));
      }
      break;
    case json::NodeKind::kScalar:
      break;
  }
}

SharedDictionary SharedDictionary::Builder::Build() && {
  // (hash, name) order — the same ordering rule as per-instance
  // dictionaries, so lookup logic is identical.
  std::vector<std::pair<uint32_t, std::string>> entries;
  entries.reserve(names_.size());
  for (auto& [name, hash] : names_) entries.emplace_back(hash, name);
  std::sort(entries.begin(), entries.end());
  SharedDictionary dict;
  dict.names_.reserve(entries.size());
  dict.hashes_.reserve(entries.size());
  for (auto& [hash, name] : entries) {
    dict.hashes_.push_back(hash);
    dict.names_.push_back(std::move(name));
  }
  return dict;
}

std::optional<uint32_t> SharedDictionary::LookupId(std::string_view name,
                                                   uint32_t hash) const {
  auto it = std::lower_bound(hashes_.begin(), hashes_.end(), hash);
  for (uint32_t i = static_cast<uint32_t>(it - hashes_.begin());
       i < hashes_.size() && hashes_[i] == hash; ++i) {
    if (names_[i] == name) return i;
  }
  return std::nullopt;
}

size_t SharedDictionary::MemoryBytes() const {
  size_t n = hashes_.size() * 4;
  for (const std::string& s : names_) n += s.size() + sizeof(std::string);
  return n;
}

Status SetEncoder::FinalizeDictionary() {
  if (dict_ != nullptr) {
    return Status::InvalidArgument("dictionary already finalized");
  }
  dict_ = std::make_shared<SharedDictionary>(std::move(builder_).Build());
  return Status::Ok();
}

Result<std::string> SetEncoder::Encode(const json::JsonNode& doc) const {
  if (dict_ == nullptr) {
    return Status::InvalidArgument(
        "FinalizeDictionary() must run before Encode()");
  }
  return EncodeWithSharedDictionary(doc, options_, *dict_);
}

Result<OsonDom> OpenSetImage(std::string_view bytes,
                             const SharedDictionary* dictionary) {
  if (dictionary == nullptr) {
    return Status::InvalidArgument("OpenSetImage requires a dictionary");
  }
  return OsonDom::OpenInternal(bytes, dictionary);
}

// Shims used by dom.cc (which only forward-declares SharedDictionary).
std::string_view SharedDictFieldName(const SharedDictionary& dict,
                                     uint32_t id) {
  return dict.FieldName(id);
}
uint32_t SharedDictFieldHash(const SharedDictionary& dict, uint32_t id) {
  return dict.FieldHash(id);
}
std::optional<uint32_t> SharedDictLookupId(const SharedDictionary& dict,
                                           std::string_view name,
                                           uint32_t hash) {
  return dict.LookupId(name, hash);
}

}  // namespace fsdm::oson
