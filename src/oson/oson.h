#ifndef FSDM_OSON_OSON_H_
#define FSDM_OSON_OSON_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "json/dom.h"
#include "json/node.h"

namespace fsdm::oson {

class SharedDictionary;  // set_encoding.h (§7 set-encoded images)

/// OSON: the paper's self-contained, query-friendly binary JSON encoding
/// (§4). An image has three segments after a fixed header:
///
///   [header 26B]
///   [field-id-name dictionary]   hash-id array sorted by hash; the ordinal
///                                position of an entry IS the field id
///   [tree-node navigation]       object/array/scalar nodes addressed by
///                                byte offset; object children sorted by
///                                field id for binary search
///   [leaf-scalar values]         concatenated scalar bytes, numbers in the
///                                engine-native Decimal binary format
///
/// Offsets inside the tree/value segments use 2 bytes when the encoded image
/// fits, 4 bytes otherwise (header flag bit 0). Field ids use 1/2/4 bytes
/// depending on the distinct-field count.
struct EncodeOptions {
  /// Encode JSON numbers as IEEE double instead of Decimal (§4.2.3 mentions
  /// both encodings; Decimal is the default).
  bool numbers_as_double = false;
  /// Share identical leaf values between scalar nodes. Saves space on
  /// repetitive documents but makes in-place leaf updates unsafe, so the
  /// encoder disables sharing when `updatable` is set.
  bool dedup_leaf_values = true;
  /// Reserve per-leaf slots for in-place updates (implies no dedup).
  bool updatable = false;
};

/// Encodes a DOM tree. Any root kind (object/array/scalar) is allowed.
Result<std::string> Encode(const json::JsonNode& doc,
                           const EncodeOptions& options = {});

/// Parses JSON text and encodes it in one step.
Result<std::string> EncodeFromText(std::string_view json_text,
                                   const EncodeOptions& options = {});

/// Full decode back to a node tree (for export / verification).
Result<std::unique_ptr<json::JsonNode>> Decode(std::string_view bytes);

/// Summary of an image's segment layout; feeds the paper's Table 11.
struct SegmentStats {
  size_t total_size = 0;
  size_t header_size = 0;
  size_t dictionary_size = 0;
  size_t tree_size = 0;
  size_t values_size = 0;
  size_t field_count = 0;
};

/// Zero-copy Dom over OSON bytes. NodeRefs are byte offsets into the
/// tree-node navigation segment, exactly as in the paper (§4.2.2).
class OsonDom final : public json::Dom {
 public:
  /// Validates the header and segment bounds; `bytes` must outlive the Dom.
  static Result<OsonDom> Open(std::string_view bytes);

  NodeRef root() const override { return root_offset_; }
  json::NodeKind GetNodeType(NodeRef node) const override;
  size_t GetFieldCount(NodeRef object) const override;
  void GetFieldAt(NodeRef object, size_t i, std::string_view* name,
                  NodeRef* child) const override;
  NodeRef GetFieldValue(NodeRef object, std::string_view name) const override;
  NodeRef GetFieldValueHashed(NodeRef object, std::string_view name,
                              uint32_t hash,
                              uint32_t* cached_field_id) const override;
  size_t GetArrayLength(NodeRef array) const override;
  NodeRef GetArrayElement(NodeRef array, size_t index) const override;
  ScalarType GetScalarType(NodeRef scalar) const override;
  Status GetScalarValue(NodeRef scalar, Value* out) const override;

  // --- OSON-specific fast paths -------------------------------------------

  /// Number of distinct field names in the dictionary.
  uint32_t field_count() const { return field_count_; }

  /// Resolves a field name to its per-document field id using the caller's
  /// pre-computed hash (the path engine computes hashes once at query
  /// compile time, §4.2.1). Binary search over the hash-id array plus a
  /// string check for collisions.
  std::optional<uint32_t> LookupFieldId(std::string_view name,
                                        uint32_t hash) const;

  /// Field name / hash for a field id (id < field_count()).
  std::string_view FieldName(uint32_t field_id) const;
  uint32_t FieldHash(uint32_t field_id) const;

  /// Child lookup by resolved field id: binary search over the object's
  /// sorted child field-id array. This is the per-step hot path.
  NodeRef GetFieldValueById(NodeRef object, uint32_t field_id) const;

  SegmentStats segment_stats() const;

 private:
  friend Result<OsonDom> OpenSetImage(std::string_view bytes,
                                      const SharedDictionary* dictionary);

  OsonDom() = default;

  static Result<OsonDom> OpenInternal(std::string_view bytes,
                                      const SharedDictionary* dictionary);

  const uint8_t* TreePtr(NodeRef node) const {
    return reinterpret_cast<const uint8_t*>(data_.data()) + tree_start_ + node;
  }
  // Field id of the i-th child of an object node whose id array starts at p.
  uint32_t ReadFieldId(const uint8_t* p, size_t i) const;
  NodeRef ReadOffset(const uint8_t* p, size_t i) const;
  // Decodes an object/array node header at `node`: child count plus
  // pointers to its id/offset arrays (ids nullptr for arrays).
  bool DecodeContainer(NodeRef node, uint32_t* count, const uint8_t** ids,
                       const uint8_t** offsets) const;

  std::string_view data_;
  // Non-null for set-encoded images: field names/hashes resolve through
  // the shared dictionary instead of the in-image segment.
  const SharedDictionary* ext_dict_ = nullptr;
  uint32_t field_count_ = 0;
  size_t dict_hash_start_ = 0;   // hash array (4B per field)
  size_t dict_nameoff_start_ = 0;  // name-offset array (off_width_ per field)
  size_t dict_names_start_ = 0;  // name blob
  size_t dict_names_size_ = 0;
  size_t tree_start_ = 0;
  size_t tree_size_ = 0;
  size_t values_start_ = 0;
  size_t values_size_ = 0;
  NodeRef root_offset_ = 0;
  uint8_t off_width_ = 2;   // 2 or 4
  uint8_t id_width_ = 1;    // 1, 2 or 4
};

/// In-place partial update of leaf scalar values (§4.2.3): the only update
/// OSON supports without re-encoding. Fixed-width leaves (double, date,
/// timestamp) always update in place; variable-width leaves (number,
/// string) update when the new encoding fits the existing slot. The image
/// must have been encoded with `updatable = true` (leaf slots unshared).
class OsonUpdater {
 public:
  /// `image` must outlive the updater and stay unmoved while in use.
  explicit OsonUpdater(std::string* image) : image_(image) {}

  /// Replaces the value of the scalar node `ref` (a NodeRef from an OsonDom
  /// opened over the same image). Fails with kUnsupported when the new
  /// value doesn't fit the slot or changes the scalar type class.
  Status UpdateLeaf(json::Dom::NodeRef ref, const Value& new_value);

 private:
  std::string* image_;
};

}  // namespace fsdm::oson

#endif  // FSDM_OSON_OSON_H_
