#include "collection/path_stats_table.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "collection/collection.h"
#include "collection/collections_table.h"
#include "stats/path_stats.h"

namespace fsdm::collection {

namespace {

class PathStatsScanOp final : public rdbms::Operator {
 public:
  PathStatsScanOp() {
    schema_ = rdbms::Schema({"COLLECTION", "SHARD", "PATH", "DOCS_SEEN",
                             "DOC_FREQUENCY", "VALUE_COUNT", "NULL_COUNT",
                             "NDV", "MIN", "MAX", "HIST_TOTAL", "HIST_LO",
                             "HIST_HI"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const JsonCollection* c : CollectionRegistry::Global().collections()) {
      // Sharded collections (ISSUE 6) keep one PathStatsRepository per
      // shard — the router costs each shard against its own statistics —
      // so emit one row-set per shard. Single-shard collections report
      // SHARD = 0.
      for (size_t shard = 0; shard < c->shard_count(); ++shard) {
        const stats::PathStatsRepository& repo = c->shard(shard)->path_stats();
        for (const auto& [path, s] : repo.paths()) {
          rows_.push_back(
              {Value::String(c->name()),
               Value::Int64(static_cast<int64_t>(shard)), Value::String(path),
               Value::Int64(static_cast<int64_t>(repo.docs_seen())),
               Value::Int64(static_cast<int64_t>(s.doc_frequency)),
               Value::Int64(static_cast<int64_t>(s.value_count)),
               Value::Int64(static_cast<int64_t>(s.null_count)),
               Value::Int64(
                   static_cast<int64_t>(std::llround(s.ndv.Estimate()))),
               s.min_value.has_value()
                   ? Value::String(s.min_value->ToDisplayString())
                   : Value::Null(),
               s.max_value.has_value()
                   ? Value::String(s.max_value->ToDisplayString())
                   : Value::Null(),
               Value::Int64(static_cast<int64_t>(s.histogram.total())),
               s.histogram.frozen() ? Value::Double(s.histogram.lo())
                                    : Value::Null(),
               s.histogram.frozen() ? Value::Double(s.histogram.hi())
                                    : Value::Null()});
        }
      }
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr PathStatsScan() {
  return std::make_unique<PathStatsScanOp>();
}

}  // namespace fsdm::collection
