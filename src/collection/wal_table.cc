#include "collection/wal_table.h"

#include <memory>
#include <string>

#include "collection/collection.h"
#include "collection/collections_table.h"
#include "wal/wal.h"

namespace fsdm::collection {

namespace {

class WalScanOp final : public rdbms::Operator {
 public:
  WalScanOp() {
    schema_ = rdbms::Schema({"NAME", "POLICY", "SEGMENTS", "LAST_LSN",
                             "DURABLE_LSN", "APPENDS", "APPEND_BYTES",
                             "FSYNCS", "CHECKPOINTS", "ABORTS",
                             "RECOVERED_RECORDS", "TORN_TAIL"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const JsonCollection* c : CollectionRegistry::Global().collections()) {
      const wal::Wal* w = c->wal();
      if (w == nullptr) continue;
      rows_.push_back(
          {Value::String(c->name()),
           Value::String(wal::FsyncPolicyName(w->options().fsync)),
           Value::Int64(static_cast<int64_t>(w->segment_count())),
           Value::Int64(static_cast<int64_t>(w->last_lsn())),
           Value::Int64(static_cast<int64_t>(w->durable_lsn())),
           Value::Int64(static_cast<int64_t>(w->appends())),
           Value::Int64(static_cast<int64_t>(w->append_bytes())),
           Value::Int64(static_cast<int64_t>(w->fsyncs())),
           Value::Int64(static_cast<int64_t>(w->checkpoints())),
           Value::Int64(static_cast<int64_t>(w->aborts())),
           Value::Int64(static_cast<int64_t>(w->recovery().records_scanned)),
           Value::Int64(w->recovery().torn_tail ? 1 : 0)});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr WalScan() {
  return std::make_unique<WalScanOp>();
}

}  // namespace fsdm::collection
