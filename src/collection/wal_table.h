#ifndef FSDM_COLLECTION_WAL_TABLE_H_
#define FSDM_COLLECTION_WAL_TABLE_H_

#include "rdbms/executor.h"

/// TELEMETRY$WAL (ISSUE 8): one row per durable collection's write-ahead
/// log, so durability state — LSN positions, segment counts, fsync and
/// checkpoint activity, torn-tail repairs — is visible from SQL alongside
/// the other TELEMETRY$ relations. Collections without a WAL do not appear.

namespace fsdm::collection {

inline constexpr const char* kWalTableName = "TELEMETRY$WAL";

/// Row source over the registry's durable collections. Schema:
/// (NAME, POLICY, SEGMENTS, LAST_LSN, DURABLE_LSN, APPENDS, APPEND_BYTES,
/// FSYNCS, CHECKPOINTS, ABORTS, RECOVERED_RECORDS, TORN_TAIL) —
/// POLICY is the fsync policy name, DURABLE_LSN trails LAST_LSN under group
/// commit, RECOVERED_RECORDS is how many records the last Open() replayed
/// and TORN_TAIL whether it had to truncate one (0/1).
rdbms::OperatorPtr WalScan();

}  // namespace fsdm::collection

#endif  // FSDM_COLLECTION_WAL_TABLE_H_
