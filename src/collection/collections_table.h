#ifndef FSDM_COLLECTION_COLLECTIONS_TABLE_H_
#define FSDM_COLLECTION_COLLECTIONS_TABLE_H_

#include <vector>

#include "rdbms/executor.h"

/// TELEMETRY$COLLECTIONS (ISSUE 4 satellite): one row per live
/// JsonCollection, so health — until now only a numeric gauge — is
/// visible from SQL alongside the other TELEMETRY$ relations.

namespace fsdm::collection {

class JsonCollection;

inline constexpr const char* kCollectionsTableName = "TELEMETRY$COLLECTIONS";

/// Process-wide list of live collections. JsonCollection::Create registers;
/// Detach() (and therefore the destructor) unregisters. Single-threaded
/// like the engine.
class CollectionRegistry {
 public:
  static CollectionRegistry& Global();

  void Register(const JsonCollection* coll);
  void Unregister(const JsonCollection* coll);

  const std::vector<const JsonCollection*>& collections() const {
    return collections_;
  }

 private:
  std::vector<const JsonCollection*> collections_;
};

/// Row source over the registry. Schema: (NAME, HEALTH, REASON, DOC_COUNT,
/// INDEX_PATHS, IMC_STATE, LAST_REBUILD_TS, SHARDS, SHARDS_HEALTHY) —
/// REASON is the current degradation cause, falling back to the last
/// health-transition cause once healed (NULL until a transition happens;
/// ISSUE 10). INDEX_PATHS is the live DataGuide's distinct path count,
/// IMC_STATE is
/// valid/stale/unpopulated, LAST_REBUILD_TS is NULL until the first
/// successful RebuildIndex(). SHARDS is the shard count (1 for unsharded
/// collections) and SHARDS_HEALTHY the per-shard health rollup: how many
/// shards currently report kHealthy (ISSUE 6).
rdbms::OperatorPtr CollectionsScan();

}  // namespace fsdm::collection

#endif  // FSDM_COLLECTION_COLLECTIONS_TABLE_H_
