#include "collection/router.h"

#include <algorithm>
#include <limits>

#include "collection/collection.h"

namespace fsdm::collection {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kIndexedValueScan:
      return "indexed-value-scan";
    case AccessPath::kIndexedPathScan:
      return "indexed-path-scan";
    case AccessPath::kImcFilterScan:
      return "imc-filter-scan";
    case AccessPath::kFullScan:
      return "full-scan";
  }
  return "?";
}

namespace {

/// Scalar DataGuide entry for `path`, preferring the singleton (not-under-
/// array) variant; nullptr when the guide has never seen a scalar there.
const dataguide::PathEntry* FindScalarEntry(const dataguide::DataGuide& guide,
                                            const std::string& path) {
  const dataguide::PathEntry* e =
      guide.Find(path, json::NodeKind::kScalar, /*under_array=*/false);
  if (e == nullptr) {
    e = guide.Find(path, json::NodeKind::kScalar, /*under_array=*/true);
  }
  return e;
}

/// Documents containing `path` in any node kind (0 when unknown).
uint64_t PathFrequency(const dataguide::DataGuide& guide,
                       const std::string& path) {
  uint64_t freq = 0;
  for (json::NodeKind kind : {json::NodeKind::kScalar, json::NodeKind::kObject,
                              json::NodeKind::kArray}) {
    for (bool under_array : {false, true}) {
      const dataguide::PathEntry* e = guide.Find(path, kind, under_array);
      if (e != nullptr) freq = std::max(freq, e->frequency);
    }
  }
  return freq;
}

sqljson::Returning ReturningForLiteral(const Value& literal) {
  if (literal.IsNumeric()) return sqljson::Returning::kNumber;
  if (literal.type() == ScalarType::kString) return sqljson::Returning::kString;
  return sqljson::Returning::kAny;
}

Result<rdbms::ExprPtr> PredicateExpr(const JsonCollection& coll,
                                     const PathPredicate& pred) {
  if (pred.is_existence()) return coll.JsonExistsExpr(pred.path);
  FSDM_ASSIGN_OR_RETURN(
      rdbms::ExprPtr value,
      coll.JsonValueExpr(pred.path, ReturningForLiteral(*pred.literal)));
  return rdbms::Cmp(pred.op, std::move(value), rdbms::Lit(*pred.literal));
}

/// Applies every predicate except `skip` as a Filter over `plan`.
Result<rdbms::OperatorPtr> ApplyResiduals(
    const JsonCollection& coll, rdbms::OperatorPtr plan,
    const std::vector<PathPredicate>& predicates, const PathPredicate* skip) {
  for (const PathPredicate& p : predicates) {
    if (&p == skip) continue;
    FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr expr, PredicateExpr(coll, p));
    plan = rdbms::Filter(std::move(plan), std::move(expr));
  }
  return plan;
}

}  // namespace

Result<RoutedPlan> RoutePredicates(
    const JsonCollection& coll, const std::vector<PathPredicate>& predicates) {
  const dataguide::DataGuide& guide = coll.dataguide();
  const uint64_t docs = guide.document_count();

  // 1. Vectorized IMC scan: every conjunct compares a path whose
  //    JSON_VALUE virtual column sits in a *valid* (not DML-invalidated)
  //    managed store. Population state is a routing input, so a stale
  //    store silently falls through to the document-based paths.
  const imc::ColumnStore* store = coll.imc();
  if (store != nullptr && !predicates.empty()) {
    std::vector<imc::ColumnStore::Predicate> column_preds;
    bool all_materialized = true;
    for (const PathPredicate& p : predicates) {
      const std::string* vc =
          p.is_existence() ? nullptr : coll.VirtualColumnFor(p.path);
      if (vc == nullptr || store->column(*vc) == nullptr) {
        all_materialized = false;
        break;
      }
      column_preds.push_back({*vc, p.op, *p.literal});
    }
    if (all_materialized) {
      FSDM_ASSIGN_OR_RETURN(
          std::vector<rdbms::Row> rows,
          store->FilterScan(column_preds, store->column_names()));
      RoutedPlan routed;
      routed.access_path = AccessPath::kImcFilterScan;
      routed.plan = rdbms::Values(rdbms::Schema(store->column_names()),
                                  std::move(rows));
      routed.reason =
          "all predicate paths materialized as virtual columns in a valid "
          "IMC store; vectorized FilterScan";
      return routed;
    }
  }

  const index::JsonSearchIndex* index = coll.search_index();
  const bool postings =
      index != nullptr && coll.options_.index_options.maintain_postings;

  if (postings) {
    // 2. Value postings: the most selective equality (lowest DataGuide
    //    path frequency) on a path the guide knows as a scalar.
    const PathPredicate* best_eq = nullptr;
    uint64_t best_eq_freq = std::numeric_limits<uint64_t>::max();
    for (const PathPredicate& p : predicates) {
      if (p.is_existence() || p.op != rdbms::CompareOp::kEq) continue;
      const dataguide::PathEntry* e = FindScalarEntry(guide, p.path);
      if (e == nullptr) continue;
      if (e->frequency < best_eq_freq) {
        best_eq = &p;
        best_eq_freq = e->frequency;
      }
    }
    if (best_eq != nullptr) {
      rdbms::OperatorPtr scan = index::IndexedValueScan(
          coll.table(), index, best_eq->path, *best_eq->literal);
      FSDM_ASSIGN_OR_RETURN(
          rdbms::OperatorPtr plan,
          ApplyResiduals(coll, std::move(scan), predicates, best_eq));
      RoutedPlan routed;
      routed.access_path = AccessPath::kIndexedValueScan;
      routed.plan = std::move(plan);
      routed.reason = "equality on scalar path " + best_eq->path +
                      " (DataGuide frequency " + std::to_string(best_eq_freq) +
                      "/" + std::to_string(docs) + "); value postings";
      return routed;
    }

    // 3. Path postings: the most selective existence test. A path present
    //    in at most half the documents (or unknown to the guide) is worth
    //    a posting lookup; a near-universal path is not.
    const PathPredicate* best_exists = nullptr;
    uint64_t best_exists_freq = std::numeric_limits<uint64_t>::max();
    for (const PathPredicate& p : predicates) {
      if (!p.is_existence()) continue;
      uint64_t freq = PathFrequency(guide, p.path);
      if (freq * 2 <= docs && freq < best_exists_freq) {
        best_exists = &p;
        best_exists_freq = freq;
      }
    }
    if (best_exists != nullptr) {
      rdbms::OperatorPtr scan =
          index::IndexedPathScan(coll.table(), index, best_exists->path);
      FSDM_ASSIGN_OR_RETURN(
          rdbms::OperatorPtr plan,
          ApplyResiduals(coll, std::move(scan), predicates, best_exists));
      RoutedPlan routed;
      routed.access_path = AccessPath::kIndexedPathScan;
      routed.plan = std::move(plan);
      routed.reason = "sparse path " + best_exists->path +
                      " (DataGuide frequency " +
                      std::to_string(best_exists_freq) + "/" +
                      std::to_string(docs) + "); path postings";
      return routed;
    }
  }

  // 4. Baseline: full table scan with JSON_EXISTS/JSON_VALUE filters.
  FSDM_ASSIGN_OR_RETURN(
      rdbms::OperatorPtr plan,
      ApplyResiduals(coll, coll.Scan(), predicates, /*skip=*/nullptr));
  RoutedPlan routed;
  routed.access_path = AccessPath::kFullScan;
  routed.plan = std::move(plan);
  routed.reason =
      predicates.empty()
          ? "no predicates; full scan"
          : "no selective index or materialized column applies; full scan";
  return routed;
}

}  // namespace fsdm::collection
