#include "collection/router.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "collection/collection.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slow_query.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

namespace fsdm::collection {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kIndexedValueScan:
      return "indexed-value-scan";
    case AccessPath::kIndexedPathScan:
      return "indexed-path-scan";
    case AccessPath::kImcFilterScan:
      return "imc-filter-scan";
    case AccessPath::kFullScan:
      return "full-scan";
  }
  return "?";
}

namespace {

/// Scalar DataGuide entry for `path`, preferring the singleton (not-under-
/// array) variant; nullptr when the guide has never seen a scalar there.
const dataguide::PathEntry* FindScalarEntry(const dataguide::DataGuide& guide,
                                            const std::string& path) {
  const dataguide::PathEntry* e =
      guide.Find(path, json::NodeKind::kScalar, /*under_array=*/false);
  if (e == nullptr) {
    e = guide.Find(path, json::NodeKind::kScalar, /*under_array=*/true);
  }
  return e;
}

/// Documents containing `path` in any node kind (0 when unknown).
uint64_t PathFrequency(const dataguide::DataGuide& guide,
                       const std::string& path) {
  uint64_t freq = 0;
  for (json::NodeKind kind : {json::NodeKind::kScalar, json::NodeKind::kObject,
                              json::NodeKind::kArray}) {
    for (bool under_array : {false, true}) {
      const dataguide::PathEntry* e = guide.Find(path, kind, under_array);
      if (e != nullptr) freq = std::max(freq, e->frequency);
    }
  }
  return freq;
}

sqljson::Returning ReturningForLiteral(const Value& literal) {
  if (literal.IsNumeric()) return sqljson::Returning::kNumber;
  if (literal.type() == ScalarType::kString) return sqljson::Returning::kString;
  return sqljson::Returning::kAny;
}

Result<rdbms::ExprPtr> PredicateExpr(const JsonCollection& coll,
                                     const PathPredicate& pred) {
  if (pred.is_existence()) return coll.JsonExistsExpr(pred.path);
  FSDM_ASSIGN_OR_RETURN(
      rdbms::ExprPtr value,
      coll.JsonValueExpr(pred.path, ReturningForLiteral(*pred.literal)));
  return rdbms::Cmp(pred.op, std::move(value), rdbms::Lit(*pred.literal));
}

const char* CompareOpSymbol(rdbms::CompareOp op) {
  switch (op) {
    case rdbms::CompareOp::kEq:
      return "=";
    case rdbms::CompareOp::kNe:
      return "<>";
    case rdbms::CompareOp::kLt:
      return "<";
    case rdbms::CompareOp::kLe:
      return "<=";
    case rdbms::CompareOp::kGt:
      return ">";
    case rdbms::CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string PredicateText(const PathPredicate& p) {
  if (p.is_existence()) return "exists(" + p.path + ")";
  return p.path + " " + CompareOpSymbol(p.op) + " " +
         p.literal->ToDisplayString();
}

/// Applies every predicate except `skip` as a Filter over `plan`. Each
/// residual Filter gets its own instrumented span stacked on top of *root,
/// which on return points at the new tree root.
Result<rdbms::OperatorPtr> ApplyResiduals(
    const JsonCollection& coll, rdbms::OperatorPtr plan,
    const std::vector<PathPredicate>& predicates, const PathPredicate* skip,
    std::unique_ptr<telemetry::OperatorSpan>* root) {
  for (const PathPredicate& p : predicates) {
    if (&p == skip) continue;
    FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr expr, PredicateExpr(coll, p));
    std::unique_ptr<telemetry::OperatorSpan> span =
        telemetry::MakeSpan("Filter", PredicateText(p));
    plan = rdbms::Instrument(rdbms::Filter(std::move(plan), std::move(expr)),
                             span.get());
    span->children.push_back(std::move(*root));
    *root = std::move(span);
  }
  return plan;
}

/// Transparent wrapper the router stacks on every routed plan: counts rows
/// and wall time between Open() and Close(); when the query crosses the
/// SlowQueryLog threshold, captures the rendered router decision + span
/// tree and the flight-recorder slice covering the execution. Holds only a
/// *copy* of the RouterDecision and the stable heap pointer to the root
/// span — the owning RoutedPlan may move (and its trace member with it)
/// while the plan runs.
class SlowQueryProbe final : public rdbms::Operator {
 public:
  SlowQueryProbe(rdbms::OperatorPtr child, std::string query,
                 telemetry::RouterDecision decision,
                 const telemetry::OperatorSpan* root)
      : child_(std::move(child)),
        query_(std::move(query)),
        decision_(std::move(decision)),
        root_(root) {
    schema_ = child_->schema();
  }

  Status Open() override {
    rows_ = 0;
    captured_ = false;
    open_ts_us_ = telemetry::MonotonicNowUs();
    watch_.Restart();
    return child_->Open();
  }

  Result<bool> Next(rdbms::Row* out) override {
    FSDM_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (has) ++rows_;
    return has;
  }

  void Close() override {
    child_->Close();
    if (captured_) return;
    const uint64_t elapsed = static_cast<uint64_t>(watch_.ElapsedUs());
    telemetry::SlowQueryLog& log = telemetry::SlowQueryLog::Global();
    if (elapsed < log.threshold_us()) return;
    captured_ = true;
    telemetry::SlowQueryRecord rec;
    rec.ts_us = telemetry::MonotonicNowUs();
    rec.query = query_;
    rec.access_path = decision_.winner;
    rec.elapsed_us = elapsed;
    rec.rows = rows_;
    rec.trace_text = decision_.Render();
    if (root_ != nullptr) {
      rec.trace_text += "plan:\n";
      telemetry::RenderSpanTree(*root_, 1, &rec.trace_text);
    }
    const telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
    if (fr.armed()) {
      std::vector<telemetry::TraceEvent> slice =
          fr.SnapshotSince(open_ts_us_);
      rec.event_count = slice.size();
      std::string events = "[";
      for (const telemetry::TraceEvent& e : slice) {
        if (events.size() > 1) events += ",";
        telemetry::AppendChromeTraceEvent(&events, e);
      }
      events += "]";
      rec.events_json = std::move(events);
    }
    log.Record(std::move(rec));
  }

 private:
  rdbms::OperatorPtr child_;
  std::string query_;
  telemetry::RouterDecision decision_;
  const telemetry::OperatorSpan* root_;
  telemetry::Stopwatch watch_;
  uint64_t open_ts_us_ = 0;
  uint64_t rows_ = 0;
  bool captured_ = false;
};

}  // namespace

Result<RoutedPlan> RoutePredicates(
    const JsonCollection& coll, const std::vector<PathPredicate>& predicates) {
  FSDM_TRACE_SPAN(route_span, "router", "router.route");
  std::string query_text;
  for (const PathPredicate& p : predicates) {
    if (!query_text.empty()) query_text += " AND ";
    query_text += PredicateText(p);
  }
  route_span.AddNumberArg("predicates",
                          static_cast<double>(predicates.size()));

  const dataguide::DataGuide& guide = coll.dataguide();
  const uint64_t docs = guide.document_count();

  RoutedPlan routed;
  telemetry::RouterDecision& decision = routed.trace.decision;
  decision.candidates.resize(4);
  telemetry::RouterCandidate& imc_cand = decision.candidates[0];
  telemetry::RouterCandidate& value_cand = decision.candidates[1];
  telemetry::RouterCandidate& path_cand = decision.candidates[2];
  telemetry::RouterCandidate& full_cand = decision.candidates[3];
  imc_cand.access_path = AccessPathName(AccessPath::kImcFilterScan);
  value_cand.access_path = AccessPathName(AccessPath::kIndexedValueScan);
  path_cand.access_path = AccessPathName(AccessPath::kIndexedPathScan);
  full_cand.access_path = AccessPathName(AccessPath::kFullScan);
  // Tiers past the winner are never inspected; they keep this default.
  imc_cand.detail = value_cand.detail = path_cand.detail = "not evaluated";
  full_cand.eligible = true;
  full_cand.detail = "always applicable";

  // Marks tier `idx` as the winner, freezes the legacy reason string, and
  // stacks the slow-query probe on the finished plan (routed.plan and
  // routed.trace.root are always set before finish runs).
  auto finish = [&](size_t idx, AccessPath path, std::string reason) {
    decision.candidates[idx].eligible = true;
    decision.candidates[idx].chosen = true;
    decision.winner = AccessPathName(path);
    decision.reason = reason;
    routed.access_path = path;
    routed.reason = std::move(reason);
    route_span.AddTextArg("winner", decision.winner);
    FSDM_TRACE_INSTANT_TEXT("router", "router.winner", "path",
                            decision.winner);
    routed.plan = std::make_unique<SlowQueryProbe>(
        std::move(routed.plan), query_text, decision,
        routed.trace.root.get());
  };

  // 1. Vectorized IMC scan: every conjunct compares a path whose
  //    JSON_VALUE virtual column sits in a *valid* (not DML-invalidated)
  //    managed store. Population state is a routing input, so a stale
  //    store silently falls through to the document-based paths.
  const imc::ColumnStore* store = coll.imc();
  if (store == nullptr) {
    imc_cand.detail = "no valid IMC store";
  } else if (predicates.empty()) {
    imc_cand.detail = "no predicates to push into the store";
  } else {
    std::vector<imc::ColumnStore::Predicate> column_preds;
    bool all_materialized = true;
    for (const PathPredicate& p : predicates) {
      const std::string* vc =
          p.is_existence() ? nullptr : coll.VirtualColumnFor(p.path);
      if (vc == nullptr || store->column(*vc) == nullptr) {
        all_materialized = false;
        imc_cand.detail =
            "path " + p.path + " not materialized as a virtual column";
        break;
      }
      column_preds.push_back({*vc, p.op, *p.literal});
    }
    if (all_materialized) {
      telemetry::Stopwatch route_scan;
      FSDM_ASSIGN_OR_RETURN(
          std::vector<rdbms::Row> rows,
          store->FilterScan(column_preds, store->column_names()));
      char stats[96];
      std::snprintf(stats, sizeof(stats),
                    "vectorized FilterScan at route time: %zu rows in %.1f us",
                    rows.size(), route_scan.ElapsedUs());
      imc_cand.detail = stats;
      std::unique_ptr<telemetry::OperatorSpan> root =
          telemetry::MakeSpan("ImcFilterScan", stats);
      routed.plan = rdbms::Instrument(
          rdbms::Values(rdbms::Schema(store->column_names()), std::move(rows)),
          root.get());
      routed.trace.root = std::move(root);
      finish(0, AccessPath::kImcFilterScan,
             "all predicate paths materialized as virtual columns in a valid "
             "IMC store; vectorized FilterScan");
      return routed;
    }
  }

  const index::JsonSearchIndex* index = coll.search_index();
  const bool postings_maintained =
      index != nullptr && coll.options_.index_options.maintain_postings;
  // Health is a routing input (ISSUE 3): a degraded index's postings may
  // be missing rows, so both posting tiers drop out and the conjunction
  // falls through to the always-correct full scan until RebuildIndex().
  const CollectionHealth health = coll.health();
  const bool postings =
      postings_maintained && health == CollectionHealth::kHealthy;
  if (!postings_maintained) {
    value_cand.detail = path_cand.detail = "no search index postings maintained";
  } else if (!postings) {
    value_cand.detail = path_cand.detail =
        std::string(CollectionHealthName(health)) + ": " +
        coll.health_reason();
    FSDM_COUNT("fsdm_router_degraded_fallbacks_total", 1);
  }

  if (postings) {
    // 2. Value postings: the most selective equality (lowest DataGuide
    //    path frequency) on a path the guide knows as a scalar.
    const PathPredicate* best_eq = nullptr;
    uint64_t best_eq_freq = std::numeric_limits<uint64_t>::max();
    for (const PathPredicate& p : predicates) {
      if (p.is_existence() || p.op != rdbms::CompareOp::kEq) continue;
      const dataguide::PathEntry* e = FindScalarEntry(guide, p.path);
      if (e == nullptr) continue;
      if (e->frequency < best_eq_freq) {
        best_eq = &p;
        best_eq_freq = e->frequency;
      }
    }
    if (best_eq != nullptr) {
      value_cand.detail = "DataGuide frequency " + std::to_string(best_eq_freq) +
                          "/" + std::to_string(docs) + " on " + best_eq->path;
      std::unique_ptr<telemetry::OperatorSpan> root = telemetry::MakeSpan(
          "IndexedValueScan", PredicateText(*best_eq));
      rdbms::OperatorPtr scan = rdbms::Instrument(
          index::IndexedValueScan(coll.table(), index, best_eq->path,
                                  *best_eq->literal),
          root.get());
      FSDM_ASSIGN_OR_RETURN(
          rdbms::OperatorPtr plan,
          ApplyResiduals(coll, std::move(scan), predicates, best_eq, &root));
      routed.plan = std::move(plan);
      routed.trace.root = std::move(root);
      finish(1, AccessPath::kIndexedValueScan,
             "equality on scalar path " + best_eq->path +
                 " (DataGuide frequency " + std::to_string(best_eq_freq) + "/" +
                 std::to_string(docs) + "); value postings");
      return routed;
    }
    value_cand.detail = "no equality on a DataGuide-known scalar path";

    // 3. Path postings: the most selective existence test. A path present
    //    in at most half the documents (or unknown to the guide) is worth
    //    a posting lookup; a near-universal path is not.
    const PathPredicate* best_exists = nullptr;
    uint64_t best_exists_freq = std::numeric_limits<uint64_t>::max();
    for (const PathPredicate& p : predicates) {
      if (!p.is_existence()) continue;
      uint64_t freq = PathFrequency(guide, p.path);
      if (freq * 2 <= docs && freq < best_exists_freq) {
        best_exists = &p;
        best_exists_freq = freq;
      }
    }
    if (best_exists != nullptr) {
      path_cand.detail = "DataGuide frequency " +
                         std::to_string(best_exists_freq) + "/" +
                         std::to_string(docs) + " on " + best_exists->path;
      std::unique_ptr<telemetry::OperatorSpan> root = telemetry::MakeSpan(
          "IndexedPathScan", PredicateText(*best_exists));
      rdbms::OperatorPtr scan = rdbms::Instrument(
          index::IndexedPathScan(coll.table(), index, best_exists->path),
          root.get());
      FSDM_ASSIGN_OR_RETURN(rdbms::OperatorPtr plan,
                            ApplyResiduals(coll, std::move(scan), predicates,
                                           best_exists, &root));
      routed.plan = std::move(plan);
      routed.trace.root = std::move(root);
      finish(2, AccessPath::kIndexedPathScan,
             "sparse path " + best_exists->path + " (DataGuide frequency " +
                 std::to_string(best_exists_freq) + "/" + std::to_string(docs) +
                 "); path postings");
      return routed;
    }
    path_cand.detail = "no sufficiently sparse existence predicate";
  }

  // 4. Baseline: full table scan with JSON_EXISTS/JSON_VALUE filters.
  std::unique_ptr<telemetry::OperatorSpan> root =
      telemetry::MakeSpan("Scan", coll.name());
  rdbms::OperatorPtr scan = rdbms::Instrument(coll.Scan(), root.get());
  FSDM_ASSIGN_OR_RETURN(
      rdbms::OperatorPtr plan,
      ApplyResiduals(coll, std::move(scan), predicates, /*skip=*/nullptr,
                     &root));
  routed.plan = std::move(plan);
  routed.trace.root = std::move(root);
  std::string reason;
  if (predicates.empty()) {
    reason = "no predicates; full scan";
  } else if (postings_maintained && !postings) {
    reason = "posting paths unavailable (" +
             std::string(CollectionHealthName(health)) + ": " +
             coll.health_reason() + "); full scan";
  } else {
    reason = "no selective index or materialized column applies; full scan";
  }
  finish(3, AccessPath::kFullScan, std::move(reason));
  return routed;
}

}  // namespace fsdm::collection
