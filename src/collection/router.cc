#include "collection/router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "collection/collection.h"
#include "fault/fault.h"
#include "rdbms/parallel.h"
#include "stats/operator_costs.h"
#include "stats/path_stats.h"
#include "telemetry/activity.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/log.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/query_monitor.h"
#include "telemetry/slow_query.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

namespace fsdm::collection {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kIndexedValueScan:
      return "indexed-value-scan";
    case AccessPath::kIndexedPathScan:
      return "indexed-path-scan";
    case AccessPath::kPostingIntersectScan:
      return "posting-intersect-scan";
    case AccessPath::kImcFilterScan:
      return "imc-filter-scan";
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kShardedUnion:
      return "sharded-union";
  }
  return "?";
}

namespace {

/// Scalar DataGuide entry for `path`, preferring the singleton (not-under-
/// array) variant; nullptr when the guide has never seen a scalar there.
const dataguide::PathEntry* FindScalarEntry(const dataguide::DataGuide& guide,
                                            const std::string& path) {
  const dataguide::PathEntry* e =
      guide.Find(path, json::NodeKind::kScalar, /*under_array=*/false);
  if (e == nullptr) {
    e = guide.Find(path, json::NodeKind::kScalar, /*under_array=*/true);
  }
  return e;
}

/// Documents containing `path` in any node kind (0 when unknown).
uint64_t PathFrequency(const dataguide::DataGuide& guide,
                       const std::string& path) {
  uint64_t freq = 0;
  for (json::NodeKind kind : {json::NodeKind::kScalar, json::NodeKind::kObject,
                              json::NodeKind::kArray}) {
    for (bool under_array : {false, true}) {
      const dataguide::PathEntry* e = guide.Find(path, kind, under_array);
      if (e != nullptr) freq = std::max(freq, e->frequency);
    }
  }
  return freq;
}

sqljson::Returning ReturningForLiteral(const Value& literal) {
  if (literal.IsNumeric()) return sqljson::Returning::kNumber;
  if (literal.type() == ScalarType::kString) return sqljson::Returning::kString;
  return sqljson::Returning::kAny;
}

Result<rdbms::ExprPtr> PredicateExpr(const JsonCollection& coll,
                                     const PathPredicate& pred) {
  if (pred.is_existence()) return coll.JsonExistsExpr(pred.path);
  FSDM_ASSIGN_OR_RETURN(
      rdbms::ExprPtr value,
      coll.JsonValueExpr(pred.path, ReturningForLiteral(*pred.literal)));
  return rdbms::Cmp(pred.op, std::move(value), rdbms::Lit(*pred.literal));
}

const char* CompareOpSymbol(rdbms::CompareOp op) {
  switch (op) {
    case rdbms::CompareOp::kEq:
      return "=";
    case rdbms::CompareOp::kNe:
      return "<>";
    case rdbms::CompareOp::kLt:
      return "<";
    case rdbms::CompareOp::kLe:
      return "<=";
    case rdbms::CompareOp::kGt:
      return ">";
    case rdbms::CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string PredicateText(const PathPredicate& p) {
  if (p.is_existence()) return "exists(" + p.path + ")";
  return p.path + " " + CompareOpSymbol(p.op) + " " +
         p.literal->ToDisplayString();
}

std::string Fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string Fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Selectivity estimation over the collection's PathStatsRepository with
/// the DataGuide as fallback. All estimates are deterministic for frozen
/// statistics — no wall clock, no randomness.
class SelEstimator {
 public:
  SelEstimator(const stats::PathStatsRepository& repo,
               const dataguide::DataGuide& guide, double docs)
      : repo_(repo), guide_(guide), docs_(docs) {}

  /// Fraction of documents containing `path`, in [0, 1].
  double ExistsSel(const std::string& path) const {
    if (repo_.docs_seen() > 0 && repo_.Find(path) != nullptr) {
      return *repo_.ExistenceSelectivity(path);
    }
    // Container-only paths never reach the scalar sink; the DataGuide's
    // structural frequency covers them (and everything pre-stats).
    const uint64_t total = guide_.document_count();
    if (total == 0) return 0.0;
    return std::min(1.0, static_cast<double>(PathFrequency(guide_, path)) /
                             static_cast<double>(total));
  }

  /// NDV of the path's non-null values, clamped to >= 1. Falls back to a
  /// default of 10 distinct values when no sketch exists.
  double Ndv(const std::string& path) const {
    if (repo_.Find(path) != nullptr) {
      return std::max(1.0, repo_.NdvEstimate(path));
    }
    return 10.0;
  }

  /// Selectivity of one conjunct.
  double PredSel(const PathPredicate& p) const {
    const double exists = ExistsSel(p.path);
    if (p.is_existence()) return exists;
    if (p.op == rdbms::CompareOp::kEq) return exists / Ndv(p.path);
    if (p.op == rdbms::CompareOp::kNe) {
      return exists * (1.0 - 1.0 / Ndv(p.path));
    }
    // Range comparison: histogram fraction when a numeric histogram
    // exists, else the textbook 1/3 default.
    const stats::PathStats* s = repo_.Find(p.path);
    if (s != nullptr && p.literal->IsNumeric() && s->histogram.total() > 0) {
      const double x = p.literal->NumericAsDouble();
      double frac;
      switch (p.op) {
        case rdbms::CompareOp::kLt:
          frac = s->histogram.FractionBelow(x, /*inclusive=*/false);
          break;
        case rdbms::CompareOp::kLe:
          frac = s->histogram.FractionBelow(x, /*inclusive=*/true);
          break;
        case rdbms::CompareOp::kGt:
          frac = 1.0 - s->histogram.FractionBelow(x, /*inclusive=*/true);
          break;
        default:  // kGe
          frac = 1.0 - s->histogram.FractionBelow(x, /*inclusive=*/false);
          break;
      }
      return exists * frac;
    }
    return exists / 3.0;
  }

  /// Estimated documents satisfying one conjunct.
  double PredRows(const PathPredicate& p) const {
    return docs_ * PredSel(p);
  }

  /// Estimated documents satisfying the whole conjunction (independence
  /// assumption: product of per-conjunct selectivities).
  double ConjunctionRows(const std::vector<PathPredicate>& preds) const {
    double sel = 1.0;
    for (const PathPredicate& p : preds) sel *= PredSel(p);
    return docs_ * sel;
  }

  double docs() const { return docs_; }

 private:
  const stats::PathStatsRepository& repo_;
  const dataguide::DataGuide& guide_;
  double docs_;
};

/// Applies every predicate except those in `skip` as a Filter over `plan`.
/// Each residual Filter gets its own instrumented span stacked on top of
/// *root, which on return points at the new tree root.
Result<rdbms::OperatorPtr> ApplyResiduals(
    const JsonCollection& coll, rdbms::OperatorPtr plan,
    const std::vector<PathPredicate>& predicates,
    const std::vector<const PathPredicate*>& skip,
    std::unique_ptr<telemetry::OperatorSpan>* root) {
  for (const PathPredicate& p : predicates) {
    if (std::find(skip.begin(), skip.end(), &p) != skip.end()) continue;
    FSDM_ASSIGN_OR_RETURN(rdbms::ExprPtr expr, PredicateExpr(coll, p));
    std::unique_ptr<telemetry::OperatorSpan> span =
        telemetry::MakeSpan("Filter", PredicateText(p));
    plan = rdbms::Instrument(rdbms::Filter(std::move(plan), std::move(expr)),
                             span.get());
    span->children.push_back(std::move(*root));
    *root = std::move(span);
  }
  return plan;
}

/// Transparent wrapper the router stacks on every routed plan. On Close()
/// it (a) feeds the measured span times back into the operator cost model
/// and compares estimated vs. actual output rows — the cardinality
/// feedback loop (fsdm_router_misestimates_total counts ratios past 4x) —
/// and (b) captures the query into the SlowQueryLog when it crossed the
/// threshold. Holds only a *copy* of the RouterDecision and the stable
/// heap pointer to the root span — the owning RoutedPlan may move (and its
/// trace member with it) while the plan runs.
class RoutedQueryProbe final : public rdbms::Operator {
 public:
  RoutedQueryProbe(rdbms::OperatorPtr child, std::string collection,
                   std::string query, telemetry::RouterDecision decision,
                   const telemetry::OperatorSpan* root, uint64_t query_id)
      : child_(std::move(child)),
        collection_(std::move(collection)),
        query_(std::move(query)),
        decision_(std::move(decision)),
        root_(root),
        query_id_(query_id) {
    schema_ = child_->schema();
  }

  ~RoutedQueryProbe() override {
    // Plans dropped without Close() (error paths) must still leave the
    // monitor: a dangling entry would let TELEMETRY$QUERY_MONITOR walk a
    // destroyed span tree.
    if (registered_) telemetry::QueryMonitor::Global().Unregister(query_id_);
  }

  Status Open() override {
    rows_ = 0;
    closed_ = false;
    open_ts_us_ = telemetry::MonotonicNowUs();
    watch_.Restart();
    // Publish this drain on the consumer thread's activity record so the
    // ASH sampler can attribute its time. The lease member also releases
    // on destruction, covering plans dropped on an error path before
    // Close() (ISSUE 7 satellite: no dangling active records).
    lease_ = telemetry::ActivityLease::Begin(
        collection_, decision_.winner, "RoutedQueryProbe", query_,
        /*shard=*/-1, /*worker=*/-1, query_id_);
    // Register in the in-flight monitor (ISSUE 9 tentpole): from here
    // until Close() a concurrent session sees this drain — and its live
    // per-operator progress — in TELEMETRY$QUERY_MONITOR.
    telemetry::QueryMonitor::Global().Register(query_id_, collection_, query_,
                                               decision_.winner,
                                               decision_.est_out_rows, root_);
    registered_ = true;
    // Refresh pulls every registered memory reporter once so the peak this
    // query records reflects resident state (table heap, postings, IMC),
    // not just transient charges. O(reporters), off the DML fast path.
    telemetry::MemoryTracker::Global().Refresh();
    peak_mem_bytes_ = telemetry::MemoryTracker::Global().CurrentBytes();
    Status status = child_->Open();
    if (!status.ok()) {
      lease_.Release();
      telemetry::QueryMonitor::Global().Unregister(query_id_);
      registered_ = false;
    }
    return status;
  }

  Result<bool> Next(rdbms::Row* out) override {
    // Drain-path injection point (ISSUE 9): latency-only specs
    // (FaultSpec::StallUs) hold the query in flight so tests can watch it
    // through TELEMETRY$QUERY_MONITOR mid-drain.
    FSDM_FAULT_POINT("router.drain.next");
    FSDM_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (has) {
      ++rows_;
      if ((rows_ & 0xff) == 0) SampleMemoryPeak();
    }
    return has;
  }

  void Close() override {
    child_->Close();
    lease_.Release();
    if (registered_) {
      telemetry::QueryMonitor::Global().Unregister(query_id_);
      registered_ = false;
    }
    if (closed_) return;
    closed_ = true;
    SampleMemoryPeak();
    const uint64_t elapsed = static_cast<uint64_t>(watch_.ElapsedUs());
    HarvestFeedback();
    MaybeCaptureSlowQuery(elapsed);
  }

 private:
  void SampleMemoryPeak() {
    const uint64_t cur = telemetry::MemoryTracker::Global().CurrentBytes();
    if (cur > peak_mem_bytes_) peak_mem_bytes_ = cur;
  }

  void HarvestFeedback() {
    FSDM_COUNT("fsdm_router_routed_queries_total", 1);
    if (root_ != nullptr) {
      stats::OperatorCostModel::Global().RecordSpanTree(*root_);
    }
    if (decision_.est_out_rows >= 0) {
      const double est = decision_.est_out_rows;
      const double actual = static_cast<double>(rows_);
      const double ratio = std::max((actual + 1.0) / (est + 1.0),
                                    (est + 1.0) / (actual + 1.0));
      if (ratio > 4.0) FSDM_COUNT("fsdm_router_misestimates_total", 1);
    }
  }

  void MaybeCaptureSlowQuery(uint64_t elapsed) {
    telemetry::SlowQueryLog& log = telemetry::SlowQueryLog::Global();
    if (elapsed < log.threshold_us()) return;
    telemetry::SlowQueryRecord rec;
    rec.ts_us = telemetry::MonotonicNowUs();
    rec.query_id = query_id_;
    rec.peak_mem_bytes = peak_mem_bytes_;
    rec.query = query_;
    rec.access_path = decision_.winner;
    rec.elapsed_us = elapsed;
    rec.rows = rows_;
    rec.est_rows = decision_.est_out_rows;
    rec.trace_text = decision_.Render();
    if (root_ != nullptr) {
      rec.trace_text += "plan:\n";
      telemetry::RenderSpanTree(*root_, 1, &rec.trace_text);
    }
    const telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
    if (fr.armed()) {
      std::vector<telemetry::TraceEvent> slice =
          fr.SnapshotSince(open_ts_us_);
      rec.event_count = slice.size();
      std::string events = "[";
      for (const telemetry::TraceEvent& e : slice) {
        if (events.size() > 1) events += ",";
        telemetry::AppendChromeTraceEvent(&events, e);
      }
      events += "]";
      rec.events_json = std::move(events);
    }
    log.Record(std::move(rec));
  }

  rdbms::OperatorPtr child_;
  std::string collection_;
  std::string query_;
  telemetry::RouterDecision decision_;
  const telemetry::OperatorSpan* root_;
  uint64_t query_id_ = 0;
  telemetry::Stopwatch watch_;
  telemetry::ActivityLease lease_;
  uint64_t open_ts_us_ = 0;
  uint64_t rows_ = 0;
  uint64_t peak_mem_bytes_ = 0;
  bool closed_ = false;
  bool registered_ = false;
};

std::string BuildQueryText(const std::vector<PathPredicate>& predicates) {
  std::string query_text;
  for (const PathPredicate& p : predicates) {
    if (!query_text.empty()) query_text += " AND ";
    query_text += PredicateText(p);
  }
  return query_text;
}

/// Routes one single-shard collection. `wrap_probe` = false is the
/// sharded fan-out asking for a bare sub-plan: the facade stacks ONE
/// probe over the stitched tree, so shard plans must not feed the cost
/// model or the slow-query log on their own.
Result<RoutedPlan> RouteSingle(const JsonCollection& coll,
                               const std::vector<PathPredicate>& predicates,
                               bool wrap_probe) {
  FSDM_TRACE_SPAN(route_span, "router", "router.route");
  std::string query_text = BuildQueryText(predicates);
  route_span.AddNumberArg("predicates",
                          static_cast<double>(predicates.size()));

  const dataguide::DataGuide& guide = coll.dataguide();
  const uint64_t guide_docs = guide.document_count();
  const double live_docs = static_cast<double>(coll.document_count());
  const stats::OperatorCostModel& costs = stats::OperatorCostModel::Global();
  SelEstimator est(coll.path_stats(), guide, live_docs);
  const size_t n_preds = predicates.size();

  RoutedPlan routed;
  telemetry::RouterDecision& decision = routed.trace.decision;
  decision.candidates.resize(5);
  telemetry::RouterCandidate& imc_cand = decision.candidates[0];
  telemetry::RouterCandidate& value_cand = decision.candidates[1];
  telemetry::RouterCandidate& isect_cand = decision.candidates[2];
  telemetry::RouterCandidate& path_cand = decision.candidates[3];
  telemetry::RouterCandidate& full_cand = decision.candidates[4];
  imc_cand.access_path = AccessPathName(AccessPath::kImcFilterScan);
  value_cand.access_path = AccessPathName(AccessPath::kIndexedValueScan);
  isect_cand.access_path = AccessPathName(AccessPath::kPostingIntersectScan);
  path_cand.access_path = AccessPathName(AccessPath::kIndexedPathScan);
  full_cand.access_path = AccessPathName(AccessPath::kFullScan);

  // The conjunction's estimated output cardinality — what the feedback
  // loop later compares against the actual row count.
  decision.est_out_rows = predicates.empty()
                              ? live_docs
                              : est.ConjunctionRows(predicates);

  // --- Evaluate every candidate: eligibility, estimated rows, estimated
  // cost (selectivity x measured per-row operator cost). ------------------

  // [0] Vectorized IMC scan: every conjunct compares a path whose
  // JSON_VALUE virtual column sits in a *valid* (not DML-invalidated)
  // managed store. Population state is a routing input, so a stale store
  // silently falls through to the document-based paths.
  const imc::ColumnStore* store = coll.imc();
  std::vector<imc::ColumnStore::Predicate> column_preds;
  if (store == nullptr) {
    imc_cand.detail = "no valid IMC store";
  } else if (predicates.empty()) {
    imc_cand.detail = "no predicates to push into the store";
  } else {
    bool all_materialized = true;
    for (const PathPredicate& p : predicates) {
      const std::string* vc =
          p.is_existence() ? nullptr : coll.VirtualColumnFor(p.path);
      if (vc == nullptr || store->column(*vc) == nullptr) {
        all_materialized = false;
        imc_cand.detail =
            "path " + p.path + " not materialized as a virtual column";
        break;
      }
      column_preds.push_back({*vc, p.op, *p.literal});
    }
    if (all_materialized) {
      imc_cand.eligible = true;
      imc_cand.est_rows = decision.est_out_rows;
      imc_cand.est_cost_us =
          static_cast<double>(store->row_count()) *
          costs.UsPerRow("ImcFilterScan");
      imc_cand.detail =
          "all predicate paths materialized in a valid IMC store";
    }
  }

  const index::JsonSearchIndex* index = coll.search_index();
  const bool postings_maintained =
      index != nullptr && coll.options().index_options.maintain_postings;
  // Health is a routing input (ISSUE 3): a degraded index's postings may
  // be missing rows, so every posting-backed candidate drops out and the
  // conjunction falls through to the always-correct full scan until
  // RebuildIndex().
  const CollectionHealth health = coll.health();
  const bool postings =
      postings_maintained && health == CollectionHealth::kHealthy;
  if (!postings_maintained) {
    value_cand.detail = isect_cand.detail = path_cand.detail =
        "no search index postings maintained";
  } else if (!postings) {
    value_cand.detail = isect_cand.detail = path_cand.detail =
        std::string(CollectionHealthName(health)) + ": " +
        coll.health_reason();
    FSDM_COUNT("fsdm_router_degraded_fallbacks_total", 1);
    FSDM_LOG(telemetry::LogLevel::kWarn, "router", 1201,
             "degraded routing fallback on " + coll.name() + " (" +
                 CollectionHealthName(health) + "): " + coll.health_reason(),
             telemetry::LogText("collection", coll.name()));
  }

  // [1] Value postings: the most selective equality on a path the guide
  // knows as a scalar.
  const PathPredicate* best_eq = nullptr;
  if (postings) {
    double best_eq_rows = std::numeric_limits<double>::max();
    for (const PathPredicate& p : predicates) {
      if (p.is_existence() || p.op != rdbms::CompareOp::kEq) continue;
      if (FindScalarEntry(guide, p.path) == nullptr) continue;
      const double rows = est.PredRows(p);
      if (rows < best_eq_rows) {
        best_eq = &p;
        best_eq_rows = rows;
      }
    }
    if (best_eq != nullptr) {
      value_cand.eligible = true;
      value_cand.est_rows = best_eq_rows;
      value_cand.est_cost_us =
          best_eq_rows * costs.UsPerRow("IndexedValueScan") +
          best_eq_rows * static_cast<double>(n_preds - 1) *
              costs.UsPerRow("Filter");
      value_cand.detail =
          "equality on " + best_eq->path + " (DataGuide frequency " +
          std::to_string(FindScalarEntry(guide, best_eq->path)->frequency) +
          "/" + std::to_string(guide_docs) + ", ndv ~" +
          Fmt1(est.Ndv(best_eq->path)) + ")";
    } else {
      value_cand.detail = "no equality on a DataGuide-known scalar path";
    }
  }

  // [2] Posting-list intersection (ROADMAP "Router cost model" item): two
  // or more index-answerable conjuncts — equalities on guide-known scalar
  // paths and existence tests — evaluated by intersecting their posting
  // lists, leaving only the rest as residual filters.
  std::vector<const PathPredicate*> isect_covered;
  std::vector<index::IndexTerm> isect_terms;
  if (postings) {
    for (const PathPredicate& p : predicates) {
      if (p.is_existence()) {
        isect_covered.push_back(&p);
        isect_terms.push_back({p.path, std::nullopt});
      } else if (p.op == rdbms::CompareOp::kEq &&
                 FindScalarEntry(guide, p.path) != nullptr) {
        isect_covered.push_back(&p);
        isect_terms.push_back({p.path, p.literal});
      }
    }
    if (isect_terms.size() >= 2) {
      double total_postings = 0;
      double covered_sel = 1.0;
      for (const PathPredicate* p : isect_covered) {
        total_postings += est.PredRows(*p);
        covered_sel *= est.PredSel(*p);
      }
      const double covered_rows = live_docs * covered_sel;
      const size_t n_residual = n_preds - isect_covered.size();
      isect_cand.eligible = true;
      isect_cand.est_rows = covered_rows;
      isect_cand.est_cost_us =
          total_postings * costs.UsPerRow("PostingIntersect") +
          covered_rows * costs.UsPerRow("PostingIntersectScan") +
          covered_rows * static_cast<double>(n_residual) *
              costs.UsPerRow("Filter");
      isect_cand.detail =
          std::to_string(isect_terms.size()) +
          " index-answerable conjuncts, ~" + Fmt1(total_postings) +
          " postings to merge";
    } else {
      isect_cand.detail = "fewer than two index-answerable conjuncts";
      isect_covered.clear();
      isect_terms.clear();
    }
  }

  // [3] Path postings: the most selective existence test. The old
  // frequency threshold (present in at most half the documents) is gone —
  // the cost comparison against the full scan decides.
  const PathPredicate* best_exists = nullptr;
  if (postings) {
    double best_exists_rows = std::numeric_limits<double>::max();
    for (const PathPredicate& p : predicates) {
      if (!p.is_existence()) continue;
      const double rows = est.PredRows(p);
      if (rows < best_exists_rows) {
        best_exists = &p;
        best_exists_rows = rows;
      }
    }
    if (best_exists != nullptr) {
      path_cand.eligible = true;
      path_cand.est_rows = best_exists_rows;
      path_cand.est_cost_us =
          best_exists_rows * costs.UsPerRow("IndexedPathScan") +
          best_exists_rows * static_cast<double>(n_preds - 1) *
              costs.UsPerRow("Filter");
      path_cand.detail = "existence of " + best_exists->path +
                         " (DataGuide frequency " +
                         std::to_string(PathFrequency(guide, best_exists->path)) +
                         "/" + std::to_string(guide_docs) + ")";
    } else {
      path_cand.detail = "no existence predicate to probe";
    }
  }

  // [4] Baseline full scan: always eligible; every predicate becomes a
  // residual filter over the scanned rows.
  full_cand.eligible = true;
  full_cand.est_rows = live_docs;
  full_cand.est_cost_us =
      live_docs * (costs.UsPerRow("Scan") +
                   static_cast<double>(n_preds) * costs.UsPerRow("Filter"));
  full_cand.detail = "always applicable";

  // --- Pick the cheapest eligible candidate (ties break toward the
  // earlier candidate, keeping decisions deterministic). -----------------
  size_t winner = 4;
  for (size_t i = 0; i < decision.candidates.size(); ++i) {
    const telemetry::RouterCandidate& c = decision.candidates[i];
    if (!c.eligible) continue;
    if (c.est_cost_us < decision.candidates[winner].est_cost_us) winner = i;
  }
  // A strictly-cheaper candidate earlier in the list wins outright; an
  // equal-cost one wins by order. The loop above keeps the *first* minimum
  // because later candidates must be strictly cheaper to displace it —
  // except that `winner` starts at the always-eligible full scan, so walk
  // again preferring the earliest minimum.
  for (size_t i = 0; i < decision.candidates.size(); ++i) {
    const telemetry::RouterCandidate& c = decision.candidates[i];
    if (c.eligible &&
        c.est_cost_us <= decision.candidates[winner].est_cost_us) {
      winner = i;
      break;
    }
  }

  // Marks candidate `idx` as the winner, freezes the legacy reason string,
  // and stacks the feedback/slow-query probe on the finished plan
  // (routed.plan and routed.trace.root are always set before finish runs).
  // Shard sub-plans (wrap_probe = false) stay bare — see RouteSingle doc.
  auto finish = [&](size_t idx, AccessPath path, std::string reason) {
    decision.candidates[idx].chosen = true;
    decision.winner = AccessPathName(path);
    decision.reason = reason;
    routed.access_path = path;
    routed.reason = std::move(reason);
    route_span.AddTextArg("winner", decision.winner);
    FSDM_TRACE_INSTANT_TEXT("router", "router.winner", "path",
                            decision.winner);
    if (wrap_probe) {
      routed.plan = std::make_unique<RoutedQueryProbe>(
          std::move(routed.plan), coll.name(), query_text, decision,
          routed.trace.root.get(),
          telemetry::QueryMonitor::Global().AllocateQueryId());
    }
  };

  switch (winner) {
    case 0: {  // imc-filter-scan
      telemetry::Stopwatch route_scan;
      FSDM_ASSIGN_OR_RETURN(
          std::vector<rdbms::Row> rows,
          store->FilterScan(column_preds, store->column_names()));
      // Feed the scan measurement with the scanned-row basis; the plan
      // below only *replays* the materialized result, so RecordSpanTree
      // skips its span.
      stats::OperatorCostModel::Global().Record(
          "ImcFilterScan", store->row_count(), route_scan.ElapsedUs());
      imc_cand.detail += "; FilterScan at route time: " +
                         std::to_string(rows.size()) + " rows";
      std::unique_ptr<telemetry::OperatorSpan> root =
          telemetry::MakeSpan("ImcFilterScan", imc_cand.detail);
      routed.plan = rdbms::Instrument(
          rdbms::Values(rdbms::Schema(store->column_names()), std::move(rows)),
          root.get());
      routed.trace.root = std::move(root);
      finish(0, AccessPath::kImcFilterScan,
             "all predicate paths materialized as virtual columns in a valid "
             "IMC store (est cost " + Fmt2(imc_cand.est_cost_us) +
                 " us); vectorized FilterScan");
      break;
    }
    case 1: {  // indexed-value-scan
      std::unique_ptr<telemetry::OperatorSpan> root = telemetry::MakeSpan(
          "IndexedValueScan", PredicateText(*best_eq));
      rdbms::OperatorPtr scan = rdbms::Instrument(
          index::IndexedValueScan(coll.table(), index, best_eq->path,
                                  *best_eq->literal),
          root.get());
      FSDM_ASSIGN_OR_RETURN(
          rdbms::OperatorPtr plan,
          ApplyResiduals(coll, std::move(scan), predicates, {best_eq}, &root));
      routed.plan = std::move(plan);
      routed.trace.root = std::move(root);
      finish(1, AccessPath::kIndexedValueScan,
             "equality on scalar path " + best_eq->path + " (est " +
                 Fmt1(value_cand.est_rows) + " rows, cost " +
                 Fmt2(value_cand.est_cost_us) + " us); value postings");
      break;
    }
    case 2: {  // posting-intersect-scan
      std::string terms_text;
      for (const PathPredicate* p : isect_covered) {
        if (!terms_text.empty()) terms_text += " AND ";
        terms_text += PredicateText(*p);
      }
      telemetry::Stopwatch build;
      index::IntersectionInfo info;
      rdbms::OperatorPtr scan_op = index::IndexedIntersectionScan(
          coll.table(), index, isect_terms, &info);
      // The sorted-list merge happened at plan-build time; feed it with
      // the summed posting-length basis the estimate uses.
      stats::OperatorCostModel::Global().Record(
          "PostingIntersect", info.total_postings, build.ElapsedUs());
      std::unique_ptr<telemetry::OperatorSpan> root = telemetry::MakeSpan(
          "PostingIntersectScan",
          terms_text + " [" + std::to_string(info.total_postings) +
              " postings -> " + std::to_string(info.matched) + " rows]");
      rdbms::OperatorPtr scan =
          rdbms::Instrument(std::move(scan_op), root.get());
      FSDM_ASSIGN_OR_RETURN(
          rdbms::OperatorPtr plan,
          ApplyResiduals(coll, std::move(scan), predicates, isect_covered,
                         &root));
      routed.plan = std::move(plan);
      routed.trace.root = std::move(root);
      finish(2, AccessPath::kPostingIntersectScan,
             "conjunction of " + std::to_string(isect_terms.size()) +
                 " indexable predicates (est " + Fmt1(isect_cand.est_rows) +
                 " rows, cost " + Fmt2(isect_cand.est_cost_us) +
                 " us); posting-list intersection");
      break;
    }
    case 3: {  // indexed-path-scan
      std::unique_ptr<telemetry::OperatorSpan> root = telemetry::MakeSpan(
          "IndexedPathScan", PredicateText(*best_exists));
      rdbms::OperatorPtr scan = rdbms::Instrument(
          index::IndexedPathScan(coll.table(), index, best_exists->path),
          root.get());
      FSDM_ASSIGN_OR_RETURN(
          rdbms::OperatorPtr plan,
          ApplyResiduals(coll, std::move(scan), predicates, {best_exists},
                         &root));
      routed.plan = std::move(plan);
      routed.trace.root = std::move(root);
      finish(3, AccessPath::kIndexedPathScan,
             "existence of path " + best_exists->path + " (est " +
                 Fmt1(path_cand.est_rows) + " rows, cost " +
                 Fmt2(path_cand.est_cost_us) + " us); path postings");
      break;
    }
    default: {  // full-scan
      std::unique_ptr<telemetry::OperatorSpan> root =
          telemetry::MakeSpan("Scan", coll.name());
      rdbms::OperatorPtr scan = rdbms::Instrument(coll.Scan(), root.get());
      FSDM_ASSIGN_OR_RETURN(
          rdbms::OperatorPtr plan,
          ApplyResiduals(coll, std::move(scan), predicates, {}, &root));
      routed.plan = std::move(plan);
      routed.trace.root = std::move(root);
      std::string reason;
      bool other_eligible = false;
      for (size_t i = 0; i + 1 < decision.candidates.size(); ++i) {
        if (decision.candidates[i].eligible) other_eligible = true;
      }
      if (predicates.empty()) {
        reason = "no predicates; full scan";
      } else if (postings_maintained && !postings) {
        reason = "posting paths unavailable (" +
                 std::string(CollectionHealthName(health)) + ": " +
                 coll.health_reason() + "); full scan";
      } else if (other_eligible) {
        reason = "full scan estimated cheapest (est cost " +
                 Fmt2(full_cand.est_cost_us) + " us)";
      } else {
        reason = "no selective index or materialized column applies; "
                 "full scan";
      }
      finish(4, AccessPath::kFullScan, std::move(reason));
      break;
    }
  }
  return routed;
}

void StampShard(telemetry::OperatorSpan* span, int shard) {
  span->shard = shard;
  for (auto& c : span->children) StampShard(c.get(), shard);
}

void StampWorker(telemetry::OperatorSpan* span, int worker) {
  span->worker = worker;
  for (auto& c : span->children) StampWorker(c.get(), worker);
}

/// Sharded fan-out (ISSUE 6): one RouteSingle sub-plan per shard — each
/// costed against that shard's own statistics — drained morsel-parallel
/// through the order-preserving ParallelUnionAll. The facade decision
/// lists every shard's winner as a candidate row plus a chosen
/// "sharded-union" row whose cost is max-over-shards + merge: shards
/// drain concurrently, so the parallel cost is the slowest shard, not the
/// sum. The per-shard span trees move under one "ParallelUnion" root
/// span; shard ids are stamped here, worker ids by each drain worker the
/// moment its morsel finishes (while it still exclusively owns the
/// subtree).
Result<RoutedPlan> RouteSharded(const JsonCollection& coll,
                                const std::vector<PathPredicate>& predicates) {
  FSDM_TRACE_SPAN(route_span, "router", "router.route_sharded");
  const size_t n = coll.shard_count();
  route_span.AddNumberArg("shards", static_cast<double>(n));
  std::string query_text = BuildQueryText(predicates);
  // One monitor id for the whole fan-out: shard morsels tag their ASH
  // samples with it, and the facade probe registers it at Open.
  const uint64_t query_id = telemetry::QueryMonitor::Global().AllocateQueryId();

  RoutedPlan routed;
  telemetry::RouterDecision& decision = routed.trace.decision;
  decision.est_out_rows = 0;

  std::unique_ptr<telemetry::OperatorSpan> root =
      telemetry::MakeSpan("ParallelUnion");
  std::vector<rdbms::OperatorPtr> children;
  children.reserve(n);
  // Shared with the on_morsel_done callback; raw pointers stay valid
  // because the spans live in routed.trace (stable heap nodes) and every
  // morsel finishes before the plan can be destroyed.
  auto shard_roots =
      std::make_shared<std::vector<telemetry::OperatorSpan*>>();

  double max_shard_cost = 0;
  for (size_t i = 0; i < n; ++i) {
    FSDM_ASSIGN_OR_RETURN(
        RoutedPlan sub,
        RouteSingle(*coll.shard(i), predicates, /*wrap_probe=*/false));
    double sub_cost = -1;
    for (const telemetry::RouterCandidate& c : sub.trace.decision.candidates) {
      if (c.chosen) sub_cost = c.est_cost_us;
    }
    max_shard_cost = std::max(max_shard_cost, std::max(0.0, sub_cost));
    if (sub.trace.decision.est_out_rows > 0) {
      decision.est_out_rows += sub.trace.decision.est_out_rows;
    }

    telemetry::RouterCandidate cand;
    cand.access_path =
        "shard " + std::to_string(i) + " -> " + sub.trace.decision.winner;
    cand.eligible = true;
    cand.est_rows = sub.trace.decision.est_out_rows;
    cand.est_cost_us = sub_cost;
    cand.detail = sub.reason;
    decision.candidates.push_back(std::move(cand));

    StampShard(sub.trace.root.get(), static_cast<int>(i));
    shard_roots->push_back(sub.trace.root.get());
    root->children.push_back(std::move(sub.trace.root));
    // The ActivityScope publishes the drain worker's activity record for
    // this morsel: collection, the shard's own winning access path, shard
    // id, and (stamped at Open time) the pool worker index.
    children.push_back(rdbms::ActivityScope(
        std::move(sub.plan), coll.name(), sub.trace.decision.winner,
        "morsel.drain", query_text, static_cast<int>(i), query_id));
  }

  const double merge_cost =
      std::max(0.0, decision.est_out_rows) *
      stats::OperatorCostModel::Global().UsPerRow("ParallelUnion");
  telemetry::RouterCandidate union_cand;
  union_cand.access_path = AccessPathName(AccessPath::kShardedUnion);
  union_cand.eligible = true;
  union_cand.chosen = true;
  union_cand.est_rows = decision.est_out_rows;
  union_cand.est_cost_us = max_shard_cost + merge_cost;
  union_cand.detail = "parallel cost = max over shards + merge";
  decision.candidates.push_back(std::move(union_cand));

  decision.winner = AccessPathName(AccessPath::kShardedUnion);
  decision.reason = "fan-out over " + std::to_string(n) +
                    " shards (est cost = max over shard costs " +
                    Fmt2(max_shard_cost) + " us + merge " + Fmt2(merge_cost) +
                    " us)";
  routed.access_path = AccessPath::kShardedUnion;
  routed.reason = decision.reason;

  size_t workers = rdbms::WorkerPool::Global().worker_count();
  if (workers == 0) workers = rdbms::WorkerPool::DefaultWorkerCount();
  root->detail =
      std::to_string(n) + " shards on " + std::to_string(workers) + " workers";

  rdbms::OperatorPtr union_op = rdbms::ParallelUnionAll(
      std::move(children), [shard_roots](size_t child, int worker) {
        StampWorker((*shard_roots)[child], worker);
      });
  routed.plan = rdbms::Instrument(std::move(union_op), root.get());
  routed.trace.root = std::move(root);

  route_span.AddTextArg("winner", decision.winner);
  FSDM_TRACE_INSTANT_TEXT("router", "router.winner", "path", decision.winner);
  routed.plan = std::make_unique<RoutedQueryProbe>(
      std::move(routed.plan), coll.name(), query_text, decision,
      routed.trace.root.get(), query_id);
  return routed;
}

}  // namespace

Result<RoutedPlan> RoutePredicates(
    const JsonCollection& coll, const std::vector<PathPredicate>& predicates) {
  if (coll.sharded()) return RouteSharded(coll, predicates);
  return RouteSingle(coll, predicates, /*wrap_probe=*/true);
}

}  // namespace fsdm::collection
