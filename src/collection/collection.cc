#include "collection/collection.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "collection/collections_table.h"
#include "common/hash.h"
#include "fault/fault.h"
#include "json/dom.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "oson/oson.h"
#include "telemetry/activity.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/incident.h"
#include "telemetry/log.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/trace_event.h"

namespace fsdm::collection {

const char* CollectionHealthName(CollectionHealth health) {
  switch (health) {
    case CollectionHealth::kHealthy:
      return "healthy";
    case CollectionHealth::kIndexDegraded:
      return "index-degraded";
    case CollectionHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string ConsistencyReport::ToString() const {
  std::string out = consistent ? "CONSISTENT" : "INCONSISTENT";
  out += ": live_rows=" + std::to_string(live_rows) +
         " indexed_docs=" + std::to_string(indexed_docs) + "\n";
  for (const std::string& p : problems) {
    out += "  - " + p + "\n";
  }
  return out;
}

namespace {

// Incident bundles carry engine state the telemetry layer cannot see on
// its own: collection health (with the REASON plumbing) and the WAL
// writers' positions. Registered once, from the first Create() — the
// providers walk the registry at capture time, so they always reflect the
// live set.
void EnsureIncidentStateProviders() {
  static const bool registered = [] {
    telemetry::IncidentManager::Global().RegisterStateProvider(
        "collections", [] {
          std::string out = "[";
          for (const JsonCollection* c :
               CollectionRegistry::Global().collections()) {
            if (out.size() > 1) out += ",";
            std::string reason = c->health_reason();
            if (reason.empty()) reason = c->last_health_cause();
            out += "{\"name\":\"" + telemetry::JsonEscape(c->name()) + "\"";
            out += ",\"health\":\"";
            out += CollectionHealthName(c->health());
            out += "\",\"reason\":\"" + telemetry::JsonEscape(reason) + "\"";
            out += ",\"docs\":" + std::to_string(c->document_count());
            out += ",\"shards\":" + std::to_string(c->shard_count());
            out += ",\"shards_healthy\":" +
                   std::to_string(c->healthy_shard_count()) + "}";
          }
          out += "]";
          return out;
        });
    telemetry::IncidentManager::Global().RegisterStateProvider("wal", [] {
      std::string out = "[";
      for (const JsonCollection* c :
           CollectionRegistry::Global().collections()) {
        const wal::Wal* w = c->wal();
        if (w == nullptr) continue;
        if (out.size() > 1) out += ",";
        out += "{\"collection\":\"" + telemetry::JsonEscape(c->name()) + "\"";
        out += ",\"policy\":\"";
        out += wal::FsyncPolicyName(w->options().fsync);
        out += "\",\"segments\":" + std::to_string(w->segment_count());
        out += ",\"last_lsn\":" + std::to_string(w->last_lsn());
        out += ",\"durable_lsn\":" + std::to_string(w->durable_lsn());
        out += ",\"appends\":" + std::to_string(w->appends());
        out += ",\"fsyncs\":" + std::to_string(w->fsyncs());
        out += ",\"checkpoints\":" + std::to_string(w->checkpoints());
        out += ",\"aborts\":" + std::to_string(w->aborts());
        out += ",\"poisoned\":";
        out += w->failed() ? "true" : "false";
        out += "}";
      }
      out += "]";
      return out;
    });
    return true;
  }();
  (void)registered;
}

}  // namespace

Result<std::unique_ptr<JsonCollection>> JsonCollection::Create(
    rdbms::Database* db, const std::string& name,
    const CollectionOptions& options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  EnsureIncidentStateProviders();

  if (options.shard_count > 1) {
    // Sharded facade (ISSUE 6): N full single-shard stacks behind one
    // object. The children are ordinary collections named "<name>$s<i>"
    // but stay out of the CollectionRegistry — TELEMETRY$COLLECTIONS
    // shows one row for the facade with a per-shard health rollup.
    std::unique_ptr<JsonCollection> facade(
        new JsonCollection(db, name, options));
    CollectionOptions shard_options = options;
    shard_options.shard_count = 1;
    // The facade owns the write-ahead log for every shard (one LSN
    // sequence makes cross-shard replay ordering trivial); the children
    // must not open their own.
    shard_options.wal_dir.clear();
    for (size_t i = 0; i < options.shard_count; ++i) {
      Result<std::unique_ptr<JsonCollection>> shard = Create(
          db, name + "$s" + std::to_string(i), shard_options);
      if (!shard.ok()) {
        // Unwind every shard already built; each child drops its own
        // table through the same path a failed single-shard Create uses.
        for (std::unique_ptr<JsonCollection>& built : facade->shards_) {
          built->Detach();
          (void)db->DropTable(built->name());
        }
        return shard.status();
      }
      CollectionRegistry::Global().Unregister(shard.value().get());
      shard.value()->is_shard_ = true;
      // The facade's reporters sum over the shards; the children's own
      // registrations (made by the recursive Create) would double-count
      // every byte in the tracker.
      shard.value()->mem_scopes_.clear();
      facade->shards_.push_back(std::move(shard).value());
    }
    if (options.install_oson_column) facade->oson_column_ = kOsonColumnName;
    if (!options.wal_dir.empty()) {
      Status walled = facade->InitWal();
      if (!walled.ok()) {
        for (std::unique_ptr<JsonCollection>& built : facade->shards_) {
          built->Detach();
          (void)db->DropTable(built->name());
        }
        return walled;
      }
    }
    facade->health();  // publish the initial health gauge
    facade->RegisterMemoryReporters();
    CollectionRegistry::Global().Register(facade.get());
    FSDM_LOG(telemetry::LogLevel::kInfo, "collection", 1001,
             "collection created (sharded facade): " + name,
             telemetry::LogNum("shards", options.shard_count),
             telemetry::LogNum("durable", options.wal_dir.empty() ? 0 : 1));
    return facade;
  }

  std::vector<rdbms::ColumnDef> columns = {
      {.name = options.key_column, .type = rdbms::ColumnType::kNumber},
      {.name = options.json_column,
       .type = rdbms::ColumnType::kJson,
       .max_length = options.max_document_length,
       .check_is_json = true}};
  FSDM_ASSIGN_OR_RETURN(rdbms::Table * table,
                        db->CreateTable(name, std::move(columns)));

  std::unique_ptr<JsonCollection> coll(new JsonCollection(db, name, options));
  coll->table_ = table;
  const std::vector<size_t>& physical = table->physical_columns();
  for (size_t i = 0; i < physical.size(); ++i) {
    if (table->columns()[physical[i]].name == options.json_column) {
      coll->json_physical_pos_ = i;
      break;
    }
  }

  // Wire the rest of the stack. A failure past CreateTable must unwind
  // completely — detach the half-built collection and drop the table — or
  // the database is left holding a table with dangling observers.
  Status wired = [&]() -> Status {
    if (options.install_oson_column) {
      FSDM_FAULT_POINT("collection.create.oson_column");
      rdbms::ColumnDef oson;
      oson.name = kOsonColumnName;
      oson.type = rdbms::ColumnType::kRaw;
      oson.hidden = true;
      oson.virtual_expr = sqljson::OsonConstructor(options.json_column);
      FSDM_RETURN_NOT_OK(table->AddVirtualColumn(std::move(oson)));
      coll->oson_column_ = kOsonColumnName;
    }
    if (options.attach_search_index) {
      FSDM_FAULT_POINT("collection.create.search_index");
      // The statistics repository rides the index's DataGuide walk as the
      // scalar sink (ISSUE 5) — stats cost no extra parse.
      coll->options_.index_options.scalar_sink = &coll->path_stats_;
      FSDM_ASSIGN_OR_RETURN(
          coll->index_,
          index::JsonSearchIndex::Create(table, options.json_column,
                                         coll->options_.index_options));
    }
    coll->dml_observer_ = std::make_unique<DmlObserver>(coll.get());
    table->AddObserver(coll->dml_observer_.get());
    return Status::Ok();
  }();
  if (!wired.ok()) {
    coll->Detach();  // before the table goes away
    (void)db->DropTable(name);
    return wired;
  }
  if (!options.wal_dir.empty()) {
    // Open (and, on an existing log, replay) the WAL only once the whole
    // stack is wired: replay drives the ordinary DML paths so the index,
    // DataGuide, IMC state and path statistics rebuild as a side effect.
    Status walled = coll->InitWal();
    if (!walled.ok()) {
      coll->Detach();
      (void)db->DropTable(name);
      return walled;
    }
  }
  coll->health();  // publish the initial health gauge
  coll->RegisterMemoryReporters();
  CollectionRegistry::Global().Register(coll.get());
  FSDM_LOG(telemetry::LogLevel::kInfo, "collection", 1002,
           "collection created: " + name,
           telemetry::LogNum("indexed", options.attach_search_index ? 1 : 0),
           telemetry::LogNum("durable", options.wal_dir.empty() ? 0 : 1));
  return coll;
}

JsonCollection::~JsonCollection() { Detach(); }

void JsonCollection::Detach() {
  if (detached_) return;
  // Drop the memory reporters first: they poll the structures Detach is
  // about to let go of.
  mem_scopes_.clear();
  if (wal_ != nullptr && !wal_->failed()) (void)wal_->Flush();
  CollectionRegistry::Global().Unregister(this);
  for (std::unique_ptr<JsonCollection>& shard : shards_) shard->Detach();
  if (table_ != nullptr && dml_observer_ != nullptr) {
    table_->RemoveObserver(dml_observer_.get());
  }
  if (index_ != nullptr) index_->Detach();
  detached_ = true;
}

void JsonCollection::RegisterMemoryReporters() {
#if !defined(FSDM_TELEMETRY_DISABLED)
  using telemetry::MemSubsystem;
  using telemetry::MemoryScope;
  // Every reporter sums over shard(i), which is `this` on a single-shard
  // collection — one code path for both shapes. The scopes capture `this`;
  // Detach() clears them before any polled structure goes away.
  auto sum = [this](uint64_t (*per_shard)(const JsonCollection&)) {
    return [this, per_shard]() {
      uint64_t total = 0;
      for (size_t s = 0; s < shard_count(); ++s) {
        total += per_shard(*shard(s));
      }
      return total;
    };
  };
  mem_scopes_.emplace_back(
      MemSubsystem::kTableHeap, name_,
      sum(+[](const JsonCollection& c) {
        return c.table_ != nullptr ? c.table_->HeapBytes() : uint64_t{0};
      }));
  mem_scopes_.emplace_back(
      MemSubsystem::kIndexPostings, name_,
      sum(+[](const JsonCollection& c) {
        return c.index_ != nullptr ? c.index_->MemoryBytes() : uint64_t{0};
      }));
  mem_scopes_.emplace_back(
      MemSubsystem::kDataGuide, name_,
      sum(+[](const JsonCollection& c) -> uint64_t {
        // The live guide plus, when the index persists it, the $DG side
        // table's heap (the guide's durable image).
        if (c.index_ != nullptr) {
          uint64_t bytes = c.index_->dataguide().MemoryBytes();
          if (c.index_->dg_table() != nullptr) {
            bytes += c.index_->dg_table()->HeapBytes();
          }
          return bytes;
        }
        return c.own_guide_.MemoryBytes();
      }));
  mem_scopes_.emplace_back(
      MemSubsystem::kImc, name_,
      sum(+[](const JsonCollection& c) -> uint64_t {
        return c.imc_valid_ && c.imc_.has_value() ? c.imc_->MemoryBytes()
                                                  : uint64_t{0};
      }));
  mem_scopes_.emplace_back(
      MemSubsystem::kPathStats, name_,
      sum(+[](const JsonCollection& c) {
        return c.path_stats_.MemoryBytes();
      }));
  mem_scopes_.emplace_back(
      MemSubsystem::kWalBuffers, name_,
      sum(+[](const JsonCollection& c) {
        return c.wal_ != nullptr ? c.wal_->MemoryBytes() : uint64_t{0};
      }));
#endif  // !FSDM_TELEMETRY_DISABLED
}

size_t JsonCollection::document_count() const {
  if (sharded()) {
    size_t n = 0;
    for (const std::unique_ptr<JsonCollection>& s : shards_) {
      n += s->document_count();
    }
    return n;
  }
  size_t n = 0;
  for (size_t r = 0; r < table_->row_count(); ++r) {
    if (table_->IsLive(r)) ++n;
  }
  return n;
}

size_t JsonCollection::ShardForKey(const Value& key) const {
  if (!sharded()) return 0;
  return static_cast<size_t>(ShardPlacementHash(key.ToDisplayString()) %
                             shards_.size());
}

// --- Health & crash consistency ---------------------------------------------

CollectionHealth JsonCollection::health() const {
  CollectionHealth h = CollectionHealth::kHealthy;
  if (sharded()) {
    // Per-shard degradation: ONE bad shard degrades the collection
    // instead of killing it. All healthy -> healthy; all quarantined ->
    // quarantined; anything in between -> index-degraded (the router then
    // falls back per shard, so healthy shards keep their fast paths).
    size_t quarantined = 0;
    size_t healthy = 0;
    for (const std::unique_ptr<JsonCollection>& s : shards_) {
      switch (s->health()) {
        case CollectionHealth::kHealthy:
          ++healthy;
          break;
        case CollectionHealth::kQuarantined:
          ++quarantined;
          break;
        case CollectionHealth::kIndexDegraded:
          break;
      }
    }
    if (quarantined == shards_.size()) {
      h = CollectionHealth::kQuarantined;
    } else if (healthy < shards_.size()) {
      h = CollectionHealth::kIndexDegraded;
    }
  } else if (quarantined_) {
    h = CollectionHealth::kQuarantined;
  } else if (index_ != nullptr && index_->degraded()) {
    h = CollectionHealth::kIndexDegraded;
  }
  FSDM_GAUGE_SET("fsdm_collection_health", static_cast<int64_t>(h));
  return h;
}

size_t JsonCollection::healthy_shard_count() const {
  if (!sharded()) {
    return health() == CollectionHealth::kHealthy ? 1 : 0;
  }
  size_t healthy = 0;
  for (const std::unique_ptr<JsonCollection>& s : shards_) {
    if (s->health() == CollectionHealth::kHealthy) ++healthy;
  }
  return healthy;
}

std::string JsonCollection::health_reason() const {
  if (sharded()) {
    std::string reason;
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::string shard_reason = shards_[i]->health_reason();
      if (shard_reason.empty()) continue;
      if (!reason.empty()) reason += "; ";
      reason += "shard " + std::to_string(i) + ": " + shard_reason;
    }
    return reason;
  }
  if (quarantined_) return quarantine_reason_;
  if (index_ != nullptr && index_->degraded()) {
    return index_->degraded_reason();
  }
  return "";
}

void JsonCollection::Quarantine(std::string reason) {
  for (std::unique_ptr<JsonCollection>& s : shards_) s->Quarantine(reason);
  quarantined_ = true;
  quarantine_reason_ = std::move(reason);
  last_health_cause_ = quarantine_reason_;
  FSDM_TRACE_INSTANT_TEXT("collection", "collection.quarantine", "name",
                          name_);
  // The facade speaks for its shards: the cascade above already marked
  // them, and one incident per quarantine is the useful granularity.
  if (!is_shard_) {
    FSDM_LOG(telemetry::LogLevel::kError, "collection", 1005,
             "collection " + name_ + " quarantined: " + quarantine_reason_,
             telemetry::LogText("name", name_));
    telemetry::IncidentManager::Global().Raise("quarantine", name_,
                                               quarantine_reason_);
  }
  health();
}

Status JsonCollection::RebuildIndex() {
  FSDM_TRACE_SPAN(span, "collection", "index.rebuild");
  span.AddTextArg("name", name_);
  // Snapshot the degradation being healed: after a successful rebuild
  // health_reason() goes empty, but REASON should still be able to say
  // what the rebuild was for.
  if (!quarantined_ && index_ != nullptr && index_->degraded()) {
    last_health_cause_ = index_->degraded_reason();
  }
  if (sharded()) {
    // Per-shard rebuild with collection-level aggregation: every shard
    // rebuilds (a failure on shard i must not leave shard i+1 degraded),
    // and the first failure is reported.
    Status first_error = Status::Ok();
    for (size_t i = 0; i < shards_.size(); ++i) {
      Status rebuilt = shards_[i]->RebuildIndex();
      if (!rebuilt.ok() && first_error.ok()) first_error = rebuilt;
    }
    if (first_error.ok()) {
      last_rebuild_ts_us_ = telemetry::MonotonicNowUs();
      quarantined_ = false;
      quarantine_reason_.clear();
      FSDM_LOG(telemetry::LogLevel::kInfo, "collection", 1006,
               "index rebuilt on all shards of " + name_,
               telemetry::LogNum("shards", shards_.size()));
    } else {
      FSDM_LOG(telemetry::LogLevel::kError, "collection", 1007,
               "index rebuild failed on sharded " + name_ + ": " +
                   first_error.message());
    }
    health();
    return first_error;
  }
  if (index_ != nullptr) {
    // Rebuild() re-feeds every live document through the DataGuide walk —
    // and therefore through the statistics sink. Reset the repository
    // first or every path would double-count; this is also the one point
    // where additive statistics shed their dead-document skew.
    path_stats_.Clear();
    Status rebuilt = index_->Rebuild();
    if (!rebuilt.ok()) {
      quarantined_ = true;
      quarantine_reason_ = "index rebuild failed: " + rebuilt.message();
      last_health_cause_ = quarantine_reason_;
      FSDM_LOG(telemetry::LogLevel::kError, "collection", 1009,
               "index rebuild failed on " + name_ + ": " + rebuilt.message(),
               telemetry::LogText("name", name_));
      health();
      return rebuilt;
    }
  }
  last_rebuild_ts_us_ = telemetry::MonotonicNowUs();
  quarantined_ = false;
  quarantine_reason_.clear();
  FSDM_LOG(telemetry::LogLevel::kInfo, "collection", 1008,
           "index rebuilt: " + name_,
           telemetry::LogNum("docs", document_count()));
  // The postings were reconstructed from the table the IMC also reads, so
  // a populated store stays valid; nothing else to heal.
  health();
  return Status::Ok();
}

Status JsonCollection::CheckWritable() const {
  if (!quarantined_) return Status::Ok();
  return Status::Unavailable("collection " + name_ +
                             " quarantined: " + quarantine_reason_);
}

Status JsonCollection::WalAppendFailed(const Status& append_status) {
  FSDM_LOG(telemetry::LogLevel::kError, "collection", 1010,
           "WAL append failed on " + name_ + ": " + append_status.message(),
           telemetry::LogText("name", name_));
  if (wal_ != nullptr && wal_->failed() && !quarantined_) {
    // The writer poisoned itself (short write, failed fsync): nothing
    // further will reach the log, so nothing further may reach the table.
    Quarantine("WAL poisoned: " + append_status.message());
  }
  return append_status;
}

ConsistencyReport JsonCollection::CheckConsistency() const {
  FSDM_TIME_SCOPE_US("fsdm_collection_check_consistency_us");
  ConsistencyReport report;
  if (sharded()) {
    // Per-shard checks with collection-level aggregation, plus the one
    // cross-shard invariant: every live document must sit on the shard
    // its key hashes to.
    for (size_t i = 0; i < shards_.size(); ++i) {
      const JsonCollection& s = *shards_[i];
      ConsistencyReport sub = s.CheckConsistency();
      report.live_rows += sub.live_rows;
      report.indexed_docs += sub.indexed_docs;
      for (std::string& p : sub.problems) {
        report.problems.push_back("shard " + std::to_string(i) + ": " +
                                  std::move(p));
      }
      const rdbms::Table* t = s.table();
      size_t key_pos = 0;
      for (size_t c = 0; c < t->physical_columns().size(); ++c) {
        if (t->columns()[t->physical_columns()[c]].name ==
            options_.key_column) {
          key_pos = c;
          break;
        }
      }
      for (size_t r = 0; r < t->row_count(); ++r) {
        if (!t->IsLive(r)) continue;
        const Value& key = t->StoredRow(r)[key_pos];
        const size_t expected = ShardForKey(key);
        if (expected != i) {
          report.problems.push_back(
              "shard " + std::to_string(i) + ": document with key " +
              key.ToDisplayString() + " belongs on shard " +
              std::to_string(expected) + " by placement hash");
        }
      }
    }
    report.consistent = report.problems.empty();
    return report;
  }
  size_t non_null = 0;
  dataguide::DataGuide shadow;
  for (size_t r = 0; r < table_->row_count(); ++r) {
    if (!table_->IsLive(r)) continue;
    ++report.live_rows;
    const Value& doc = table_->StoredRow(r)[json_physical_pos_];
    if (doc.is_null()) continue;
    ++non_null;
    Result<int> added = shadow.AddJsonText(doc.AsString());
    if (!added.ok()) {
      report.problems.push_back("row " + std::to_string(r) +
                                " violates IS JSON: " +
                                added.status().message());
    }
  }

  if (index_ != nullptr) {
    report.indexed_docs = index_->indexed_document_count();
    if (report.indexed_docs != non_null) {
      report.problems.push_back(
          "index reports " + std::to_string(report.indexed_docs) +
          " indexed documents, table holds " + std::to_string(non_null));
    }
    index_->VerifyPostings(&report.problems);
    const rdbms::Table* dg = index_->dg_table();
    if (dg != nullptr &&
        dg->row_count() != index_->dataguide().distinct_path_count()) {
      report.problems.push_back(
          "$DG side table has " + std::to_string(dg->row_count()) +
          " rows, in-memory guide has " +
          std::to_string(index_->dataguide().distinct_path_count()) +
          " entries");
    }
  }

  // The live guide must cover every observed path. Frequencies may
  // over-count (rolled-back DML never retracts guide statistics — additive
  // semantics, §3.4) but never under-count.
  const dataguide::DataGuide& live_guide = dataguide();
  for (const dataguide::PathEntry* e : shadow.SortedEntries()) {
    const dataguide::PathEntry* have =
        live_guide.Find(e->path, e->kind, e->under_array);
    if (have == nullptr) {
      report.problems.push_back("DataGuide missing path " + e->path + " (" +
                                e->TypeString() + ")");
    } else if (have->frequency < e->frequency) {
      report.problems.push_back(
          "DataGuide path " + e->path + " frequency " +
          std::to_string(have->frequency) + " < observed " +
          std::to_string(e->frequency));
    }
  }

  if (imc_valid()) {
    if (imc_->row_count() != report.live_rows) {
      report.problems.push_back(
          "IMC holds " + std::to_string(imc_->row_count()) +
          " rows but table holds " + std::to_string(report.live_rows) +
          " live rows (missed invalidation)");
    }
  }

  report.consistent = report.problems.empty();
  return report;
}

// --- DML --------------------------------------------------------------------

// The public Insert/Delete/Replace are thin wrappers since ISSUE 8: they
// publish the operation as leased activity (so write-heavy workloads show
// up in the ASH time model — the PR 7 follow-up) and, on a durable
// collection, append the operation to the WAL *before* applying it. Shard
// children skip both — the facade already logged and leased — and go
// straight to the Apply* bodies, which are the pre-ISSUE-8 DML paths.
//
// Append-then-apply protocol: the OSON image is encoded first (an encode
// failure logs nothing), the record is appended (under fsync=always the
// ack implies durability), and only then does the engine apply. An apply
// failure appends a best-effort kAbort compensation so replay will not
// resurrect an operation the client saw fail. Between append and apply
// sits the "wal.apply.crash" fault point: it returns an error WITHOUT
// compensation, leaving exactly the on-disk state a crash at that instant
// would — the redo of such a record is what the durable-collection tests
// assert.

Result<size_t> JsonCollection::Insert(Value key, std::string json_text) {
  if (is_shard_) return ApplyInsert(std::move(key), std::move(json_text));
  telemetry::ActivityLease lease =
      telemetry::ActivityLease::Begin(name_, "dml", "collection.insert", "");
  uint64_t lsn = 0;
  const bool logged = wal_ != nullptr && !wal_replaying_;
  if (logged) {
    FSDM_ASSIGN_OR_RETURN(std::string oson_image,
                          oson::EncodeFromText(json_text));
    // ISSUE 9: the hidden OSON column is virtual — images only ever exist
    // transiently, here and at the other encode choke points.
    telemetry::MemoryCharge oson_charge(telemetry::MemSubsystem::kOsonVc,
                                        oson_image.size());
    Result<uint64_t> appended = wal_->AppendInsert(
        static_cast<uint32_t>(ShardForKey(key)), key, oson_image);
    if (!appended.ok()) return WalAppendFailed(appended.status());
    lsn = appended.value();
    FSDM_FAULT_POINT("wal.apply.crash");
  }
  Result<size_t> row = ApplyInsert(std::move(key), std::move(json_text));
  if (logged && !row.ok()) wal_->AppendAbort(lsn);
  return row;
}

Result<size_t> JsonCollection::ApplyInsert(Value key, std::string json_text) {
  if (sharded()) {
    // Hash placement + row-id encoding: global = local * N + shard, the
    // identity mapping at N = 1. The child carries telemetry and its own
    // writability check.
    const size_t s = ShardForKey(key);
    FSDM_ASSIGN_OR_RETURN(
        size_t local, shards_[s]->Insert(std::move(key),
                                         std::move(json_text)));
    return local * shards_.size() + s;
  }
  FSDM_RETURN_NOT_OK(CheckWritable());
  FSDM_COUNT("fsdm_collection_inserts_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_collection_insert_us");
  FSDM_TRACE_SPAN(span, "collection", "collection.insert");
  span.AddTextArg("name", name_);
  span.AddNumberArg("bytes", static_cast<double>(json_text.size()));
  return table_->Insert({std::move(key), Value::String(std::move(json_text))});
}

Result<size_t> JsonCollection::Insert(std::string json_text) {
  // Delegates to the keyed overload, which carries the telemetry, the WAL
  // append, and the shard placement when sharded. The facade owns the
  // auto-key sequence so keys stay collection-unique across shards.
  return Insert(Value::Int64(next_auto_key_++), std::move(json_text));
}

Status JsonCollection::Delete(size_t row_id) {
  if (is_shard_) return ApplyDelete(row_id);
  telemetry::ActivityLease lease =
      telemetry::ActivityLease::Begin(name_, "dml", "collection.delete", "");
  uint64_t lsn = 0;
  const bool logged = wal_ != nullptr && !wal_replaying_;
  if (logged) {
    const uint32_t s =
        sharded() ? static_cast<uint32_t>(row_id % shards_.size()) : 0;
    Result<uint64_t> appended = wal_->AppendDelete(s, row_id);
    if (!appended.ok()) return WalAppendFailed(appended.status());
    lsn = appended.value();
    FSDM_FAULT_POINT("wal.apply.crash");
  }
  Status applied = ApplyDelete(row_id);
  if (logged && !applied.ok()) wal_->AppendAbort(lsn);
  return applied;
}

Status JsonCollection::ApplyDelete(size_t row_id) {
  if (sharded()) {
    return shards_[row_id % shards_.size()]->Delete(row_id / shards_.size());
  }
  FSDM_RETURN_NOT_OK(CheckWritable());
  FSDM_COUNT("fsdm_collection_deletes_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_collection_delete_us");
  FSDM_TRACE_SPAN(span, "collection", "collection.delete");
  span.AddTextArg("name", name_);
  return table_->Delete(row_id);
}

Status JsonCollection::Replace(size_t row_id, Value key,
                               std::string json_text) {
  if (is_shard_) {
    return ApplyReplace(row_id, std::move(key), std::move(json_text));
  }
  telemetry::ActivityLease lease =
      telemetry::ActivityLease::Begin(name_, "dml", "collection.replace", "");
  uint64_t lsn = 0;
  const bool logged = wal_ != nullptr && !wal_replaying_;
  if (logged) {
    const uint32_t s =
        sharded() ? static_cast<uint32_t>(row_id % shards_.size()) : 0;
    FSDM_ASSIGN_OR_RETURN(std::string oson_image,
                          oson::EncodeFromText(json_text));
    telemetry::MemoryCharge oson_charge(telemetry::MemSubsystem::kOsonVc,
                                        oson_image.size());
    Result<uint64_t> appended = wal_->AppendReplace(s, row_id, key, oson_image);
    if (!appended.ok()) return WalAppendFailed(appended.status());
    lsn = appended.value();
    FSDM_FAULT_POINT("wal.apply.crash");
  }
  Status applied = ApplyReplace(row_id, std::move(key), std::move(json_text));
  if (logged && !applied.ok()) wal_->AppendAbort(lsn);
  return applied;
}

Status JsonCollection::ApplyReplace(size_t row_id, Value key,
                                    std::string json_text) {
  if (sharded()) {
    const size_t s = row_id % shards_.size();
    if (ShardForKey(key) != s) {
      // A key change that re-hashes to another shard would need a
      // cross-shard delete+insert; refuse instead of silently breaking
      // the placement invariant CheckConsistency() verifies.
      return Status::InvalidArgument(
          "replace would move document to shard " +
          std::to_string(ShardForKey(key)) + " (row lives on shard " +
          std::to_string(s) + "); delete and re-insert instead");
    }
    return shards_[s]->Replace(row_id / shards_.size(), std::move(key),
                               std::move(json_text));
  }
  FSDM_RETURN_NOT_OK(CheckWritable());
  FSDM_COUNT("fsdm_collection_replaces_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_collection_replace_us");
  FSDM_TRACE_SPAN(span, "collection", "collection.replace");
  span.AddTextArg("name", name_);
  return table_->Replace(
      row_id, {std::move(key), Value::String(std::move(json_text))});
}

// --- Durability (ISSUE 8) ---------------------------------------------------

namespace {

/// Replay-side payload decode: OSON image -> canonical JSON text, which is
/// exactly what the stored JDOC of the original insert canonicalizes to
/// after its own OSON round trip — replayed state is byte-identical.
Result<std::string> OsonImageToText(const std::string& oson_image) {
  FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> node,
                        oson::Decode(oson_image));
  return json::Serialize(*node);
}

}  // namespace

Status JsonCollection::InitWal() {
  wal::WalOptions wal_options;
  wal_options.dir = options_.wal_dir;
  wal_options.segment_bytes = options_.wal_segment_bytes;
  wal_options.group_ops = options_.wal_group_ops;
  wal_options.fsync = options_.wal_fsync.has_value()
                          ? *options_.wal_fsync
                          : wal::FsyncPolicyFromEnv();
  FSDM_ASSIGN_OR_RETURN(wal::Wal::OpenResult opened,
                        wal::Wal::Open(std::move(wal_options)));
  wal_ = std::move(opened.wal);
  if (!opened.replay.empty()) {
    FSDM_RETURN_NOT_OK(ReplayWal(opened.replay));
  }
  return Status::Ok();
}

Status JsonCollection::ReplayWal(const std::vector<wal::Record>& records) {
  FSDM_TRACE_SPAN(span, "wal", "wal.replay");
  span.AddTextArg("name", name_);
  FSDM_TIME_SCOPE_US("fsdm_wal_replay_us");
  telemetry::ActivityLease lease =
      telemetry::ActivityLease::Begin(name_, "dml", "collection.recover", "");
  wal::RecoveryInfo* info = wal_->mutable_recovery();
  const uint64_t t0 = telemetry::MonotonicNowUs();

  // Analysis pass: collect compensated LSNs (their operations appended
  // but never applied) and find the last *complete* checkpoint — a Begin
  // whose End made it into the durable prefix. An interrupted checkpoint
  // is skipped entirely; replay falls back to the records before it.
  std::unordered_set<uint64_t> aborted;
  size_t start = 0;
  bool from_checkpoint = false;
  {
    size_t begin_idx = SIZE_MAX;
    for (size_t i = 0; i < records.size(); ++i) {
      const wal::Record& r = records[i];
      if (r.type == wal::RecordType::kAbort) aborted.insert(r.ref_id);
      if (r.type == wal::RecordType::kCheckpointBegin) begin_idx = i;
      if (r.type == wal::RecordType::kCheckpointEnd && begin_idx != SIZE_MAX) {
        start = begin_idx;
        from_checkpoint = true;
        begin_idx = SIZE_MAX;
      }
    }
  }

  // Redo pass. Row ids in the log are the ids the original process
  // observed; replaying only the successful operations in order against
  // the append-only table reproduces them exactly — except after a
  // checkpoint, where dead rows compact away. The checkpoint carries
  // everything needed to translate: each CheckpointDoc maps its logged id
  // to the id replay assigns, and post-checkpoint inserts are matched by
  // counting against the per-shard row high-water marks the Begin record
  // snapshotted.
  std::unordered_map<uint64_t, uint64_t> idmap;
  const size_t nshards = shard_count();
  std::vector<uint64_t> highwater(nshards, 0);
  std::vector<uint64_t> ck_inserts(nshards, 0);
  bool in_chosen_checkpoint = false;
  wal_replaying_ = true;
  Status replayed = [&]() -> Status {
    for (size_t i = start; i < records.size(); ++i) {
      const wal::Record& r = records[i];
      if (aborted.count(r.lsn) > 0) {
        ++info->aborted_skipped;
        continue;
      }
      switch (r.type) {
        case wal::RecordType::kAbort:
          continue;
        case wal::RecordType::kCheckpointBegin:
          if (i == start) {
            in_chosen_checkpoint = true;
            next_auto_key_ = static_cast<int64_t>(r.next_auto_key);
            for (size_t s = 0;
                 s < nshards && s < r.shard_highwater.size(); ++s) {
              highwater[s] = r.shard_highwater[s];
            }
          }
          continue;
        case wal::RecordType::kCheckpointEnd:
          if (in_chosen_checkpoint) {
            in_chosen_checkpoint = false;
            if (r.ref_id != idmap.size()) {
              return Status::Corruption(
                  "WAL checkpoint declares " + std::to_string(r.ref_id) +
                  " documents, replayed " + std::to_string(idmap.size()));
            }
          }
          continue;
        case wal::RecordType::kCheckpointDoc: {
          // Docs of an interrupted checkpoint (not the chosen start) are
          // state the surrounding DML records already cover; skip them.
          if (!in_chosen_checkpoint) continue;
          FSDM_ASSIGN_OR_RETURN(std::string text, OsonImageToText(r.oson));
          Result<size_t> actual = Insert(Value(r.key), std::move(text));
          if (!actual.ok()) {
            return Status::Corruption(
                "WAL replay: checkpoint doc at LSN " + std::to_string(r.lsn) +
                " failed to apply: " + actual.status().message());
          }
          idmap[r.ref_id] = actual.value();
          ++info->records_applied;
          continue;
        }
        case wal::RecordType::kInsert: {
          FSDM_ASSIGN_OR_RETURN(std::string text, OsonImageToText(r.oson));
          if (r.key.type() == ScalarType::kInt64 &&
              r.key.AsInt64() >= next_auto_key_) {
            next_auto_key_ = r.key.AsInt64() + 1;
          }
          Result<size_t> actual = Insert(Value(r.key), std::move(text));
          if (!actual.ok()) {
            return Status::Corruption(
                "WAL replay: insert at LSN " + std::to_string(r.lsn) +
                " failed to apply: " + actual.status().message());
          }
          if (from_checkpoint) {
            const size_t s = r.shard < nshards ? r.shard : 0;
            const uint64_t orig_local = highwater[s] + ck_inserts[s]++;
            idmap[nshards > 1 ? orig_local * nshards + s : orig_local] =
                actual.value();
          }
          ++info->records_applied;
          continue;
        }
        case wal::RecordType::kDelete:
        case wal::RecordType::kReplace: {
          uint64_t row_id = r.ref_id;
          if (from_checkpoint) {
            auto it = idmap.find(row_id);
            if (it == idmap.end()) {
              return Status::Corruption(
                  "WAL replay: LSN " + std::to_string(r.lsn) +
                  " references row " + std::to_string(row_id) +
                  " the checkpoint does not cover");
            }
            row_id = it->second;
          }
          Status applied;
          if (r.type == wal::RecordType::kDelete) {
            applied = Delete(static_cast<size_t>(row_id));
          } else {
            FSDM_ASSIGN_OR_RETURN(std::string text, OsonImageToText(r.oson));
            applied = Replace(static_cast<size_t>(row_id), Value(r.key),
                              std::move(text));
          }
          if (!applied.ok()) {
            return Status::Corruption(
                "WAL replay: " + std::string(RecordTypeName(r.type)) +
                " at LSN " + std::to_string(r.lsn) +
                " failed to apply: " + applied.message());
          }
          ++info->records_applied;
          continue;
        }
      }
      return Status::Corruption("WAL replay: unknown record type at LSN " +
                                std::to_string(r.lsn));
    }
    return Status::Ok();
  }();
  wal_replaying_ = false;
  if (!replayed.ok()) return replayed;
  info->replay_ms =
      static_cast<double>(telemetry::MonotonicNowUs() - t0) / 1000.0;

  // The replayed stack must agree with itself before it is handed out.
  ConsistencyReport report = CheckConsistency();
  if (!report.consistent) {
    std::string why = report.problems.empty()
                          ? "consistency check failed"
                          : report.problems.front();
    FSDM_LOG(telemetry::LogLevel::kError, "collection", 1004,
             "WAL replay left " + name_ + " inconsistent: " + why,
             telemetry::LogNum("live_rows", report.live_rows),
             telemetry::LogNum("indexed_docs", report.indexed_docs));
    telemetry::IncidentManager::Global().Raise("consistency", name_, why);
    return Status::Corruption("WAL replay left collection inconsistent:\n" +
                              report.ToString());
  }
  FSDM_LOG(telemetry::LogLevel::kInfo, "collection", 1003,
           "WAL recovery complete: " + name_,
           telemetry::LogNum("records_applied", info->records_applied),
           telemetry::LogNum("aborted_skipped", info->aborted_skipped));
  // Re-anchor: a fresh checkpoint makes the ids the *next* replay assigns
  // line up with the snapshot (this generation may have compacted dead
  // rows away), and truncates the history just replayed.
  return Checkpoint();
}

size_t JsonCollection::KeyPhysicalPos(const rdbms::Table* t) const {
  for (size_t c = 0; c < t->physical_columns().size(); ++c) {
    if (t->columns()[t->physical_columns()[c]].name == options_.key_column) {
      return c;
    }
  }
  return 0;
}

Status JsonCollection::AppendCheckpointDocs(uint64_t* doc_count) {
  const size_t nshards = shard_count();
  for (size_t s = 0; s < nshards; ++s) {
    const rdbms::Table* t = shard(s)->table();
    const size_t key_pos = KeyPhysicalPos(t);
    const size_t json_pos = shard(s)->json_physical_pos_;
    for (size_t r = 0; r < t->row_count(); ++r) {
      if (!t->IsLive(r)) continue;
      const Value& key = t->StoredRow(r)[key_pos];
      const Value& doc = t->StoredRow(r)[json_pos];
      FSDM_ASSIGN_OR_RETURN(
          std::string oson_image,
          oson::EncodeFromText(doc.is_null() ? "null" : doc.AsString()));
      telemetry::MemoryCharge oson_charge(telemetry::MemSubsystem::kOsonVc,
                                          oson_image.size());
      const uint64_t global = nshards > 1 ? r * nshards + s : r;
      FSDM_RETURN_NOT_OK(wal_->CheckpointDoc(static_cast<uint32_t>(s), global,
                                             key, oson_image));
      ++*doc_count;
    }
  }
  return Status::Ok();
}

Status JsonCollection::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("collection " + name_ +
                                   " has no write-ahead log");
  }
  FSDM_TRACE_SPAN(span, "wal", "wal.checkpoint");
  span.AddTextArg("name", name_);
  FSDM_TIME_SCOPE_US("fsdm_wal_checkpoint_us");
  const size_t nshards = shard_count();
  std::vector<uint64_t> highwater(nshards, 0);
  for (size_t s = 0; s < nshards; ++s) {
    // row_count() counts tombstones too: the high-water mark is the next
    // local row id the shard will assign, which is what the replay-side
    // insert matching needs.
    highwater[s] = shard(s)->table()->row_count();
  }
  FSDM_RETURN_NOT_OK(wal_->CheckpointBegin(
      static_cast<uint64_t>(next_auto_key_), highwater));
  uint64_t docs = 0;
  FSDM_RETURN_NOT_OK(AppendCheckpointDocs(&docs));
  return wal_->CheckpointEnd(docs);
}

// --- Observer ---------------------------------------------------------------

// The DmlObserver keeps the default (no-op) Undo* hooks: IMC invalidation
// is conservative under rollback — an unnecessarily invalid store only
// costs a repopulation — and the own-guide is additive like the index's
// DataGuide (§3.4).

Status JsonCollection::DmlObserver::OnInsert(size_t, const rdbms::Row& row) {
  FSDM_TRACE_SPAN(span, "collection", "observer.insert");
  FSDM_FAULT_POINT("collection.observer.insert");
  owner_->InvalidateImc();
  if (owner_->index_ == nullptr) {
    return owner_->MaintainOwnGuide(row[owner_->json_physical_pos_]);
  }
  return Status::Ok();
}

Status JsonCollection::DmlObserver::OnDelete(size_t, const rdbms::Row&) {
  // The DataGuide is additive (§3.4): deletes never remove entries.
  FSDM_TRACE_SPAN(span, "collection", "observer.delete");
  FSDM_FAULT_POINT("collection.observer.delete");
  owner_->InvalidateImc();
  return Status::Ok();
}

Status JsonCollection::DmlObserver::OnReplace(size_t, const rdbms::Row&,
                                              const rdbms::Row& new_row) {
  FSDM_TRACE_SPAN(span, "collection", "observer.replace");
  FSDM_FAULT_POINT("collection.observer.replace");
  owner_->InvalidateImc();
  if (owner_->index_ == nullptr) {
    return owner_->MaintainOwnGuide(new_row[owner_->json_physical_pos_]);
  }
  return Status::Ok();
}

void JsonCollection::InvalidateImc() {
  if (imc_.has_value() && imc_valid_) {
    imc_valid_ = false;
    imc_invalidations_.Add(1);
    FSDM_COUNT("fsdm_collection_imc_invalidations_total", 1);
    FSDM_TRACE_INSTANT("imc", "imc.invalidate");
  }
}

Status JsonCollection::MaintainOwnGuide(const Value& doc_value) {
  // Reuse the parse the IS JSON constraint already paid for (§3.2.1). The
  // path-statistics repository rides the same walk as the scalar sink.
  const json::JsonNode* parsed =
      table_->ParsedJsonForObserver(json_physical_pos_);
  if (parsed != nullptr) {
    json::TreeDom dom(parsed);
    return own_guide_.AddDocument(dom, nullptr, &path_stats_).status();
  }
  FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> doc,
                        json::Parse(doc_value.AsString()));
  json::TreeDom dom(doc.get());
  return own_guide_.AddDocument(dom, nullptr, &path_stats_).status();
}

// --- Derived schema ---------------------------------------------------------

Result<std::string> JsonCollection::AddVirtualColumn(
    std::string column_name, const std::string& path,
    sqljson::Returning returning, bool hidden) {
  if (sharded()) {
    // Schema changes fan out so every shard stays structurally identical
    // (the parallel union requires one shared schema).
    for (std::unique_ptr<JsonCollection>& s : shards_) {
      FSDM_RETURN_NOT_OK(
          s->AddVirtualColumn(column_name, path, returning, hidden).status());
    }
    vc_for_path_[path] = column_name;
    return column_name;
  }
  rdbms::ColumnDef def;
  def.name = column_name;
  def.type = returning == sqljson::Returning::kNumber
                 ? rdbms::ColumnType::kNumber
                 : rdbms::ColumnType::kString;
  def.hidden = hidden;
  FSDM_ASSIGN_OR_RETURN(
      def.virtual_expr,
      sqljson::JsonValue(options_.json_column, path,
                         sqljson::JsonStorage::kText, returning));
  FSDM_RETURN_NOT_OK(table_->AddVirtualColumn(std::move(def)));
  vc_for_path_[path] = column_name;
  return column_name;
}

Result<std::vector<std::string>> JsonCollection::AddInferredVirtualColumns(
    const dataguide::GenerateOptions& options) {
  if (sharded()) {
    // Each shard infers from its own DataGuide; skewed shards may add
    // different sets. The union (first-seen order, deduplicated) is what
    // the facade reports and records for VirtualColumnFor().
    std::vector<std::string> added_union;
    for (std::unique_ptr<JsonCollection>& s : shards_) {
      FSDM_ASSIGN_OR_RETURN(std::vector<std::string> added,
                            s->AddInferredVirtualColumns(options));
      for (std::string& name : added) {
        if (std::find(added_union.begin(), added_union.end(), name) ==
            added_union.end()) {
          added_union.push_back(std::move(name));
        }
      }
      for (const auto& [path, vc] : s->vc_for_path_) {
        vc_for_path_.emplace(path, vc);
      }
    }
    return added_union;
  }
  std::vector<std::string> paths;
  FSDM_ASSIGN_OR_RETURN(
      std::vector<std::string> added,
      dataguide::AddVc(table_, options_.json_column,
                       sqljson::JsonStorage::kText, dataguide(), options,
                       &paths));
  for (size_t i = 0; i < added.size(); ++i) {
    vc_for_path_[paths[i]] = added[i];
  }
  return added;
}

Result<dataguide::DmdvView> JsonCollection::CreateView(
    const std::string& root_path, const std::string& view_name,
    const dataguide::GenerateOptions& options) const {
  if (sharded()) {
    return Status::InvalidArgument(
        "views are not supported on sharded collections (a DMDV is bound "
        "to one backing table); create per-shard views via shard(i)");
  }
  return dataguide::CreateViewOnPath(table_, options_.json_column,
                                     sqljson::JsonStorage::kText, dataguide(),
                                     root_path, view_name, options);
}

Result<std::vector<dataguide::DmdvView>> JsonCollection::CreateViews(
    const dataguide::GenerateOptions& options) const {
  if (sharded()) {
    return Status::InvalidArgument(
        "views are not supported on sharded collections (a DMDV is bound "
        "to one backing table); create per-shard views via shard(i)");
  }
  std::vector<dataguide::DmdvView> views;
  FSDM_ASSIGN_OR_RETURN(dataguide::DmdvView root,
                        CreateView("$", name_ + "_RV", options));
  views.push_back(std::move(root));
  // One sub-view per top-level array hierarchy (the per-nested-collection
  // master-detail views of §3.3.2).
  for (const dataguide::PathEntry* e : dataguide().SortedEntries()) {
    if (e->kind != json::NodeKind::kArray || e->under_array) continue;
    size_t dot = e->path.rfind('.');
    std::string leaf =
        dot == std::string::npos ? e->path : e->path.substr(dot + 1);
    FSDM_ASSIGN_OR_RETURN(
        dataguide::DmdvView v,
        CreateView(e->path, name_ + "_" + leaf + "_RV", options));
    views.push_back(std::move(v));
  }
  return views;
}

const std::string* JsonCollection::VirtualColumnFor(
    const std::string& path) const {
  auto it = vc_for_path_.find(path);
  return it == vc_for_path_.end() ? nullptr : &it->second;
}

// --- IMC --------------------------------------------------------------------

std::vector<std::string> JsonCollection::DefaultImcColumns() const {
  std::vector<std::string> cols = {options_.key_column};
  if (!oson_column_.empty()) cols.push_back(oson_column_);
  for (const auto& [path, name] : vc_for_path_) cols.push_back(name);
  return cols;
}

Status JsonCollection::PopulateImc(std::vector<std::string> columns) {
  if (sharded()) {
    for (std::unique_ptr<JsonCollection>& s : shards_) {
      FSDM_RETURN_NOT_OK(s->PopulateImc(columns));
    }
    return Status::Ok();
  }
  if (columns.empty()) columns = DefaultImcColumns();
  FSDM_ASSIGN_OR_RETURN(imc::ColumnStore store,
                        imc::ColumnStore::Populate(*table_, columns));
  imc_ = std::move(store);
  imc_columns_ = std::move(columns);
  imc_valid_ = true;
  return Status::Ok();
}

bool JsonCollection::imc_valid() const {
  if (!sharded()) return imc_valid_ && imc_.has_value();
  for (const std::unique_ptr<JsonCollection>& s : shards_) {
    if (!s->imc_valid()) return false;
  }
  return true;
}

bool JsonCollection::imc_populated() const {
  if (!sharded()) return imc_.has_value();
  for (const std::unique_ptr<JsonCollection>& s : shards_) {
    if (!s->imc_populated()) return false;
  }
  return true;
}

size_t JsonCollection::imc_invalidations() const {
  if (!sharded()) return static_cast<size_t>(imc_invalidations_.value());
  size_t n = 0;
  for (const std::unique_ptr<JsonCollection>& s : shards_) {
    n += s->imc_invalidations();
  }
  return n;
}

Result<const imc::ColumnStore*> JsonCollection::EnsureImc() {
  if (sharded()) {
    for (std::unique_ptr<JsonCollection>& s : shards_) {
      FSDM_RETURN_NOT_OK(s->EnsureImc().status());
    }
    return shards_[0]->imc();
  }
  if (imc_valid()) return &*imc_;
  FSDM_RETURN_NOT_OK(PopulateImc(imc_columns_));
  return &*imc_;
}

Result<imc::ColumnStore> JsonCollection::MaterializeColumns(
    const std::vector<std::string>& columns) const {
  if (sharded()) {
    return Status::InvalidArgument(
        "MaterializeColumns spans one backing table; materialize per shard "
        "via shard(i)");
  }
  return imc::ColumnStore::Populate(*table_, columns);
}

// --- Query ------------------------------------------------------------------

rdbms::OperatorPtr JsonCollection::Scan(bool include_hidden) const {
  if (sharded()) {
    std::vector<rdbms::OperatorPtr> children;
    children.reserve(shards_.size());
    for (const std::unique_ptr<JsonCollection>& s : shards_) {
      children.push_back(s->Scan(include_hidden));
    }
    return rdbms::UnionAll(std::move(children));
  }
  return rdbms::Scan(table_, include_hidden);
}

Result<rdbms::ExprPtr> JsonCollection::JsonValueExpr(
    const std::string& path, sqljson::Returning returning) const {
  return sqljson::JsonValue(options_.json_column, path,
                            sqljson::JsonStorage::kText, returning);
}

Result<rdbms::ExprPtr> JsonCollection::JsonExistsExpr(
    const std::string& path) const {
  return sqljson::JsonExists(options_.json_column, path,
                             sqljson::JsonStorage::kText);
}

}  // namespace fsdm::collection
