#include "collection/collection.h"

#include <utility>

#include "collection/collections_table.h"
#include "fault/fault.h"
#include "json/dom.h"
#include "json/parser.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_event.h"

namespace fsdm::collection {

const char* CollectionHealthName(CollectionHealth health) {
  switch (health) {
    case CollectionHealth::kHealthy:
      return "healthy";
    case CollectionHealth::kIndexDegraded:
      return "index-degraded";
    case CollectionHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string ConsistencyReport::ToString() const {
  std::string out = consistent ? "CONSISTENT" : "INCONSISTENT";
  out += ": live_rows=" + std::to_string(live_rows) +
         " indexed_docs=" + std::to_string(indexed_docs) + "\n";
  for (const std::string& p : problems) {
    out += "  - " + p + "\n";
  }
  return out;
}

Result<std::unique_ptr<JsonCollection>> JsonCollection::Create(
    rdbms::Database* db, const std::string& name,
    const CollectionOptions& options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  std::vector<rdbms::ColumnDef> columns = {
      {.name = options.key_column, .type = rdbms::ColumnType::kNumber},
      {.name = options.json_column,
       .type = rdbms::ColumnType::kJson,
       .max_length = options.max_document_length,
       .check_is_json = true}};
  FSDM_ASSIGN_OR_RETURN(rdbms::Table * table,
                        db->CreateTable(name, std::move(columns)));

  std::unique_ptr<JsonCollection> coll(new JsonCollection(db, name, options));
  coll->table_ = table;
  const std::vector<size_t>& physical = table->physical_columns();
  for (size_t i = 0; i < physical.size(); ++i) {
    if (table->columns()[physical[i]].name == options.json_column) {
      coll->json_physical_pos_ = i;
      break;
    }
  }

  // Wire the rest of the stack. A failure past CreateTable must unwind
  // completely — detach the half-built collection and drop the table — or
  // the database is left holding a table with dangling observers.
  Status wired = [&]() -> Status {
    if (options.install_oson_column) {
      FSDM_FAULT_POINT("collection.create.oson_column");
      rdbms::ColumnDef oson;
      oson.name = kOsonColumnName;
      oson.type = rdbms::ColumnType::kRaw;
      oson.hidden = true;
      oson.virtual_expr = sqljson::OsonConstructor(options.json_column);
      FSDM_RETURN_NOT_OK(table->AddVirtualColumn(std::move(oson)));
      coll->oson_column_ = kOsonColumnName;
    }
    if (options.attach_search_index) {
      FSDM_FAULT_POINT("collection.create.search_index");
      // The statistics repository rides the index's DataGuide walk as the
      // scalar sink (ISSUE 5) — stats cost no extra parse.
      coll->options_.index_options.scalar_sink = &coll->path_stats_;
      FSDM_ASSIGN_OR_RETURN(
          coll->index_,
          index::JsonSearchIndex::Create(table, options.json_column,
                                         coll->options_.index_options));
    }
    coll->dml_observer_ = std::make_unique<DmlObserver>(coll.get());
    table->AddObserver(coll->dml_observer_.get());
    return Status::Ok();
  }();
  if (!wired.ok()) {
    coll->Detach();  // before the table goes away
    (void)db->DropTable(name);
    return wired;
  }
  coll->health();  // publish the initial health gauge
  CollectionRegistry::Global().Register(coll.get());
  return coll;
}

JsonCollection::~JsonCollection() { Detach(); }

void JsonCollection::Detach() {
  if (detached_) return;
  CollectionRegistry::Global().Unregister(this);
  if (table_ != nullptr && dml_observer_ != nullptr) {
    table_->RemoveObserver(dml_observer_.get());
  }
  if (index_ != nullptr) index_->Detach();
  detached_ = true;
}

size_t JsonCollection::document_count() const {
  size_t n = 0;
  for (size_t r = 0; r < table_->row_count(); ++r) {
    if (table_->IsLive(r)) ++n;
  }
  return n;
}

// --- Health & crash consistency ---------------------------------------------

CollectionHealth JsonCollection::health() const {
  CollectionHealth h = CollectionHealth::kHealthy;
  if (quarantined_) {
    h = CollectionHealth::kQuarantined;
  } else if (index_ != nullptr && index_->degraded()) {
    h = CollectionHealth::kIndexDegraded;
  }
  FSDM_GAUGE_SET("fsdm_collection_health", static_cast<int64_t>(h));
  return h;
}

std::string JsonCollection::health_reason() const {
  if (quarantined_) return quarantine_reason_;
  if (index_ != nullptr && index_->degraded()) {
    return index_->degraded_reason();
  }
  return "";
}

void JsonCollection::Quarantine(std::string reason) {
  quarantined_ = true;
  quarantine_reason_ = std::move(reason);
  FSDM_TRACE_INSTANT_TEXT("collection", "collection.quarantine", "name",
                          name_);
  health();
}

Status JsonCollection::RebuildIndex() {
  FSDM_TRACE_SPAN(span, "collection", "index.rebuild");
  span.AddTextArg("name", name_);
  if (index_ != nullptr) {
    // Rebuild() re-feeds every live document through the DataGuide walk —
    // and therefore through the statistics sink. Reset the repository
    // first or every path would double-count; this is also the one point
    // where additive statistics shed their dead-document skew.
    path_stats_.Clear();
    Status rebuilt = index_->Rebuild();
    if (!rebuilt.ok()) {
      quarantined_ = true;
      quarantine_reason_ = "index rebuild failed: " + rebuilt.message();
      health();
      return rebuilt;
    }
  }
  last_rebuild_ts_us_ = telemetry::MonotonicNowUs();
  quarantined_ = false;
  quarantine_reason_.clear();
  // The postings were reconstructed from the table the IMC also reads, so
  // a populated store stays valid; nothing else to heal.
  health();
  return Status::Ok();
}

Status JsonCollection::CheckWritable() const {
  if (!quarantined_) return Status::Ok();
  return Status::Unavailable("collection " + name_ +
                             " quarantined: " + quarantine_reason_);
}

ConsistencyReport JsonCollection::CheckConsistency() const {
  FSDM_TIME_SCOPE_US("fsdm_collection_check_consistency_us");
  ConsistencyReport report;
  size_t non_null = 0;
  dataguide::DataGuide shadow;
  for (size_t r = 0; r < table_->row_count(); ++r) {
    if (!table_->IsLive(r)) continue;
    ++report.live_rows;
    const Value& doc = table_->StoredRow(r)[json_physical_pos_];
    if (doc.is_null()) continue;
    ++non_null;
    Result<int> added = shadow.AddJsonText(doc.AsString());
    if (!added.ok()) {
      report.problems.push_back("row " + std::to_string(r) +
                                " violates IS JSON: " +
                                added.status().message());
    }
  }

  if (index_ != nullptr) {
    report.indexed_docs = index_->indexed_document_count();
    if (report.indexed_docs != non_null) {
      report.problems.push_back(
          "index reports " + std::to_string(report.indexed_docs) +
          " indexed documents, table holds " + std::to_string(non_null));
    }
    index_->VerifyPostings(&report.problems);
    const rdbms::Table* dg = index_->dg_table();
    if (dg != nullptr &&
        dg->row_count() != index_->dataguide().distinct_path_count()) {
      report.problems.push_back(
          "$DG side table has " + std::to_string(dg->row_count()) +
          " rows, in-memory guide has " +
          std::to_string(index_->dataguide().distinct_path_count()) +
          " entries");
    }
  }

  // The live guide must cover every observed path. Frequencies may
  // over-count (rolled-back DML never retracts guide statistics — additive
  // semantics, §3.4) but never under-count.
  const dataguide::DataGuide& live_guide = dataguide();
  for (const dataguide::PathEntry* e : shadow.SortedEntries()) {
    const dataguide::PathEntry* have =
        live_guide.Find(e->path, e->kind, e->under_array);
    if (have == nullptr) {
      report.problems.push_back("DataGuide missing path " + e->path + " (" +
                                e->TypeString() + ")");
    } else if (have->frequency < e->frequency) {
      report.problems.push_back(
          "DataGuide path " + e->path + " frequency " +
          std::to_string(have->frequency) + " < observed " +
          std::to_string(e->frequency));
    }
  }

  if (imc_valid()) {
    if (imc_->row_count() != report.live_rows) {
      report.problems.push_back(
          "IMC holds " + std::to_string(imc_->row_count()) +
          " rows but table holds " + std::to_string(report.live_rows) +
          " live rows (missed invalidation)");
    }
  }

  report.consistent = report.problems.empty();
  return report;
}

// --- DML --------------------------------------------------------------------

Result<size_t> JsonCollection::Insert(Value key, std::string json_text) {
  FSDM_RETURN_NOT_OK(CheckWritable());
  FSDM_COUNT("fsdm_collection_inserts_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_collection_insert_us");
  FSDM_TRACE_SPAN(span, "collection", "collection.insert");
  span.AddTextArg("name", name_);
  span.AddNumberArg("bytes", static_cast<double>(json_text.size()));
  return table_->Insert({std::move(key), Value::String(std::move(json_text))});
}

Result<size_t> JsonCollection::Insert(std::string json_text) {
  // Delegates to the keyed overload, which carries the telemetry.
  return Insert(Value::Int64(next_auto_key_++), std::move(json_text));
}

Status JsonCollection::Delete(size_t row_id) {
  FSDM_RETURN_NOT_OK(CheckWritable());
  FSDM_COUNT("fsdm_collection_deletes_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_collection_delete_us");
  FSDM_TRACE_SPAN(span, "collection", "collection.delete");
  span.AddTextArg("name", name_);
  return table_->Delete(row_id);
}

Status JsonCollection::Replace(size_t row_id, Value key,
                               std::string json_text) {
  FSDM_RETURN_NOT_OK(CheckWritable());
  FSDM_COUNT("fsdm_collection_replaces_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_collection_replace_us");
  FSDM_TRACE_SPAN(span, "collection", "collection.replace");
  span.AddTextArg("name", name_);
  return table_->Replace(
      row_id, {std::move(key), Value::String(std::move(json_text))});
}

// --- Observer ---------------------------------------------------------------

// The DmlObserver keeps the default (no-op) Undo* hooks: IMC invalidation
// is conservative under rollback — an unnecessarily invalid store only
// costs a repopulation — and the own-guide is additive like the index's
// DataGuide (§3.4).

Status JsonCollection::DmlObserver::OnInsert(size_t, const rdbms::Row& row) {
  FSDM_TRACE_SPAN(span, "collection", "observer.insert");
  FSDM_FAULT_POINT("collection.observer.insert");
  owner_->InvalidateImc();
  if (owner_->index_ == nullptr) {
    return owner_->MaintainOwnGuide(row[owner_->json_physical_pos_]);
  }
  return Status::Ok();
}

Status JsonCollection::DmlObserver::OnDelete(size_t, const rdbms::Row&) {
  // The DataGuide is additive (§3.4): deletes never remove entries.
  FSDM_TRACE_SPAN(span, "collection", "observer.delete");
  FSDM_FAULT_POINT("collection.observer.delete");
  owner_->InvalidateImc();
  return Status::Ok();
}

Status JsonCollection::DmlObserver::OnReplace(size_t, const rdbms::Row&,
                                              const rdbms::Row& new_row) {
  FSDM_TRACE_SPAN(span, "collection", "observer.replace");
  FSDM_FAULT_POINT("collection.observer.replace");
  owner_->InvalidateImc();
  if (owner_->index_ == nullptr) {
    return owner_->MaintainOwnGuide(new_row[owner_->json_physical_pos_]);
  }
  return Status::Ok();
}

void JsonCollection::InvalidateImc() {
  if (imc_.has_value() && imc_valid_) {
    imc_valid_ = false;
    imc_invalidations_.Add(1);
    FSDM_COUNT("fsdm_collection_imc_invalidations_total", 1);
    FSDM_TRACE_INSTANT("imc", "imc.invalidate");
  }
}

Status JsonCollection::MaintainOwnGuide(const Value& doc_value) {
  // Reuse the parse the IS JSON constraint already paid for (§3.2.1). The
  // path-statistics repository rides the same walk as the scalar sink.
  const json::JsonNode* parsed =
      table_->ParsedJsonForObserver(json_physical_pos_);
  if (parsed != nullptr) {
    json::TreeDom dom(parsed);
    return own_guide_.AddDocument(dom, nullptr, &path_stats_).status();
  }
  FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> doc,
                        json::Parse(doc_value.AsString()));
  json::TreeDom dom(doc.get());
  return own_guide_.AddDocument(dom, nullptr, &path_stats_).status();
}

// --- Derived schema ---------------------------------------------------------

Result<std::string> JsonCollection::AddVirtualColumn(
    std::string column_name, const std::string& path,
    sqljson::Returning returning, bool hidden) {
  rdbms::ColumnDef def;
  def.name = column_name;
  def.type = returning == sqljson::Returning::kNumber
                 ? rdbms::ColumnType::kNumber
                 : rdbms::ColumnType::kString;
  def.hidden = hidden;
  FSDM_ASSIGN_OR_RETURN(
      def.virtual_expr,
      sqljson::JsonValue(options_.json_column, path,
                         sqljson::JsonStorage::kText, returning));
  FSDM_RETURN_NOT_OK(table_->AddVirtualColumn(std::move(def)));
  vc_for_path_[path] = column_name;
  return column_name;
}

Result<std::vector<std::string>> JsonCollection::AddInferredVirtualColumns(
    const dataguide::GenerateOptions& options) {
  std::vector<std::string> paths;
  FSDM_ASSIGN_OR_RETURN(
      std::vector<std::string> added,
      dataguide::AddVc(table_, options_.json_column,
                       sqljson::JsonStorage::kText, dataguide(), options,
                       &paths));
  for (size_t i = 0; i < added.size(); ++i) {
    vc_for_path_[paths[i]] = added[i];
  }
  return added;
}

Result<dataguide::DmdvView> JsonCollection::CreateView(
    const std::string& root_path, const std::string& view_name,
    const dataguide::GenerateOptions& options) const {
  return dataguide::CreateViewOnPath(table_, options_.json_column,
                                     sqljson::JsonStorage::kText, dataguide(),
                                     root_path, view_name, options);
}

Result<std::vector<dataguide::DmdvView>> JsonCollection::CreateViews(
    const dataguide::GenerateOptions& options) const {
  std::vector<dataguide::DmdvView> views;
  FSDM_ASSIGN_OR_RETURN(dataguide::DmdvView root,
                        CreateView("$", name_ + "_RV", options));
  views.push_back(std::move(root));
  // One sub-view per top-level array hierarchy (the per-nested-collection
  // master-detail views of §3.3.2).
  for (const dataguide::PathEntry* e : dataguide().SortedEntries()) {
    if (e->kind != json::NodeKind::kArray || e->under_array) continue;
    size_t dot = e->path.rfind('.');
    std::string leaf =
        dot == std::string::npos ? e->path : e->path.substr(dot + 1);
    FSDM_ASSIGN_OR_RETURN(
        dataguide::DmdvView v,
        CreateView(e->path, name_ + "_" + leaf + "_RV", options));
    views.push_back(std::move(v));
  }
  return views;
}

const std::string* JsonCollection::VirtualColumnFor(
    const std::string& path) const {
  auto it = vc_for_path_.find(path);
  return it == vc_for_path_.end() ? nullptr : &it->second;
}

// --- IMC --------------------------------------------------------------------

std::vector<std::string> JsonCollection::DefaultImcColumns() const {
  std::vector<std::string> cols = {options_.key_column};
  if (!oson_column_.empty()) cols.push_back(oson_column_);
  for (const auto& [path, name] : vc_for_path_) cols.push_back(name);
  return cols;
}

Status JsonCollection::PopulateImc(std::vector<std::string> columns) {
  if (columns.empty()) columns = DefaultImcColumns();
  FSDM_ASSIGN_OR_RETURN(imc::ColumnStore store,
                        imc::ColumnStore::Populate(*table_, columns));
  imc_ = std::move(store);
  imc_columns_ = std::move(columns);
  imc_valid_ = true;
  return Status::Ok();
}

Result<const imc::ColumnStore*> JsonCollection::EnsureImc() {
  if (imc_valid()) return &*imc_;
  FSDM_RETURN_NOT_OK(PopulateImc(imc_columns_));
  return &*imc_;
}

Result<imc::ColumnStore> JsonCollection::MaterializeColumns(
    const std::vector<std::string>& columns) const {
  return imc::ColumnStore::Populate(*table_, columns);
}

// --- Query ------------------------------------------------------------------

rdbms::OperatorPtr JsonCollection::Scan(bool include_hidden) const {
  return rdbms::Scan(table_, include_hidden);
}

Result<rdbms::ExprPtr> JsonCollection::JsonValueExpr(
    const std::string& path, sqljson::Returning returning) const {
  return sqljson::JsonValue(options_.json_column, path,
                            sqljson::JsonStorage::kText, returning);
}

Result<rdbms::ExprPtr> JsonCollection::JsonExistsExpr(
    const std::string& path) const {
  return sqljson::JsonExists(options_.json_column, path,
                             sqljson::JsonStorage::kText);
}

}  // namespace fsdm::collection
