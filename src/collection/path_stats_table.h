#ifndef FSDM_COLLECTION_PATH_STATS_TABLE_H_
#define FSDM_COLLECTION_PATH_STATS_TABLE_H_

#include "rdbms/executor.h"

/// TELEMETRY$PATH_STATS (ISSUE 5): the per-collection path statistics
/// repositories — the numbers behind the router's selectivity estimates —
/// exposed as a SQL relation alongside the other TELEMETRY$ tables.

namespace fsdm::collection {

inline constexpr const char* kPathStatsTableName = "TELEMETRY$PATH_STATS";

/// Row source over every registered collection's PathStatsRepository, one
/// row per (collection, shard, scalar path). Schema: (COLLECTION, SHARD,
/// PATH, DOCS_SEEN, DOC_FREQUENCY, VALUE_COUNT, NULL_COUNT, NDV, MIN, MAX,
/// HIST_TOTAL, HIST_LO, HIST_HI) — sharded collections (ISSUE 6) keep one
/// repository per shard, so each shard contributes its own row-set with
/// its shard index in SHARD (0 for unsharded collections); NDV is the
/// HyperLogLog estimate rounded to an integer; MIN/MAX are display strings
/// (NULL when the path held only nulls); HIST_LO/HI are NULL until the
/// histogram freezes its range.
rdbms::OperatorPtr PathStatsScan();

}  // namespace fsdm::collection

#endif  // FSDM_COLLECTION_PATH_STATS_TABLE_H_
