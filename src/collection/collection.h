#ifndef FSDM_COLLECTION_COLLECTION_H_
#define FSDM_COLLECTION_COLLECTION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "collection/router.h"
#include "common/status.h"
#include "common/value.h"
#include "dataguide/dataguide.h"
#include "dataguide/views.h"
#include "imc/column_store.h"
#include "index/search_index.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"
#include "sqljson/operators.h"
#include "stats/path_stats.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/telemetry.h"
#include "wal/wal.h"

namespace fsdm::collection {

/// Canonical name of the hidden OSON virtual column a collection installs
/// (§5.2.2). This is the ONE place in the repo that declares it; clients go
/// through JsonCollection instead of wiring the column by hand.
inline constexpr const char* kOsonColumnName = "SYS_OSON";

/// Health of the collection's side structures (ISSUE 3 degraded-mode
/// routing). The numeric values are exported as the
/// fsdm_collection_health gauge.
enum class CollectionHealth : int {
  /// Everything maintained; all access paths available.
  kHealthy = 0,
  /// The search index lost a compensation and suspended maintenance: the
  /// router must not trust posting-backed paths until RebuildIndex().
  kIndexDegraded = 1,
  /// RebuildIndex() itself failed: the collection refuses DML
  /// (Status::Unavailable) until a rebuild succeeds.
  kQuarantined = 2,
};

const char* CollectionHealthName(CollectionHealth health);

/// Result of JsonCollection::CheckConsistency(): cross-checks the base
/// table against every maintained side structure.
struct ConsistencyReport {
  bool consistent = false;
  size_t live_rows = 0;
  size_t indexed_docs = 0;
  std::vector<std::string> problems;

  /// Human-readable rendering (one line per problem) for logs and the
  /// chaos suite's failure artifacts.
  std::string ToString() const;
};

struct CollectionOptions {
  /// Key column (NUMBER) and document column (JSON text with IS JSON).
  std::string key_column = "DID";
  std::string json_column = "JDOC";
  /// Declared max document length (informational), 0 = unbounded.
  size_t max_document_length = 4000;

  /// Install the hidden OSON virtual column at creation (§5.2.2). Queries
  /// compiled against oson_column() then navigate the binary image; the
  /// IMC materializes it at population time.
  bool install_oson_column = true;

  /// Attach a JsonSearchIndex (inverted postings + persistent DataGuide)
  /// as a DML observer. When disabled the collection still maintains a
  /// live DataGuide of its own, piggybacking on the IS JSON constraint's
  /// parse, so view/VC generation and router statistics keep working —
  /// only posting-backed access paths are unavailable.
  bool attach_search_index = true;
  index::JsonSearchIndex::Options index_options;

  /// Number of backing shards (ISSUE 6). 1 (the default) builds the
  /// classic single-table stack with behavior identical to every earlier
  /// release. N > 1 builds a sharded facade: N full per-shard stacks
  /// (table "<name>$s<i>" + OSON VC + search index/DataGuide + IMC + path
  /// statistics + health state), documents hash-placed by key via
  /// fsdm::ShardPlacementHash, and Route() fanning out one costed
  /// sub-plan per shard, drained morsel-parallel on the worker pool.
  size_t shard_count = 1;

  /// Directory for the collection's write-ahead log (ISSUE 8). Empty (the
  /// default) keeps the collection purely in-memory, like every earlier
  /// release. When set, every DML appends a CRC-framed record (the
  /// document as a self-contained OSON image) *before* applying it, and
  /// Create() on a directory holding an existing log replays it — torn
  /// tail truncated, aborted operations skipped — to rebuild the full
  /// per-shard stack, finishing with CheckConsistency(). One collection
  /// per directory; the facade owns the log for all its shards.
  std::string wal_dir;
  /// Fsync policy; unset reads FSDM_WAL_FSYNC (always|group|off) and
  /// defaults to always — an acknowledged DML is durable.
  std::optional<wal::FsyncPolicy> wal_fsync;
  /// Segment rotation threshold and group-commit batch size (see wal.h).
  size_t wal_segment_bytes = 1u << 20;
  size_t wal_group_ops = 32;
};

/// The per-collection document stack of the paper (§3, §5.2) behind one
/// facade: a backing rdbms::Table with the IS JSON check constraint, the
/// hidden OSON virtual column, the JSON search index with its persistent
/// DataGuide, a lazily populated in-memory column store that DML
/// *invalidates* through the table's observer hooks, and one-call
/// generation of DMDV views and JSON_VALUE virtual columns from the live
/// DataGuide. The access-path router (router.h) sits on top.
///
/// Lifetime: the Database (and with it the backing table) must outlive the
/// collection; destroying the collection detaches every observer it
/// registered. DML is single-threaded, like the engine underneath; routed
/// query plans of a sharded collection drain on the worker pool.
///
/// Sharding (ISSUE 6): with CollectionOptions::shard_count = N > 1 this
/// object becomes a facade over N single-shard JsonCollections. Document
/// placement is ShardPlacementHash(key display string) % N; row ids
/// returned by Insert encode (local_row * N + shard), which is the
/// identity mapping at N = 1. Per-shard accessors are shard()/shard_count();
/// table() and imc() return nullptr on a facade (there is no single
/// backing table — go through the shards).
class JsonCollection {
 public:
  /// Creates the backing table `name` inside `db` and wires the stack
  /// according to `options`.
  static Result<std::unique_ptr<JsonCollection>> Create(
      rdbms::Database* db, const std::string& name,
      const CollectionOptions& options = {});

  ~JsonCollection();
  /// Unregisters all observers from the backing table. Idempotent; called
  /// by the destructor. After Detach the collection is read-only
  /// (further table DML no longer maintains the index or IMC state).
  void Detach();

  // --- Components -------------------------------------------------------
  /// The backing table; nullptr on a sharded facade (use shard(i)->table()).
  rdbms::Table* table() const { return table_; }
  const std::string& name() const { return name_; }
  const std::string& key_column() const { return options_.key_column; }
  const std::string& json_column() const { return options_.json_column; }
  const CollectionOptions& options() const { return options_; }
  /// Hidden OSON virtual column name; empty when not installed.
  const std::string& oson_column() const { return oson_column_; }
  /// nullptr when the collection was created without a search index. On a
  /// sharded facade: shard 0's index, as a representative.
  const index::JsonSearchIndex* search_index() const {
    return sharded() ? shards_[0]->search_index() : index_.get();
  }
  /// The live DataGuide: the search index's persistent guide, or the
  /// collection-maintained guide when no index is attached. On a sharded
  /// facade: shard 0's guide, as a representative (shards see disjoint
  /// document subsets; per-shard guides via shard(i)->dataguide()).
  const dataguide::DataGuide& dataguide() const {
    if (sharded()) return shards_[0]->dataguide();
    return index_ != nullptr ? index_->dataguide() : own_guide_;
  }

  // --- Sharding (ISSUE 6) -----------------------------------------------
  /// True when this collection is a facade over multiple backing shards.
  bool sharded() const { return !shards_.empty(); }
  size_t shard_count() const { return sharded() ? shards_.size() : 1; }
  /// The i-th backing shard; `this` on a single-shard collection (i must
  /// be 0 then). Each shard is a full single-shard JsonCollection.
  const JsonCollection* shard(size_t i) const {
    return sharded() ? shards_[i].get() : this;
  }
  JsonCollection* shard(size_t i) {
    return sharded() ? shards_[i].get() : this;
  }
  /// Shard a document key places on: ShardPlacementHash over the key's
  /// canonical display string, modulo shard_count(). Stable across
  /// platforms and runs (see common/hash.h).
  size_t ShardForKey(const Value& key) const;
  /// Per-path value statistics (ISSUE 5): document frequency, NDV sketch,
  /// min/max, and a bounded histogram per scalar path, fed from the same
  /// DataGuide walk the DML path already pays for. The router's
  /// selectivity estimates read from here. Additive like the DataGuide
  /// (§3.4): deletes and rollbacks never retract counts, so ratios stay
  /// approximately right; RebuildIndex() resets and re-feeds them. On a
  /// sharded facade: shard 0's repository (per-shard via shard(i)).
  const stats::PathStatsRepository& path_stats() const {
    return sharded() ? shards_[0]->path_stats_ : path_stats_;
  }
  size_t document_count() const;

  // --- Health & crash consistency ---------------------------------------
  /// Current health, derived from the quarantine flag and the index's
  /// degraded state. Also refreshes the fsdm_collection_health gauge.
  CollectionHealth health() const;
  /// Why the collection is not healthy; empty when healthy.
  std::string health_reason() const;

  /// Rebuilds the search index's postings (and DataGuide coverage) from
  /// the live table rows, healing kIndexDegraded. Failure quarantines the
  /// collection; a later successful call lifts the quarantine. No-op
  /// success when no index is attached.
  Status RebuildIndex();

  /// Ops/test hook: refuse further DML until RebuildIndex() succeeds.
  void Quarantine(std::string reason);

  /// MonotonicNowUs() timestamp of the last successful RebuildIndex();
  /// 0 until one happens (NULL in TELEMETRY$COLLECTIONS).
  uint64_t last_rebuild_ts_us() const { return last_rebuild_ts_us_; }

  /// Cause of the most recent health *transition* (quarantine, index
  /// degradation, rebuild failure). Unlike health_reason() this survives
  /// healing, so TELEMETRY$COLLECTIONS' REASON column can still say why a
  /// now-healthy collection was degraded. Empty until the first
  /// transition.
  const std::string& last_health_cause() const { return last_health_cause_; }

  /// Number of shards currently healthy (== shard_count() when healthy;
  /// rendered into TELEMETRY$COLLECTIONS' per-shard rollup).
  size_t healthy_shard_count() const;

  /// Cross-checks the base table against every maintained side structure:
  /// posting lists, indexed-document count, DataGuide (additive semantics:
  /// guide frequency >= observed frequency), $DG side table, and the IMC
  /// when populated and valid.
  ConsistencyReport CheckConsistency() const;

  // --- Durability (ISSUE 8) ---------------------------------------------
  /// The collection's write-ahead log; nullptr when created without
  /// wal_dir (and on the shards of a durable facade — the facade logs).
  const wal::Wal* wal() const { return wal_.get(); }
  /// Writes a full-snapshot checkpoint into the log and truncates every
  /// older segment, bounding both log size and replay time. Replay after
  /// a checkpoint starts from the snapshot, so recovered row ids compact
  /// to the live documents (keys are the stable identity, as everywhere).
  /// InvalidArgument on a collection without a WAL.
  Status Checkpoint();

  // --- DML --------------------------------------------------------------
  /// Inserts one document; returns the new row id. Runs the IS JSON check,
  /// index/DataGuide maintenance, and IMC invalidation in the DML path.
  Result<size_t> Insert(Value key, std::string json_text);
  /// Auto-assigns a monotonically increasing integer key.
  Result<size_t> Insert(std::string json_text);
  Status Delete(size_t row_id);
  Status Replace(size_t row_id, Value key, std::string json_text);

  // --- Derived schema (read with schema, §3.3) --------------------------
  /// Declares one JSON_VALUE virtual column over the document column and
  /// records its path so the router and IMC can use it. Returns the column
  /// name. Hidden columns stay out of plain scans (TEXT-MODE must not pay
  /// for them) and are materialized by name at IMC population (§5.2.1).
  Result<std::string> AddVirtualColumn(std::string column_name,
                                       const std::string& path,
                                       sqljson::Returning returning,
                                       bool hidden = true);

  /// AddVC() (§3.3.1) driven by the live DataGuide: one visible JSON_VALUE
  /// virtual column per singleton scalar path. Returns the added names.
  Result<std::vector<std::string>> AddInferredVirtualColumns(
      const dataguide::GenerateOptions& options = {});

  /// CreateViewOnPath() (§3.3.2) from the live DataGuide.
  Result<dataguide::DmdvView> CreateView(
      const std::string& root_path, const std::string& view_name,
      const dataguide::GenerateOptions& options = {}) const;

  /// One-call view generation: the root DMDV ("<name>_RV") plus one sub
  /// view per top-level array hierarchy in the DataGuide, mirroring how
  /// the paper derives master-detail views per nested collection.
  Result<std::vector<dataguide::DmdvView>> CreateViews(
      const dataguide::GenerateOptions& options = {}) const;

  /// Virtual-column name materializing JSON_VALUE(`path`), or nullptr.
  const std::string* VirtualColumnFor(const std::string& path) const;

  // --- In-memory column store (§5.2) ------------------------------------
  /// Populates the managed IMC store. Empty `columns` selects the default
  /// set: key column, the hidden OSON column (when installed), and every
  /// declared JSON_VALUE virtual column. Subsequent DML invalidates the
  /// store through the observer hook; EnsureImc() repopulates on demand.
  Status PopulateImc(std::vector<std::string> columns = {});
  /// The managed store when populated AND still valid, else nullptr.
  /// Always nullptr on a sharded facade (each shard manages its own store;
  /// shard(i)->imc()).
  const imc::ColumnStore* imc() const {
    if (sharded()) return nullptr;
    return imc_valid_ && imc_.has_value() ? &*imc_ : nullptr;
  }
  /// Facade: true when EVERY shard's store is valid.
  bool imc_valid() const;
  /// Populated at least once (possibly since invalidated — "stale" in
  /// TELEMETRY$COLLECTIONS terms). Facade: every shard populated.
  bool imc_populated() const;
  /// Lazily (re)populates the managed store and returns it. On a sharded
  /// facade, ensures every shard's store and returns shard 0's as a
  /// representative.
  Result<const imc::ColumnStore*> EnsureImc();
  /// Number of times DML invalidated a populated store. Backed by a
  /// telemetry::Counter; the engine-wide registry additionally aggregates
  /// the same events under fsdm_collection_imc_invalidations_total.
  /// Facade: sum over shards.
  size_t imc_invalidations() const;
  /// Ad-hoc unmanaged store over arbitrary columns (benchmarks comparing
  /// several population sets side by side); not invalidation-tracked.
  Result<imc::ColumnStore> MaterializeColumns(
      const std::vector<std::string>& columns) const;

  // --- Query ------------------------------------------------------------
  /// Row source over the backing table; on a sharded facade, a sequential
  /// UnionAll over every shard's scan in shard order.
  rdbms::OperatorPtr Scan(bool include_hidden = false) const;
  /// JSON_VALUE / JSON_EXISTS expressions over the text document column.
  Result<rdbms::ExprPtr> JsonValueExpr(
      const std::string& path,
      sqljson::Returning returning = sqljson::Returning::kAny) const;
  Result<rdbms::ExprPtr> JsonExistsExpr(const std::string& path) const;
  /// Access-path routed execution of a predicate conjunction (router.h).
  /// On a sharded facade this fans out one costed sub-plan per shard,
  /// merged through an order-preserving morsel-parallel union.
  Result<RoutedPlan> Route(const std::vector<PathPredicate>& predicates) const {
    return RoutePredicates(*this, predicates);
  }

 private:
  friend Result<RoutedPlan> RoutePredicates(
      const JsonCollection& coll, const std::vector<PathPredicate>& preds);

  /// Table observer wired at creation: invalidates the populated IMC on
  /// every insert/delete/replace (the stale-read hazard the facade
  /// closes), and maintains the collection-local DataGuide when no search
  /// index is attached (reusing the IS JSON constraint's parse).
  class DmlObserver final : public rdbms::TableObserver {
   public:
    explicit DmlObserver(JsonCollection* owner) : owner_(owner) {}
    Status OnInsert(size_t row_id, const rdbms::Row& row) override;
    Status OnDelete(size_t row_id, const rdbms::Row& row) override;
    Status OnReplace(size_t row_id, const rdbms::Row& old_row,
                     const rdbms::Row& new_row) override;

   private:
    JsonCollection* owner_;
  };

  JsonCollection(rdbms::Database* db, std::string name,
                 CollectionOptions options)
      : db_(db), name_(std::move(name)), options_(std::move(options)) {}

  void InvalidateImc();
  Status MaintainOwnGuide(const Value& doc_value);
  std::vector<std::string> DefaultImcColumns() const;
  /// DML guard: Unavailable while quarantined, OK otherwise.
  Status CheckWritable() const;
  /// Shared failure path for the public DML wrappers' WAL appends: logs
  /// the failure and, when the append poisoned the writer, quarantines the
  /// collection (the reason carries the append error, errno text and all)
  /// so the health transition is attributable through SQL.
  Status WalAppendFailed(const Status& append_status);

  /// The pre-ISSUE-8 DML bodies: shard dispatch + the single-shard apply.
  /// The public Insert/Delete/Replace wrap them with the activity lease
  /// and the WAL append (top-level only — shard children apply directly).
  Result<size_t> ApplyInsert(Value key, std::string json_text);
  Status ApplyDelete(size_t row_id);
  Status ApplyReplace(size_t row_id, Value key, std::string json_text);

  /// Opens (or replays) the WAL configured in options_.wal_dir. Called by
  /// Create() after the stack is fully wired; failure unwinds creation.
  Status InitWal();
  /// Redo pass over the durable prefix Open() returned: applies every
  /// non-aborted record from the last complete checkpoint, translating
  /// logged row ids to live ones, then verifies with CheckConsistency()
  /// and writes a fresh checkpoint.
  Status ReplayWal(const std::vector<wal::Record>& records);
  /// Row-id -> (shard, key, OSON image) for every live document, shared
  /// by Checkpoint() and consistency-oblivious callers.
  Status AppendCheckpointDocs(uint64_t* doc_count);
  size_t KeyPhysicalPos(const rdbms::Table* t) const;
  /// Registers the ISSUE 9 memory reporters (table heap, index postings,
  /// DataGuide, IMC, path statistics, WAL writer) with the global
  /// MemoryTracker, labeled with the collection name. Called at the end of
  /// Create() on the top-level object only — facade reporters sum over the
  /// shards, which stay unregistered to avoid double counting.
  void RegisterMemoryReporters();

  rdbms::Database* db_;
  std::string name_;
  CollectionOptions options_;
  rdbms::Table* table_ = nullptr;
  std::string oson_column_;
  size_t json_physical_pos_ = 0;  // position within physical rows
  std::unique_ptr<index::JsonSearchIndex> index_;
  std::unique_ptr<DmlObserver> dml_observer_;
  dataguide::DataGuide own_guide_;  // used when no index is attached
  stats::PathStatsRepository path_stats_;
  // JSON path -> declared virtual column name (router / IMC metadata).
  std::map<std::string, std::string> vc_for_path_;
  std::optional<imc::ColumnStore> imc_;
  std::vector<std::string> imc_columns_;  // last requested population set
  bool imc_valid_ = false;
  telemetry::Counter imc_invalidations_;
  int64_t next_auto_key_ = 1;
  uint64_t last_rebuild_ts_us_ = 0;
  bool detached_ = false;
  bool quarantined_ = false;
  std::string quarantine_reason_;
  std::string last_health_cause_;  // sticky; see last_health_cause()
  /// This collection is a shard child of a durable facade: DML arrives
  /// pre-logged and pre-leased, so the public wrappers pass through.
  bool is_shard_ = false;
  std::unique_ptr<wal::Wal> wal_;
  /// Set while ReplayWal drives the DML paths: suppresses re-appending
  /// the operations being replayed.
  bool wal_replaying_ = false;
  /// Backing shards when this is a sharded facade (empty otherwise). Each
  /// is a full single-shard collection named "<name>$s<i>", kept out of
  /// the CollectionRegistry — only the facade is registered.
  std::vector<std::unique_ptr<JsonCollection>> shards_;
  /// Live memory-reporter registrations (RAII — Detach()/destruction
  /// unregisters them before the structures they poll go away).
  std::vector<telemetry::MemoryScope> mem_scopes_;
};

}  // namespace fsdm::collection

#endif  // FSDM_COLLECTION_COLLECTION_H_
