#include "collection/collections_table.h"

#include <algorithm>
#include <memory>
#include <string>

#include "collection/collection.h"

namespace fsdm::collection {

CollectionRegistry& CollectionRegistry::Global() {
  static CollectionRegistry* registry = new CollectionRegistry();
  return *registry;
}

void CollectionRegistry::Register(const JsonCollection* coll) {
  if (std::find(collections_.begin(), collections_.end(), coll) ==
      collections_.end()) {
    collections_.push_back(coll);
  }
}

void CollectionRegistry::Unregister(const JsonCollection* coll) {
  collections_.erase(
      std::remove(collections_.begin(), collections_.end(), coll),
      collections_.end());
}

namespace {

class CollectionsScanOp final : public rdbms::Operator {
 public:
  CollectionsScanOp() {
    schema_ = rdbms::Schema({"NAME", "HEALTH", "REASON", "DOC_COUNT",
                             "INDEX_PATHS", "IMC_STATE", "LAST_REBUILD_TS",
                             "SHARDS", "SHARDS_HEALTHY"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const JsonCollection* c : CollectionRegistry::Global().collections()) {
      const char* imc_state = c->imc_valid()
                                  ? "valid"
                                  : (c->imc_populated() ? "stale"
                                                        : "unpopulated");
      // REASON: the live degradation cause while unhealthy, else the
      // last health-transition cause (sticky across healing; ISSUE 10).
      std::string reason = c->health_reason();
      if (reason.empty()) reason = c->last_health_cause();
      rows_.push_back(
          {Value::String(c->name()),
           Value::String(CollectionHealthName(c->health())),
           reason.empty() ? Value::Null() : Value::String(reason),
           Value::Int64(static_cast<int64_t>(c->document_count())),
           Value::Int64(
               static_cast<int64_t>(c->dataguide().distinct_path_count())),
           Value::String(imc_state),
           c->last_rebuild_ts_us() == 0
               ? Value::Null()
               : Value::Int64(static_cast<int64_t>(c->last_rebuild_ts_us())),
           Value::Int64(static_cast<int64_t>(c->shard_count())),
           Value::Int64(static_cast<int64_t>(c->healthy_shard_count()))});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr CollectionsScan() {
  return std::make_unique<CollectionsScanOp>();
}

}  // namespace fsdm::collection
