#ifndef FSDM_COLLECTION_ROUTER_H_
#define FSDM_COLLECTION_ROUTER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "rdbms/executor.h"
#include "telemetry/trace.h"

namespace fsdm::collection {

class JsonCollection;

/// Physical access paths the router can choose among for a conjunctive
/// path-predicate query over a JSON collection. They mirror the paper's
/// evaluation strategies: inverted-index posting lookups through the JSON
/// search index (§3.2.1) — including the conjunctive posting-list
/// intersection —, vectorized scans over materialized JSON_VALUE columns
/// in the IMC (§5.2.1), and the baseline full document scan.
enum class AccessPath : uint8_t {
  kIndexedValueScan,      ///< search-index postings for `path = literal`
  kIndexedPathScan,       ///< search-index postings for path existence
  kPostingIntersectScan,  ///< intersection of several posting lists
  kImcFilterScan,         ///< vectorized IMC scan over materialized VCs
  kFullScan,              ///< table scan + JSON_EXISTS/JSON_VALUE filter
  kShardedUnion,          ///< per-shard routed plans, morsel-parallel union
};

const char* AccessPathName(AccessPath path);

/// One conjunct of a routed query: a JSON path plus either a scalar
/// comparison against a literal or (when `literal` is empty) a bare
/// JSON_EXISTS structural test.
struct PathPredicate {
  std::string path;  // "$.purchaseOrder.reference"
  rdbms::CompareOp op = rdbms::CompareOp::kEq;
  std::optional<Value> literal;

  static PathPredicate Exists(std::string path) {
    PathPredicate p;
    p.path = std::move(path);
    return p;
  }
  static PathPredicate Compare(std::string path, rdbms::CompareOp op,
                               Value literal) {
    PathPredicate p;
    p.path = std::move(path);
    p.op = op;
    p.literal = std::move(literal);
    return p;
  }

  bool is_existence() const { return !literal.has_value(); }
};

/// A routed plan: the chosen access path, an executable operator tree that
/// composes with the rest of the executor (residual predicates are already
/// applied on top of the primary access path), and a human-readable
/// explanation of why the router picked it.
struct RoutedPlan {
  AccessPath access_path = AccessPath::kFullScan;
  /// EXPLAIN ANALYZE trace: the router's full candidate ranking — with the
  /// cost model's estimated rows and cost per candidate — plus one
  /// OperatorSpan per plan node. The spans fill in (rows, elapsed time) as
  /// `plan` executes, so call trace.Render() after draining the plan. The
  /// trace owns the spans the operators point into — keep the RoutedPlan
  /// alive while the plan runs (moving it is fine; spans are stable).
  ///
  /// Declared BEFORE `plan` so it is destroyed AFTER it: the probe at the
  /// root of `plan` unregisters the query from the QueryMonitor in its
  /// destructor (covering plans dropped without Close() on error paths),
  /// and that must happen while the spans the monitor walks are still
  /// alive.
  telemetry::QueryTrace trace;
  rdbms::OperatorPtr plan;
  /// Legacy one-line explanation; identical to trace.decision.reason.
  std::string reason;
};

/// Chooses an access path for the conjunction of `predicates` over `coll`
/// with a cost model (ISSUE 5, replacing the fixed priority ranking):
/// every candidate gets an estimated row count — selectivities from the
/// collection's PathStatsRepository (per-path document frequency, HLL NDV,
/// value histograms), falling back to DataGuide frequencies — multiplied
/// by the measured per-row operator costs in
/// stats::OperatorCostModel::Global(). The cheapest *eligible* candidate
/// wins (ties break toward the earlier candidate, so decisions are
/// deterministic under frozen statistics):
///
///   [0] imc-filter-scan: every predicate compares a path whose JSON_VALUE
///       virtual column is materialized in a *valid* IMC store; the whole
///       conjunction runs as one vectorized ColumnStore scan;
///   [1] indexed-value-scan: the most selective equality on a
///       DataGuide-known scalar path through the value postings;
///   [2] posting-intersect-scan: two or more index-answerable conjuncts
///       (equalities on known scalar paths, existence tests) evaluated by
///       intersecting their posting lists;
///   [3] indexed-path-scan: the most selective existence test through the
///       path postings;
///   [4] full-scan: always eligible; a table scan with
///       JSON_EXISTS/JSON_VALUE filters.
///
/// Posting-backed candidates require a healthy index (degraded-mode
/// routing, ISSUE 3). Residual predicates not absorbed by the primary path
/// are evaluated by a Filter over the JSON document column. Index-backed
/// and full-scan plans emit base-table rows; the IMC plan emits the
/// store's columns.
///
/// Every routed plan is wrapped in a transparent probe that, on Close(),
/// feeds measured span times back into the operator cost model, compares
/// estimated to actual output rows (bumping fsdm_router_misestimates_total
/// past a 4x ratio), and captures slow queries.
///
/// Sharded collections (ISSUE 6) route as a fan-out: each shard costs the
/// five candidates above against its OWN statistics (skewed shards may
/// pick different access paths), the per-shard plans execute as morsels
/// on the shared worker pool behind an order-preserving ParallelUnionAll,
/// and the facade decision reports access path "sharded-union" with
/// estimated cost = max over shard costs + est_out_rows x the measured
/// "ParallelUnion" per-row merge cost (parallel drain: max, not sum). The
/// per-shard span trees are stitched under one ParallelUnion root span,
/// every span tagged with its shard and draining worker, and ONE probe on
/// the stitched tree feeds the cost model — shard sub-plans carry no
/// probes of their own, so nothing is double-counted.
Result<RoutedPlan> RoutePredicates(const JsonCollection& coll,
                                   const std::vector<PathPredicate>& predicates);

}  // namespace fsdm::collection

#endif  // FSDM_COLLECTION_ROUTER_H_
