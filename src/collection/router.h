#ifndef FSDM_COLLECTION_ROUTER_H_
#define FSDM_COLLECTION_ROUTER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "rdbms/executor.h"
#include "telemetry/trace.h"

namespace fsdm::collection {

class JsonCollection;

/// Physical access paths the router can choose among for a conjunctive
/// path-predicate query over a JSON collection. They mirror the paper's
/// evaluation strategies: inverted-index posting lookups through the JSON
/// search index (§3.2.1), vectorized scans over materialized JSON_VALUE
/// columns in the IMC (§5.2.1), and the baseline full document scan.
enum class AccessPath : uint8_t {
  kIndexedValueScan,  ///< search-index postings for `path = literal`
  kIndexedPathScan,   ///< search-index postings for path existence
  kImcFilterScan,     ///< vectorized IMC scan over materialized VCs
  kFullScan,          ///< table scan + JSON_EXISTS/JSON_VALUE filter
};

const char* AccessPathName(AccessPath path);

/// One conjunct of a routed query: a JSON path plus either a scalar
/// comparison against a literal or (when `literal` is empty) a bare
/// JSON_EXISTS structural test.
struct PathPredicate {
  std::string path;  // "$.purchaseOrder.reference"
  rdbms::CompareOp op = rdbms::CompareOp::kEq;
  std::optional<Value> literal;

  static PathPredicate Exists(std::string path) {
    PathPredicate p;
    p.path = std::move(path);
    return p;
  }
  static PathPredicate Compare(std::string path, rdbms::CompareOp op,
                               Value literal) {
    PathPredicate p;
    p.path = std::move(path);
    p.op = op;
    p.literal = std::move(literal);
    return p;
  }

  bool is_existence() const { return !literal.has_value(); }
};

/// A routed plan: the chosen access path, an executable operator tree that
/// composes with the rest of the executor (residual predicates are already
/// applied on top of the primary access path), and a human-readable
/// explanation of why the router picked it.
struct RoutedPlan {
  AccessPath access_path = AccessPath::kFullScan;
  rdbms::OperatorPtr plan;
  /// Legacy one-line explanation; identical to trace.decision.reason.
  std::string reason;
  /// EXPLAIN ANALYZE trace: the router's full candidate ranking plus one
  /// OperatorSpan per plan node. The spans fill in (rows, elapsed time) as
  /// `plan` executes, so call trace.Render() after draining the plan. The
  /// trace owns the spans the operators point into — keep the RoutedPlan
  /// alive while the plan runs (moving it is fine; spans are stable).
  telemetry::QueryTrace trace;
};

/// Chooses an access path for the conjunction of `predicates` over `coll`
/// using DataGuide statistics (path frequency, leaf type, singleton-ness)
/// and the collection's IMC population state:
///
///   1. when every predicate compares a path whose JSON_VALUE virtual
///      column is materialized in a *valid* IMC store, the whole
///      conjunction runs as one vectorized ColumnStore scan;
///   2. otherwise an equality on an index-known scalar path routes to the
///      value postings (most selective first, by DataGuide frequency);
///   3. otherwise a selective existence test (path present in at most half
///      the documents, or entirely unknown) routes to the path postings;
///   4. otherwise: full table scan with a JSON_EXISTS/JSON_VALUE filter.
///
/// Residual predicates not absorbed by the primary path are evaluated by a
/// Filter over the JSON document column. Index-backed and full-scan plans
/// emit base-table rows; the IMC plan emits the store's columns.
Result<RoutedPlan> RoutePredicates(const JsonCollection& coll,
                                   const std::vector<PathPredicate>& predicates);

}  // namespace fsdm::collection

#endif  // FSDM_COLLECTION_ROUTER_H_
