#include "telemetry/incident.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "telemetry/flight_recorder.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/query_monitor.h"
#include "telemetry/sampler.h"
#include "telemetry/trace_event.h"
#include "telemetry/workload_repo.h"

namespace fsdm::telemetry {

#if !defined(FSDM_TELEMETRY_DISABLED)

namespace fs = std::filesystem;

namespace {

/// Reentrancy guard: a state provider (or anything capture touches) that
/// raises again must not recurse into a second capture on this thread.
thread_local bool t_in_raise = false;

/// How far back the trace slice reaches, and its event cap. The recorder
/// ring is bigger, but an incident wants the moments around the trigger,
/// not the whole flight.
constexpr uint64_t kTraceWindowUs = 2 * 1000 * 1000;
constexpr size_t kTraceMaxEvents = 1024;

std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    (c >= 'A' && c <= 'Z') || c == '-' || c == '_';
    out += ok ? c : '-';
  }
  return out.empty() ? std::string("incident") : out;
}

}  // namespace

IncidentManager& IncidentManager::Global() {
  static IncidentManager* manager = new IncidentManager();
  return *manager;
}

IncidentManager::IncidentManager() : dir_("incidents") {
  const char* env = std::getenv("FSDM_INCIDENT_DIR");
  if (env != nullptr) dir_ = env;  // "" disables disk capture
}

void IncidentManager::SetDirectory(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = std::move(dir);
}

std::string IncidentManager::directory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_;
}

void IncidentManager::SetRetention(size_t max_files) {
  std::lock_guard<std::mutex> lock(mu_);
  retention_ = max_files > 0 ? max_files : 1;
}

void IncidentManager::SetRingCapacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = n > 0 ? n : 1;
  while (ring_.size() > ring_capacity_) ring_.pop_front();
}

void IncidentManager::SetFloodIntervalUs(uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  flood_interval_us_ = us;
}

void IncidentManager::SetDedupWindowUs(uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  dedup_window_us_ = us;
}

void IncidentManager::SetLogSlice(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  log_slice_ = n > 0 ? n : 1;
}

void IncidentManager::RegisterStateProvider(const std::string& key,
                                            StateProvider fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : providers_) {
    if (k == key) {
      v = std::move(fn);
      return;
    }
  }
  providers_.emplace_back(key, std::move(fn));
}

uint64_t IncidentManager::Raise(std::string type, std::string subject,
                                std::string reason) {
  if (t_in_raise) return 0;
  t_in_raise = true;
  const uint64_t now = MonotonicNowUs();

  Incident inc;
  size_t log_slice = 256;
  std::vector<std::pair<std::string, StateProvider>> providers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Flood control (per type) then dedup (per type+subject). `now == 0`
    // only at process start, where suppression would be wrong — hence the
    // entry-exists checks rather than `last > 0`.
    const auto by_type = last_by_type_.find(type);
    const bool flooded = by_type != last_by_type_.end() &&
                         now - by_type->second < flood_interval_us_;
    const std::string key = type + '\0' + subject;
    const auto by_key = last_by_key_.find(key);
    const bool duped = by_key != last_by_key_.end() &&
                       now - by_key->second < dedup_window_us_;
    if (flooded || duped) {
      ++total_suppressed_;
      FSDM_COUNT("fsdm_incidents_suppressed_total", 1);
      FSDM_LOG(LogLevel::kDebug, "incident", 3302,
               "incident suppressed: " + type + " on " + subject,
               LogText("type", type));
      t_in_raise = false;
      return 0;
    }
    last_by_type_[type] = now;
    last_by_key_[key] = now;
    inc.id = next_id_++;
    log_slice = log_slice_;
    providers = providers_;
  }

  inc.ts_us = now;
  inc.type = std::move(type);
  inc.subject = std::move(subject);
  inc.reason = std::move(reason);

  // The raise itself is the newest log record the bundle carries — emit
  // before slicing so the bundle is self-describing.
  FSDM_LOG(LogLevel::kWarn, "incident", 3301,
           "incident " + std::to_string(inc.id) + " raised: " + inc.type +
               " on " + inc.subject + ": " + inc.reason,
           LogNum("id", static_cast<double>(inc.id)),
           LogText("type", inc.type));

  std::vector<LogRecord> log_slice_records =
      EngineLog::Global().SnapshotLast(log_slice);
  inc.log_records = log_slice_records.size();

  // Providers render outside the manager lock (they read engine state and
  // may log); their sections join the built-ins under "engine_state".
  std::string provider_json;
  for (const auto& [key, fn] : providers) {
    if (!fn) continue;
    provider_json += ",\"" + JsonEscape(key) + "\":";
    std::string v = fn();
    provider_json += v.empty() ? "null" : v;
  }

  std::string bundle = BuildBundleJson(inc, log_slice_records, provider_json);
  inc.bundle_path = WriteBundle(inc, bundle);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(inc);
    while (ring_.size() > ring_capacity_) ring_.pop_front();
    ++total_raised_;
  }
  FSDM_COUNT("fsdm_incidents_total", 1);
  t_in_raise = false;
  return inc.id;
}

std::string IncidentManager::BuildBundleJson(
    const Incident& inc, const std::vector<LogRecord>& log_slice,
    const std::string& provider_json) const {
  std::string out = "{\"incident\":{\"schema_version\":1,\"id\":";
  AppendJsonNumber(&out, static_cast<double>(inc.id));
  out += ",\"ts_us\":";
  AppendJsonNumber(&out, static_cast<double>(inc.ts_us));
  out += ",\"type\":\"" + JsonEscape(inc.type) + "\"";
  out += ",\"subject\":\"" + JsonEscape(inc.subject) + "\"";
  out += ",\"reason\":\"" + JsonEscape(inc.reason) + "\"}";

  out += ",\"log\":[";
  for (size_t i = 0; i < log_slice.size(); ++i) {
    if (i > 0) out += ",";
    out += log_slice[i].ToJsonLine();
  }
  out += "]";

  // Flight-recorder slice: the window before the trigger, newest-capped.
  // Empty (not missing) when the recorder is disarmed.
  std::vector<TraceEvent> events = FlightRecorder::Global().SnapshotSince(
      inc.ts_us > kTraceWindowUs ? inc.ts_us - kTraceWindowUs : 0);
  if (events.size() > kTraceMaxEvents) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(kTraceMaxEvents));
  }
  out += ",\"trace\":{\"armed\":";
  out += FlightRecorder::Global().armed() ? "true" : "false";
  out += ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    AppendChromeTraceEvent(&out, events[i]);
  }
  out += "]}";

  // ASH window: whatever the sampler ring currently holds. Also empty
  // when the sampler never ran.
  std::vector<AshSample> samples = ActivitySampler::Global().Snapshot();
  out += ",\"ash\":{\"samples\":";
  AppendJsonNumber(&out, static_cast<double>(samples.size()));
  out += ",\"aggregate\":";
  out += AshAggregateJson(AggregateAsh(samples, 0, UINT64_MAX));
  out += "}";

  out += ",\"metrics\":";
  out += MetricsRegistry::Global().ToJson();

  out += ",\"engine_state\":{\"memory\":[";
  std::vector<MemoryTracker::Entry> entries = MemoryTracker::Global().Entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"subsystem\":\"";
    out += MemSubsystemName(entries[i].subsystem);
    out += "\",\"collection\":\"" + JsonEscape(entries[i].collection) +
           "\",\"bytes\":";
    AppendJsonNumber(&out, static_cast<double>(entries[i].bytes));
    out += ",\"peak_bytes\":";
    AppendJsonNumber(&out, static_cast<double>(entries[i].peak_bytes));
    out += "}";
  }
  out += "],\"query_monitor\":[";
  std::vector<MonitoredQuery> queries = QueryMonitor::Global().Snapshot();
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i > 0) out += ",";
    const MonitoredQuery& q = queries[i];
    out += "{\"query_id\":";
    AppendJsonNumber(&out, static_cast<double>(q.query_id));
    out += ",\"collection\":\"" + JsonEscape(q.collection) + "\"";
    out += ",\"query\":\"" + JsonEscape(q.query) + "\"";
    out += ",\"access_path\":\"" + JsonEscape(q.access_path) + "\"";
    out += ",\"elapsed_us\":";
    AppendJsonNumber(&out, static_cast<double>(q.elapsed_us));
    out += ",\"rows_out\":";
    AppendJsonNumber(&out, static_cast<double>(q.rows_out));
    out += ",\"operators\":";
    AppendJsonNumber(&out, static_cast<double>(q.operators.size()));
    out += "}";
  }
  out += "]";
  out += provider_json;
  out += "}}";
  return out;
}

std::string IncidentManager::WriteBundle(const Incident& inc,
                                         const std::string& json) {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir = dir_;
  }
  if (dir.empty()) return "";
  std::error_code ec;
  fs::create_directories(dir, ec);
  char name[64];
  std::snprintf(name, sizeof(name), "incident-%08llu-",
                static_cast<unsigned long long>(inc.id));
  const std::string path =
      dir + "/" + name + SanitizeForFilename(inc.type) + ".json";
  {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      FSDM_LOG(LogLevel::kError, "incident", 3303,
               "incident bundle write failed: " + path);
      return "";
    }
    out << json << "\n";
    if (!out.good()) {
      FSDM_LOG(LogLevel::kError, "incident", 3304,
               "incident bundle flush failed: " + path);
      return "";
    }
  }
  ApplyRetention();
  return path;
}

void IncidentManager::ApplyRetention() {
  std::string dir;
  size_t retention;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir = dir_;
    retention = retention_;
  }
  if (dir.empty()) return;
  std::error_code ec;
  std::vector<std::string> files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    const std::string fname = e.path().filename().string();
    if (fname.rfind("incident-", 0) == 0 &&
        fname.size() > 5 && fname.substr(fname.size() - 5) == ".json") {
      files.push_back(e.path().string());
    }
  }
  if (files.size() <= retention) return;
  // Ids are zero-padded, so lexical order is raise order; drop oldest.
  std::sort(files.begin(), files.end());
  for (size_t i = 0; i + retention < files.size(); ++i) {
    fs::remove(files[i], ec);
  }
}

std::vector<Incident> IncidentManager::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Incident>(ring_.begin(), ring_.end());
}

uint64_t IncidentManager::total_raised() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_raised_;
}

uint64_t IncidentManager::total_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_suppressed_;
}

namespace {

void FatalSignalHandler(int sig) {
  // Not async-signal-safe, deliberately: the process is dying and the
  // last act is a best-effort diagnostic capture. Default disposition is
  // restored FIRST so a crash inside the capture terminates instead of
  // recursing.
  std::signal(sig, SIG_DFL);
  const char* name = "signal";
  switch (sig) {
    case SIGSEGV:
      name = "SIGSEGV";
      break;
    case SIGBUS:
      name = "SIGBUS";
      break;
    case SIGABRT:
      name = "SIGABRT";
      break;
    case SIGFPE:
      name = "SIGFPE";
      break;
    case SIGILL:
      name = "SIGILL";
      break;
  }
  FSDM_LOG(LogLevel::kError, "incident", 3305,
           std::string("fatal signal: ") + name,
           LogNum("signal", static_cast<double>(sig)));
  IncidentManager::Global().Raise("fatal-signal", name,
                                  std::string("process received ") + name);
  ::raise(sig);
}

}  // namespace

void IncidentManager::InstallFatalSignalHandler() {
  static bool installed = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (installed) return;
  installed = true;
  for (int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    std::signal(sig, &FatalSignalHandler);
  }
}

void IncidentManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_raised_ = 0;
  total_suppressed_ = 0;
  last_by_type_.clear();
  last_by_key_.clear();
}

#endif  // !FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry
