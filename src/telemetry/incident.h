#ifndef FSDM_TELEMETRY_INCIDENT_H_
#define FSDM_TELEMETRY_INCIDENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/log.h"

/// Automatic incident capture (ISSUE 10 tentpole): an ADR-style
/// diagnostic repository in the spirit of Oracle's Automatic Diagnostic
/// Repository. When something goes wrong — a quarantine, WAL poisoning, a
/// torn-tail recovery, a CheckConsistency failure, a fatal signal — the
/// trigger site calls IncidentManager::Raise and the manager captures a
/// SELF-CONTAINED JSON bundle of every observability pillar at that
/// moment:
///
///   incident      id/ts/type/subject/reason header
///   log           the newest structured log records (log.h)
///   trace         a flight-recorder slice (chrome trace-event objects)
///   ash           the sampler ring's ASH window aggregate + sample count
///   metrics       a full MetricsRegistry JSON snapshot
///   engine_state  memory attribution, in-flight query monitor, plus any
///                 registered state providers (the collection layer
///                 contributes collection-health and WAL-writer state)
///
/// Bundles land in a bounded in-memory ring (the TELEMETRY$INCIDENTS SQL
/// relation) and, when a directory is configured, on disk as
/// incidents/incident-<id>-<type>.json with count-based retention.
/// scripts/check_incident_json.py validates the bundle shape in CI.
///
/// Two suppression layers keep a looping failure from flooding the disk:
/// a per-type minimum interval and a per-(type,subject) dedup window.
/// Suppressed raises are counted (fsdm_incidents_suppressed_total), never
/// silently swallowed.
///
/// Under -DFSDM_TELEMETRY=OFF the manager compiles to an empty stub:
/// Raise returns 0 and captures nothing.

namespace fsdm::telemetry {

/// One captured incident, as TELEMETRY$INCIDENTS renders it.
struct Incident {
  uint64_t id = 0;
  uint64_t ts_us = 0;       // MonotonicNowUs() clock
  std::string type;         // "quarantine", "wal-poisoned", "torn-tail", ...
  std::string subject;      // collection name, WAL dir, signal name
  std::string reason;       // human-readable cause
  std::string bundle_path;  // on-disk bundle; "" when disk capture is off
  uint64_t log_records = 0;  // records captured into the bundle's log slice
};

#if !defined(FSDM_TELEMETRY_DISABLED)

class IncidentManager {
 public:
  static IncidentManager& Global();

  /// Directory for on-disk bundles; "" disables disk capture. Default
  /// "incidents" (relative to the working directory), or the
  /// FSDM_INCIDENT_DIR environment variable when set at first use.
  void SetDirectory(std::string dir);
  std::string directory() const;

  /// Maximum on-disk bundles kept; older files are unlinked after each
  /// write. Default 32.
  void SetRetention(size_t max_files);
  /// In-memory ring capacity (oldest evicted). Default 64.
  void SetRingCapacity(size_t n);
  /// Per-type flood control: a second incident of the same type within
  /// the interval is suppressed. Default 100ms.
  void SetFloodIntervalUs(uint64_t us);
  /// Per-(type,subject) dedup: an identical incident within the window is
  /// suppressed. Default 5s.
  void SetDedupWindowUs(uint64_t us);
  /// Newest-N log records captured per bundle. Default 256.
  void SetLogSlice(size_t n);

  /// Engine-state contributor: returns a JSON value rendered under
  /// "engine_state".<key>. The collection layer registers "collections"
  /// and "wal" providers; re-registering a key replaces it. Providers
  /// must not Raise (nested raises are dropped, not deadlocked).
  using StateProvider = std::function<std::string()>;
  void RegisterStateProvider(const std::string& key, StateProvider fn);

  /// Captures an incident; returns its id, or 0 when suppressed (flood,
  /// dedup, or a nested raise from inside a capture).
  uint64_t Raise(std::string type, std::string subject, std::string reason);

  /// The in-memory ring, oldest first.
  std::vector<Incident> Snapshot() const;
  uint64_t total_raised() const;
  uint64_t total_suppressed() const;

  /// Installs a best-effort fatal-signal hook (SIGSEGV/SIGBUS/SIGABRT/
  /// SIGFPE/SIGILL): raises a "fatal-signal" incident, then re-raises the
  /// signal under its default disposition. Idempotent; intended for the
  /// bench harness and long-running embedders, not unit tests.
  void InstallFatalSignalHandler();

  /// Clears the ring, counters and suppression state (providers and
  /// configuration stay). Test hook.
  void Reset();

 private:
  IncidentManager();

  std::string BuildBundleJson(const Incident& inc,
                              const std::vector<LogRecord>& log_slice,
                              const std::string& provider_json) const;
  std::string WriteBundle(const Incident& inc, const std::string& json);
  void ApplyRetention();

  mutable std::mutex mu_;
  std::deque<Incident> ring_;
  size_t ring_capacity_ = 64;
  std::string dir_;
  size_t retention_ = 32;
  uint64_t flood_interval_us_ = 100 * 1000;
  uint64_t dedup_window_us_ = 5 * 1000 * 1000;
  size_t log_slice_ = 256;
  uint64_t next_id_ = 1;
  uint64_t total_raised_ = 0;
  uint64_t total_suppressed_ = 0;
  std::unordered_map<std::string, uint64_t> last_by_type_;
  std::unordered_map<std::string, uint64_t> last_by_key_;
  std::vector<std::pair<std::string, StateProvider>> providers_;
};

#else  // FSDM_TELEMETRY_DISABLED

class IncidentManager {
 public:
  static IncidentManager& Global() {
    static IncidentManager m;
    return m;
  }
  void SetDirectory(std::string) {}
  std::string directory() const { return ""; }
  void SetRetention(size_t) {}
  void SetRingCapacity(size_t) {}
  void SetFloodIntervalUs(uint64_t) {}
  void SetDedupWindowUs(uint64_t) {}
  void SetLogSlice(size_t) {}
  using StateProvider = std::function<std::string()>;
  void RegisterStateProvider(const std::string&, StateProvider) {}
  uint64_t Raise(std::string, std::string, std::string) { return 0; }
  std::vector<Incident> Snapshot() const { return {}; }
  uint64_t total_raised() const { return 0; }
  uint64_t total_suppressed() const { return 0; }
  void InstallFatalSignalHandler() {}
  void Reset() {}
};

#endif  // FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_INCIDENT_H_
