#ifndef FSDM_TELEMETRY_ACTIVITY_H_
#define FSDM_TELEMETRY_ACTIVITY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

/// Active-query activity registry (ISSUE 7 tentpole): every thread that
/// executes engine work publishes one small "what am I doing now" record —
/// which collection, access path and operator it is driving, which
/// shard/worker it is, and a *wait state* saying where its wall-clock time
/// is going right now. The background sampler (sampler.h) reads these
/// records ~1000x per second; the aggregate of those samples is the time
/// model (DB-time accounting by collection and wait class), the ASH ring,
/// and the workload repository's snapshot deltas.
///
/// Cost model: a wait-state flip is one relaxed atomic byte store. The
/// identity strings change once per routed drain / morsel (under a
/// per-record mutex that only the owning thread and the sampler ever
/// touch), so the steady-state cost on the query path is a few stores at
/// Open() and Close() — nothing per row.
///
/// Thread-safety: the sampler reads `state_`/`active_` relaxed and copies
/// the identity strings under the record mutex. A sample may therefore
/// pair a state flip with identity fields from an instant earlier — fine
/// for statistical sampling, and race-free under TSan by construction.
///
/// Under -DFSDM_TELEMETRY=OFF everything here compiles to empty inline
/// stubs: no registry, no atomics, no strings.

namespace fsdm::telemetry {

/// Where a published thread's wall-clock time is going. Kept to the few
/// states the engine can actually distinguish cheaply; the sampler maps
/// each to a coarser wait *class* for reporting.
enum class WaitState : uint8_t {
  kIdle = 0,        ///< registered but no engine work in flight
  kOnCpu,           ///< executing (the default while a lease is held)
  kPoolQueueWait,   ///< blocked on WorkerPool morsel completion
  kLockWait,        ///< blocked on a telemetry/registry mutex
  kFaultStall,      ///< sleeping inside an injected fault stall
  kWalFsync,        ///< inside the write-ahead log's fsync (ISSUE 8)
};

inline constexpr size_t kWaitStateCount = 6;

/// "idle", "on-cpu", "pool-queue-wait", "lock-wait", "fault-stall",
/// "wal-fsync".
const char* WaitStateName(WaitState s);
/// Coarse reporting class: "idle", "cpu", "scheduler", "concurrency",
/// "fault", "io" — the AWR-style wait-class taxonomy DESIGN.md documents.
const char* WaitClassName(WaitState s);

/// Point-in-time copy of one record, as the sampler sees it.
struct ActivitySample {
  bool active = false;
  WaitState state = WaitState::kIdle;
  uint64_t thread_slot = 0;  ///< registry-assigned stable thread id
  uint64_t begin_ts_us = 0;  ///< when the current lease began
  std::string collection;
  std::string access_path;
  std::string op;
  std::string query;
  int shard = -1;
  int worker = -1;
  /// Query-monitor id of the routed query this work belongs to (ISSUE 9):
  /// cross-links ASH samples to TELEMETRY$QUERY_MONITOR rows and
  /// slow-query records. 0 = not part of a monitored query.
  uint64_t query_id = 0;
};

#if !defined(FSDM_TELEMETRY_DISABLED)

/// One thread's published activity. Owned by the ActivityRegistry and
/// never destroyed (threads may die; their record stays, inactive), so
/// thread_local cached pointers and the sampler's iteration stay valid
/// for the process lifetime.
class ActivityRecord {
 public:
  explicit ActivityRecord(uint64_t thread_slot) : thread_slot_(thread_slot) {}

  /// Hot-path wait-state flip: one relaxed byte store.
  void set_state(WaitState s) {
    state_.store(static_cast<uint8_t>(s), std::memory_order_relaxed);
  }
  WaitState state() const {
    return static_cast<WaitState>(state_.load(std::memory_order_relaxed));
  }
  bool active() const { return active_.load(std::memory_order_relaxed); }
  uint64_t thread_slot() const { return thread_slot_; }

  /// Sampler-side copy. Takes the record mutex for the identity strings.
  ActivitySample Snap() const;

  /// Idle fast path for the sampler: one relaxed load and out when the
  /// record holds no lease — no mutex, no string copies. Returns whether
  /// `out` was filled.
  bool SnapIfActive(ActivitySample* out) const;

 private:
  friend class ActivityLease;

  std::atomic<uint8_t> state_{static_cast<uint8_t>(WaitState::kIdle)};
  std::atomic<bool> active_{false};
  const uint64_t thread_slot_;

  mutable std::mutex mu_;  // identity fields below; set once per lease
  uint64_t begin_ts_us_ = 0;
  std::string collection_;
  std::string access_path_;
  std::string op_;
  std::string query_;
  int shard_ = -1;
  int worker_ = -1;
  uint64_t query_id_ = 0;
};

/// Process-wide list of activity records, one per thread that ever
/// published work. Leaked like the other telemetry singletons.
class ActivityRegistry {
 public:
  static ActivityRegistry& Global();

  /// The calling thread's record, created (and registered) on first use;
  /// cached in a thread_local so the steady state is one pointer load.
  ActivityRecord* ForThisThread();

  /// Copies of every record, taken without holding the registry mutex
  /// across the per-record locking (the record list is copied first).
  std::vector<ActivitySample> Samples() const;

  /// Appends only the active records' samples to `out` — the sampler's
  /// per-tick path. Inactive records cost one relaxed load each and the
  /// caller's scratch vector is reused across ticks, so an idle engine
  /// pays no allocations and no string copies per tick.
  void AppendActiveSamples(std::vector<ActivitySample>* out) const;

  size_t record_count() const;
  /// Records currently holding a lease (active work in flight). O(1):
  /// leases keep a process-wide atomic count on Begin()/Release().
  size_t ActiveCount() const {
    return active_count_.load(std::memory_order_relaxed);
  }

  /// Parks the caller until a lease Begin()s somewhere (the 0 -> 1 active
  /// transition notifies), NotifyActivityWaiters() runs, or `timeout`
  /// elapses. This is the sampler's tickless-idle mode — same idea as the
  /// kernel's NO_HZ: an idle engine costs zero sampler wakeups instead of
  /// `hz` per second, and the first lease wakes sampling back up
  /// immediately, so no active time goes unsampled.
  void WaitForActivity(std::chrono::microseconds timeout);
  /// Wakes WaitForActivity parkers early (sampler shutdown).
  void NotifyActivityWaiters();

  /// Installed by the sampler (nullptr to clear): invoked after the
  /// 0 -> 1 active transition's notify, outside every registry lock. Lets
  /// the armed sampler spawn its thread on demand, so a process that
  /// never runs a query never carries a sampler thread — even the
  /// existence of one costs (glibc malloc drops its single-threaded fast
  /// path the moment a second thread appears).
  void SetActivationHook(void (*hook)());

 private:
  friend class ActivityLease;

  ActivityRegistry() = default;

  ActivityRecord* RegisterThread();
  /// Lease transitions for the inactive <-> active edge only (nested
  /// leases over an already-active record don't touch the count).
  void OnLeaseActivated();
  void OnLeaseDeactivated();

  mutable std::mutex mu_;  // guards records_ registration
  std::vector<ActivityRecord*> records_;  // leaked; pointers stable forever

  std::atomic<size_t> active_count_{0};
  std::mutex activity_mu_;  // pairs activity_cv_ with the count edges
  std::condition_variable activity_cv_;
  uint64_t poke_gen_ = 0;  // bumped by NotifyActivityWaiters
  std::atomic<void (*)()> activation_hook_{nullptr};
};

/// Move-only RAII lease over the calling thread's record: Begin() saves
/// the record's previous contents and publishes new ones (active, on-cpu);
/// Release()/destruction restores what was there before. The save/restore
/// makes nesting safe — a pool worker running a nested inline morsel
/// stacks a second lease over its first and unwinding re-publishes the
/// outer work — and guarantees that *every* exit path (early return,
/// error, operator destruction) unregisters, which is the ISSUE 7
/// satellite's no-dangle requirement.
class ActivityLease {
 public:
  ActivityLease() = default;
  ~ActivityLease() { Release(); }

  ActivityLease(ActivityLease&& other) noexcept { *this = std::move(other); }
  ActivityLease& operator=(ActivityLease&& other) noexcept;
  ActivityLease(const ActivityLease&) = delete;
  ActivityLease& operator=(const ActivityLease&) = delete;

  /// Publishes `collection`/`access_path`/`op`/`query` (+ shard/worker
  /// tags and the query-monitor id) on the calling thread's record and
  /// marks it active, on-cpu.
  static ActivityLease Begin(std::string collection, std::string access_path,
                             std::string op, std::string query,
                             int shard = -1, int worker = -1,
                             uint64_t query_id = 0);

  /// Restores the record's pre-Begin contents. Idempotent.
  void Release();

  bool engaged() const { return rec_ != nullptr; }

 private:
  ActivityRecord* rec_ = nullptr;
  // Saved pre-Begin contents, restored on Release().
  bool prev_active_ = false;
  WaitState prev_state_ = WaitState::kIdle;
  uint64_t prev_begin_ts_us_ = 0;
  std::string prev_collection_;
  std::string prev_access_path_;
  std::string prev_op_;
  std::string prev_query_;
  int prev_shard_ = -1;
  int prev_worker_ = -1;
  uint64_t prev_query_id_ = 0;
};

/// RAII wait-state flip at a blocking choke point: sets `s` on the calling
/// thread's record, restores the previous state on scope exit. Two relaxed
/// byte stores plus a cached thread_local pointer load.
class ScopedWaitState {
 public:
  explicit ScopedWaitState(WaitState s)
      : rec_(ActivityRegistry::Global().ForThisThread()),
        prev_(rec_->state()) {
    rec_->set_state(s);
  }
  ~ScopedWaitState() { rec_->set_state(prev_); }
  ScopedWaitState(const ScopedWaitState&) = delete;
  ScopedWaitState& operator=(const ScopedWaitState&) = delete;

 private:
  ActivityRecord* rec_;
  WaitState prev_;
};

#else  // FSDM_TELEMETRY_DISABLED

/// Compiled-out stubs: no records, no registry, no stores.
class ActivityRecord {
 public:
  void set_state(WaitState) {}
  WaitState state() const { return WaitState::kIdle; }
  bool active() const { return false; }
  ActivitySample Snap() const { return {}; }
  bool SnapIfActive(ActivitySample*) const { return false; }
};

class ActivityRegistry {
 public:
  static ActivityRegistry& Global() {
    static ActivityRegistry r;
    return r;
  }
  ActivityRecord* ForThisThread() { return &record_; }
  std::vector<ActivitySample> Samples() const { return {}; }
  void AppendActiveSamples(std::vector<ActivitySample>*) const {}
  size_t record_count() const { return 0; }
  size_t ActiveCount() const { return 0; }
  void WaitForActivity(std::chrono::microseconds) {}
  void NotifyActivityWaiters() {}
  void SetActivationHook(void (*)()) {}

 private:
  ActivityRecord record_;
};

class ActivityLease {
 public:
  ActivityLease() = default;
  static ActivityLease Begin(std::string, std::string, std::string,
                             std::string, int = -1, int = -1,
                             uint64_t = 0) {
    return {};
  }
  void Release() {}
  bool engaged() const { return false; }
};

class ScopedWaitState {
 public:
  explicit ScopedWaitState(WaitState) {}
};

#endif  // FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_ACTIVITY_H_
