#ifndef FSDM_TELEMETRY_LOG_H_
#define FSDM_TELEMETRY_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

/// Structured engine log (ISSUE 10 tentpole): the fifth observability
/// pillar. Where the flight recorder answers "what did the engine do, in
/// order", the log answers "what went WRONG, and why" — every lifecycle
/// and error path that used to fail silently (quarantine, WAL poisoning,
/// torn-tail truncation, degraded routing, fault fires) emits a
/// fixed-size structured record through the FSDM_LOG macro family.
///
/// Records land in per-thread rings modeled on the flight recorder's
/// (fixed capacity, overwrite-oldest, per-ring mutex for the
/// push/snapshot handoff, rings leak so cached pointers stay valid).
/// Unlike the recorder the log is ON by default: sites are rare (error
/// and lifecycle paths, never per-row), and the steady-state cost of a
/// suppressed site is one relaxed atomic load and a compare. The gate is
/// the level — FSDM_LOG_LEVEL (debug|info|warn|error|off, default info)
/// read once at first use, adjustable at runtime via SetLevel().
///
/// Each call site carries a STABLE NUMERIC EVENT ID (unique across the
/// tree, listed in README's "Log event reference" table and enforced by
/// scripts/check_log_events.py). Ids make records greppable across
/// message wording changes and give the per-event token-bucket rate
/// limiter its key: a looping failure (fsync erroring once per append)
/// cannot flush the ring or bloat a JSONL sink.
///
/// Exposed as the TELEMETRY$LOG SQL relation and captured into incident
/// bundles (incident.h). Under -DFSDM_TELEMETRY=OFF everything compiles
/// to empty inline stubs and FSDM_LOG vanishes.

namespace fsdm::telemetry {

enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // gate value only; records never carry it
};

/// "debug", "info", "warn", "error", "off".
const char* LogLevelName(LogLevel level);

/// FSDM_LOG_LEVEL environment variable, or `def` when unset/unparsable.
LogLevel LogLevelFromEnv(LogLevel def = LogLevel::kInfo);

/// One structured record. Fixed layout, no heap allocation: the component
/// must be a string literal (the ring keeps the pointer); the message and
/// arg texts are inline truncated copies, so dynamic strings are safe.
struct LogRecord {
  static constexpr size_t kMaxMessage = 103;  // plus the terminating NUL

  uint64_t ts_us = 0;  // MonotonicNowUs() clock, shared with the recorder
  uint32_t tid = 0;    // log-assigned small thread id
  LogLevel level = LogLevel::kInfo;
  uint16_t event_id = 0;      // stable id, unique per call site
  const char* component = "";  // static string ("collection", "wal", ...)
  char message[kMaxMessage + 1] = {};
  TraceArg args[2];

  void SetMessage(std::string_view m) {
    size_t n = m.size() < kMaxMessage ? m.size() : kMaxMessage;
    std::memcpy(message, m.data(), n);
    message[n] = '\0';
  }
  bool has_args() const { return args[0].key != nullptr; }
  /// {"k":v,...} rendering of the arg slots ("{}" when none).
  std::string ArgsJson() const;
  /// One JSON object (single line, no trailing newline) for the JSONL
  /// sink and the incident bundle "log" section.
  std::string ToJsonLine() const;
};

/// Value carrier for the optional FSDM_LOG args: built by LogNum/LogText,
/// copied into the record's TraceArg slots. Keys must be string literals.
struct LogArg {
  const char* key = nullptr;
  bool is_text = false;
  double number = 0;
  std::string_view text;
};

inline LogArg LogNum(const char* key, double v) {
  LogArg a;
  a.key = key;
  a.number = v;
  return a;
}

inline LogArg LogText(const char* key, std::string_view v) {
  LogArg a;
  a.key = key;
  a.is_text = true;
  a.text = v;
  return a;
}

#if !defined(FSDM_TELEMETRY_DISABLED)

/// Fixed-capacity ring of LogRecords for one thread. Owned by EngineLog
/// and never destroyed while the process lives (thread_local cached
/// pointers must stay valid across Reset()).
class LogRing {
 public:
  LogRing(uint32_t tid, size_t capacity) : tid_(tid), slots_(capacity) {}

  /// True when the push overwrote a live record (ring had wrapped).
  bool Push(const LogRecord& r) {
    std::lock_guard<std::mutex> lock(mu_);
    const bool overwrote = next_ >= slots_.size();
    slots_[next_ % slots_.size()] = r;
    ++next_;
    return overwrote;
  }

  uint32_t tid() const { return tid_; }
  size_t capacity() const { return slots_.size(); }
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_ > slots_.size() ? next_ - slots_.size() : 0;
  }

  /// Live records, oldest first.
  std::vector<LogRecord> Snapshot() const;
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    next_ = 0;
  }

 private:
  uint32_t tid_;
  mutable std::mutex mu_;  // push/snapshot handoff; uncontended per-thread
  std::vector<LogRecord> slots_;
  uint64_t next_ = 0;
};

class EngineLog {
 public:
  static EngineLog& Global();

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void SetLevel(LogLevel level) {
    level_.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
  }
  /// The macro front gate: one relaxed load + compare when suppressed.
  bool ShouldLog(LogLevel level) const {
    return static_cast<uint8_t>(level) >=
               level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kOff;
  }

  /// The macro back ends. `component` must be a string literal; `msg` may
  /// be dynamic (copied, truncated, into the record).
  void Emit(LogLevel level, const char* component, uint16_t event_id,
            std::string_view msg) {
    EmitImpl(level, component, event_id, msg, nullptr, nullptr);
  }
  void Emit(LogLevel level, const char* component, uint16_t event_id,
            std::string_view msg, const LogArg& a0) {
    EmitImpl(level, component, event_id, msg, &a0, nullptr);
  }
  void Emit(LogLevel level, const char* component, uint16_t event_id,
            std::string_view msg, const LogArg& a0, const LogArg& a1) {
    EmitImpl(level, component, event_id, msg, &a0, &a1);
  }

  /// The calling thread's ring, created (and registered) on first use.
  LogRing* RingForThisThread();

  /// Ring capacity for rings created after this call. Tests shrink it to
  /// exercise wrap-around.
  void SetRingCapacity(size_t records);
  size_t ring_capacity() const;

  /// Per-event-id token bucket: every id gets `burst` tokens refilled at
  /// `per_sec`; a site whose bucket is dry is counted dropped. Defaults:
  /// burst 64, 32/s.
  void SetRateLimit(double burst, double per_sec);

  /// Path for the optional JSONL sink; empty disables it. Admitted
  /// records are appended as they are emitted.
  void SetJsonlSink(std::string path);
  std::string jsonl_sink() const;

  /// All live records across threads, merged and sorted by (ts_us, tid).
  std::vector<LogRecord> Snapshot() const;
  /// The newest `n` of Snapshot() — the incident bundle's log slice.
  std::vector<LogRecord> SnapshotLast(size_t n) const;

  /// Records admitted into rings since process start (or Reset).
  uint64_t total_records() const {
    return total_records_.load(std::memory_order_relaxed);
  }
  /// Records lost: ring overwrites + rate-limiter rejections.
  uint64_t TotalDropped() const;
  uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }

  /// Clears ring contents, token buckets and counters (rings and cached
  /// pointers stay valid). Test hook.
  void Reset();

 private:
  EngineLog();

  void EmitImpl(LogLevel level, const char* component, uint16_t event_id,
                std::string_view msg, const LogArg* a0, const LogArg* a1);
  bool Admit(uint16_t event_id, uint64_t now_us);

  mutable std::mutex mu_;  // rings_ registration and snapshots
  std::vector<std::unique_ptr<LogRing>> rings_;
  size_t ring_capacity_ = 4096;
  uint32_t next_tid_ = 1;

  std::atomic<uint8_t> level_;
  std::atomic<uint64_t> total_records_{0};
  std::atomic<uint64_t> rate_limited_{0};

  struct TokenBucket {
    double tokens = 0;
    uint64_t last_us = 0;
  };
  mutable std::mutex bucket_mu_;
  std::unordered_map<uint16_t, TokenBucket> buckets_;
  double bucket_burst_ = 64;
  double bucket_per_sec_ = 32;

  mutable std::mutex sink_mu_;
  std::string jsonl_path_;
};

#else  // FSDM_TELEMETRY_DISABLED

class EngineLog {
 public:
  static EngineLog& Global() {
    static EngineLog log;
    return log;
  }
  LogLevel level() const { return LogLevel::kOff; }
  void SetLevel(LogLevel) {}
  bool ShouldLog(LogLevel) const { return false; }
  void Emit(LogLevel, const char*, uint16_t, std::string_view) {}
  void Emit(LogLevel, const char*, uint16_t, std::string_view,
            const LogArg&) {}
  void Emit(LogLevel, const char*, uint16_t, std::string_view, const LogArg&,
            const LogArg&) {}
  void SetRingCapacity(size_t) {}
  size_t ring_capacity() const { return 0; }
  void SetRateLimit(double, double) {}
  void SetJsonlSink(std::string) {}
  std::string jsonl_sink() const { return ""; }
  std::vector<LogRecord> Snapshot() const { return {}; }
  std::vector<LogRecord> SnapshotLast(size_t) const { return {}; }
  uint64_t total_records() const { return 0; }
  uint64_t TotalDropped() const { return 0; }
  uint64_t rate_limited() const { return 0; }
  void Reset() {}
};

/// Type-checks (and discards) FSDM_LOG arguments under
/// -DFSDM_TELEMETRY=OFF so call sites compile to nothing.
template <typename... Args>
inline void LogDiscard(Args&&...) {}

#endif  // FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry

#if !defined(FSDM_TELEMETRY_DISABLED)

/// FSDM_LOG(level, component, event_id, message [, arg0 [, arg1]]).
/// `component` must be a string literal; `event_id` a unique stable
/// integer literal (scripts/check_log_events.py enforces both uniqueness
/// and the README table entry); `message` may be any string expression —
/// it is only evaluated when the level gate passes. Optional args are
/// built with telemetry::LogNum / telemetry::LogText.
#define FSDM_LOG(level, component, event_id, ...)                        \
  do {                                                                   \
    if (::fsdm::telemetry::EngineLog::Global().ShouldLog(level)) {       \
      ::fsdm::telemetry::EngineLog::Global().Emit(                       \
          (level), (component), (event_id), __VA_ARGS__);                \
    }                                                                    \
  } while (0)

#else  // FSDM_TELEMETRY_DISABLED

#define FSDM_LOG(level, component, event_id, ...)                        \
  do {                                                                   \
    if (false) {                                                         \
      ::fsdm::telemetry::LogDiscard((level), (component), (event_id),    \
                                    __VA_ARGS__);                        \
    }                                                                    \
  } while (0)

#endif  // FSDM_TELEMETRY_DISABLED

#endif  // FSDM_TELEMETRY_LOG_H_
