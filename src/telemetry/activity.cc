#include "telemetry/activity.h"

#include "telemetry/trace_event.h"

namespace fsdm::telemetry {

const char* WaitStateName(WaitState s) {
  switch (s) {
    case WaitState::kIdle:
      return "idle";
    case WaitState::kOnCpu:
      return "on-cpu";
    case WaitState::kPoolQueueWait:
      return "pool-queue-wait";
    case WaitState::kLockWait:
      return "lock-wait";
    case WaitState::kFaultStall:
      return "fault-stall";
    case WaitState::kWalFsync:
      return "wal-fsync";
  }
  return "?";
}

const char* WaitClassName(WaitState s) {
  switch (s) {
    case WaitState::kIdle:
      return "idle";
    case WaitState::kOnCpu:
      return "cpu";
    case WaitState::kPoolQueueWait:
      return "scheduler";
    case WaitState::kLockWait:
      return "concurrency";
    case WaitState::kFaultStall:
      return "fault";
    case WaitState::kWalFsync:
      return "io";
  }
  return "?";
}

#if !defined(FSDM_TELEMETRY_DISABLED)

ActivitySample ActivityRecord::Snap() const {
  ActivitySample s;
  s.active = active();
  s.state = state();
  s.thread_slot = thread_slot_;
  std::lock_guard<std::mutex> lock(mu_);
  s.begin_ts_us = begin_ts_us_;
  s.collection = collection_;
  s.access_path = access_path_;
  s.op = op_;
  s.query = query_;
  s.shard = shard_;
  s.worker = worker_;
  s.query_id = query_id_;
  return s;
}

bool ActivityRecord::SnapIfActive(ActivitySample* out) const {
  if (!active()) return false;
  *out = Snap();
  // active_ may have flipped off between the check and the Snap(); the
  // snap itself carries the truth, so re-check what we actually copied.
  return out->active;
}

ActivityRegistry& ActivityRegistry::Global() {
  // Leaked like the other process-wide singletons: records outlive every
  // thread (including the sampler) during static destruction.
  static ActivityRegistry* registry = new ActivityRegistry();
  return *registry;
}

ActivityRecord* ActivityRegistry::ForThisThread() {
  thread_local ActivityRecord* rec = nullptr;
  if (rec == nullptr) rec = RegisterThread();
  return rec;
}

ActivityRecord* ActivityRegistry::RegisterThread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto* rec = new ActivityRecord(static_cast<uint64_t>(records_.size()));
  records_.push_back(rec);  // leaked; see class comment
  return rec;
}

std::vector<ActivitySample> ActivityRegistry::Samples() const {
  std::vector<ActivityRecord*> records;
  {
    std::lock_guard<std::mutex> lock(mu_);
    records = records_;
  }
  // Per-record locking happens outside the registry mutex so a lease
  // Begin()/Release() never waits on a full registry walk.
  std::vector<ActivitySample> out;
  out.reserve(records.size());
  for (const ActivityRecord* rec : records) out.push_back(rec->Snap());
  return out;
}

void ActivityRegistry::AppendActiveSamples(
    std::vector<ActivitySample>* out) const {
  // The walk stays under the registry mutex: per record it is one relaxed
  // load (the overwhelmingly common inactive case) and leases never take
  // this mutex, so nothing on the query path can block on it. Copying the
  // pointer list first — as Samples() does — would cost an allocation per
  // sampler tick.
  std::lock_guard<std::mutex> lock(mu_);
  for (const ActivityRecord* rec : records_) {
    ActivitySample s;
    if (rec->SnapIfActive(&s)) out->push_back(std::move(s));
  }
}

size_t ActivityRegistry::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void ActivityRegistry::OnLeaseActivated() {
  if (active_count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // 0 -> 1: wake a tickless-idle sampler. The empty critical section
    // orders the count edge against a parker that just evaluated its
    // predicate, so the notify can't be lost.
    { std::lock_guard<std::mutex> lock(activity_mu_); }
    activity_cv_.notify_all();
    void (*hook)() = activation_hook_.load(std::memory_order_acquire);
    if (hook != nullptr) hook();
  }
}

void ActivityRegistry::SetActivationHook(void (*hook)()) {
  activation_hook_.store(hook, std::memory_order_release);
}

void ActivityRegistry::OnLeaseDeactivated() {
  active_count_.fetch_sub(1, std::memory_order_relaxed);
}

void ActivityRegistry::WaitForActivity(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(activity_mu_);
  const uint64_t gen = poke_gen_;
  activity_cv_.wait_for(lock, timeout, [&] {
    return active_count_.load(std::memory_order_relaxed) > 0 ||
           poke_gen_ != gen;
  });
}

void ActivityRegistry::NotifyActivityWaiters() {
  {
    std::lock_guard<std::mutex> lock(activity_mu_);
    ++poke_gen_;
  }
  activity_cv_.notify_all();
}

ActivityLease& ActivityLease::operator=(ActivityLease&& other) noexcept {
  if (this == &other) return *this;
  Release();
  rec_ = other.rec_;
  prev_active_ = other.prev_active_;
  prev_state_ = other.prev_state_;
  prev_begin_ts_us_ = other.prev_begin_ts_us_;
  prev_collection_ = std::move(other.prev_collection_);
  prev_access_path_ = std::move(other.prev_access_path_);
  prev_op_ = std::move(other.prev_op_);
  prev_query_ = std::move(other.prev_query_);
  prev_shard_ = other.prev_shard_;
  prev_worker_ = other.prev_worker_;
  prev_query_id_ = other.prev_query_id_;
  other.rec_ = nullptr;
  return *this;
}

ActivityLease ActivityLease::Begin(std::string collection,
                                   std::string access_path, std::string op,
                                   std::string query, int shard, int worker,
                                   uint64_t query_id) {
  ActivityRecord* rec = ActivityRegistry::Global().ForThisThread();
  ActivityLease lease;
  lease.rec_ = rec;
  lease.prev_active_ = rec->active();
  lease.prev_state_ = rec->state();
  {
    std::lock_guard<std::mutex> lock(rec->mu_);
    lease.prev_begin_ts_us_ = rec->begin_ts_us_;
    lease.prev_collection_ = std::move(rec->collection_);
    lease.prev_access_path_ = std::move(rec->access_path_);
    lease.prev_op_ = std::move(rec->op_);
    lease.prev_query_ = std::move(rec->query_);
    lease.prev_shard_ = rec->shard_;
    lease.prev_worker_ = rec->worker_;
    lease.prev_query_id_ = rec->query_id_;
    rec->begin_ts_us_ = MonotonicNowUs();
    rec->collection_ = std::move(collection);
    rec->access_path_ = std::move(access_path);
    rec->op_ = std::move(op);
    rec->query_ = std::move(query);
    rec->shard_ = shard;
    rec->worker_ = worker;
    rec->query_id_ = query_id;
  }
  rec->active_.store(true, std::memory_order_relaxed);
  rec->set_state(WaitState::kOnCpu);
  if (!lease.prev_active_) ActivityRegistry::Global().OnLeaseActivated();
  return lease;
}

void ActivityLease::Release() {
  if (rec_ == nullptr) return;
  ActivityRecord* rec = rec_;
  rec_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(rec->mu_);
    rec->begin_ts_us_ = prev_begin_ts_us_;
    rec->collection_ = std::move(prev_collection_);
    rec->access_path_ = std::move(prev_access_path_);
    rec->op_ = std::move(prev_op_);
    rec->query_ = std::move(prev_query_);
    rec->shard_ = prev_shard_;
    rec->worker_ = prev_worker_;
    rec->query_id_ = prev_query_id_;
  }
  rec->active_.store(prev_active_, std::memory_order_relaxed);
  rec->set_state(prev_state_);
  if (!prev_active_) ActivityRegistry::Global().OnLeaseDeactivated();
}

#endif  // !FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry
