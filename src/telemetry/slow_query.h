#ifndef FSDM_TELEMETRY_SLOW_QUERY_H_
#define FSDM_TELEMETRY_SLOW_QUERY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

/// Slow-query log (ISSUE 4): when a routed query exceeds a threshold, the
/// router captures its rendered QueryTrace (EXPLAIN ANALYZE tree + router
/// candidate table) plus the flight-recorder slice covering its execution
/// into a bounded in-memory log. Exposed as the TELEMETRY$SLOW_QUERIES
/// SQL relation and, optionally, appended to a JSONL file sink.

namespace fsdm::telemetry {

struct SlowQueryRecord {
  uint64_t ts_us = 0;       // capture time, MonotonicNowUs() clock
  /// Query-monitor id (ISSUE 9): the id the query held in
  /// TELEMETRY$QUERY_MONITOR while in flight, cross-linking this record to
  /// ASH samples carrying the same id. 0 = pre-monitor record.
  uint64_t query_id = 0;
  std::string query;        // predicate/query description from the router
  std::string access_path;  // winning access path name
  uint64_t elapsed_us = 0;  // measured wall time of the routed plan
  uint64_t rows = 0;        // rows produced
  double est_rows = -1;     // router's cardinality estimate; -1 = none
  /// High-water MemoryTracker::CurrentBytes() observed while the plan
  /// drained (sampled at open, every 256 rows, and at close).
  uint64_t peak_mem_bytes = 0;
  std::string trace_text;   // rendered EXPLAIN ANALYZE (router + spans)
  std::string events_json;  // chrome-style JSON array of the trace slice
  uint64_t event_count = 0;

  /// One JSON object (single line) for the JSONL sink.
  std::string ToJsonLine() const;
};

/// Process-wide bounded log. Capacity evicts oldest; total_captured() keeps
/// counting so tests and TELEMETRY$METRICS can see evictions. Mutex-guarded:
/// with the ISSUE 6 worker pool, probes on different threads may capture
/// concurrently.
class SlowQueryLog {
 public:
  static SlowQueryLog& Global();

  /// Queries at or above this wall time get captured. Default 10ms, or the
  /// FSDM_SLOW_QUERY_US environment variable when set at first use.
  uint64_t threshold_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return threshold_us_;
  }
  void SetThresholdUs(uint64_t us) {
    std::lock_guard<std::mutex> lock(mu_);
    threshold_us_ = us;
  }

  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }
  void SetCapacity(size_t n);

  /// Path for the optional JSONL sink; empty disables it. Records are
  /// appended as they are captured.
  void SetJsonlSink(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    jsonl_path_ = std::move(path);
  }
  std::string jsonl_sink() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jsonl_path_;
  }

  void Record(SlowQueryRecord rec);

  std::vector<SlowQueryRecord> Snapshot() const;
  uint64_t total_captured() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_captured_;
  }
  void Clear();

 private:
  SlowQueryLog();

  mutable std::mutex mu_;
  std::deque<SlowQueryRecord> records_;
  size_t capacity_ = 32;
  uint64_t threshold_us_ = 10000;
  uint64_t total_captured_ = 0;
  std::string jsonl_path_;
};

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_SLOW_QUERY_H_
