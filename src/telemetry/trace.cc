#include "telemetry/trace.h"

#include <cstdio>

namespace fsdm::telemetry {

uint64_t OperatorSpan::RowsIn() const {
  uint64_t n = 0;
  for (const std::unique_ptr<OperatorSpan>& c : children) {
    n += c->rows_out.load(std::memory_order_relaxed);
  }
  return n;
}

std::unique_ptr<OperatorSpan> MakeSpan(std::string name, std::string detail) {
  auto span = std::make_unique<OperatorSpan>();
  span->name = std::move(name);
  span->detail = std::move(detail);
  return span;
}

namespace {

std::string FormatUs(double us) {
  char buf[48];
  if (us >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", us);
  }
  return buf;
}

}  // namespace

void RenderSpanTree(const OperatorSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  if (!span.detail.empty()) *out += " (" + span.detail + ")";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  rows_in=%llu rows_out=%llu time=",
                static_cast<unsigned long long>(span.RowsIn()),
                static_cast<unsigned long long>(
                    span.rows_out.load(std::memory_order_relaxed)));
  *out += buf;
  *out += FormatUs(span.elapsed_us);
  if (span.shard >= 0) {
    std::snprintf(buf, sizeof(buf), " [shard=%d worker=%d]", span.shard,
                  span.worker.load(std::memory_order_relaxed));
    *out += buf;
  }
  *out += "\n";
  for (const std::unique_ptr<OperatorSpan>& c : span.children) {
    RenderSpanTree(*c, depth + 1, out);
  }
}

std::string RouterDecision::Render() const {
  std::string out = "access path: " + winner + " -- " + reason + "\n";
  out += "candidates:\n";
  for (const RouterCandidate& c : candidates) {
    out += c.chosen ? "  [x] " : (c.eligible ? "  [~] " : "  [ ] ");
    out += c.access_path;
    if (out.back() != ' ') out += ' ';
    // Pad to a fixed column so the details line up.
    size_t line_start = out.rfind('\n') + 1;
    size_t width = out.size() - line_start;
    if (width < 26) out.append(26 - width, ' ');
    if (c.est_cost_us >= 0) {
      char est[64];
      std::snprintf(est, sizeof(est), "est %.1f rows / %.2f us -- ",
                    c.est_rows, c.est_cost_us);
      out += est;
    }
    out += c.detail;
    out += "\n";
  }
  return out;
}

std::string QueryTrace::Render() const {
  std::string out = "EXPLAIN ANALYZE\n";
  out += decision.Render();
  if (decision.est_out_rows >= 0 && root != nullptr) {
    // Estimated-vs-actual cardinality: the root span's rows_out is the
    // plan's final output (0 until the plan has been drained).
    char line[96];
    std::snprintf(line, sizeof(line),
                  "estimated rows: %.1f  actual rows: %llu\n",
                  decision.est_out_rows,
                  static_cast<unsigned long long>(
                      root->rows_out.load(std::memory_order_relaxed)));
    out += line;
  }
  if (root != nullptr) {
    out += "plan:\n";
    RenderSpanTree(*root, 1, &out);
  }
  return out;
}

}  // namespace fsdm::telemetry
