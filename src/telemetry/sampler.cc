#include "telemetry/sampler.h"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "telemetry/flight_recorder.h"
#include "telemetry/log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

namespace fsdm::telemetry {

AshAggregate AggregateAsh(const std::vector<AshSample>& samples,
                          uint64_t since_us, uint64_t until_us) {
  AshAggregate agg;
  for (const AshSample& s : samples) {
    if (s.ts_us <= since_us) continue;
    if (until_us != 0 && s.ts_us > until_us) continue;
    ++agg.db_samples;
    const size_t state = static_cast<size_t>(s.state);
    agg.by_state[state] += 1;
    const std::string& coll = s.collection.empty() ? "(none)" : s.collection;
    auto [it, inserted] = agg.by_collection.try_emplace(coll);
    if (inserted) it->second.fill(0);
    it->second[state] += 1;
    if (!s.query.empty()) agg.by_query[s.query] += 1;
    if (s.shard >= 0) agg.by_shard[s.shard] += 1;
  }
  return agg;
}

#if !defined(FSDM_TELEMETRY_DISABLED)

ActivitySampler& ActivitySampler::Global() {
  // Leaked like WorkerPool: the sampler thread must never outlive its
  // ring/registry during static destruction, so neither is destroyed.
  static ActivitySampler* sampler = new ActivitySampler();
  return *sampler;
}

double ActivitySampler::HzFromEnv() {
  const char* env = std::getenv("FSDM_ASH_HZ");
  if (env == nullptr || env[0] == '\0') return 1000.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(v > 0)) return 0.0;
  return v > 10000.0 ? 10000.0 : (v < 1.0 ? 1.0 : v);
}

bool ActivitySampler::Start() {
  const double hz = HzFromEnv();
  if (hz <= 0) return false;
  std::lock_guard<std::mutex> lock(ctl_mu_);
  if (running_) return false;
  // Register the sampler's own metrics on the caller's thread, before the
  // sampler thread exists: its ticks then only touch pre-existing (and
  // individually thread-safe) handles, never inserting into the registry
  // maps while another thread iterates them.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("fsdm_ash_ticks_total");
  registry.GetCounter("fsdm_ash_db_samples_total");
  registry.GetGauge("fsdm_ash_active_sessions");
  registry.GetGauge("fsdm_ash_sampler_hz");
  stop_requested_.store(false, std::memory_order_relaxed);
  hz_ = hz;
  running_ = true;
  // Lazy thread: the first lease activation spawns it via this hook, so
  // a workload that never queries (fig7's insert loop) never pays for a
  // second thread's existence. When work is already in flight at arm
  // time, spawn right away — there will be no 0 -> 1 edge to catch.
  ActivityRegistry::Global().SetActivationHook(
      +[] { ActivitySampler::Global().EnsureThread(); });
  if (ActivityRegistry::Global().ActiveCount() > 0 && !thread_.joinable()) {
    thread_ = std::thread([this, hz] { RunLoop(hz); });
  }
  FSDM_GAUGE_SET("fsdm_ash_sampler_hz", hz);
  FSDM_LOG(LogLevel::kInfo, "sampler", 6001, "activity sampler armed",
           LogNum("hz", hz));
  return true;
}

void ActivitySampler::EnsureThread() {
  std::lock_guard<std::mutex> lock(ctl_mu_);
  if (!running_ || thread_.joinable()) return;
  const double hz = hz_;
  thread_ = std::thread([this, hz] { RunLoop(hz); });
}

void ActivitySampler::Stop() {
  std::lock_guard<std::mutex> lock(ctl_mu_);
  if (!running_) return;
  ActivityRegistry::Global().SetActivationHook(nullptr);
  {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  stop_cv_.notify_all();
  // The thread may be parked in tickless idle on the registry's cv.
  ActivityRegistry::Global().NotifyActivityWaiters();
  if (thread_.joinable()) thread_.join();
  running_ = false;
  FSDM_GAUGE_SET("fsdm_ash_sampler_hz", 0);
}

bool ActivitySampler::running() const {
  std::lock_guard<std::mutex> lock(ctl_mu_);
  return running_;
}

double ActivitySampler::hz() const {
  std::lock_guard<std::mutex> lock(ctl_mu_);
  return hz_;
}

void ActivitySampler::RunLoop(double hz) {
  const auto period = std::chrono::duration<double>(1.0 / hz);
  ActivityRegistry& registry = ActivityRegistry::Global();
  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed)) return;
    if (registry.ActiveCount() == 0) {
      // Tickless idle (the kernel's NO_HZ idea): with no lease held, a
      // tick would retain nothing, so park instead of burning `hz`
      // wakeups per second — on a busy single-core host the wakeups
      // alone cost more than the sampling. The first Begin() notifies,
      // so no active time goes unsampled; the timeout only bounds how
      // stale the stop check can get. Rate limiting keeps the park log
      // from flooding the ring on an idle process.
      FSDM_LOG(LogLevel::kDebug, "sampler", 6002,
               "sampler parked: no active sessions");
      registry.WaitForActivity(std::chrono::microseconds(100000));
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stop_cv_.wait_for(lock, period, [&] {
            return stop_requested_.load(std::memory_order_relaxed);
          })) {
        return;
      }
    }
    SampleOnce();
  }
}

size_t ActivitySampler::SampleOnce() {
  const uint64_t now = MonotonicNowUs();
  std::lock_guard<std::mutex> sample_lock(sample_mu_);
  // Active-only fast path: an idle engine's tick is one relaxed load per
  // record plus the tick counter — no allocation, no string copies.
  scratch_.clear();
  ActivityRegistry::Global().AppendActiveSamples(&scratch_);
  const size_t active = scratch_.size();
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ++ticks_;
    for (ActivitySample& s : scratch_) {
      ++db_samples_total_;
      if (ring_.size() < ring_capacity_) ring_.resize(ring_capacity_);
      AshSample& slot = ring_[ring_next_ % ring_capacity_];
      ++ring_next_;
      if (ring_size_ < ring_capacity_) ++ring_size_;
      slot.ts_us = now;
      slot.thread_slot = s.thread_slot;
      slot.state = s.state;
      slot.collection = std::move(s.collection);
      slot.access_path = std::move(s.access_path);
      slot.op = std::move(s.op);
      slot.query = std::move(s.query);
      slot.shard = s.shard;
      slot.worker = s.worker;
      slot.query_id = s.query_id;
    }
  }
  // Counters after the ring unlock: a first-use GetCounter takes the
  // registry map mutex, which itself flips this thread's wait state.
  FSDM_COUNT("fsdm_ash_ticks_total", 1);
  if (active > 0) {
    FSDM_COUNT("fsdm_ash_db_samples_total", active);
  }
  // Publish the gauge and trace-counter series only on change: a quiet
  // engine's 1 kHz ticks would otherwise spam the armed flight recorder
  // with identical zero samples.
  if (active != last_published_active_) {
    last_published_active_ = active;
    FSDM_GAUGE_SET("fsdm_ash_active_sessions", active);
    FSDM_TRACE_COUNTER("ash", "ash.active_sessions", active);
  }
  return active;
}

std::vector<AshSample> ActivitySampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  std::vector<AshSample> out;
  out.reserve(ring_size_);
  const size_t start = ring_next_ - ring_size_;
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(start + i) % ring_capacity_]);
  }
  return out;
}

AshAggregate ActivitySampler::Aggregate() const {
  return AggregateAsh(Snapshot(), /*since_us=*/0, /*until_us=*/0);
}

uint64_t ActivitySampler::ticks() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ticks_;
}

uint64_t ActivitySampler::db_samples_total() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return db_samples_total_;
}

void ActivitySampler::SetRingCapacity(size_t samples) {
  if (samples == 0) samples = 1;
  std::lock_guard<std::mutex> lock(ring_mu_);
  // Rebuild oldest-first so the new ring keeps the newest samples.
  std::vector<AshSample> live;
  live.reserve(ring_size_);
  const size_t start = ring_next_ - ring_size_;
  for (size_t i = 0; i < ring_size_; ++i) {
    live.push_back(std::move(ring_[(start + i) % ring_capacity_]));
  }
  if (live.size() > samples) {
    live.erase(live.begin(),
               live.begin() + static_cast<ptrdiff_t>(live.size() - samples));
  }
  ring_capacity_ = samples;
  ring_.assign(samples, AshSample{});
  for (size_t i = 0; i < live.size(); ++i) ring_[i] = std::move(live[i]);
  ring_size_ = live.size();
  ring_next_ = live.size();
}

void ActivitySampler::ClearRing() {
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_size_ = 0;
  ring_next_ = 0;
}

#endif  // !FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry
