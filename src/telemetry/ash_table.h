#ifndef FSDM_TELEMETRY_ASH_TABLE_H_
#define FSDM_TELEMETRY_ASH_TABLE_H_

#include "rdbms/executor.h"

namespace fsdm::telemetry {

/// Active Session History as a relation (ISSUE 7): one row per retained
/// sampler hit on an active record. Schema: (TS_US, THREAD, WAIT_STATE,
/// WAIT_CLASS, COLLECTION, ACCESS_PATH, OP, QUERY, QUERY_ID, SHARD,
/// WORKER) — SHARD/WORKER are NULL off the morsel-parallel path,
/// COLLECTION/QUERY NULL when the sampled work carried none, QUERY_ID
/// (ISSUE 9) the routed query id cross-linking into
/// TELEMETRY$QUERY_MONITOR and TELEMETRY$SLOW_QUERIES, NULL off the
/// routed path. Empty under -DFSDM_TELEMETRY=OFF (the sampler is
/// compiled out).
inline constexpr const char* kAshTableName = "TELEMETRY$ASH";
rdbms::OperatorPtr AshScan();

/// Workload repository snapshots as a relation (ISSUE 7). Schema:
/// (SNAP_ID, TS_US, LABEL, SAMPLER_TICKS, DB_SAMPLES, CPU_PCT,
/// TOP_WAIT_CLASS, TOP_WAIT_PCT, TOP_QUERY, TOP_QUERY_SAMPLES,
/// SHARD_SKEW, MEM_BYTES, MEM_PEAK_BYTES) — the percentage/top columns
/// are NULL when the snapshot's ASH window caught no samples of the
/// relevant kind; the MEM_* columns (ISSUE 9) are the memory tracker's
/// refreshed total and process high-water at the tick.
inline constexpr const char* kSnapshotsTableName = "TELEMETRY$SNAPSHOTS";
rdbms::OperatorPtr SnapshotsScan();

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_ASH_TABLE_H_
