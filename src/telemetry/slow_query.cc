#include "telemetry/slow_query.h"

#include <cstdlib>
#include <fstream>

#include "telemetry/activity.h"
#include "telemetry/telemetry.h"

namespace fsdm::telemetry {

std::string SlowQueryRecord::ToJsonLine() const {
  std::string out = "{\"ts_us\":";
  AppendJsonNumber(&out, static_cast<double>(ts_us));
  if (query_id != 0) {
    out += ",\"query_id\":";
    AppendJsonNumber(&out, static_cast<double>(query_id));
  }
  out += ",\"query\":\"" + JsonEscape(query) + "\"";
  out += ",\"access_path\":\"" + JsonEscape(access_path) + "\"";
  out += ",\"elapsed_us\":";
  AppendJsonNumber(&out, static_cast<double>(elapsed_us));
  out += ",\"rows\":";
  AppendJsonNumber(&out, static_cast<double>(rows));
  if (est_rows >= 0) {
    out += ",\"est_rows\":";
    AppendJsonNumber(&out, est_rows);
  }
  out += ",\"peak_mem_bytes\":";
  AppendJsonNumber(&out, static_cast<double>(peak_mem_bytes));
  out += ",\"event_count\":";
  AppendJsonNumber(&out, static_cast<double>(event_count));
  out += ",\"trace\":\"" + JsonEscape(trace_text) + "\"";
  // events_json is already a JSON array (or empty when tracing was off).
  out += ",\"events\":" + (events_json.empty() ? std::string("[]")
                                               : events_json);
  out += "}";
  return out;
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

SlowQueryLog::SlowQueryLog() {
  if (const char* env = std::getenv("FSDM_SLOW_QUERY_US")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') threshold_us_ = v;
  }
}

void SlowQueryLog::SetCapacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n == 0 ? 1 : n;
  while (records_.size() > capacity_) records_.pop_front();
}

void SlowQueryLog::Record(SlowQueryRecord rec) {
  FSDM_COUNT("fsdm_slow_queries_total", 1);
  ScopedWaitState wait(WaitState::kLockWait);
  std::lock_guard<std::mutex> lock(mu_);
  if (!jsonl_path_.empty()) {
    std::ofstream f(jsonl_path_, std::ios::app);
    if (f.is_open()) f << rec.ToJsonLine() << "\n";
  }
  records_.push_back(std::move(rec));
  ++total_captured_;
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  ScopedWaitState wait(WaitState::kLockWait);
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryRecord>(records_.begin(), records_.end());
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  total_captured_ = 0;
}

}  // namespace fsdm::telemetry
