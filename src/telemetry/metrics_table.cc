#include "telemetry/metrics_table.h"

#include <memory>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/slow_query.h"
#include "telemetry/telemetry.h"

namespace fsdm::telemetry {

namespace {

class MetricsScanOp final : public rdbms::Operator {
 public:
  MetricsScanOp() {
    schema_ = rdbms::Schema({"NAME", "KIND", "VALUE", "COUNT", "SUM", "MIN",
                             "MAX", "P50", "P95", "P99"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    const MetricsRegistry& reg = MetricsRegistry::Global();
    for (const auto& [name, c] : reg.counters()) {
      rdbms::Row row = {Value::String(name), Value::String("counter"),
                        Value::Int64(static_cast<int64_t>(c->value()))};
      row.resize(schema_.size(), Value::Null());
      rows_.push_back(std::move(row));
    }
    for (const auto& [name, g] : reg.gauges()) {
      rdbms::Row row = {Value::String(name), Value::String("gauge"),
                        Value::Double(g->value())};
      row.resize(schema_.size(), Value::Null());
      rows_.push_back(std::move(row));
    }
    for (const auto& [name, h] : reg.histograms()) {
      rows_.push_back({Value::String(name), Value::String("histogram"),
                       Value::Null(),
                       Value::Int64(static_cast<int64_t>(h->count())),
                       Value::Double(h->sum()), Value::Double(h->min()),
                       Value::Double(h->max()), Value::Double(h->Percentile(50)),
                       Value::Double(h->Percentile(95)),
                       Value::Double(h->Percentile(99))});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class EventsScanOp final : public rdbms::Operator {
 public:
  EventsScanOp() {
    schema_ = rdbms::Schema(
        {"TS_US", "THREAD", "CATEGORY", "NAME", "PHASE", "DUR_US", "ARGS"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const TraceEvent& e : FlightRecorder::Global().Snapshot()) {
      const char phase = static_cast<char>(e.phase);
      rows_.push_back(
          {Value::Int64(static_cast<int64_t>(e.ts_us)),
           Value::Int64(static_cast<int64_t>(e.tid)),
           Value::String(e.category), Value::String(e.name),
           Value::String(std::string(1, phase)),
           e.phase == TracePhase::kSpanEnd
               ? Value::Int64(static_cast<int64_t>(e.dur_us))
               : Value::Null(),
           e.has_args() ? Value::String(e.ArgsJson()) : Value::Null()});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class SlowQueriesScanOp final : public rdbms::Operator {
 public:
  SlowQueriesScanOp() {
    schema_ = rdbms::Schema({"TS_US", "QUERY", "ACCESS_PATH", "ELAPSED_US",
                             "ROWS", "EST_ROWS", "EVENT_COUNT", "TRACE"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const SlowQueryRecord& r : SlowQueryLog::Global().Snapshot()) {
      rows_.push_back({Value::Int64(static_cast<int64_t>(r.ts_us)),
                       Value::String(r.query), Value::String(r.access_path),
                       Value::Int64(static_cast<int64_t>(r.elapsed_us)),
                       Value::Int64(static_cast<int64_t>(r.rows)),
                       r.est_rows >= 0 ? Value::Double(r.est_rows)
                                       : Value::Null(),
                       Value::Int64(static_cast<int64_t>(r.event_count)),
                       Value::String(r.trace_text)});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr MetricsScan() { return std::make_unique<MetricsScanOp>(); }

rdbms::OperatorPtr EventsScan() { return std::make_unique<EventsScanOp>(); }

rdbms::OperatorPtr SlowQueriesScan() {
  return std::make_unique<SlowQueriesScanOp>();
}

}  // namespace fsdm::telemetry
