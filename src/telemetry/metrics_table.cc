#include "telemetry/metrics_table.h"

#include <memory>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace fsdm::telemetry {

namespace {

class MetricsScanOp final : public rdbms::Operator {
 public:
  MetricsScanOp() {
    schema_ = rdbms::Schema({"NAME", "KIND", "VALUE", "COUNT", "SUM", "MIN",
                             "MAX", "P50", "P95", "P99"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    const MetricsRegistry& reg = MetricsRegistry::Global();
    for (const auto& [name, c] : reg.counters()) {
      rdbms::Row row = {Value::String(name), Value::String("counter"),
                        Value::Int64(static_cast<int64_t>(c->value()))};
      row.resize(schema_.size(), Value::Null());
      rows_.push_back(std::move(row));
    }
    for (const auto& [name, g] : reg.gauges()) {
      rdbms::Row row = {Value::String(name), Value::String("gauge"),
                        Value::Double(g->value())};
      row.resize(schema_.size(), Value::Null());
      rows_.push_back(std::move(row));
    }
    for (const auto& [name, h] : reg.histograms()) {
      rows_.push_back({Value::String(name), Value::String("histogram"),
                       Value::Null(),
                       Value::Int64(static_cast<int64_t>(h->count())),
                       Value::Double(h->sum()), Value::Double(h->min()),
                       Value::Double(h->max()), Value::Double(h->Percentile(50)),
                       Value::Double(h->Percentile(95)),
                       Value::Double(h->Percentile(99))});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr MetricsScan() { return std::make_unique<MetricsScanOp>(); }

}  // namespace fsdm::telemetry
