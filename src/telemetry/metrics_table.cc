#include "telemetry/metrics_table.h"

#include <memory>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/query_monitor.h"
#include "telemetry/slow_query.h"
#include "telemetry/telemetry.h"

namespace fsdm::telemetry {

namespace {

class MetricsScanOp final : public rdbms::Operator {
 public:
  MetricsScanOp() {
    schema_ = rdbms::Schema({"NAME", "KIND", "VALUE", "COUNT", "SUM", "MIN",
                             "MAX", "P50", "P95", "P99"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    const MetricsRegistry& reg = MetricsRegistry::Global();
    for (const auto& [name, c] : reg.counters()) {
      rdbms::Row row = {Value::String(name), Value::String("counter"),
                        Value::Int64(static_cast<int64_t>(c->value()))};
      row.resize(schema_.size(), Value::Null());
      rows_.push_back(std::move(row));
    }
    for (const auto& [name, g] : reg.gauges()) {
      rdbms::Row row = {Value::String(name), Value::String("gauge"),
                        Value::Double(g->value())};
      row.resize(schema_.size(), Value::Null());
      rows_.push_back(std::move(row));
    }
    for (const auto& [name, h] : reg.histograms()) {
      rows_.push_back({Value::String(name), Value::String("histogram"),
                       Value::Null(),
                       Value::Int64(static_cast<int64_t>(h->count())),
                       Value::Double(h->sum()), Value::Double(h->min()),
                       Value::Double(h->max()), Value::Double(h->Percentile(50)),
                       Value::Double(h->Percentile(95)),
                       Value::Double(h->Percentile(99))});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class EventsScanOp final : public rdbms::Operator {
 public:
  EventsScanOp() {
    schema_ = rdbms::Schema(
        {"TS_US", "THREAD", "CATEGORY", "NAME", "PHASE", "DUR_US", "ARGS"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const TraceEvent& e : FlightRecorder::Global().Snapshot()) {
      const char phase = static_cast<char>(e.phase);
      rows_.push_back(
          {Value::Int64(static_cast<int64_t>(e.ts_us)),
           Value::Int64(static_cast<int64_t>(e.tid)),
           Value::String(e.category), Value::String(e.name),
           Value::String(std::string(1, phase)),
           e.phase == TracePhase::kSpanEnd
               ? Value::Int64(static_cast<int64_t>(e.dur_us))
               : Value::Null(),
           e.has_args() ? Value::String(e.ArgsJson()) : Value::Null()});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class SlowQueriesScanOp final : public rdbms::Operator {
 public:
  SlowQueriesScanOp() {
    schema_ = rdbms::Schema({"TS_US", "QUERY_ID", "QUERY", "ACCESS_PATH",
                             "ELAPSED_US", "ROWS", "EST_ROWS",
                             "PEAK_MEM_BYTES", "EVENT_COUNT", "TRACE"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const SlowQueryRecord& r : SlowQueryLog::Global().Snapshot()) {
      rows_.push_back({Value::Int64(static_cast<int64_t>(r.ts_us)),
                       r.query_id != 0
                           ? Value::Int64(static_cast<int64_t>(r.query_id))
                           : Value::Null(),
                       Value::String(r.query), Value::String(r.access_path),
                       Value::Int64(static_cast<int64_t>(r.elapsed_us)),
                       Value::Int64(static_cast<int64_t>(r.rows)),
                       r.est_rows >= 0 ? Value::Double(r.est_rows)
                                       : Value::Null(),
                       Value::Int64(static_cast<int64_t>(r.peak_mem_bytes)),
                       Value::Int64(static_cast<int64_t>(r.event_count)),
                       Value::String(r.trace_text)});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class QueryMonitorScanOp final : public rdbms::Operator {
 public:
  QueryMonitorScanOp() {
    schema_ = rdbms::Schema({"QUERY_ID", "COLLECTION", "QUERY", "ACCESS_PATH",
                             "OPERATOR", "DEPTH", "SHARD", "WORKER", "STATE",
                             "ROWS_OUT", "EST_ROWS", "ELAPSED_US"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const MonitoredQuery& q : QueryMonitor::Global().Snapshot()) {
      // Query summary row: OPERATOR/DEPTH/SHARD/WORKER NULL.
      rows_.push_back({Value::Int64(static_cast<int64_t>(q.query_id)),
                       Value::String(q.collection), Value::String(q.query),
                       Value::String(q.access_path), Value::Null(),
                       Value::Null(), Value::Null(), Value::Null(),
                       Value::String("open"),
                       Value::Int64(static_cast<int64_t>(q.rows_out)),
                       q.est_rows >= 0 ? Value::Double(q.est_rows)
                                       : Value::Null(),
                       Value::Int64(static_cast<int64_t>(q.elapsed_us))});
      for (const OperatorProgress& op : q.operators) {
        std::string name = op.name;
        if (!op.detail.empty()) name += "(" + op.detail + ")";
        rows_.push_back(
            {Value::Int64(static_cast<int64_t>(q.query_id)),
             Value::String(q.collection), Value::Null(), Value::Null(),
             Value::String(std::move(name)), Value::Int64(op.depth),
             op.shard >= 0 ? Value::Int64(op.shard) : Value::Null(),
             op.worker >= 0 ? Value::Int64(op.worker) : Value::Null(),
             Value::String(OperatorLiveStateName(op.state)),
             Value::Int64(static_cast<int64_t>(op.rows_out)), Value::Null(),
             Value::Int64(static_cast<int64_t>(op.elapsed_us))});
      }
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class MemoryScanOp final : public rdbms::Operator {
 public:
  MemoryScanOp() {
    schema_ =
        rdbms::Schema({"SUBSYSTEM", "COLLECTION", "BYTES", "PEAK_BYTES"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    // Poll the reporters so BYTES reflects the moment of the scan, not the
    // last incidental refresh.
    MemoryTracker::Global().Refresh();
    for (const MemoryTracker::Entry& e : MemoryTracker::Global().Entries()) {
      rows_.push_back({Value::String(MemSubsystemName(e.subsystem)),
                       Value::String(e.collection),
                       Value::Int64(static_cast<int64_t>(e.bytes)),
                       Value::Int64(static_cast<int64_t>(e.peak_bytes))});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr MetricsScan() { return std::make_unique<MetricsScanOp>(); }

rdbms::OperatorPtr EventsScan() { return std::make_unique<EventsScanOp>(); }

rdbms::OperatorPtr SlowQueriesScan() {
  return std::make_unique<SlowQueriesScanOp>();
}

rdbms::OperatorPtr QueryMonitorScan() {
  return std::make_unique<QueryMonitorScanOp>();
}

rdbms::OperatorPtr MemoryScan() { return std::make_unique<MemoryScanOp>(); }

}  // namespace fsdm::telemetry
