#ifndef FSDM_TELEMETRY_QUERY_MONITOR_H_
#define FSDM_TELEMETRY_QUERY_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/trace.h"

/// Live query monitor (ISSUE 9 tentpole, V$SQL_MONITOR-style): every routed
/// plan registers here when its probe opens and unregisters when it closes,
/// so a concurrent session can ask "what is running right now and how far
/// along is it". Per-operator progress comes from the OperatorSpan tree's
/// relaxed-atomic live fields (rows_out / live_state / live_open_ts_us),
/// which the draining thread updates anyway for EXPLAIN ANALYZE — the
/// monitor adds zero cost to the drain path beyond the existing span
/// bumps.
///
/// Lifetime: Snapshot() walks the registered span trees *under the
/// registry mutex*, and RoutedQueryProbe unregisters (same mutex) before
/// the RoutedPlan — and with it the spans — can be destroyed. A snapshot
/// therefore never dereferences a freed span, and is a deep copy: callers
/// hold no pointers into live plans.
///
/// Under -DFSDM_TELEMETRY=OFF the monitor compiles to inline no-op stubs
/// (query ids still allocate so slow-query records stay correlated).

namespace fsdm::telemetry {

/// One operator's progress inside a monitored query, flattened pre-order.
struct OperatorProgress {
  std::string name;
  std::string detail;
  int depth = 0;
  int shard = -1;
  int worker = -1;
  uint8_t state = OperatorSpan::kPending;  // OperatorSpan::LiveState
  uint64_t rows_out = 0;
  /// Inclusive wall time: now - open timestamp while kOpen, the final
  /// stamped time once kDone, 0 while kPending.
  uint64_t elapsed_us = 0;
};

const char* OperatorLiveStateName(uint8_t state);

/// Deep copy of one in-flight query, as TELEMETRY$QUERY_MONITOR renders it.
struct MonitoredQuery {
  uint64_t query_id = 0;
  std::string collection;
  std::string query;
  std::string access_path;
  double est_rows = -1;
  uint64_t open_ts_us = 0;
  uint64_t elapsed_us = 0;  // since open, as of the snapshot
  uint64_t rows_out = 0;    // root operator's emitted rows so far
  std::vector<OperatorProgress> operators;
};

#if !defined(FSDM_TELEMETRY_DISABLED)

class QueryMonitor {
 public:
  static QueryMonitor& Global();

  /// Process-wide monotonically increasing query id (never 0). Allocated
  /// at route time so shard activity leases and ASH samples can carry the
  /// id before the probe opens.
  uint64_t AllocateQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Registers an in-flight query. `root` must stay valid until the
  /// matching Unregister (the probe guarantees this: it unregisters in
  /// Close() and again defensively in its destructor). Re-registering an
  /// id (a plan drained twice) replaces the stale entry.
  void Register(uint64_t query_id, std::string collection, std::string query,
                std::string access_path, double est_rows,
                const OperatorSpan* root);
  void Unregister(uint64_t query_id);

  /// Deep-copies every in-flight query, reading per-operator progress from
  /// the span atomics. Safe against concurrent drains and unregistration.
  std::vector<MonitoredQuery> Snapshot() const;

  size_t InFlightCount() const;

 private:
  QueryMonitor() = default;

  struct InFlight {
    uint64_t query_id = 0;
    std::string collection;
    std::string query;
    std::string access_path;
    double est_rows = -1;
    uint64_t open_ts_us = 0;
    const OperatorSpan* root = nullptr;
  };

  std::atomic<uint64_t> next_query_id_{0};
  mutable std::mutex mu_;
  std::vector<InFlight> in_flight_;
};

#else  // FSDM_TELEMETRY_DISABLED

class QueryMonitor {
 public:
  static QueryMonitor& Global() {
    static QueryMonitor m;
    return m;
  }
  uint64_t AllocateQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void Register(uint64_t, std::string, std::string, std::string, double,
                const OperatorSpan*) {}
  void Unregister(uint64_t) {}
  std::vector<MonitoredQuery> Snapshot() const { return {}; }
  size_t InFlightCount() const { return 0; }

 private:
  std::atomic<uint64_t> next_query_id_{0};
};

#endif  // FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_QUERY_MONITOR_H_
