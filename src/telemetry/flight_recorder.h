#ifndef FSDM_TELEMETRY_FLIGHT_RECORDER_H_
#define FSDM_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

/// Engine flight recorder (ISSUE 4 tentpole): always-on, bounded-memory
/// recording of what the engine did and in what order. Each thread writes
/// TraceEvents into its own fixed-capacity ring; when a ring fills, the
/// oldest events are overwritten (dropped, never torn — a slot is either
/// the old event or the new one). Instrumentation sites use the
/// FSDM_TRACE_* macros below, which cache the thread's ring pointer in a
/// function-local thread_local so the armed steady-state cost is a branch,
/// a clock read, and a struct store.
///
/// The recorder starts DISARMED: macros cost one predictable branch until
/// FlightRecorder::Global().Arm() flips them live. Under
/// -DFSDM_TELEMETRY=OFF the macros compile to nothing and armed() is a
/// constant false.
///
/// Readers (Chrome exporter, TELEMETRY$EVENTS, slow-query capture) take a
/// merged timestamp-sorted snapshot under the registration mutex. Since
/// ISSUE 6 the worker pool drains shard morsels concurrently, so each
/// ring carries its own mutex for the push/snapshot handoff: writes stay
/// per-thread (no contention in steady state — each worker owns its
/// ring), and a snapshot taken mid-query sees each ring at a consistent
/// event boundary.

namespace fsdm::telemetry {

/// Fixed-capacity ring of TraceEvents for one thread. Owned by the
/// FlightRecorder and never destroyed while the process lives, so the
/// thread_local cached pointers in the macros stay valid across Reset().
class ThreadRing {
 public:
  ThreadRing(uint32_t tid, size_t capacity);

  void Push(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[next_ % slots_.size()] = e;
    ++next_;
  }

  uint32_t tid() const { return tid_; }
  size_t capacity() const { return slots_.size(); }
  /// Total events ever pushed (monotonic; > capacity once wrapped).
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_ > slots_.size() ? next_ - slots_.size() : 0;
  }

  /// Live events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    next_ = 0;
  }

 private:
  uint32_t tid_;
  mutable std::mutex mu_;  // push/snapshot handoff; uncontended per-thread
  std::vector<TraceEvent> slots_;
  uint64_t next_ = 0;
};

/// RAII span: emits a kSpanBegin on construction and a kSpanEnd (with
/// measured dur_us and any attached args) on destruction. Constructed
/// disarmed-aware: when the recorder is not armed the constructor is a
/// single branch and the destructor does nothing.
class ScopedTraceSpan {
 public:
  /// `category` and `name` must be string literals (see trace_event.h).
  ScopedTraceSpan(const char* category, const char* name);
  ~ScopedTraceSpan();
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

  /// Attach args to the span-end event (up to 2; extras ignored).
  void AddNumberArg(const char* key, double v);
  void AddTextArg(const char* key, std::string_view v);

 private:
  bool live_;
  uint64_t start_us_ = 0;
  const char* category_;
  const char* name_;
  TraceArg args_[2];
  int nargs_ = 0;
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Arm/disarm recording. Arming is what benches, tests and the examples
  /// do explicitly; the engine never arms itself. Atomic so a worker
  /// thread reading armed() mid-drain never races a test's Disarm().
  void Arm() { armed_.store(kEnabled, std::memory_order_relaxed); }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const {
    return kEnabled && armed_.load(std::memory_order_relaxed);
  }

  /// The calling thread's ring, created (and registered) on first use.
  /// Macros cache the returned pointer in a thread_local.
  ThreadRing* RingForThisThread();

  /// Ring capacity for rings created after this call (existing rings keep
  /// theirs). Tests shrink it to exercise wrap-around.
  void SetRingCapacity(size_t events);
  size_t ring_capacity() const { return ring_capacity_; }

  /// All live events across threads, merged and sorted by (ts_us, tid).
  std::vector<TraceEvent> Snapshot() const;
  /// Events with ts_us >= since_us — the slow-query log's trace slice.
  std::vector<TraceEvent> SnapshotSince(uint64_t since_us) const;

  /// Sum of dropped() over all rings (events lost to wrap-around).
  uint64_t TotalDropped() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing or https://ui.perfetto.dev. Per thread, unmatched
  /// span events at the snapshot edges are repaired: orphan ends (begin
  /// was overwritten) are dropped and unclosed begins get a synthetic
  /// zero-length end, so B/E always balance.
  std::string ChromeTraceJson() const;
  /// Writes ChromeTraceJson() to `path`; false on I/O failure.
  bool DumpChromeTrace(const std::string& path) const;

  /// Clears every ring's contents (rings and cached pointers stay valid).
  void Reset();

  /// Raw event push for a specific ring — the macro back end.
  static void Emit(ThreadRing* ring, TracePhase phase, const char* category,
                   const char* name, uint64_t dur_us = 0);

 private:
  FlightRecorder() = default;

  mutable std::mutex mu_;  // guards rings_ registration and snapshots
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  size_t ring_capacity_ = 16384;
  std::atomic<bool> armed_{false};
  uint32_t next_tid_ = 1;
};

/// Zero-size stand-in for ScopedTraceSpan under -DFSDM_TELEMETRY=OFF so
/// call sites that attach args still compile (to nothing).
struct NullTraceSpan {
  void AddNumberArg(const char*, double) {}
  void AddTextArg(const char*, std::string_view) {}
};

/// Emit a counter sample (phase kCounter) with one numeric arg named
/// "value". Used by FSDM_TRACE_COUNTER.
void EmitCounterSample(const char* category, const char* name, double value);

/// Emit an instant event, optionally with one text arg (dynamic names —
/// fault points, access paths — go here, copied into the event).
void EmitInstant(const char* category, const char* name);
void EmitInstantText(const char* category, const char* name, const char* key,
                     std::string_view text);

}  // namespace fsdm::telemetry

#if !defined(FSDM_TELEMETRY_DISABLED)

/// Traces the rest of the enclosing scope as a span. `category`/`name`
/// must be string literals. The span variable is named so call sites can
/// attach args: FSDM_TRACE_SPAN(span, "collection", "insert");
/// span.AddNumberArg("rows", 1);
#define FSDM_TRACE_SPAN(var, category, name) \
  ::fsdm::telemetry::ScopedTraceSpan var((category), (name))

#define FSDM_TRACE_INSTANT(category, name)                      \
  do {                                                          \
    if (::fsdm::telemetry::FlightRecorder::Global().armed()) {  \
      ::fsdm::telemetry::EmitInstant((category), (name));       \
    }                                                           \
  } while (0)

#define FSDM_TRACE_INSTANT_TEXT(category, name, key, text)            \
  do {                                                                \
    if (::fsdm::telemetry::FlightRecorder::Global().armed()) {        \
      ::fsdm::telemetry::EmitInstantText((category), (name), (key),   \
                                         (text));                     \
    }                                                                 \
  } while (0)

#define FSDM_TRACE_COUNTER(category, name, value)                     \
  do {                                                                \
    if (::fsdm::telemetry::FlightRecorder::Global().armed()) {        \
      ::fsdm::telemetry::EmitCounterSample((category), (name),        \
                                           static_cast<double>(value)); \
    }                                                                 \
  } while (0)

#else  // FSDM_TELEMETRY_DISABLED

#define FSDM_TRACE_SPAN(var, category, name) \
  [[maybe_unused]] ::fsdm::telemetry::NullTraceSpan var

#define FSDM_TRACE_INSTANT(category, name) FSDM_TM_VOID(category, name)
#define FSDM_TRACE_INSTANT_TEXT(category, name, key, text) \
  do {                                                     \
    if (false) {                                           \
      (void)(category);                                    \
      (void)(name);                                        \
      (void)(key);                                         \
      (void)(text);                                        \
    }                                                      \
  } while (0)
#define FSDM_TRACE_COUNTER(category, name, value) \
  FSDM_TRACE_INSTANT_TEXT(category, name, 0, value)

#endif  // FSDM_TELEMETRY_DISABLED

#endif  // FSDM_TELEMETRY_FLIGHT_RECORDER_H_
