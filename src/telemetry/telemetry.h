#ifndef FSDM_TELEMETRY_TELEMETRY_H_
#define FSDM_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Engine-wide metrics (ISSUE 2 tentpole): a process-wide registry of
/// counters, gauges and fixed-bucket latency histograms, cheap enough to
/// live on DML hot paths. Instrumentation sites use the FSDM_* macros
/// below, which cache the registry lookup in a function-local static so
/// the steady-state cost is one pointer indirection plus an add (or a
/// bucket binary search for histograms).
///
/// Compile-time kill switch: configuring with -DFSDM_TELEMETRY=OFF defines
/// FSDM_TELEMETRY_DISABLED and compiles every macro to nothing — no clock
/// reads, no registry lookups. The classes themselves stay available (the
/// per-query EXPLAIN ANALYZE traces in trace.h are explicit API calls, not
/// background overhead, so they are not gated).
///
/// Naming convention: fsdm_<subsystem>_<metric>[_total|_us|_bytes].

namespace fsdm::telemetry {

#if defined(FSDM_TELEMETRY_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic event count. Atomic (relaxed) since ISSUE 6: DML stays
/// single-threaded, but routed queries now drain shard morsels on the
/// worker pool, and the probe/operator counters fire on worker threads.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-set instantaneous value (bytes resident, rows populated, ...).
/// Atomic like Counter; Add() is a CAS loop (rare — gauges are mostly Set).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending bucket upper edges, with
/// an implicit +Inf overflow bucket. Tracks count/sum/min/max exactly;
/// Percentile(p) interpolates linearly inside the hit bucket (lower edge of
/// bucket 0 is 0) and clamps to the observed [min, max], so a
/// single-observation histogram reports that observation for every p.
/// Observe() and the readers take a per-histogram mutex (worker-pool
/// drains observe latency histograms concurrently); bucket_counts()
/// returns a copy for the same reason.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the +Inf overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

  void Reset();

 private:
  double PercentileLocked(double p) const;

  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Default bucket edges for latency histograms, in microseconds
/// (1us .. 1s, roughly logarithmic).
const std::vector<double>& DefaultLatencyBoundsUs();
/// Default bucket edges for size/depth histograms (powers of two, 1..64k).
const std::vector<double>& DefaultSizeBounds();

class MetricsRegistry;

/// Point-in-time copy of every metric's value, cheap enough to take every
/// bench row. Histograms are reduced to (count, sum) — enough for rate and
/// mean-delta queries without copying buckets.
struct MetricsSnapshot {
  struct HistogramPoint {
    uint64_t count = 0;
    double sum = 0;
  };
  uint64_t ts_us = 0;  // MonotonicNowUs() clock
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramPoint> histograms;
};

/// One full-registry snapshot, timestamped now — what SnapshotHistory
/// ticks and the workload repository (workload_repo.h) embeds per
/// snapshot.
MetricsSnapshot TakeMetricsSnapshot(const MetricsRegistry& registry);

/// Explicitly-ticked ring of metrics snapshots (ISSUE 4): callers (the
/// bench harness, tests, a future maintenance thread) call Tick() at the
/// cadence they care about; delta/rate queries then read change-over-time
/// instead of lifetime totals — what the router cost model will consume.
/// No background thread; see ROADMAP.
class SnapshotHistory {
 public:
  explicit SnapshotHistory(size_t capacity = 64);

  /// Records a snapshot of `registry` now; evicts the oldest past capacity.
  void Tick(const MetricsRegistry& registry);

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  /// i = 0 is the newest snapshot, size()-1 the oldest.
  const MetricsSnapshot& Newest(size_t back = 0) const;

  /// Counter increase between the newest snapshot and `back` snapshots
  /// earlier (0 when either side is missing the counter or history is
  /// too short).
  uint64_t CounterDelta(const std::string& name, size_t back = 1) const;
  /// CounterDelta over the elapsed wall time between those snapshots, in
  /// events per second (0 when elapsed time is 0).
  double CounterRatePerSec(const std::string& name, size_t back = 1) const;

  void Clear() { ring_.clear(); }

 private:
  size_t capacity_;
  std::vector<MetricsSnapshot> ring_;  // oldest first
};

/// Name -> metric maps with stable handle pointers: Reset() zeroes values
/// but never invalidates a pointer returned by a Get*() call, so the
/// macros below can cache them in function-local statics. A mutex guards
/// the maps themselves (Get*() may be called from pool workers the first
/// time a metric fires on a worker thread); the metrics are individually
/// thread-safe, so cached handles never need the lock again.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Created with DefaultLatencyBoundsUs() on first use.
  Histogram* GetHistogram(const std::string& name);
  /// Created with DefaultSizeBounds() on first use.
  Histogram* GetSizeHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Read helpers for tests/benches: value (or 0 / nullptr) without
  /// creating the metric.
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Direct map access for iteration (exposition, SnapshotHistory::Tick,
  /// TELEMETRY$METRICS). Callers must not race a first-use Get*() on
  /// another thread; in practice iteration happens between queries, when
  /// the worker pool is idle, and the background ASH sampler pre-registers
  /// its own metrics before its thread starts (ToJson/ToPrometheusText/
  /// TakeMetricsSnapshot additionally hold the registry mutex).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  /// Zeroes every metric; handles stay valid.
  void Reset();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99}}} — the snapshot BENCH_*.json embeds.
  std::string ToJson() const;
  /// Prometheus text exposition (counters/gauges as-is, histograms as
  /// summaries with p50/p95/p99 quantiles).
  std::string ToPrometheusText() const;

  /// The registry's snapshot history ring. Tick it explicitly:
  /// `MetricsRegistry::Global().TickHistory()`.
  SnapshotHistory& history() { return history_; }
  const SnapshotHistory& history() const { return history_; }
  void TickHistory() { history_.Tick(*this); }

 private:
  friend MetricsSnapshot TakeMetricsSnapshot(const MetricsRegistry&);

  mutable std::mutex mu_;  // guards the three maps, not the metrics
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  SnapshotHistory history_;
};

/// Wall-clock stopwatch in microseconds (finer grained than the bench
/// harness' millisecond Timer).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Observes its scope's elapsed microseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Observe(w_.ElapsedUs());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  Stopwatch w_;
};

/// JSON string escaping shared by ToJson and the bench BENCH_*.json writer.
std::string JsonEscape(const std::string& s);
/// Appends a JSON-valid number (integers without a fraction; non-finite
/// values as 0).
void AppendJsonNumber(std::string* out, double v);

}  // namespace fsdm::telemetry

#define FSDM_TM_CONCAT_INNER(a, b) a##b
#define FSDM_TM_CONCAT(a, b) FSDM_TM_CONCAT_INNER(a, b)

#if !defined(FSDM_TELEMETRY_DISABLED)

#define FSDM_COUNT(name, n)                                                  \
  do {                                                                       \
    static ::fsdm::telemetry::Counter* FSDM_TM_CONCAT(fsdm_tm_c, __LINE__) = \
        ::fsdm::telemetry::MetricsRegistry::Global().GetCounter(name);       \
    FSDM_TM_CONCAT(fsdm_tm_c, __LINE__)->Add(n);                             \
  } while (0)

#define FSDM_GAUGE_SET(name, v)                                            \
  do {                                                                     \
    static ::fsdm::telemetry::Gauge* FSDM_TM_CONCAT(fsdm_tm_g, __LINE__) = \
        ::fsdm::telemetry::MetricsRegistry::Global().GetGauge(name);       \
    FSDM_TM_CONCAT(fsdm_tm_g, __LINE__)->Set(static_cast<double>(v));      \
  } while (0)

#define FSDM_OBSERVE(name, v)                                                  \
  do {                                                                         \
    static ::fsdm::telemetry::Histogram* FSDM_TM_CONCAT(fsdm_tm_h,             \
                                                        __LINE__) =           \
        ::fsdm::telemetry::MetricsRegistry::Global().GetHistogram(name);       \
    FSDM_TM_CONCAT(fsdm_tm_h, __LINE__)->Observe(static_cast<double>(v));      \
  } while (0)

#define FSDM_OBSERVE_SIZE(name, v)                                             \
  do {                                                                         \
    static ::fsdm::telemetry::Histogram* FSDM_TM_CONCAT(fsdm_tm_s,             \
                                                        __LINE__) =           \
        ::fsdm::telemetry::MetricsRegistry::Global().GetSizeHistogram(name);   \
    FSDM_TM_CONCAT(fsdm_tm_s, __LINE__)->Observe(static_cast<double>(v));      \
  } while (0)

/// Times the rest of the enclosing scope into a latency histogram.
#define FSDM_TIME_SCOPE_US(name)                                               \
  static ::fsdm::telemetry::Histogram* FSDM_TM_CONCAT(fsdm_tm_th, __LINE__) =  \
      ::fsdm::telemetry::MetricsRegistry::Global().GetHistogram(name);         \
  ::fsdm::telemetry::ScopedTimer FSDM_TM_CONCAT(fsdm_tm_ts, __LINE__)(         \
      FSDM_TM_CONCAT(fsdm_tm_th, __LINE__))

#else  // FSDM_TELEMETRY_DISABLED

#define FSDM_TM_VOID(name, n) \
  do {                        \
    if (false) {              \
      (void)(name);           \
      (void)(n);              \
    }                         \
  } while (0)

#define FSDM_COUNT(name, n) FSDM_TM_VOID(name, n)
#define FSDM_GAUGE_SET(name, v) FSDM_TM_VOID(name, v)
#define FSDM_OBSERVE(name, v) FSDM_TM_VOID(name, v)
#define FSDM_OBSERVE_SIZE(name, v) FSDM_TM_VOID(name, v)
#define FSDM_TIME_SCOPE_US(name) FSDM_TM_VOID(name, 0)

#endif  // FSDM_TELEMETRY_DISABLED

#endif  // FSDM_TELEMETRY_TELEMETRY_H_
