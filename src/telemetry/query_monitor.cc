#include "telemetry/query_monitor.h"

#include "telemetry/trace_event.h"

namespace fsdm::telemetry {

const char* OperatorLiveStateName(uint8_t state) {
  switch (state) {
    case OperatorSpan::kPending:
      return "pending";
    case OperatorSpan::kOpen:
      return "open";
    case OperatorSpan::kDone:
      return "done";
  }
  return "?";
}

#if !defined(FSDM_TELEMETRY_DISABLED)

namespace {

void AppendProgress(const OperatorSpan& span, int depth, uint64_t now_us,
                    std::vector<OperatorProgress>* out) {
  OperatorProgress p;
  p.name = span.name;
  p.detail = span.detail;
  p.depth = depth;
  p.shard = span.shard;
  p.worker = span.worker.load(std::memory_order_relaxed);
  p.state = span.live_state.load(std::memory_order_relaxed);
  p.rows_out = span.rows_out.load(std::memory_order_relaxed);
  if (p.state == OperatorSpan::kOpen) {
    const uint64_t open_ts = span.live_open_ts_us.load(std::memory_order_relaxed);
    p.elapsed_us = now_us > open_ts ? now_us - open_ts : 0;
  } else if (p.state == OperatorSpan::kDone) {
    p.elapsed_us = span.live_elapsed_us.load(std::memory_order_relaxed);
  }
  out->push_back(std::move(p));
  for (const std::unique_ptr<OperatorSpan>& c : span.children) {
    AppendProgress(*c, depth + 1, now_us, out);
  }
}

}  // namespace

QueryMonitor& QueryMonitor::Global() {
  static QueryMonitor* monitor = new QueryMonitor();
  return *monitor;
}

void QueryMonitor::Register(uint64_t query_id, std::string collection,
                            std::string query, std::string access_path,
                            double est_rows, const OperatorSpan* root) {
  InFlight entry;
  entry.query_id = query_id;
  entry.collection = std::move(collection);
  entry.query = std::move(query);
  entry.access_path = std::move(access_path);
  entry.est_rows = est_rows;
  entry.open_ts_us = MonotonicNowUs();
  entry.root = root;
  std::lock_guard<std::mutex> lock(mu_);
  for (InFlight& existing : in_flight_) {
    if (existing.query_id == query_id) {
      existing = std::move(entry);
      return;
    }
  }
  in_flight_.push_back(std::move(entry));
}

void QueryMonitor::Unregister(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].query_id != query_id) continue;
    in_flight_.erase(in_flight_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

std::vector<MonitoredQuery> QueryMonitor::Snapshot() const {
  const uint64_t now_us = MonotonicNowUs();
  std::vector<MonitoredQuery> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(in_flight_.size());
  for (const InFlight& q : in_flight_) {
    MonitoredQuery m;
    m.query_id = q.query_id;
    m.collection = q.collection;
    m.query = q.query;
    m.access_path = q.access_path;
    m.est_rows = q.est_rows;
    m.open_ts_us = q.open_ts_us;
    m.elapsed_us = now_us > q.open_ts_us ? now_us - q.open_ts_us : 0;
    if (q.root != nullptr) {
      m.rows_out = q.root->rows_out.load(std::memory_order_relaxed);
      AppendProgress(*q.root, 0, now_us, &m.operators);
    }
    out.push_back(std::move(m));
  }
  return out;
}

size_t QueryMonitor::InFlightCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.size();
}

#endif  // !FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry
