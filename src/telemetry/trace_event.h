#ifndef FSDM_TELEMETRY_TRACE_EVENT_H_
#define FSDM_TELEMETRY_TRACE_EVENT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

/// Structured trace events (ISSUE 4 tentpole): the unit the flight
/// recorder's per-thread rings store. Events are plain value types sized
/// for a hot path — fixed layout, no heap allocation. `category` and
/// `name` therefore MUST be string literals (or other static-storage
/// strings): the ring keeps the pointers, and an event routinely outlives
/// the scope that emitted it. Anything dynamic goes into a TraceArg,
/// which copies (and truncates) into an inline buffer.

namespace fsdm::telemetry {

/// Chrome trace-event phases the recorder emits. Span begin/end pair up by
/// per-thread nesting order, exactly like chrome://tracing's B/E events.
enum class TracePhase : char {
  kSpanBegin = 'B',
  kSpanEnd = 'E',
  kInstant = 'I',
  kCounter = 'C',
};

/// One key/value attachment. Keys are static strings like category/name;
/// values are either a double or an inline truncated text copy.
struct TraceArg {
  static constexpr size_t kMaxText = 23;  // plus the terminating NUL

  const char* key = nullptr;  // nullptr = unused slot
  bool is_text = false;
  double number = 0;
  char text[kMaxText + 1] = {};

  void SetNumber(const char* k, double v) {
    key = k;
    is_text = false;
    number = v;
  }
  void SetText(const char* k, std::string_view v) {
    key = k;
    is_text = true;
    size_t n = v.size() < kMaxText ? v.size() : kMaxText;
    std::memcpy(text, v.data(), n);
    text[n] = '\0';
  }
};

/// One recorded event. ~160 bytes; a default ring of 16k events is ~2.5 MB
/// per thread, the recorder's bounded-memory budget.
struct TraceEvent {
  uint64_t ts_us = 0;   // monotonic micros, see MonotonicNowUs()
  uint64_t dur_us = 0;  // span-end events: elapsed; 0 otherwise
  uint32_t tid = 0;     // recorder-assigned small thread id
  TracePhase phase = TracePhase::kInstant;
  const char* category = "";  // static string (see file comment)
  const char* name = "";      // static string
  TraceArg args[2];

  bool has_args() const { return args[0].key != nullptr; }
  /// {"k":v,...} rendering of the arg slots ("{}" when none) — shared by
  /// the Chrome exporter and the TELEMETRY$EVENTS ARGS column.
  std::string ArgsJson() const;
};

/// Microseconds on the monotonic clock, relative to a process-wide epoch
/// captured on first use. Shared by the flight recorder, the metrics
/// snapshot history, and the slow-query log so their timestamps compare.
uint64_t MonotonicNowUs();

/// One event as a Chrome trace-event JSON object (no trailing comma).
void AppendChromeTraceEvent(std::string* out, const TraceEvent& e);

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_TRACE_EVENT_H_
