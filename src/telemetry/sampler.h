#ifndef FSDM_TELEMETRY_SAMPLER_H_
#define FSDM_TELEMETRY_SAMPLER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/activity.h"

/// Active-session sampling (ISSUE 7 tentpole, part 2): a background thread
/// that snapshots every ActivityRecord at ~1 kHz and keeps the *active*
/// samples in a fixed-capacity ASH ring (Oracle's Active Session History
/// shape). Sampling inverts the flight recorder's tracing bargain: tracing
/// records every event and costs per event; sampling costs a fixed, tiny
/// amount per second no matter how hot the engine runs, and DB-time falls
/// out as sample counts — a query sampled 50 times at 1 kHz spent ~50 ms
/// of DB-time, and the wait-state distribution of those samples says
/// where.
///
/// The sampler starts only when asked (the bench harness starts it; the
/// engine never does), reads its rate from FSDM_ASH_HZ (default 1000,
/// 0 = disabled), and is compiled out entirely under -DFSDM_TELEMETRY=OFF:
/// no thread, no ring, no atomics.
///
/// Tickless idle: while no thread holds an activity lease the sampler
/// parks on the registry's condition variable instead of ticking — a tick
/// would retain nothing, and on a busy machine 1000 wakeups/s cost more
/// than the sampling itself. The first lease Begin() wakes it, so active
/// work is always sampled at the full rate; `ticks()` therefore counts
/// only non-idle ticks.

namespace fsdm::telemetry {

/// One retained ASH row: an active record caught by one sampler tick.
struct AshSample {
  uint64_t ts_us = 0;
  uint64_t thread_slot = 0;
  WaitState state = WaitState::kIdle;
  std::string collection;
  std::string access_path;
  std::string op;
  std::string query;
  int shard = -1;
  int worker = -1;
  uint64_t query_id = 0;  ///< TELEMETRY$QUERY_MONITOR cross-link; 0 = none
};

/// Per-collection/per-state DB-time accounting over a set of ASH samples —
/// the time model. Keys with no samples are absent.
struct AshAggregate {
  uint64_t db_samples = 0;  ///< active samples in the window
  /// collection -> sample count per WaitState (index by state value).
  std::map<std::string, std::array<uint64_t, kWaitStateCount>> by_collection;
  /// Overall sample count per WaitState.
  std::array<uint64_t, kWaitStateCount> by_state{};
  /// query text -> samples (DB-time ranking).
  std::map<std::string, uint64_t> by_query;
  /// shard id (>= 0 only) -> samples (skew detection).
  std::map<int, uint64_t> by_shard;
};

/// Folds `samples` with since_us < ts_us <= until_us into an aggregate
/// (until_us = 0 means no upper bound).
AshAggregate AggregateAsh(const std::vector<AshSample>& samples,
                          uint64_t since_us, uint64_t until_us);

#if !defined(FSDM_TELEMETRY_DISABLED)

class ActivitySampler {
 public:
  static ActivitySampler& Global();

  /// Rate from FSDM_ASH_HZ, clamped to [1, 10000]; 1000 when unset,
  /// 0 (disabled) when set to 0 or unparsable-as-positive.
  static double HzFromEnv();

  /// Arms the sampler at HzFromEnv(). Returns false (and arms nothing)
  /// when the rate is 0 or the sampler is already armed. The background
  /// thread itself spawns lazily on the first activity-lease activation
  /// (or immediately when work is already in flight): an armed-but-idle
  /// process carries no sampler thread at all.
  bool Start();
  /// Disarms, then stops and joins the thread if one was spawned. No-op
  /// when not armed.
  void Stop();
  bool running() const;
  /// Rate the running (or last-run) thread was started at; 0 before Start.
  double hz() const;

  /// One sampling tick: snapshots every activity record, retains the
  /// active ones in the ring. Returns the number retained. This is what
  /// the thread loop calls; tests call it directly for determinism.
  size_t SampleOnce();

  /// Live ASH rows, oldest first.
  std::vector<AshSample> Snapshot() const;
  /// Time model over everything currently in the ring.
  AshAggregate Aggregate() const;

  uint64_t ticks() const;
  uint64_t db_samples_total() const;

  /// Ring capacity (default 8192 samples); shrinking drops oldest.
  void SetRingCapacity(size_t samples);
  void ClearRing();

 private:
  ActivitySampler() = default;

  void RunLoop(double hz);
  /// Activation-hook target: spawns the thread if armed and not spawned.
  void EnsureThread();

  std::mutex sample_mu_;  // serializes SampleOnce's scratch reuse
  std::vector<ActivitySample> scratch_;  // reused across ticks
  // Last gauge/trace value published, so idle ticks (active == previous
  // == 0, the steady state on a quiet engine) skip the recorder entirely.
  size_t last_published_active_ = static_cast<size_t>(-1);

  mutable std::mutex ring_mu_;
  std::vector<AshSample> ring_;  // circular once full
  size_t ring_capacity_ = 8192;
  size_t ring_next_ = 0;
  size_t ring_size_ = 0;
  uint64_t ticks_ = 0;
  uint64_t db_samples_total_ = 0;

  mutable std::mutex ctl_mu_;  // Start/Stop handoff
  std::thread thread_;
  bool running_ = false;
  double hz_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
};

#else  // FSDM_TELEMETRY_DISABLED

/// Compiled-out sampler: no thread, no ring; every query returns empty.
class ActivitySampler {
 public:
  static ActivitySampler& Global() {
    static ActivitySampler s;
    return s;
  }
  static double HzFromEnv() { return 0; }
  bool Start() { return false; }
  void Stop() {}
  bool running() const { return false; }
  double hz() const { return 0; }
  size_t SampleOnce() { return 0; }
  std::vector<AshSample> Snapshot() const { return {}; }
  AshAggregate Aggregate() const { return {}; }
  uint64_t ticks() const { return 0; }
  uint64_t db_samples_total() const { return 0; }
  void SetRingCapacity(size_t) {}
  void ClearRing() {}
};

#endif  // FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_SAMPLER_H_
