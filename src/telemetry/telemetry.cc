#include "telemetry/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/activity.h"
#include "telemetry/trace_event.h"

namespace fsdm::telemetry {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : max_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PercentileLocked(p);
}

double Histogram::PercentileLocked(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const double target = (p / 100.0) * static_cast<double>(count_);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      if (i == bounds_.size()) return max_;  // overflow bucket: all we know
      const double lower = i == 0 ? 0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double v =
          lower + (upper - lower) * (target - prev) /
                      static_cast<double>(counts_[i]);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = {
      1,    2,    5,     10,    25,    50,     100,    250,    500,
      1000, 2500, 5000,  10000, 25000, 50000,  100000, 250000, 500000,
      1e6};
  return kBounds;
}

const std::vector<double>& DefaultSizeBounds() {
  static const std::vector<double> kBounds = {
      1,   2,   4,    8,    16,   32,   64,    128,
      256, 512, 1024, 4096, 16384, 65536};
  return kBounds;
}

// ---------------------------------------------------------------------------
// SnapshotHistory
// ---------------------------------------------------------------------------

SnapshotHistory::SnapshotHistory(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

MetricsSnapshot TakeMetricsSnapshot(const MetricsRegistry& registry) {
  MetricsSnapshot snap;
  snap.ts_us = MonotonicNowUs();
  std::lock_guard<std::mutex> lock(registry.mu_);
  for (const auto& [name, c] : registry.counters()) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : registry.gauges()) {
    snap.gauges[name] = g->value();
  }
  for (const auto& [name, h] : registry.histograms()) {
    snap.histograms[name] = {h->count(), h->sum()};
  }
  return snap;
}

void SnapshotHistory::Tick(const MetricsRegistry& registry) {
  ring_.push_back(TakeMetricsSnapshot(registry));
  if (ring_.size() > capacity_) ring_.erase(ring_.begin());
}

const MetricsSnapshot& SnapshotHistory::Newest(size_t back) const {
  static const MetricsSnapshot kEmpty;
  if (back >= ring_.size()) return kEmpty;
  return ring_[ring_.size() - 1 - back];
}

uint64_t SnapshotHistory::CounterDelta(const std::string& name,
                                       size_t back) const {
  if (ring_.size() < back + 1) return 0;
  const MetricsSnapshot& now = Newest(0);
  const MetricsSnapshot& then = Newest(back);
  auto now_it = now.counters.find(name);
  if (now_it == now.counters.end()) return 0;
  auto then_it = then.counters.find(name);
  const uint64_t old_v = then_it == then.counters.end() ? 0 : then_it->second;
  return now_it->second >= old_v ? now_it->second - old_v : 0;
}

double SnapshotHistory::CounterRatePerSec(const std::string& name,
                                          size_t back) const {
  if (ring_.size() < back + 1) return 0;
  const uint64_t elapsed_us = Newest(0).ts_us - Newest(back).ts_us;
  if (elapsed_us == 0) return 0;
  return static_cast<double>(CounterDelta(name, back)) * 1e6 /
         static_cast<double>(elapsed_us);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  // Handle lookups happen once per call site (the macros cache them), so
  // charging the registry mutex to the lock-wait class costs nothing on
  // the steady-state path.
  ScopedWaitState wait(WaitState::kLockWait);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  ScopedWaitState wait(WaitState::kLockWait);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  ScopedWaitState wait(WaitState::kLockWait);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, DefaultLatencyBoundsUs());
}

Histogram* MetricsRegistry::GetSizeHistogram(const std::string& name) {
  return GetHistogram(name, DefaultSizeBounds());
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "0";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

namespace {

void AppendHistogramJson(std::string* out, const Histogram& h) {
  const uint64_t count = h.count();
  const double sum = h.sum();
  *out += "{\"count\":";
  AppendJsonNumber(out, static_cast<double>(count));
  *out += ",\"sum\":";
  AppendJsonNumber(out, sum);
  // Mean spelled out so dashboards (and the sum-exposition unit test)
  // never have to re-derive it from a racing count/sum pair.
  *out += ",\"mean\":";
  AppendJsonNumber(out, count > 0 ? sum / static_cast<double>(count) : 0.0);
  *out += ",\"min\":";
  AppendJsonNumber(out, h.min());
  *out += ",\"max\":";
  AppendJsonNumber(out, h.max());
  *out += ",\"p50\":";
  AppendJsonNumber(out, h.Percentile(50));
  *out += ",\"p95\":";
  AppendJsonNumber(out, h.Percentile(95));
  *out += ",\"p99\":";
  AppendJsonNumber(out, h.Percentile(99));
  *out += "}";
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":";
    AppendJsonNumber(&out, static_cast<double>(c->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":";
    AppendJsonNumber(&out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":";
    AppendHistogramJson(&out, *h);
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto number = [](double v) {
    std::string s;
    AppendJsonNumber(&s, v);
    return s;
  };
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + number(static_cast<double>(c->value())) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + number(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " summary\n";
    out += name + "{quantile=\"0.5\"} " + number(h->Percentile(50)) + "\n";
    out += name + "{quantile=\"0.95\"} " + number(h->Percentile(95)) + "\n";
    out += name + "{quantile=\"0.99\"} " + number(h->Percentile(99)) + "\n";
    out += name + "_sum " + number(h->sum()) + "\n";
    out += name + "_count " + number(static_cast<double>(h->count())) + "\n";
  }
  return out;
}

}  // namespace fsdm::telemetry
