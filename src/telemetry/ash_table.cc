#include "telemetry/ash_table.h"

#include <memory>
#include <string>
#include <vector>

#include "telemetry/sampler.h"
#include "telemetry/workload_repo.h"

namespace fsdm::telemetry {

namespace {

Value StrOrNull(const std::string& s) {
  return s.empty() ? Value::Null() : Value::String(s);
}

class AshScanOp final : public rdbms::Operator {
 public:
  AshScanOp() {
    schema_ = rdbms::Schema({"TS_US", "THREAD", "WAIT_STATE", "WAIT_CLASS",
                             "COLLECTION", "ACCESS_PATH", "OP", "QUERY",
                             "QUERY_ID", "SHARD", "WORKER"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const AshSample& s : ActivitySampler::Global().Snapshot()) {
      rows_.push_back(
          {Value::Int64(static_cast<int64_t>(s.ts_us)),
           Value::Int64(static_cast<int64_t>(s.thread_slot)),
           Value::String(WaitStateName(s.state)),
           Value::String(WaitClassName(s.state)), StrOrNull(s.collection),
           StrOrNull(s.access_path), StrOrNull(s.op), StrOrNull(s.query),
           s.query_id != 0 ? Value::Int64(static_cast<int64_t>(s.query_id))
                           : Value::Null(),
           s.shard >= 0 ? Value::Int64(s.shard) : Value::Null(),
           s.worker >= 0 ? Value::Int64(s.worker) : Value::Null()});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class SnapshotsScanOp final : public rdbms::Operator {
 public:
  SnapshotsScanOp() {
    schema_ = rdbms::Schema({"SNAP_ID", "TS_US", "LABEL", "SAMPLER_TICKS",
                             "DB_SAMPLES", "CPU_PCT", "TOP_WAIT_CLASS",
                             "TOP_WAIT_PCT", "TOP_QUERY", "TOP_QUERY_SAMPLES",
                             "SHARD_SKEW", "MEM_BYTES", "MEM_PEAK_BYTES"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const WorkloadSnapshot& snap :
         WorkloadRepository::Global().Snapshots()) {
      const uint64_t total = snap.ash.db_samples;
      Value cpu_pct = Value::Null();
      Value top_class = Value::Null();
      Value top_pct = Value::Null();
      if (total > 0) {
        const auto cpu =
            snap.ash.by_state[static_cast<size_t>(WaitState::kOnCpu)];
        cpu_pct = Value::Double(100.0 * static_cast<double>(cpu) /
                                static_cast<double>(total));
        // Dominant *wait* (non-CPU) class of the window.
        uint64_t best = 0;
        WaitState best_state = WaitState::kIdle;
        for (size_t i = 0; i < kWaitStateCount; ++i) {
          if (static_cast<WaitState>(i) == WaitState::kOnCpu) continue;
          if (snap.ash.by_state[i] > best) {
            best = snap.ash.by_state[i];
            best_state = static_cast<WaitState>(i);
          }
        }
        if (best > 0) {
          top_class = Value::String(WaitClassName(best_state));
          top_pct = Value::Double(100.0 * static_cast<double>(best) /
                                  static_cast<double>(total));
        }
      }
      Value top_query = Value::Null();
      Value top_query_samples = Value::Null();
      std::vector<std::pair<std::string, uint64_t>> top = snap.TopQueries(1);
      if (!top.empty()) {
        top_query = Value::String(top[0].first);
        top_query_samples =
            Value::Int64(static_cast<int64_t>(top[0].second));
      }
      const double skew = snap.ShardSkew();
      rows_.push_back({Value::Int64(static_cast<int64_t>(snap.id)),
                       Value::Int64(static_cast<int64_t>(snap.ts_us)),
                       Value::String(snap.label),
                       Value::Int64(static_cast<int64_t>(snap.sampler_ticks)),
                       Value::Int64(static_cast<int64_t>(total)),
                       std::move(cpu_pct), std::move(top_class),
                       std::move(top_pct), std::move(top_query),
                       std::move(top_query_samples),
                       skew > 0 ? Value::Double(skew) : Value::Null(),
                       Value::Int64(static_cast<int64_t>(snap.mem_total_bytes)),
                       Value::Int64(
                           static_cast<int64_t>(snap.mem_peak_bytes))});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr AshScan() { return std::make_unique<AshScanOp>(); }

rdbms::OperatorPtr SnapshotsScan() {
  return std::make_unique<SnapshotsScanOp>();
}

}  // namespace fsdm::telemetry
