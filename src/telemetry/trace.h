#ifndef FSDM_TELEMETRY_TRACE_H_
#define FSDM_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// Per-query EXPLAIN ANALYZE traces (ISSUE 2 tentpole): the router records
/// its candidate ranking into a RouterDecision, and rdbms::Instrument()
/// wrappers fill one OperatorSpan per plan node with rows and elapsed time
/// as the plan executes. Unlike the registry macros these are explicit API
/// calls on the query path, so they are not gated by FSDM_TELEMETRY.

namespace fsdm::telemetry {

/// One node of the executed operator tree. Span nodes are heap-allocated
/// (children own their subtrees through unique_ptr), so pointers handed to
/// rdbms::Instrument stay stable while the owning QueryTrace moves around
/// inside a RoutedPlan.
struct OperatorSpan {
  /// Live-progress states for the query monitor (ISSUE 9). Stored in
  /// `live_state` with relaxed atomics: the draining thread publishes,
  /// TELEMETRY$QUERY_MONITOR scans read from other threads.
  enum LiveState : uint8_t { kPending = 0, kOpen = 1, kDone = 2 };

  std::string name;    // "Filter", "IndexedValueScan", ...
  std::string detail;  // predicate text, posting statistics, ...
  /// Emitted rows. Atomic (relaxed) so the query monitor can watch an
  /// in-flight drain from another thread; the owning InstrumentOp is the
  /// only writer.
  std::atomic<uint64_t> rows_out{0};
  /// Inclusive wall time (children's time counts toward their ancestors,
  /// like EXPLAIN ANALYZE "actual time"). Accumulated per Next() by the
  /// draining thread only — cross-thread readers must use the live_*
  /// fields instead (this double is not atomic).
  double elapsed_us = 0;
  /// Sharded execution tags (ISSUE 6): which shard's sub-plan this span
  /// belongs to and which pool worker drained it. -1 = not sharded /
  /// drained on the submitting thread. The router stamps the shard when it
  /// stitches per-shard span trees under the ParallelUnion root (before
  /// the drain starts); the draining pool worker stamps `worker` mid-drain,
  /// hence the atomic.
  int shard = -1;
  std::atomic<int> worker{-1};
  /// Cross-thread progress mirror: kPending until Open(), kOpen while
  /// draining (live_open_ts_us holds the open timestamp), kDone after
  /// Close() (live_elapsed_us holds the final inclusive time in whole
  /// microseconds). All relaxed — a monitor snapshot is statistical.
  std::atomic<uint8_t> live_state{kPending};
  std::atomic<uint64_t> live_open_ts_us{0};
  std::atomic<uint64_t> live_elapsed_us{0};
  std::vector<std::unique_ptr<OperatorSpan>> children;

  /// Rows this operator consumed: the sum of its children's rows_out
  /// (0 for leaves, which read storage directly).
  uint64_t RowsIn() const;
};

std::unique_ptr<OperatorSpan> MakeSpan(std::string name,
                                       std::string detail = "");

/// One access path the router considered, in ranking order.
struct RouterCandidate {
  std::string access_path;  // AccessPathName() string
  bool eligible = false;    // could this path have run the query?
  bool chosen = false;
  std::string detail;  // statistics the estimate used / why it was rejected
  /// Cost-model estimates (ISSUE 5): rows the candidate's primary operator
  /// would emit and its estimated total cost. Negative when the candidate
  /// was ineligible (no estimate computed).
  double est_rows = -1;
  double est_cost_us = -1;
};

/// The router's full candidate ranking. `reason` is the legacy one-line
/// explanation (RoutedPlan::reason renders it unchanged so pre-telemetry
/// callers and tests keep working); Render() adds the candidate table with
/// each candidate's estimated rows/cost.
struct RouterDecision {
  std::vector<RouterCandidate> candidates;
  std::string winner;  // AccessPathName() of the chosen path
  std::string reason;
  /// Estimated rows the whole conjunction emits (cost model); negative
  /// when no estimate was made. QueryTrace::Render() pairs it with the
  /// root span's actual rows_out after execution.
  double est_out_rows = -1;
  std::string Render() const;
};

/// Everything EXPLAIN ANALYZE needs for one routed query: the routing
/// decision plus the instrumented operator tree. Render() after draining
/// the plan; before execution the spans show zero rows/time.
struct QueryTrace {
  RouterDecision decision;
  std::unique_ptr<OperatorSpan> root;
  std::string Render() const;
};

/// Renders one span subtree in QueryTrace::Render()'s indented format.
/// Public so the slow-query log can capture a plan tree without owning a
/// QueryTrace.
void RenderSpanTree(const OperatorSpan& span, int depth, std::string* out);

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_TRACE_H_
