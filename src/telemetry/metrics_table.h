#ifndef FSDM_TELEMETRY_METRICS_TABLE_H_
#define FSDM_TELEMETRY_METRICS_TABLE_H_

#include "rdbms/executor.h"

namespace fsdm::telemetry {

/// Name under which the SQL mini-engine exposes the metrics relation
/// (metrics-as-relations: everything observable through SQL, matching the
/// paper's stance that JSON functionality lives inside the RDBMS).
inline constexpr const char* kMetricsTableName = "TELEMETRY$METRICS";

/// Row source over a snapshot of MetricsRegistry::Global(), taken at
/// Open(). Schema: (NAME, KIND, VALUE, COUNT, SUM, MIN, MAX, P50, P95,
/// P99) — VALUE carries counter/gauge readings, the statistics columns are
/// non-NULL for histograms only.
rdbms::OperatorPtr MetricsScan();

/// Flight-recorder snapshot as a relation (ISSUE 4). Schema: (TS_US,
/// THREAD, CATEGORY, NAME, PHASE, DUR_US, ARGS); PHASE is the Chrome
/// phase letter (B/E/I/C), DUR_US is NULL except on span ends, ARGS is the
/// {"k":v} JSON rendering of the event's args.
inline constexpr const char* kEventsTableName = "TELEMETRY$EVENTS";
rdbms::OperatorPtr EventsScan();

/// Slow-query log as a relation (ISSUE 4). Schema: (TS_US, QUERY,
/// ACCESS_PATH, ELAPSED_US, ROWS, EST_ROWS, EVENT_COUNT, TRACE) —
/// EST_ROWS is the router's cardinality estimate (ISSUE 5), NULL for
/// queries captured without one.
inline constexpr const char* kSlowQueriesTableName = "TELEMETRY$SLOW_QUERIES";
rdbms::OperatorPtr SlowQueriesScan();

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_METRICS_TABLE_H_
