#ifndef FSDM_TELEMETRY_METRICS_TABLE_H_
#define FSDM_TELEMETRY_METRICS_TABLE_H_

#include "rdbms/executor.h"

namespace fsdm::telemetry {

/// Name under which the SQL mini-engine exposes the metrics relation
/// (metrics-as-relations: everything observable through SQL, matching the
/// paper's stance that JSON functionality lives inside the RDBMS).
inline constexpr const char* kMetricsTableName = "TELEMETRY$METRICS";

/// Row source over a snapshot of MetricsRegistry::Global(), taken at
/// Open(). Schema: (NAME, KIND, VALUE, COUNT, SUM, MIN, MAX, P50, P95,
/// P99) — VALUE carries counter/gauge readings, the statistics columns are
/// non-NULL for histograms only.
rdbms::OperatorPtr MetricsScan();

/// Flight-recorder snapshot as a relation (ISSUE 4). Schema: (TS_US,
/// THREAD, CATEGORY, NAME, PHASE, DUR_US, ARGS); PHASE is the Chrome
/// phase letter (B/E/I/C), DUR_US is NULL except on span ends, ARGS is the
/// {"k":v} JSON rendering of the event's args.
inline constexpr const char* kEventsTableName = "TELEMETRY$EVENTS";
rdbms::OperatorPtr EventsScan();

/// Slow-query log as a relation (ISSUE 4; ISSUE 9 added QUERY_ID and
/// PEAK_MEM_BYTES). Schema: (TS_US, QUERY_ID, QUERY, ACCESS_PATH,
/// ELAPSED_US, ROWS, EST_ROWS, PEAK_MEM_BYTES, EVENT_COUNT, TRACE) —
/// EST_ROWS is the router's cardinality estimate (ISSUE 5), NULL for
/// queries captured without one; QUERY_ID is NULL for records captured
/// outside routed execution; PEAK_MEM_BYTES is the tracker high-water the
/// probe sampled over the drain.
inline constexpr const char* kSlowQueriesTableName = "TELEMETRY$SLOW_QUERIES";
rdbms::OperatorPtr SlowQueriesScan();

/// Live query monitor as a relation (ISSUE 9 tentpole, V$SQL_MONITOR
/// style). One row per in-flight routed query (OPERATOR is NULL there)
/// followed by one row per operator in its plan, pre-order with DEPTH.
/// Schema: (QUERY_ID, COLLECTION, QUERY, ACCESS_PATH, OPERATOR, DEPTH,
/// SHARD, WORKER, STATE, ROWS_OUT, EST_ROWS, ELAPSED_US). SHARD/WORKER are
/// NULL off the morsel-parallel path; STATE is pending/open/done.
inline constexpr const char* kQueryMonitorTableName =
    "TELEMETRY$QUERY_MONITOR";
rdbms::OperatorPtr QueryMonitorScan();

/// Memory attribution as a relation (ISSUE 9). One row per registered
/// reporter (long-lived structures, labeled with their collection) plus
/// one per push-model subsystem with transient charges (COLLECTION "-").
/// Open() refreshes the tracker, so BYTES is current as of the scan.
/// Schema: (SUBSYSTEM, COLLECTION, BYTES, PEAK_BYTES).
inline constexpr const char* kMemoryTableName = "TELEMETRY$MEMORY";
rdbms::OperatorPtr MemoryScan();

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_METRICS_TABLE_H_
