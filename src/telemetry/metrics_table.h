#ifndef FSDM_TELEMETRY_METRICS_TABLE_H_
#define FSDM_TELEMETRY_METRICS_TABLE_H_

#include "rdbms/executor.h"

namespace fsdm::telemetry {

/// Name under which the SQL mini-engine exposes the metrics relation
/// (metrics-as-relations: everything observable through SQL, matching the
/// paper's stance that JSON functionality lives inside the RDBMS).
inline constexpr const char* kMetricsTableName = "TELEMETRY$METRICS";

/// Row source over a snapshot of MetricsRegistry::Global(), taken at
/// Open(). Schema: (NAME, KIND, VALUE, COUNT, SUM, MIN, MAX, P50, P95,
/// P99) — VALUE carries counter/gauge readings, the statistics columns are
/// non-NULL for histograms only.
rdbms::OperatorPtr MetricsScan();

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_METRICS_TABLE_H_
