#ifndef FSDM_TELEMETRY_WORKLOAD_REPO_H_
#define FSDM_TELEMETRY_WORKLOAD_REPO_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"

/// AWR-style workload repository (ISSUE 7 tentpole, part 3): explicitly
/// ticked snapshots that bind a full metrics snapshot to the ASH samples
/// collected since the *previous* snapshot. A pair of snapshots therefore
/// answers the operability questions a lifetime counter cannot: what did
/// this workload phase cost (counter deltas), where did its DB-time go
/// (wait-class breakdown), which queries dominated (top-N by sampled
/// DB-time), and how skewed were the shards.
///
/// Nobody ticks in the background — the bench harness snapshots per
/// printed row, tests snapshot around the phase they assert on, and
/// scripts/ash_report.py diffs any two snapshots out of a BENCH_*.json
/// into a markdown report. Exposed to SQL as TELEMETRY$SNAPSHOTS
/// (ash_table.h).
///
/// Unlike the sampler this stays compiled under -DFSDM_TELEMETRY=OFF
/// (explicit API calls, like the EXPLAIN ANALYZE traces); its ASH window
/// aggregates are simply empty there.

namespace fsdm::telemetry {

/// Top-`n` queries of an ASH window by sampled DB-time, descending
/// (samples, then name for determinism).
std::vector<std::pair<std::string, uint64_t>> TopAshQueries(
    const AshAggregate& agg, size_t n);

/// max/mean over the window's per-shard samples (1.0 = perfectly
/// balanced); 0 when no sharded samples landed.
double AshShardSkew(const AshAggregate& agg);

/// {"db_samples":N,"wait_classes":{...},"time_model":[...],
///  "top_queries":[...],"shard_samples":{...}} — the shared ASH-window
/// JSON shape used by both SnapshotJson and the bench "ash" section.
std::string AshAggregateJson(const AshAggregate& agg);

/// One repository snapshot. `ash` covers the window (previous snapshot,
/// this snapshot] — the deltas, not lifetime totals.
struct WorkloadSnapshot {
  uint64_t id = 0;       ///< 1-based, monotonically increasing
  uint64_t ts_us = 0;    ///< MonotonicNowUs() at the tick
  std::string label;
  MetricsSnapshot metrics;   ///< full registry values at the tick
  uint64_t sampler_ticks = 0;  ///< cumulative sampler ticks at the tick
  AshAggregate ash;          ///< ASH window since the previous snapshot
  /// Memory tracker readings at the tick (ISSUE 9): refreshed grand total
  /// and the process high-water. Both 0 under -DFSDM_TELEMETRY=OFF.
  uint64_t mem_total_bytes = 0;
  uint64_t mem_peak_bytes = 0;

  /// Top-`n` queries of the window by sampled DB-time, descending.
  std::vector<std::pair<std::string, uint64_t>> TopQueries(size_t n) const;
  /// max/mean over per-shard samples (1.0 = perfectly balanced); 0 when
  /// no sharded samples landed in the window.
  double ShardSkew() const;
};

class WorkloadRepository {
 public:
  static WorkloadRepository& Global();

  /// Ticks one snapshot: full metrics + the ASH window since the last
  /// tick. Returns the assigned snapshot id.
  uint64_t TakeSnapshot(std::string label);

  size_t size() const;
  /// Copies, oldest first.
  std::vector<WorkloadSnapshot> Snapshots() const;

  /// {"snapshots":[{...}, ...]} — embedded into BENCH_*.json and what
  /// scripts/ash_report.py consumes.
  std::string ToJson() const;
  /// One snapshot's JSON object (id, ts_us, label, sampler_ticks,
  /// ash: AshAggregateJson of the window, counters, histograms).
  static std::string SnapshotJson(const WorkloadSnapshot& snap);

  /// Snapshots retained (default 128); the oldest fall off.
  void SetCapacity(size_t snapshots);
  void Clear();

 private:
  WorkloadRepository() = default;

  mutable std::mutex mu_;
  std::deque<WorkloadSnapshot> ring_;
  size_t capacity_ = 128;
  uint64_t next_id_ = 1;
  uint64_t last_ts_us_ = 0;
};

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_WORKLOAD_REPO_H_
