#include "telemetry/memory_tracker.h"

#include <algorithm>

namespace fsdm::telemetry {

const char* MemSubsystemName(MemSubsystem s) {
  switch (s) {
    case MemSubsystem::kTableHeap:
      return "table-heap";
    case MemSubsystem::kOsonVc:
      return "oson-vc";
    case MemSubsystem::kIndexPostings:
      return "index-postings";
    case MemSubsystem::kDataGuide:
      return "dataguide";
    case MemSubsystem::kImc:
      return "imc";
    case MemSubsystem::kPathStats:
      return "path-stats";
    case MemSubsystem::kWalBuffers:
      return "wal-buffers";
    case MemSubsystem::kPlanWorkingSet:
      return "plan-working-set";
  }
  return "?";
}

#if !defined(FSDM_TELEMETRY_DISABLED)

namespace {

std::string EntryGaugeName(MemSubsystem subsystem,
                           const std::string& collection) {
  std::string name = "fsdm_mem_bytes{subsystem=\"";
  name += MemSubsystemName(subsystem);
  name += "\",collection=\"";
  name += collection;
  name += "\"}";
  return name;
}

}  // namespace

MemoryTracker& MemoryTracker::Global() {
  // Leaked like the other telemetry singletons: reporters may unregister
  // during static destruction of their owners.
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

uint64_t MemoryTracker::RegisterReporter(MemSubsystem subsystem,
                                         std::string collection,
                                         std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Reporter r;
  r.id = next_id_++;
  r.subsystem = subsystem;
  r.collection = std::move(collection);
  r.fn = std::move(fn);
  reporters_.push_back(std::move(r));
  return reporters_.back().id;
}

void MemoryTracker::UnregisterReporter(uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < reporters_.size(); ++i) {
    if (reporters_[i].id != id) continue;
    // Zero the gauge so a dropped collection doesn't linger in exports.
    if (reporters_[i].gauge != nullptr) reporters_[i].gauge->Set(0);
    reporters_.erase(reporters_.begin() + static_cast<ptrdiff_t>(i));
    break;
  }
}

void MemoryTracker::Charge(MemSubsystem subsystem, uint64_t bytes) {
  if (bytes == 0) return;
  const size_t idx = static_cast<size_t>(subsystem);
  const int64_t now =
      charged_[idx].fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed) +
      static_cast<int64_t>(bytes);
  // Ratchet the subsystem peak: transient charges (a drain's buffered
  // working set) would otherwise be invisible to any later Refresh().
  uint64_t peak = charged_peak_[idx].load(std::memory_order_relaxed);
  const uint64_t now_u = now > 0 ? static_cast<uint64_t>(now) : 0;
  while (now_u > peak &&
         !charged_peak_[idx].compare_exchange_weak(
             peak, now_u, std::memory_order_relaxed)) {
  }
  RatchetSubsystemPeak(
      idx, reported_[idx].load(std::memory_order_relaxed) + now_u);
  RatchetTotals(CurrentBytes());
}

void MemoryTracker::Release(MemSubsystem subsystem, uint64_t bytes) {
  if (bytes == 0) return;
  charged_[static_cast<size_t>(subsystem)].fetch_sub(
      static_cast<int64_t>(bytes), std::memory_order_relaxed);
}

void MemoryTracker::RatchetTotals(uint64_t current) {
  uint64_t peak = peak_total_.load(std::memory_order_relaxed);
  while (current > peak &&
         !peak_total_.compare_exchange_weak(peak, current,
                                            std::memory_order_relaxed)) {
  }
}

void MemoryTracker::RatchetSubsystemPeak(size_t idx, uint64_t current) {
  uint64_t peak = subsystem_peak_[idx].load(std::memory_order_relaxed);
  while (current > peak &&
         !subsystem_peak_[idx].compare_exchange_weak(
             peak, current, std::memory_order_relaxed)) {
  }
}

uint64_t MemoryTracker::Refresh() {
  uint64_t by_subsystem[kMemSubsystemCount] = {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Reporter& r : reporters_) {
      r.last_bytes = r.fn ? r.fn() : 0;
      r.peak_bytes = std::max(r.peak_bytes, r.last_bytes);
      by_subsystem[static_cast<size_t>(r.subsystem)] += r.last_bytes;
      if (r.gauge == nullptr) {
        r.gauge = MetricsRegistry::Global().GetGauge(
            EntryGaugeName(r.subsystem, r.collection));
      }
      r.gauge->Set(static_cast<double>(r.last_bytes));
    }
  }
  uint64_t total = 0;
  for (size_t i = 0; i < kMemSubsystemCount; ++i) {
    reported_[i].store(by_subsystem[i], std::memory_order_relaxed);
    uint64_t subsystem_now = by_subsystem[i];
    const int64_t charged = charged_[i].load(std::memory_order_relaxed);
    if (charged > 0) subsystem_now += static_cast<uint64_t>(charged);
    RatchetSubsystemPeak(i, subsystem_now);
    total += subsystem_now;
  }
  reported_total_.store(total, std::memory_order_relaxed);
  RatchetTotals(total);
  FSDM_GAUGE_SET("fsdm_mem_total_bytes", static_cast<double>(total));
  FSDM_GAUGE_SET("fsdm_mem_peak_bytes", static_cast<double>(PeakBytes()));
  return total;
}

uint64_t MemoryTracker::CurrentBytes() const {
  // reported_total_ already folds in the charges live at the last
  // Refresh(); adding today's charges over-counts by that stale slice
  // until the next Refresh. Recompute from the per-subsystem splits
  // instead: reported reporter bytes + live charges.
  uint64_t total = 0;
  for (size_t i = 0; i < kMemSubsystemCount; ++i) {
    total += reported_[i].load(std::memory_order_relaxed);
    const int64_t charged = charged_[i].load(std::memory_order_relaxed);
    if (charged > 0) total += static_cast<uint64_t>(charged);
  }
  return total;
}

uint64_t MemoryTracker::SubsystemBytes(MemSubsystem s) const {
  const size_t idx = static_cast<size_t>(s);
  uint64_t total = reported_[idx].load(std::memory_order_relaxed);
  const int64_t charged = charged_[idx].load(std::memory_order_relaxed);
  if (charged > 0) total += static_cast<uint64_t>(charged);
  return total;
}

std::vector<MemoryTracker::Entry> MemoryTracker::Entries() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(reporters_.size() + 2);
    for (const Reporter& r : reporters_) {
      out.push_back({r.subsystem, r.collection, r.last_bytes, r.peak_bytes});
    }
  }
  for (size_t i = 0; i < kMemSubsystemCount; ++i) {
    const int64_t charged = charged_[i].load(std::memory_order_relaxed);
    const uint64_t peak = charged_peak_[i].load(std::memory_order_relaxed);
    if (charged <= 0 && peak == 0) continue;
    out.push_back({static_cast<MemSubsystem>(i), "-",
                   charged > 0 ? static_cast<uint64_t>(charged) : 0, peak});
  }
  return out;
}

size_t MemoryTracker::reporter_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reporters_.size();
}

void MemoryTracker::ResetPeaks() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Reporter& r : reporters_) r.peak_bytes = r.last_bytes;
  for (size_t i = 0; i < kMemSubsystemCount; ++i) {
    charged_peak_[i].store(0, std::memory_order_relaxed);
    subsystem_peak_[i].store(0, std::memory_order_relaxed);
  }
  peak_total_.store(0, std::memory_order_relaxed);
}

void MemoryTracker::ResetCharges() {
  for (size_t i = 0; i < kMemSubsystemCount; ++i) {
    charged_[i].store(0, std::memory_order_relaxed);
    charged_peak_[i].store(0, std::memory_order_relaxed);
  }
}

#endif  // !FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry
