#ifndef FSDM_TELEMETRY_LOG_TABLE_H_
#define FSDM_TELEMETRY_LOG_TABLE_H_

#include "rdbms/executor.h"

namespace fsdm::telemetry {

/// Structured engine log as a relation (ISSUE 10 tentpole). One row per
/// live log record across the per-thread rings, merged and sorted by
/// (TS_US, THREAD). Schema: (TS_US, THREAD, LEVEL, COMPONENT, EVENT_ID,
/// MESSAGE, ARGS) — LEVEL is "debug"/"info"/"warn"/"error", EVENT_ID the
/// call site's stable id (README "Log event reference"), ARGS the {"k":v}
/// JSON rendering of the record's arg slots.
inline constexpr const char* kLogTableName = "TELEMETRY$LOG";
rdbms::OperatorPtr LogScan();

/// Incident repository ring as a relation (ISSUE 10 tentpole). Schema:
/// (ID, TS_US, TYPE, SUBJECT, REASON, BUNDLE_PATH, LOG_RECORDS) —
/// BUNDLE_PATH is NULL when on-disk capture is disabled or the write
/// failed; LOG_RECORDS counts the log slice captured into the bundle.
inline constexpr const char* kIncidentsTableName = "TELEMETRY$INCIDENTS";
rdbms::OperatorPtr IncidentsScan();

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_LOG_TABLE_H_
