#include "telemetry/log_table.h"

#include <memory>
#include <string>
#include <vector>

#include "telemetry/incident.h"
#include "telemetry/log.h"

namespace fsdm::telemetry {

namespace {

class LogScanOp final : public rdbms::Operator {
 public:
  LogScanOp() {
    schema_ = rdbms::Schema({"TS_US", "THREAD", "LEVEL", "COMPONENT",
                             "EVENT_ID", "MESSAGE", "ARGS"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const LogRecord& r : EngineLog::Global().Snapshot()) {
      rows_.push_back(
          {Value::Int64(static_cast<int64_t>(r.ts_us)),
           Value::Int64(static_cast<int64_t>(r.tid)),
           Value::String(LogLevelName(r.level)),
           Value::String(r.component),
           Value::Int64(static_cast<int64_t>(r.event_id)),
           Value::String(r.message),
           r.has_args() ? Value::String(r.ArgsJson()) : Value::Null()});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

class IncidentsScanOp final : public rdbms::Operator {
 public:
  IncidentsScanOp() {
    schema_ = rdbms::Schema({"ID", "TS_US", "TYPE", "SUBJECT", "REASON",
                             "BUNDLE_PATH", "LOG_RECORDS"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const Incident& inc : IncidentManager::Global().Snapshot()) {
      rows_.push_back(
          {Value::Int64(static_cast<int64_t>(inc.id)),
           Value::Int64(static_cast<int64_t>(inc.ts_us)),
           Value::String(inc.type), Value::String(inc.subject),
           Value::String(inc.reason),
           inc.bundle_path.empty() ? Value::Null()
                                   : Value::String(inc.bundle_path),
           Value::Int64(static_cast<int64_t>(inc.log_records))});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr LogScan() { return std::make_unique<LogScanOp>(); }

rdbms::OperatorPtr IncidentsScan() {
  return std::make_unique<IncidentsScanOp>();
}

}  // namespace fsdm::telemetry
