#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <fstream>

#include "telemetry/activity.h"

namespace fsdm::telemetry {

namespace {

/// The macro back end's thread_local ring cache: one registry lookup per
/// thread lifetime, a plain pointer read afterwards.
ThreadRing* LocalRing() {
  thread_local ThreadRing* ring =
      FlightRecorder::Global().RingForThisThread();
  return ring;
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadRing
// ---------------------------------------------------------------------------

ThreadRing::ThreadRing(uint32_t tid, size_t capacity) : tid_(tid) {
  slots_.resize(capacity == 0 ? 1 : capacity);
}

std::vector<TraceEvent> ThreadRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const size_t cap = slots_.size();
  const uint64_t live = next_ < cap ? next_ : cap;
  out.reserve(live);
  // Oldest live event first. When wrapped, that's slot next_ % cap.
  const uint64_t first = next_ - live;
  for (uint64_t i = first; i < next_; ++i) out.push_back(slots_[i % cap]);
  return out;
}

// ---------------------------------------------------------------------------
// ScopedTraceSpan
// ---------------------------------------------------------------------------

ScopedTraceSpan::ScopedTraceSpan(const char* category, const char* name)
    : live_(FlightRecorder::Global().armed()),
      category_(category),
      name_(name) {
  if (!live_) return;
  start_us_ = MonotonicNowUs();
  FlightRecorder::Emit(LocalRing(), TracePhase::kSpanBegin, category_, name_);
}

ScopedTraceSpan::~ScopedTraceSpan() {
  // live_ was latched at construction so begins and ends stay balanced
  // even if the recorder is disarmed mid-span.
  if (!live_) return;
  ThreadRing* ring = LocalRing();
  const uint64_t now = MonotonicNowUs();
  TraceEvent e;
  e.ts_us = now;
  e.dur_us = now - start_us_;
  e.tid = ring->tid();
  e.phase = TracePhase::kSpanEnd;
  e.category = category_;
  e.name = name_;
  for (int i = 0; i < nargs_; ++i) e.args[i] = args_[i];
  ring->Push(e);
}

void ScopedTraceSpan::AddNumberArg(const char* key, double v) {
  if (!live_ || nargs_ >= 2) return;
  args_[nargs_++].SetNumber(key, v);
}

void ScopedTraceSpan::AddTextArg(const char* key, std::string_view v) {
  if (!live_ || nargs_ >= 2) return;
  args_[nargs_++].SetText(key, v);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

ThreadRing* FlightRecorder::RingForThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<ThreadRing>(next_tid_++, ring_capacity_));
  return rings_.back().get();
}

void FlightRecorder::SetRingCapacity(size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = events == 0 ? 1 : events;
}

void FlightRecorder::Emit(ThreadRing* ring, TracePhase phase,
                          const char* category, const char* name,
                          uint64_t dur_us) {
  TraceEvent e;
  e.ts_us = MonotonicNowUs();
  e.dur_us = dur_us;
  e.tid = ring->tid();
  e.phase = phase;
  e.category = category;
  e.name = name;
  ring->Push(e);
}

void EmitInstant(const char* category, const char* name) {
  FlightRecorder::Emit(LocalRing(), TracePhase::kInstant, category, name);
}

void EmitInstantText(const char* category, const char* name, const char* key,
                     std::string_view text) {
  ThreadRing* ring = LocalRing();
  TraceEvent e;
  e.ts_us = MonotonicNowUs();
  e.tid = ring->tid();
  e.phase = TracePhase::kInstant;
  e.category = category;
  e.name = name;
  e.args[0].SetText(key, text);
  ring->Push(e);
}

void EmitCounterSample(const char* category, const char* name, double value) {
  ThreadRing* ring = LocalRing();
  TraceEvent e;
  e.ts_us = MonotonicNowUs();
  e.tid = ring->tid();
  e.phase = TracePhase::kCounter;
  e.category = category;
  e.name = name;
  e.args[0].SetNumber("value", value);
  ring->Push(e);
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    // A snapshot walks every thread ring under the recorder mutex — a
    // query thread landing here (slow-query capture) is lock-waiting.
    ScopedWaitState wait(WaitState::kLockWait);
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::vector<TraceEvent> part = ring->Snapshot();
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });
  return out;
}

std::vector<TraceEvent> FlightRecorder::SnapshotSince(uint64_t since_us) const {
  std::vector<TraceEvent> all = Snapshot();
  std::vector<TraceEvent> out;
  out.reserve(all.size());
  for (const TraceEvent& e : all) {
    if (e.ts_us >= since_us) out.push_back(e);
  }
  return out;
}

uint64_t FlightRecorder::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) ring->Clear();
}

namespace {

/// Repairs one thread's event sequence so span begins/ends balance:
/// orphan ends (their begin was overwritten by wrap-around) are dropped,
/// and begins left open at the snapshot edge get a synthetic zero-length
/// end. Chrome refuses to nest spans correctly otherwise.
std::vector<TraceEvent> BalanceThread(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  std::vector<const TraceEvent*> open;
  uint64_t last_ts = 0;
  for (const TraceEvent& e : events) {
    last_ts = std::max(last_ts, e.ts_us);
    if (e.phase == TracePhase::kSpanBegin) {
      open.push_back(&e);
      out.push_back(e);
    } else if (e.phase == TracePhase::kSpanEnd) {
      if (open.empty()) continue;  // orphan end: begin already dropped
      open.pop_back();
      out.push_back(e);
    } else {
      out.push_back(e);
    }
  }
  // Close innermost-first so the synthetic ends nest correctly.
  for (auto it = open.rbegin(); it != open.rend(); ++it) {
    TraceEvent end = **it;
    end.phase = TracePhase::kSpanEnd;
    end.ts_us = last_ts;
    end.dur_us = last_ts - (*it)->ts_us;
    end.args[0] = TraceArg();
    end.args[1] = TraceArg();
    end.args[0].SetText("note", "unclosed");
    out.push_back(end);
  }
  return out;
}

}  // namespace

std::string FlightRecorder::ChromeTraceJson() const {
  std::vector<TraceEvent> merged = Snapshot();

  // Split per thread (balance repair is a per-thread property), repair,
  // then re-merge in timestamp order.
  std::vector<uint32_t> tids;
  for (const TraceEvent& e : merged) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::vector<TraceEvent> repaired;
  repaired.reserve(merged.size());
  for (uint32_t tid : tids) {
    std::vector<TraceEvent> thread_events;
    for (const TraceEvent& e : merged) {
      if (e.tid == tid) thread_events.push_back(e);
    }
    std::vector<TraceEvent> balanced = BalanceThread(thread_events);
    repaired.insert(repaired.end(), balanced.begin(), balanced.end());
  }
  std::stable_sort(repaired.begin(), repaired.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : repaired) {
    if (!first) out += ",\n";
    first = false;
    AppendChromeTraceEvent(&out, e);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool FlightRecorder::DumpChromeTrace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.is_open()) return false;
  f << ChromeTraceJson();
  f.flush();
  return f.good();
}

}  // namespace fsdm::telemetry
