#include "telemetry/trace_event.h"

#include <chrono>

#include "telemetry/telemetry.h"

namespace fsdm::telemetry {

uint64_t MonotonicNowUs() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

namespace {

void AppendArg(std::string* out, const TraceArg& a) {
  *out += '"';
  *out += JsonEscape(a.key);
  *out += "\":";
  if (a.is_text) {
    *out += '"';
    *out += JsonEscape(a.text);
    *out += '"';
  } else {
    AppendJsonNumber(out, a.number);
  }
}

}  // namespace

std::string TraceEvent::ArgsJson() const {
  std::string out = "{";
  for (const TraceArg& a : args) {
    if (a.key == nullptr) break;
    if (out.size() > 1) out += ",";
    AppendArg(&out, a);
  }
  out += "}";
  return out;
}

void AppendChromeTraceEvent(std::string* out, const TraceEvent& e) {
  *out += "{\"ph\":\"";
  *out += static_cast<char>(e.phase);
  *out += "\",\"ts\":";
  AppendJsonNumber(out, static_cast<double>(e.ts_us));
  *out += ",\"pid\":1,\"tid\":";
  AppendJsonNumber(out, static_cast<double>(e.tid));
  *out += ",\"cat\":\"" + JsonEscape(e.category) + "\"";
  *out += ",\"name\":\"" + JsonEscape(e.name) + "\"";
  // Chrome's B/E pairing carries duration implicitly; we still attach the
  // measured dur on E so the raw JSON is self-describing.
  if (e.phase == TracePhase::kSpanEnd && e.dur_us > 0) {
    *out += ",\"args\":{\"dur_us\":";
    AppendJsonNumber(out, static_cast<double>(e.dur_us));
    for (const TraceArg& a : e.args) {
      if (a.key == nullptr) break;
      *out += ",";
      AppendArg(out, a);
    }
    *out += "}";
  } else if (e.has_args()) {
    *out += ",\"args\":" + e.ArgsJson();
  }
  *out += "}";
}

}  // namespace fsdm::telemetry
