#include "telemetry/log.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

namespace fsdm::telemetry {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

LogLevel LogLevelFromEnv(LogLevel def) {
  const char* env = std::getenv("FSDM_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return def;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return def;
}

namespace {

void AppendLogArg(std::string* out, const TraceArg& a) {
  *out += '"';
  *out += JsonEscape(a.key);
  *out += "\":";
  if (a.is_text) {
    *out += '"';
    *out += JsonEscape(a.text);
    *out += '"';
  } else {
    AppendJsonNumber(out, a.number);
  }
}

}  // namespace

std::string LogRecord::ArgsJson() const {
  std::string out = "{";
  for (const TraceArg& a : args) {
    if (a.key == nullptr) break;
    if (out.size() > 1) out += ",";
    AppendLogArg(&out, a);
  }
  out += "}";
  return out;
}

std::string LogRecord::ToJsonLine() const {
  std::string out = "{\"ts_us\":";
  AppendJsonNumber(&out, static_cast<double>(ts_us));
  out += ",\"thread\":";
  AppendJsonNumber(&out, static_cast<double>(tid));
  out += ",\"level\":\"";
  out += LogLevelName(level);
  out += "\",\"component\":\"";
  out += JsonEscape(component);
  out += "\",\"event_id\":";
  AppendJsonNumber(&out, static_cast<double>(event_id));
  out += ",\"message\":\"";
  out += JsonEscape(message);
  out += "\",\"args\":";
  out += ArgsJson();
  out += "}";
  return out;
}

#if !defined(FSDM_TELEMETRY_DISABLED)

std::vector<LogRecord> LogRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  const size_t cap = slots_.size();
  const size_t live = next_ < cap ? static_cast<size_t>(next_) : cap;
  out.reserve(live);
  const uint64_t first = next_ < cap ? 0 : next_ - cap;
  for (uint64_t i = first; i < next_; ++i) {
    out.push_back(slots_[i % cap]);
  }
  return out;
}

EngineLog& EngineLog::Global() {
  static EngineLog* log = new EngineLog();
  return *log;
}

EngineLog::EngineLog()
    : level_(static_cast<uint8_t>(LogLevelFromEnv(LogLevel::kInfo))) {}

LogRing* EngineLog::RingForThisThread() {
  thread_local LogRing* cached = nullptr;
  if (cached != nullptr) return cached;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<LogRing>(next_tid_++, ring_capacity_));
  cached = rings_.back().get();
  return cached;
}

void EngineLog::SetRingCapacity(size_t records) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = records > 0 ? records : 1;
}

size_t EngineLog::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

void EngineLog::SetRateLimit(double burst, double per_sec) {
  std::lock_guard<std::mutex> lock(bucket_mu_);
  bucket_burst_ = burst > 0 ? burst : 1;
  bucket_per_sec_ = per_sec >= 0 ? per_sec : 0;
  buckets_.clear();
}

void EngineLog::SetJsonlSink(std::string path) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  jsonl_path_ = std::move(path);
}

std::string EngineLog::jsonl_sink() const {
  std::lock_guard<std::mutex> lock(sink_mu_);
  return jsonl_path_;
}

bool EngineLog::Admit(uint16_t event_id, uint64_t now_us) {
  std::lock_guard<std::mutex> lock(bucket_mu_);
  auto [it, inserted] =
      buckets_.try_emplace(event_id, TokenBucket{bucket_burst_, now_us});
  TokenBucket& b = it->second;
  if (!inserted) {
    const double refill = static_cast<double>(now_us - b.last_us) *
                          bucket_per_sec_ / 1e6;
    b.tokens = std::min(bucket_burst_, b.tokens + refill);
    b.last_us = now_us;
  }
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

void EngineLog::EmitImpl(LogLevel level, const char* component,
                         uint16_t event_id, std::string_view msg,
                         const LogArg* a0, const LogArg* a1) {
  const uint64_t now = MonotonicNowUs();
  if (!Admit(event_id, now)) {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    FSDM_COUNT("fsdm_log_dropped_total", 1);
    return;
  }
  LogRing* ring = RingForThisThread();
  LogRecord rec;
  rec.ts_us = now;
  rec.tid = ring->tid();
  rec.level = level;
  rec.event_id = event_id;
  rec.component = component;
  rec.SetMessage(msg);
  int slot = 0;
  for (const LogArg* a : {a0, a1}) {
    if (a == nullptr || a->key == nullptr) continue;
    if (a->is_text) {
      rec.args[slot].SetText(a->key, a->text);
    } else {
      rec.args[slot].SetNumber(a->key, a->number);
    }
    ++slot;
  }
  if (ring->Push(rec)) {
    FSDM_COUNT("fsdm_log_dropped_total", 1);
  }
  total_records_.fetch_add(1, std::memory_order_relaxed);
  FSDM_COUNT("fsdm_log_records_total", 1);

  // JSONL sink: open-append per record. Log volume is lifecycle/error
  // paths (and rate-limited), so the open cost is immaterial next to the
  // durability of having the line on disk when the process dies.
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (!jsonl_path_.empty()) {
    std::ofstream out(jsonl_path_, std::ios::app);
    if (out) out << rec.ToJsonLine() << "\n";
  }
}

std::vector<LogRecord> EngineLog::Snapshot() const {
  std::vector<LogRecord> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<LogRing>& ring : rings_) {
      std::vector<LogRecord> part = ring->Snapshot();
      merged.insert(merged.end(), part.begin(), part.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });
  return merged;
}

std::vector<LogRecord> EngineLog::SnapshotLast(size_t n) const {
  std::vector<LogRecord> all = Snapshot();
  if (all.size() > n) {
    all.erase(all.begin(), all.end() - static_cast<ptrdiff_t>(n));
  }
  return all;
}

uint64_t EngineLog::TotalDropped() const {
  uint64_t total = rate_limited_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<LogRing>& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

void EngineLog::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::unique_ptr<LogRing>& ring : rings_) ring->Clear();
  }
  {
    std::lock_guard<std::mutex> lock(bucket_mu_);
    buckets_.clear();
  }
  total_records_.store(0, std::memory_order_relaxed);
  rate_limited_.store(0, std::memory_order_relaxed);
}

#endif  // !FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry
