#include "telemetry/workload_repo.h"

#include <algorithm>

#include "telemetry/memory_tracker.h"
#include "telemetry/trace_event.h"

namespace fsdm::telemetry {

std::vector<std::pair<std::string, uint64_t>> TopAshQueries(
    const AshAggregate& agg, size_t n) {
  std::vector<std::pair<std::string, uint64_t>> out(agg.by_query.begin(),
                                                    agg.by_query.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

double AshShardSkew(const AshAggregate& agg) {
  if (agg.by_shard.empty()) return 0;
  uint64_t max_samples = 0;
  uint64_t total = 0;
  for (const auto& [shard, samples] : agg.by_shard) {
    max_samples = std::max(max_samples, samples);
    total += samples;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(agg.by_shard.size());
  return mean > 0 ? static_cast<double>(max_samples) / mean : 0;
}

std::string AshAggregateJson(const AshAggregate& agg) {
  std::string out = "{\"db_samples\":" + std::to_string(agg.db_samples);

  out += ",\"wait_classes\":{";
  bool first = true;
  for (size_t i = 0; i < kWaitStateCount; ++i) {
    if (agg.by_state[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + std::string(WaitClassName(static_cast<WaitState>(i))) +
           "\":" + std::to_string(agg.by_state[i]);
  }
  out += "}";

  out += ",\"time_model\":[";
  first = true;
  for (const auto& [coll, states] : agg.by_collection) {
    uint64_t coll_total = 0;
    for (uint64_t c : states) coll_total += c;
    for (size_t i = 0; i < kWaitStateCount; ++i) {
      if (states[i] == 0) continue;
      if (!first) out += ",";
      first = false;
      const auto state = static_cast<WaitState>(i);
      out += "{\"collection\":\"" + JsonEscape(coll) + "\",\"state\":\"" +
             WaitStateName(state) + "\",\"class\":\"" + WaitClassName(state) +
             "\",\"samples\":" + std::to_string(states[i]) + ",\"pct\":";
      AppendJsonNumber(&out, coll_total > 0
                                 ? 100.0 * static_cast<double>(states[i]) /
                                       static_cast<double>(coll_total)
                                 : 0.0);
      out += "}";
    }
  }
  out += "]";

  out += ",\"top_queries\":[";
  first = true;
  for (const auto& [query, samples] : TopAshQueries(agg, 10)) {
    if (!first) out += ",";
    first = false;
    out += "{\"query\":\"" + JsonEscape(query) +
           "\",\"samples\":" + std::to_string(samples) + "}";
  }
  out += "]";

  out += ",\"shard_samples\":{";
  first = true;
  for (const auto& [shard, samples] : agg.by_shard) {
    if (!first) out += ",";
    first = false;
    out += "\"" + std::to_string(shard) + "\":" + std::to_string(samples);
  }
  out += "}}";
  return out;
}

std::vector<std::pair<std::string, uint64_t>> WorkloadSnapshot::TopQueries(
    size_t n) const {
  return TopAshQueries(ash, n);
}

double WorkloadSnapshot::ShardSkew() const { return AshShardSkew(ash); }

WorkloadRepository& WorkloadRepository::Global() {
  static WorkloadRepository* repo = new WorkloadRepository();
  return *repo;
}

uint64_t WorkloadRepository::TakeSnapshot(std::string label) {
  // The sampler reads are taken before the repository mutex: Snapshot()
  // locks the ring mutex and must not nest inside ours (and vice versa).
  ActivitySampler& sampler = ActivitySampler::Global();
  std::vector<AshSample> samples = sampler.Snapshot();
  const uint64_t ticks = sampler.ticks();
  MetricsSnapshot metrics = TakeMetricsSnapshot(MetricsRegistry::Global());
  // Poll the memory reporters outside our mutex too (a reporter could, in
  // principle, take a snapshot-reading lock of its own).
  const uint64_t mem_total = MemoryTracker::Global().Refresh();
  const uint64_t mem_peak = MemoryTracker::Global().PeakBytes();

  std::lock_guard<std::mutex> lock(mu_);
  WorkloadSnapshot snap;
  snap.id = next_id_++;
  snap.ts_us = MonotonicNowUs();
  snap.label = std::move(label);
  snap.metrics = std::move(metrics);
  snap.sampler_ticks = ticks;
  snap.mem_total_bytes = mem_total;
  snap.mem_peak_bytes = mem_peak;
  snap.ash = AggregateAsh(samples, last_ts_us_, snap.ts_us);
  last_ts_us_ = snap.ts_us;
  const uint64_t id = snap.id;
  ring_.push_back(std::move(snap));
  if (ring_.size() > capacity_) ring_.pop_front();
  return id;
}

size_t WorkloadRepository::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<WorkloadSnapshot> WorkloadRepository::Snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::string WorkloadRepository::SnapshotJson(const WorkloadSnapshot& snap) {
  std::string out = "{\"id\":" + std::to_string(snap.id);
  out += ",\"ts_us\":" + std::to_string(snap.ts_us);
  out += ",\"label\":\"" + JsonEscape(snap.label) + "\"";
  out += ",\"sampler_ticks\":" + std::to_string(snap.sampler_ticks);
  out += ",\"mem_total_bytes\":" + std::to_string(snap.mem_total_bytes);
  out += ",\"mem_peak_bytes\":" + std::to_string(snap.mem_peak_bytes);
  // The window's time model, in the same shape the bench-level "ash"
  // section uses (scripts/ash_report.py reads both).
  out += ",\"ash\":" + AshAggregateJson(snap.ash);

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.metrics.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "}";

  // Histogram (count, sum) pairs make mean-latency deltas derivable from
  // any two snapshots (the histogram-sum satellite's snapshot surface).
  out += ",\"histograms\":{";
  first = true;
  for (const auto& [name, point] : snap.metrics.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":{\"count\":" + std::to_string(point.count) + ",\"sum\":";
    AppendJsonNumber(&out, point.sum);
    out += "}";
  }
  out += "}}";
  return out;
}

std::string WorkloadRepository::ToJson() const {
  std::vector<WorkloadSnapshot> snaps = Snapshots();
  std::string out = "{\"snapshots\":[";
  for (size_t i = 0; i < snaps.size(); ++i) {
    if (i > 0) out += ",";
    out += SnapshotJson(snaps[i]);
  }
  out += "]}";
  return out;
}

void WorkloadRepository::SetCapacity(size_t snapshots) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = snapshots == 0 ? 1 : snapshots;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void WorkloadRepository::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  last_ts_us_ = 0;
}

}  // namespace fsdm::telemetry
