#ifndef FSDM_TELEMETRY_MEMORY_TRACKER_H_
#define FSDM_TELEMETRY_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

/// Engine-wide memory attribution (ISSUE 9 tentpole): one process-wide
/// tracker that answers "where did the RAM go" per subsystem and per
/// collection. Two charging models coexist:
///
///  - *Reporters* (pull model, `MemoryScope`): long-lived structures —
///    table heap, search-index postings, DataGuide, IMC, path stats, WAL —
///    register a callback returning their current footprint. `Refresh()`
///    polls every reporter, publishes `fsdm_mem_bytes{subsystem,collection}`
///    gauges, and ratchets peaks. Reporters use deterministic *size-based*
///    formulas (string `size()`, not `capacity()`), so two reads with no
///    intervening DML agree exactly and the TELEMETRY$MEMORY relation
///    reconciles with a direct `MemoryBytes()` walk.
///  - *Charges* (push model, `MemoryCharge`): transient allocations with a
///    scoped lifetime — OSON images materialized during DML, a plan's
///    buffered working set during a morsel-parallel drain — add/subtract an
///    atomic per-subsystem counter. Charges ratchet peaks immediately (a
///    drain's working set would otherwise vanish before anyone refreshes).
///
/// `CurrentBytes()` (last refreshed reporter total + live charges) is one
/// atomic load plus a handful of relaxed loads, cheap enough for the routed
/// query probe to sample per drain for per-query PEAK_MEM_BYTES.
///
/// Under -DFSDM_TELEMETRY=OFF everything compiles to empty inline stubs.

namespace fsdm::telemetry {

/// The subsystems the engine attributes memory to. Names (MemSubsystemName)
/// are the `subsystem` gauge label and the TELEMETRY$MEMORY SUBSYSTEM
/// column.
enum class MemSubsystem : uint8_t {
  kTableHeap = 0,     ///< stored rows in rdbms::Table heaps
  kOsonVc,            ///< OSON images materialized through the hidden VC
  kIndexPostings,     ///< JsonSearchIndex posting lists
  kDataGuide,         ///< DataGuide path entries (+ $DG side table rows)
  kImc,               ///< in-memory columnar store vectors
  kPathStats,         ///< PathStatsRepository sketches and histograms
  kWalBuffers,        ///< WAL writer state (segment map, append window)
  kPlanWorkingSet,    ///< buffered rows inside executing plans
};

inline constexpr size_t kMemSubsystemCount = 8;

/// "table-heap", "oson-vc", "index-postings", "dataguide", "imc",
/// "path-stats", "wal-buffers", "plan-working-set".
const char* MemSubsystemName(MemSubsystem s);

/// Deterministic accounting footprint of an owned string: the character
/// payload by size(), not capacity(), so every copy of the same content
/// charges identically (the incremental-vs-recompute reconciliation in the
/// accounting unit tests depends on this).
inline uint64_t OwnedStringBytes(const std::string& s) {
  return sizeof(std::string) + s.size();
}

#if !defined(FSDM_TELEMETRY_DISABLED)

class MemoryTracker {
 public:
  /// One tracked accounting entry, as TELEMETRY$MEMORY renders it. Charge
  /// (push-model) subsystems appear with collection "-".
  struct Entry {
    MemSubsystem subsystem = MemSubsystem::kTableHeap;
    std::string collection;
    uint64_t bytes = 0;
    uint64_t peak_bytes = 0;
  };

  static MemoryTracker& Global();

  /// Registers a reporter; returns its id (0 is never issued). Prefer the
  /// RAII MemoryScope over calling this directly.
  uint64_t RegisterReporter(MemSubsystem subsystem, std::string collection,
                            std::function<uint64_t()> fn);
  void UnregisterReporter(uint64_t id);

  /// Transient charge/release for push-model subsystems. Charge ratchets
  /// the subsystem and grand-total peaks immediately.
  void Charge(MemSubsystem subsystem, uint64_t bytes);
  void Release(MemSubsystem subsystem, uint64_t bytes);

  /// Polls every reporter, updates the per-entry
  /// `fsdm_mem_bytes{subsystem,collection}` gauges plus the
  /// fsdm_mem_total_bytes / fsdm_mem_peak_bytes rollups, ratchets peaks,
  /// and returns the grand total (reporters + live charges).
  uint64_t Refresh();

  /// Grand total as of the last Refresh() plus live charges. Cheap (no
  /// reporter polling, no locks) — safe on the drain path.
  uint64_t CurrentBytes() const;
  /// High-water CurrentBytes() since process start (or ResetPeaks()).
  uint64_t PeakBytes() const {
    return peak_total_.load(std::memory_order_relaxed);
  }
  /// Last refreshed bytes for one subsystem (reporters + live charges).
  uint64_t SubsystemBytes(MemSubsystem s) const;
  /// High-water of SubsystemBytes(s), ratcheted at Refresh() and Charge()
  /// time — an actual simultaneous per-subsystem peak, unlike summing
  /// per-entry peaks (which were reached at different times and can exceed
  /// any real high-water). The bench "memory" section reports this.
  uint64_t SubsystemPeakBytes(MemSubsystem s) const {
    return subsystem_peak_[static_cast<size_t>(s)].load(
        std::memory_order_relaxed);
  }

  /// Every entry: one per reporter (as of its last Refresh) plus one per
  /// charge-model subsystem with a nonzero current or peak.
  std::vector<Entry> Entries() const;

  size_t reporter_count() const;

  /// Test hooks. ResetPeaks zeroes every high-water mark; ResetCharges
  /// zeroes the push-model counters (a leak-check for paired
  /// Charge/Release would fire here, so tests call it between cases).
  void ResetPeaks();
  void ResetCharges();

 private:
  MemoryTracker() = default;

  struct Reporter {
    uint64_t id = 0;
    MemSubsystem subsystem = MemSubsystem::kTableHeap;
    std::string collection;
    std::function<uint64_t()> fn;
    uint64_t last_bytes = 0;
    uint64_t peak_bytes = 0;
    Gauge* gauge = nullptr;  // resolved lazily on first Refresh
  };

  void RatchetTotals(uint64_t current);
  void RatchetSubsystemPeak(size_t idx, uint64_t current);

  mutable std::mutex mu_;  // reporters_ and their last/peak fields
  std::vector<Reporter> reporters_;
  uint64_t next_id_ = 1;

  // Push-model live charges and their high-water marks, by subsystem.
  std::atomic<int64_t> charged_[kMemSubsystemCount] = {};
  std::atomic<uint64_t> charged_peak_[kMemSubsystemCount] = {};
  // Reporter bytes per subsystem as of the last Refresh().
  std::atomic<uint64_t> reported_[kMemSubsystemCount] = {};
  // High-water of SubsystemBytes (reported + live charges), per subsystem.
  std::atomic<uint64_t> subsystem_peak_[kMemSubsystemCount] = {};
  std::atomic<uint64_t> reported_total_{0};
  std::atomic<uint64_t> peak_total_{0};
};

/// RAII reporter registration: alive while the owning structure is.
class MemoryScope {
 public:
  MemoryScope() = default;
  MemoryScope(MemSubsystem subsystem, std::string collection,
              std::function<uint64_t()> fn)
      : id_(MemoryTracker::Global().RegisterReporter(
            subsystem, std::move(collection), std::move(fn))) {}
  ~MemoryScope() { Reset(); }

  MemoryScope(MemoryScope&& other) noexcept : id_(other.id_) {
    other.id_ = 0;
  }
  MemoryScope& operator=(MemoryScope&& other) noexcept {
    if (this != &other) {
      Reset();
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }
  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

  void Reset() {
    if (id_ != 0) MemoryTracker::Global().UnregisterReporter(id_);
    id_ = 0;
  }
  bool engaged() const { return id_ != 0; }

 private:
  uint64_t id_ = 0;
};

/// RAII transient charge: charges on construction (or Add), releases the
/// accumulated total on destruction.
class MemoryCharge {
 public:
  MemoryCharge() = default;
  explicit MemoryCharge(MemSubsystem subsystem, uint64_t bytes = 0)
      : subsystem_(subsystem) {
    Add(bytes);
  }
  ~MemoryCharge() { Reset(); }

  MemoryCharge(MemoryCharge&& other) noexcept
      : subsystem_(other.subsystem_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  MemoryCharge& operator=(MemoryCharge&& other) noexcept {
    if (this != &other) {
      Reset();
      subsystem_ = other.subsystem_;
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  void Add(uint64_t bytes) {
    if (bytes == 0) return;
    MemoryTracker::Global().Charge(subsystem_, bytes);
    bytes_ += bytes;
  }
  void Reset() {
    if (bytes_ != 0) MemoryTracker::Global().Release(subsystem_, bytes_);
    bytes_ = 0;
  }
  uint64_t bytes() const { return bytes_; }

 private:
  MemSubsystem subsystem_ = MemSubsystem::kPlanWorkingSet;
  uint64_t bytes_ = 0;
};

#else  // FSDM_TELEMETRY_DISABLED

class MemoryTracker {
 public:
  struct Entry {
    MemSubsystem subsystem = MemSubsystem::kTableHeap;
    std::string collection;
    uint64_t bytes = 0;
    uint64_t peak_bytes = 0;
  };

  static MemoryTracker& Global() {
    static MemoryTracker t;
    return t;
  }
  uint64_t RegisterReporter(MemSubsystem, std::string,
                            std::function<uint64_t()>) {
    return 0;
  }
  void UnregisterReporter(uint64_t) {}
  void Charge(MemSubsystem, uint64_t) {}
  void Release(MemSubsystem, uint64_t) {}
  uint64_t Refresh() { return 0; }
  uint64_t CurrentBytes() const { return 0; }
  uint64_t PeakBytes() const { return 0; }
  uint64_t SubsystemBytes(MemSubsystem) const { return 0; }
  uint64_t SubsystemPeakBytes(MemSubsystem) const { return 0; }
  std::vector<Entry> Entries() const { return {}; }
  size_t reporter_count() const { return 0; }
  void ResetPeaks() {}
  void ResetCharges() {}
};

class MemoryScope {
 public:
  MemoryScope() = default;
  MemoryScope(MemSubsystem, std::string, std::function<uint64_t()>) {}
  void Reset() {}
  bool engaged() const { return false; }
};

class MemoryCharge {
 public:
  MemoryCharge() = default;
  explicit MemoryCharge(MemSubsystem, uint64_t = 0) {}
  void Add(uint64_t) {}
  void Reset() {}
  uint64_t bytes() const { return 0; }
};

#endif  // FSDM_TELEMETRY_DISABLED

}  // namespace fsdm::telemetry

#endif  // FSDM_TELEMETRY_MEMORY_TRACKER_H_
