#ifndef FSDM_SQL_PARSER_H_
#define FSDM_SQL_PARSER_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"
#include "sqljson/operators.h"

namespace fsdm::sql {

/// A small SQL text interface over the executor — the "declarative set
/// query language" face of the library. Supported subset (enough for every
/// query shape in the paper's evaluation):
///
///   SELECT <expr [AS alias], ... | *>
///   FROM <table>
///   [WHERE <expr>]
///   [GROUP BY <expr, ...>]
///   [ORDER BY <expr> [ASC|DESC], ...]
///   [LIMIT <n>]
///
/// Expressions: literals (numbers, 'strings', TRUE/FALSE/NULL), column
/// identifiers, + - * /, comparison (= != <> < <= > >=), AND/OR/NOT,
/// IN (...), IS [NOT] NULL, scalar functions (SUBSTR, INSTR, LENGTH,
/// UPPER, LOWER, CONCAT, NVL, TO_NUMBER), aggregates (COUNT(*), COUNT,
/// SUM, MIN, MAX, AVG), and the SQL/JSON operators:
///   JSON_VALUE(col, 'path' [RETURNING NUMBER|VARCHAR2])
///   JSON_EXISTS(col, 'path')
///   JSON_QUERY(col, 'path')
///   JSON_TEXTCONTAINS(col, 'path', 'keyword')
///
/// Not supported (use the C++ operator API): joins, subqueries, HAVING,
/// window functions, DISTINCT.
///
/// Aggregates anywhere in the SELECT list switch the query to grouped
/// execution (with the GROUP BY expressions as keys, or a single global
/// group). Identifiers are case-sensitive for column names; keywords are
/// case-insensitive.
class SqlSession {
 public:
  /// `db` must outlive the session. JSON columns default to text storage;
  /// call UseOsonFor(table, column) to transparently rewrite that column's
  /// SQL/JSON operators onto its hidden OSON virtual column (§5.2.2).
  explicit SqlSession(rdbms::Database* db) : db_(db) {}

  /// Compiles a SELECT statement into an executable plan.
  Result<rdbms::OperatorPtr> Prepare(const std::string& sql);

  /// Prepare + run, returning display-formatted rows ("a|b|c").
  Result<std::vector<std::string>> Query(const std::string& sql);

  /// Enables the §5.2.2 rewrite for a JSON column: installs the hidden
  /// OSON virtual column and redirects JSON_VALUE/JSON_EXISTS/... over
  /// `json_column` to it.
  Status UseOsonFor(const std::string& table, const std::string& json_column);

 /// Internal accessors used by the planner.
  rdbms::Database* db() { return db_; }
  /// Hidden OSON column for (table, json column); nullptr when not enabled.
  const std::string* OsonRewriteFor(const std::string& table,
                                    const std::string& column) const {
    auto it = oson_rewrites_.find({table, column});
    return it == oson_rewrites_.end() ? nullptr : &it->second;
  }
  /// True when any column of `table` has an OSON rewrite (the scan must
  /// expose hidden columns).
  bool TableHasOsonRewrites(const std::string& table) const {
    for (const auto& [key, col] : oson_rewrites_) {
      if (key.first == table) return true;
    }
    return false;
  }

 private:
  rdbms::Database* db_;
  // (table, json column) -> hidden OSON column name.
  std::map<std::pair<std::string, std::string>, std::string> oson_rewrites_;
};

}  // namespace fsdm::sql

#endif  // FSDM_SQL_PARSER_H_
