#include "sql/parser.h"

#include <cctype>
#include <optional>

#include "collection/collections_table.h"
#include "collection/path_stats_table.h"
#include "collection/wal_table.h"
#include "stats/stats_table.h"
#include "telemetry/ash_table.h"
#include "telemetry/log_table.h"
#include "telemetry/metrics_table.h"

namespace fsdm::sql {

namespace {

using rdbms::AggSpec;
using rdbms::ExprPtr;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kEnd, kIdent, kNumber, kString, kSymbol };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // raw (identifiers keep case; symbols verbatim)
  size_t offset = 0;  // position in the input
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }
  size_t offset() const { return current_.offset; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  /// Case-insensitive keyword check without consuming.
  bool PeekKeyword(const char* kw) const {
    if (current_.kind != TokKind::kIdent) return false;
    return EqualsIgnoreCase(current_.text, kw);
  }

  bool TakeKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }

  bool PeekSymbol(const char* sym) const {
    return current_.kind == TokKind::kSymbol && current_.text == sym;
  }

  bool TakeSymbol(const char* sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }

  static bool EqualsIgnoreCase(const std::string& a, const char* b) {
    size_t i = 0;
    for (; i < a.size() && b[i] != '\0'; ++i) {
      if (std::toupper(static_cast<unsigned char>(a[i])) !=
          std::toupper(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return i == a.size() && b[i] == '\0';
  }

  Status error() const { return error_; }

 private:
  void Advance() {
    if (!error_.ok()) return;
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    current_.offset = pos_;
    if (pos_ >= input_.size()) {
      current_ = {TokKind::kEnd, "", pos_};
      return;
    }
    char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '"' || c == '$') {
      if (c == '"') {  // quoted identifier
        size_t end = input_.find('"', pos_ + 1);
        if (end == std::string::npos) {
          error_ = Status::ParseError("unterminated quoted identifier");
          return;
        }
        current_ = {TokKind::kIdent, input_.substr(pos_ + 1, end - pos_ - 1),
                    pos_};
        pos_ = end + 1;
        return;
      }
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '$')) {
        ++pos_;
      }
      current_ = {TokKind::kIdent, input_.substr(start, pos_ - start), start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.' || input_[pos_] == 'e' ||
              input_[pos_] == 'E' ||
              ((input_[pos_] == '+' || input_[pos_] == '-') && pos_ > start &&
               (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_ = {TokKind::kNumber, input_.substr(start, pos_ - start),
                  start};
      return;
    }
    if (c == '\'') {
      std::string s;
      size_t start = pos_;
      ++pos_;
      while (pos_ < input_.size()) {
        if (input_[pos_] == '\'') {
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
            s.push_back('\'');  // escaped quote
            pos_ += 2;
            continue;
          }
          ++pos_;
          current_ = {TokKind::kString, std::move(s), start};
          return;
        }
        s.push_back(input_[pos_++]);
      }
      error_ = Status::ParseError("unterminated string literal");
      return;
    }
    // Multi-char symbols first.
    for (const char* sym : {"<=", ">=", "<>", "!=", "||"}) {
      if (input_.compare(pos_, 2, sym) == 0) {
        current_ = {TokKind::kSymbol, sym, pos_};
        pos_ += 2;
        return;
      }
    }
    current_ = {TokKind::kSymbol, std::string(1, c), pos_};
    ++pos_;
  }

  const std::string& input_;
  size_t pos_ = 0;
  Token current_;
  Status error_;
};

// ---------------------------------------------------------------------------
// Parser / planner
// ---------------------------------------------------------------------------

struct SelectItem {
  std::string name;     // output column name
  std::string snippet;  // the item's SQL text (for GROUP BY matching)
  ExprPtr expr;         // references AGG_i / group-key cols in grouped mode
  bool is_star = false;
};

class Planner {
 public:
  Planner(SqlSession* session, const std::string& sql)
      : session_(session), sql_(sql), lex_(sql) {}

  Result<rdbms::OperatorPtr> Plan() {
    if (!lex_.TakeKeyword("SELECT")) {
      return Error("expected SELECT");
    }
    FSDM_RETURN_NOT_OK(ParseSelectList());
    if (!lex_.TakeKeyword("FROM")) return Error("expected FROM");
    if (lex_.Peek().kind != TokKind::kIdent) {
      return Error("expected table name");
    }
    table_name_ = lex_.Take().text;
    Result<rdbms::Table*> table_or = session_->db()->GetTable(table_name_);
    if (table_or.ok()) {
      table_ = table_or.MoveValue();
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kMetricsTableName)) {
      // TELEMETRY$ virtual relations: planned below as dedicated leaf
      // operators over the process-wide registries instead of a
      // base-table Scan.
      virtual_table_ = VirtualTable::kMetrics;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kEventsTableName)) {
      virtual_table_ = VirtualTable::kEvents;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kSlowQueriesTableName)) {
      virtual_table_ = VirtualTable::kSlowQueries;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       collection::kCollectionsTableName)) {
      virtual_table_ = VirtualTable::kCollections;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       collection::kPathStatsTableName)) {
      virtual_table_ = VirtualTable::kPathStats;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       stats::kOperatorCostsTableName)) {
      virtual_table_ = VirtualTable::kOperatorCosts;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kAshTableName)) {
      virtual_table_ = VirtualTable::kAsh;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kSnapshotsTableName)) {
      virtual_table_ = VirtualTable::kSnapshots;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       collection::kWalTableName)) {
      virtual_table_ = VirtualTable::kWal;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kQueryMonitorTableName)) {
      virtual_table_ = VirtualTable::kQueryMonitor;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kMemoryTableName)) {
      virtual_table_ = VirtualTable::kMemory;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kLogTableName)) {
      virtual_table_ = VirtualTable::kLog;
    } else if (Lexer::EqualsIgnoreCase(table_name_,
                                       telemetry::kIncidentsTableName)) {
      virtual_table_ = VirtualTable::kIncidents;
    } else {
      return table_or.status();
    }

    ExprPtr where;
    if (lex_.TakeKeyword("WHERE")) {
      size_t aggs_before = pending_aggs_.size();
      FSDM_ASSIGN_OR_RETURN(where, ParseExpr());
      if (pending_aggs_.size() != aggs_before) {
        return Error("aggregates are not allowed in WHERE");
      }
    }

    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    if (lex_.TakeKeyword("GROUP")) {
      if (!lex_.TakeKeyword("BY")) return Error("expected BY after GROUP");
      while (true) {
        size_t start = lex_.offset();
        size_t aggs_before = pending_aggs_.size();
        FSDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        if (pending_aggs_.size() != aggs_before) {
          return Error("aggregates are not allowed in GROUP BY");
        }
        group_exprs.push_back(std::move(e));
        group_names.push_back(Snippet(start, lex_.offset()));
        if (!lex_.TakeSymbol(",")) break;
      }
    }

    struct OrderItem {
      ExprPtr expr;
      bool ascending = true;
      std::optional<int64_t> ordinal;
    };
    std::vector<OrderItem> order_items;
    if (lex_.TakeKeyword("ORDER")) {
      if (!lex_.TakeKeyword("BY")) return Error("expected BY after ORDER");
      while (true) {
        OrderItem item;
        // "ORDER BY 1" addresses the first select column (Table 13's Q2).
        if (lex_.Peek().kind == TokKind::kNumber &&
            lex_.Peek().text.find('.') == std::string::npos) {
          item.ordinal = atoll(lex_.Take().text.c_str());
        } else {
          size_t aggs_before = pending_aggs_.size();
          FSDM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
          if (pending_aggs_.size() != aggs_before) {
            return Error("aggregates not supported in ORDER BY; use an alias");
          }
        }
        if (lex_.TakeKeyword("DESC")) {
          item.ascending = false;
        } else {
          (void)lex_.TakeKeyword("ASC");
        }
        order_items.push_back(std::move(item));
        if (!lex_.TakeSymbol(",")) break;
      }
    }

    std::optional<size_t> limit;
    if (lex_.TakeKeyword("LIMIT")) {
      if (lex_.Peek().kind != TokKind::kNumber) {
        return Error("expected LIMIT count");
      }
      limit = static_cast<size_t>(atoll(lex_.Take().text.c_str()));
    }
    if (lex_.Peek().kind != TokKind::kEnd &&
        !(lex_.Peek().kind == TokKind::kSymbol && lex_.Peek().text == ";")) {
      return Error("unexpected trailing input '" + lex_.Peek().text + "'");
    }
    FSDM_RETURN_NOT_OK(lex_.error());

    // --- Assemble the plan --------------------------------------------------
    bool include_hidden = session_->TableHasOsonRewrites(table_name_);
    rdbms::OperatorPtr plan;
    switch (virtual_table_) {
      case VirtualTable::kNone:
        plan = rdbms::Scan(table_, include_hidden);
        break;
      case VirtualTable::kMetrics:
        plan = telemetry::MetricsScan();
        break;
      case VirtualTable::kEvents:
        plan = telemetry::EventsScan();
        break;
      case VirtualTable::kSlowQueries:
        plan = telemetry::SlowQueriesScan();
        break;
      case VirtualTable::kCollections:
        plan = collection::CollectionsScan();
        break;
      case VirtualTable::kPathStats:
        plan = collection::PathStatsScan();
        break;
      case VirtualTable::kOperatorCosts:
        plan = stats::OperatorCostsScan();
        break;
      case VirtualTable::kAsh:
        plan = telemetry::AshScan();
        break;
      case VirtualTable::kSnapshots:
        plan = telemetry::SnapshotsScan();
        break;
      case VirtualTable::kWal:
        plan = collection::WalScan();
        break;
      case VirtualTable::kQueryMonitor:
        plan = telemetry::QueryMonitorScan();
        break;
      case VirtualTable::kMemory:
        plan = telemetry::MemoryScan();
        break;
      case VirtualTable::kLog:
        plan = telemetry::LogScan();
        break;
      case VirtualTable::kIncidents:
        plan = telemetry::IncidentsScan();
        break;
    }
    if (where) plan = rdbms::Filter(std::move(plan), std::move(where));

    bool grouped = !pending_aggs_.empty() || !group_exprs.empty();
    if (grouped) {
      std::vector<AggSpec> aggs = std::move(pending_aggs_);
      plan = rdbms::GroupBy(std::move(plan), std::move(group_exprs),
                            group_names, std::move(aggs));
      // Select items whose SQL text equals a GROUP BY expression become
      // references to that group output column; other non-aggregate items
      // must be bare group-key identifiers.
      for (SelectItem& item : select_items_) {
        if (item.is_star || !item.expr) continue;
        for (const std::string& gname : group_names) {
          if (item.snippet == gname) {
            item.expr = rdbms::Col(gname);
            break;
          }
        }
      }
    } else if (!order_items.empty()) {
      // Ungrouped expression ORDER BY items sort over the pre-projection
      // schema (SQL allows ordering by non-selected base columns);
      // ordinals still address the select list below.
      std::vector<rdbms::SortKey> pre_keys;
      for (OrderItem& item : order_items) {
        if (!item.ordinal.has_value()) {
          pre_keys.push_back({std::move(item.expr), item.ascending});
        }
      }
      if (!pre_keys.empty()) {
        plan = rdbms::Sort(std::move(plan), std::move(pre_keys));
        std::vector<OrderItem> remaining;
        for (OrderItem& item : order_items) {
          if (item.ordinal.has_value()) remaining.push_back(std::move(item));
        }
        order_items = std::move(remaining);
      }
    }

    // SELECT * expands to the (possibly grouped) child schema.
    std::vector<std::pair<std::string, ExprPtr>> projections;
    for (SelectItem& item : select_items_) {
      if (item.is_star) {
        for (const std::string& c : plan->schema().columns()) {
          projections.emplace_back(c, rdbms::Col(c));
        }
      } else {
        projections.emplace_back(item.name, std::move(item.expr));
      }
    }
    plan = rdbms::Project(std::move(plan), std::move(projections));

    if (!order_items.empty()) {
      std::vector<rdbms::SortKey> keys;
      for (OrderItem& item : order_items) {
        rdbms::SortKey key;
        key.ascending = item.ascending;
        if (item.ordinal.has_value()) {
          int64_t ord = *item.ordinal;
          const auto& cols = plan->schema().columns();
          if (ord < 1 || ord > static_cast<int64_t>(cols.size())) {
            return Error("ORDER BY ordinal out of range");
          }
          key.expr = rdbms::Col(cols[static_cast<size_t>(ord - 1)]);
        } else {
          key.expr = std::move(item.expr);
        }
        keys.push_back(std::move(key));
      }
      plan = rdbms::Sort(std::move(plan), std::move(keys));
    }
    if (limit.has_value()) plan = rdbms::Limit(std::move(plan), *limit);
    return plan;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError("SQL: " + msg + " at offset " +
                              std::to_string(lex_.offset()));
  }

  std::string Snippet(size_t start, size_t end) const {
    while (start < end &&
           std::isspace(static_cast<unsigned char>(sql_[start]))) {
      ++start;
    }
    while (end > start &&
           std::isspace(static_cast<unsigned char>(sql_[end - 1]))) {
      --end;
    }
    return sql_.substr(start, end - start);
  }

  Status ParseSelectList() {
    while (true) {
      if (lex_.TakeSymbol("*")) {
        SelectItem item;
        item.is_star = true;
        select_items_.push_back(std::move(item));
      } else {
        size_t start = lex_.offset();
        bool was_ident = lex_.Peek().kind == TokKind::kIdent;
        std::string first_ident = lex_.Peek().text;
        FSDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        SelectItem item;
        item.expr = std::move(e);
        std::string snippet = Snippet(start, lex_.offset());
        item.snippet = snippet;
        if (lex_.TakeKeyword("AS")) {
          if (lex_.Peek().kind != TokKind::kIdent) {
            return Error("expected alias after AS");
          }
          item.name = lex_.Take().text;
        } else if (was_ident && snippet == first_ident) {
          item.name = first_ident;  // bare column keeps its name
        } else {
          item.name = "COL_" + std::to_string(select_items_.size() + 1);
        }
        select_items_.push_back(std::move(item));
      }
      if (!lex_.TakeSymbol(",")) break;
    }
    return Status::Ok();
  }

  // expr := or_expr
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    FSDM_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (lex_.TakeKeyword("OR")) {
      FSDM_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = rdbms::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    FSDM_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (lex_.TakeKeyword("AND")) {
      FSDM_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = rdbms::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (lex_.TakeKeyword("NOT")) {
      FSDM_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return rdbms::Not(std::move(inner));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    FSDM_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

    if (lex_.TakeKeyword("IS")) {
      bool negate = lex_.TakeKeyword("NOT");
      if (!lex_.TakeKeyword("NULL")) return Error("expected NULL after IS");
      return negate ? rdbms::IsNotNull(std::move(left))
                    : rdbms::IsNull(std::move(left));
    }
    if (lex_.TakeKeyword("IN")) {
      if (!lex_.TakeSymbol("(")) return Error("expected ( after IN");
      std::vector<Value> values;
      while (true) {
        FSDM_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        values.push_back(std::move(v));
        if (!lex_.TakeSymbol(",")) break;
      }
      if (!lex_.TakeSymbol(")")) return Error("expected ) after IN list");
      return rdbms::In(std::move(left), std::move(values));
    }
    if (lex_.TakeKeyword("BETWEEN")) {
      FSDM_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      if (!lex_.TakeKeyword("AND")) {
        return Error("expected AND in BETWEEN");
      }
      FSDM_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return rdbms::And(rdbms::Ge(left, std::move(lo)),
                        rdbms::Le(left, std::move(hi)));
    }

    struct OpMap {
      const char* sym;
      rdbms::CompareOp op;
    };
    for (OpMap m : {OpMap{"<=", rdbms::CompareOp::kLe},
                    OpMap{">=", rdbms::CompareOp::kGe},
                    OpMap{"<>", rdbms::CompareOp::kNe},
                    OpMap{"!=", rdbms::CompareOp::kNe},
                    OpMap{"=", rdbms::CompareOp::kEq},
                    OpMap{"<", rdbms::CompareOp::kLt},
                    OpMap{">", rdbms::CompareOp::kGt}}) {
      if (lex_.TakeSymbol(m.sym)) {
        FSDM_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return rdbms::Cmp(m.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    FSDM_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (lex_.TakeSymbol("+")) {
        FSDM_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = rdbms::Add(std::move(left), std::move(right));
      } else if (lex_.TakeSymbol("-")) {
        FSDM_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = rdbms::Sub(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    FSDM_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      if (lex_.TakeSymbol("*")) {
        FSDM_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = rdbms::Mul(std::move(left), std::move(right));
      } else if (lex_.TakeSymbol("/")) {
        FSDM_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = rdbms::Div(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<Value> ParseLiteralValue() {
    Token t = lex_.Take();
    if (t.kind == TokKind::kString) return Value::String(t.text);
    if (t.kind == TokKind::kNumber) {
      FSDM_ASSIGN_OR_RETURN(Decimal d, Decimal::FromString(t.text));
      if (d.IsInteger()) {
        Result<int64_t> i = d.ToInt64();
        if (i.ok()) return Value::Int64(i.value());
      }
      return Value::Dec(std::move(d));
    }
    if (t.kind == TokKind::kSymbol && t.text == "-" &&
        lex_.Peek().kind == TokKind::kNumber) {
      FSDM_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      if (v.type() == ScalarType::kInt64) return Value::Int64(-v.AsInt64());
      return Value::Dec(v.AsDecimal().Negated());
    }
    if (t.kind == TokKind::kIdent) {
      if (Lexer::EqualsIgnoreCase(t.text, "TRUE")) return Value::Bool(true);
      if (Lexer::EqualsIgnoreCase(t.text, "FALSE")) return Value::Bool(false);
      if (Lexer::EqualsIgnoreCase(t.text, "NULL")) return Value::Null();
    }
    return Error("expected literal");
  }

  // Resolves the storage + column for a SQL/JSON operator's first argument,
  // applying the §5.2.2 OSON rewrite when enabled for (table, column).
  void ResolveJsonColumn(std::string* column,
                         sqljson::JsonStorage* storage) const {
    const std::string* rewritten =
        session_->OsonRewriteFor(table_name_, *column);
    if (rewritten != nullptr) {
      *column = *rewritten;
      *storage = sqljson::JsonStorage::kOson;
    } else {
      *storage = sqljson::JsonStorage::kText;
    }
  }

  Result<ExprPtr> ParseJsonFunction(const std::string& upper) {
    if (!lex_.TakeSymbol("(")) return Error("expected (");
    if (lex_.Peek().kind != TokKind::kIdent) {
      return Error("expected JSON column name");
    }
    std::string column = lex_.Take().text;
    if (!lex_.TakeSymbol(",")) return Error("expected , after column");
    if (lex_.Peek().kind != TokKind::kString) {
      return Error("expected path string literal");
    }
    std::string path = lex_.Take().text;
    sqljson::JsonStorage storage;
    ResolveJsonColumn(&column, &storage);

    if (upper == "JSON_VALUE") {
      sqljson::Returning returning = sqljson::Returning::kAny;
      if (lex_.TakeKeyword("RETURNING")) {
        if (lex_.TakeKeyword("NUMBER")) {
          returning = sqljson::Returning::kNumber;
        } else if (lex_.TakeKeyword("VARCHAR2") ||
                   lex_.TakeKeyword("VARCHAR")) {
          returning = sqljson::Returning::kString;
          if (lex_.TakeSymbol("(")) {  // optional length
            (void)lex_.Take();
            if (!lex_.TakeSymbol(")")) return Error("expected )");
          }
        } else {
          return Error("expected NUMBER or VARCHAR2 after RETURNING");
        }
      }
      if (!lex_.TakeSymbol(")")) return Error("expected )");
      return sqljson::JsonValue(column, path, storage, returning);
    }
    if (upper == "JSON_EXISTS") {
      if (!lex_.TakeSymbol(")")) return Error("expected )");
      return sqljson::JsonExists(column, path, storage);
    }
    if (upper == "JSON_QUERY") {
      if (!lex_.TakeSymbol(")")) return Error("expected )");
      return sqljson::JsonQuery(column, path, storage);
    }
    // JSON_TEXTCONTAINS(col, 'path', 'keyword')
    if (!lex_.TakeSymbol(",")) return Error("expected , before keyword");
    if (lex_.Peek().kind != TokKind::kString) {
      return Error("expected keyword string");
    }
    std::string keyword = lex_.Take().text;
    if (!lex_.TakeSymbol(")")) return Error("expected )");
    return sqljson::JsonTextContains(column, path, keyword, storage);
  }

  Result<ExprPtr> ParseAggregate(const std::string& upper) {
    if (!lex_.TakeSymbol("(")) return Error("expected (");
    AggSpec spec;
    if (upper == "COUNT") {
      if (lex_.TakeSymbol("*")) {
        spec.kind = AggSpec::Kind::kCountStar;
      } else {
        spec.kind = AggSpec::Kind::kCount;
        FSDM_ASSIGN_OR_RETURN(spec.arg, ParseExpr());
      }
    } else {
      spec.kind = upper == "SUM"   ? AggSpec::Kind::kSum
                  : upper == "MIN" ? AggSpec::Kind::kMin
                  : upper == "MAX" ? AggSpec::Kind::kMax
                                   : AggSpec::Kind::kAvg;
      FSDM_ASSIGN_OR_RETURN(spec.arg, ParseExpr());
    }
    if (!lex_.TakeSymbol(")")) return Error("expected ) after aggregate");
    spec.output_name = "AGG_" + std::to_string(pending_aggs_.size() + 1);
    ExprPtr ref = rdbms::Col(spec.output_name);
    pending_aggs_.push_back(std::move(spec));
    return ref;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lex_.Peek();
    if (t.kind == TokKind::kSymbol && t.text == "(") {
      lex_.Take();
      FSDM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      if (!lex_.TakeSymbol(")")) return Error("expected )");
      return inner;
    }
    if (t.kind == TokKind::kSymbol && t.text == "-") {
      lex_.Take();
      FSDM_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
      return rdbms::Sub(rdbms::Lit(Value::Int64(0)), std::move(inner));
    }
    if (t.kind == TokKind::kNumber || t.kind == TokKind::kString) {
      FSDM_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      return rdbms::Lit(std::move(v));
    }
    if (t.kind != TokKind::kIdent) {
      return Error("unexpected token '" + t.text + "'");
    }

    // Identifier: keyword literal, function call, or column reference.
    std::string ident = lex_.Take().text;
    std::string upper;
    for (char c : ident) {
      upper.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    if (upper == "TRUE") return rdbms::Lit(Value::Bool(true));
    if (upper == "FALSE") return rdbms::Lit(Value::Bool(false));
    if (upper == "NULL") return rdbms::Lit(Value::Null());

    if (lex_.PeekSymbol("(")) {
      if (upper == "JSON_VALUE" || upper == "JSON_EXISTS" ||
          upper == "JSON_QUERY" || upper == "JSON_TEXTCONTAINS") {
        return ParseJsonFunction(upper);
      }
      if (upper == "COUNT" || upper == "SUM" || upper == "MIN" ||
          upper == "MAX" || upper == "AVG") {
        return ParseAggregate(upper);
      }
      // Scalar function.
      lex_.Take();  // '('
      std::vector<ExprPtr> args;
      if (!lex_.PeekSymbol(")")) {
        while (true) {
          FSDM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
          if (!lex_.TakeSymbol(",")) break;
        }
      }
      if (!lex_.TakeSymbol(")")) return Error("expected )");
      return rdbms::Func(upper, std::move(args));
    }
    // Table-qualified column "t.col" -> col (single-table queries).
    if (lex_.TakeSymbol(".")) {
      if (lex_.Peek().kind != TokKind::kIdent) {
        return Error("expected column after '.'");
      }
      return rdbms::Col(lex_.Take().text);
    }
    return rdbms::Col(std::move(ident));
  }

  SqlSession* session_;
  const std::string& sql_;
  Lexer lex_;
  /// Which TELEMETRY$ relation the FROM clause named (kNone = a real
  /// table; table_ is set).
  enum class VirtualTable { kNone, kMetrics, kEvents, kSlowQueries,
                            kCollections, kPathStats, kOperatorCosts,
                            kAsh, kSnapshots, kWal, kQueryMonitor,
                            kMemory, kLog, kIncidents };

  std::string table_name_;
  rdbms::Table* table_ = nullptr;
  VirtualTable virtual_table_ = VirtualTable::kNone;
  std::vector<SelectItem> select_items_;
  std::vector<AggSpec> pending_aggs_;
};

}  // namespace

Result<rdbms::OperatorPtr> SqlSession::Prepare(const std::string& sql) {
  Planner planner(this, sql);
  return planner.Plan();
}

Result<std::vector<std::string>> SqlSession::Query(const std::string& sql) {
  FSDM_ASSIGN_OR_RETURN(rdbms::OperatorPtr plan, Prepare(sql));
  return rdbms::CollectStrings(plan.get());
}

Status SqlSession::UseOsonFor(const std::string& table,
                              const std::string& json_column) {
  FSDM_ASSIGN_OR_RETURN(rdbms::Table * t, db_->GetTable(table));
  FSDM_ASSIGN_OR_RETURN(std::string hidden,
                        sqljson::EnsureHiddenOsonColumn(t, json_column));
  oson_rewrites_[{table, json_column}] = hidden;
  return Status::Ok();
}

}  // namespace fsdm::sql
