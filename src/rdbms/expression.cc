#include "rdbms/expression.h"

#include <algorithm>
#include <cctype>

namespace fsdm::rdbms {

Schema::Schema(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) index_[columns_[i]] = i;
}

size_t Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? npos : it->second;
}

namespace {

// SQL boolean: TRUE/FALSE/UNKNOWN, with UNKNOWN represented as NULL Value.
Value Tribool(bool b) { return Value::Bool(b); }

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Result<Value> Eval(const RowContext&) const override { return value_; }
  std::string ToString() const override {
    return value_.type() == ScalarType::kString
               ? "'" + value_.AsString() + "'"
               : value_.ToDisplayString();
  }

 private:
  Value value_;
};

class ColumnExpr final : public Expression {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}

  Status Bind(const Schema& schema) override {
    index_ = schema.IndexOf(name_);
    if (index_ == Schema::npos) {
      return Status::NotFound("column '" + name_ + "' not in schema");
    }
    return Status::Ok();
  }

  Result<Value> Eval(const RowContext& ctx) const override {
    size_t idx = index_;
    if (idx == Schema::npos) {
      idx = ctx.schema->IndexOf(name_);
      if (idx == Schema::npos) {
        return Status::NotFound("column '" + name_ + "' not in schema");
      }
    }
    if (idx >= ctx.row->size()) {
      return Status::Internal("row narrower than schema for '" + name_ + "'");
    }
    return (*ctx.row)[idx];
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  size_t index_ = Schema::npos;
};

class CompareExpr final : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}

  Status Bind(const Schema& schema) override {
    FSDM_RETURN_NOT_OK(left_->Bind(schema));
    return right_->Bind(schema);
  }

  Result<Value> Eval(const RowContext& ctx) const override {
    FSDM_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
    FSDM_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
    if (l.is_null() || r.is_null()) return Value::Null();  // UNKNOWN
    Result<int> cmp = l.CompareTo(r);
    if (!cmp.ok()) return cmp.status();
    switch (op_) {
      case CompareOp::kEq:
        return Tribool(cmp.value() == 0);
      case CompareOp::kNe:
        return Tribool(cmp.value() != 0);
      case CompareOp::kLt:
        return Tribool(cmp.value() < 0);
      case CompareOp::kLe:
        return Tribool(cmp.value() <= 0);
      case CompareOp::kGt:
        return Tribool(cmp.value() > 0);
      case CompareOp::kGe:
        return Tribool(cmp.value() >= 0);
    }
    return Status::Internal("bad compare op");
  }

  std::string ToString() const override {
    const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    return "(" + left_->ToString() + " " + ops[static_cast<int>(op_)] + " " +
           right_->ToString() + ")";
  }

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

class ArithExpr final : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}

  Status Bind(const Schema& schema) override {
    FSDM_RETURN_NOT_OK(left_->Bind(schema));
    return right_->Bind(schema);
  }

  Result<Value> Eval(const RowContext& ctx) const override {
    FSDM_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
    FSDM_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
    if (l.is_null() || r.is_null()) return Value::Null();
    if (!l.IsNumeric() || !r.IsNumeric()) {
      return Status::InvalidArgument("arithmetic on non-numeric values");
    }
    // Fast exact path for int64 +/-/*; Decimal for everything else except
    // division (double-backed).
    if (l.type() == ScalarType::kInt64 && r.type() == ScalarType::kInt64 &&
        op_ != ArithOp::kDiv) {
      int64_t a = l.AsInt64(), b = r.AsInt64();
      // Overflow falls through to the Decimal path.
      switch (op_) {
        case ArithOp::kAdd:
          if (!__builtin_add_overflow_p(a, b, int64_t{0}))
            return Value::Int64(a + b);
          break;
        case ArithOp::kSub:
          if (!__builtin_sub_overflow_p(a, b, int64_t{0}))
            return Value::Int64(a - b);
          break;
        case ArithOp::kMul:
          if (!__builtin_mul_overflow_p(a, b, int64_t{0}))
            return Value::Int64(a * b);
          break;
        default:
          break;
      }
    }
    if (l.type() == ScalarType::kDouble || r.type() == ScalarType::kDouble ||
        op_ == ArithOp::kDiv) {
      double a = l.NumericAsDouble(), b = r.NumericAsDouble();
      switch (op_) {
        case ArithOp::kAdd:
          return Value::Double(a + b);
        case ArithOp::kSub:
          return Value::Double(a - b);
        case ArithOp::kMul:
          return Value::Double(a * b);
        case ArithOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Value::Double(a / b);
      }
    }
    Decimal a = l.NumericAsDecimal(), b = r.NumericAsDecimal();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Dec(a.Add(b));
      case ArithOp::kSub:
        return Value::Dec(a.Subtract(b));
      case ArithOp::kMul:
        return Value::Dec(a.Multiply(b));
      default:
        return Status::Internal("unreachable");
    }
  }

  std::string ToString() const override {
    const char* ops[] = {"+", "-", "*", "/"};
    return "(" + left_->ToString() + " " + ops[static_cast<int>(op_)] + " " +
           right_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr left_, right_;
};

enum class LogicalOp { kAnd, kOr, kNot };

class LogicalExpr final : public Expression {
 public:
  LogicalExpr(LogicalOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}

  Status Bind(const Schema& schema) override {
    FSDM_RETURN_NOT_OK(left_->Bind(schema));
    if (right_) return right_->Bind(schema);
    return Status::Ok();
  }

  Result<Value> Eval(const RowContext& ctx) const override {
    FSDM_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
    if (op_ == LogicalOp::kNot) {
      if (l.is_null()) return Value::Null();
      return Tribool(!l.AsBool());
    }
    // Three-valued AND/OR with short circuit where sound.
    if (op_ == LogicalOp::kAnd) {
      if (!l.is_null() && !l.AsBool()) return Tribool(false);
      FSDM_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
      if (!r.is_null() && !r.AsBool()) return Tribool(false);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Tribool(true);
    }
    if (!l.is_null() && l.AsBool()) return Tribool(true);
    FSDM_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
    if (!r.is_null() && r.AsBool()) return Tribool(true);
    if (l.is_null() || r.is_null()) return Value::Null();
    return Tribool(false);
  }

  std::string ToString() const override {
    if (op_ == LogicalOp::kNot) return "NOT " + left_->ToString();
    return "(" + left_->ToString() +
           (op_ == LogicalOp::kAnd ? " AND " : " OR ") + right_->ToString() +
           ")";
  }

 private:
  LogicalOp op_;
  ExprPtr left_, right_;
};

class IsNullExpr final : public Expression {
 public:
  IsNullExpr(ExprPtr expr, bool negate)
      : expr_(std::move(expr)), negate_(negate) {}

  Status Bind(const Schema& schema) override { return expr_->Bind(schema); }

  Result<Value> Eval(const RowContext& ctx) const override {
    FSDM_ASSIGN_OR_RETURN(Value v, expr_->Eval(ctx));
    return Tribool(v.is_null() != negate_);
  }

  std::string ToString() const override {
    return expr_->ToString() + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  ExprPtr expr_;
  bool negate_;
};

class InExpr final : public Expression {
 public:
  InExpr(ExprPtr expr, std::vector<Value> values)
      : expr_(std::move(expr)), values_(std::move(values)) {}

  Status Bind(const Schema& schema) override { return expr_->Bind(schema); }

  Result<Value> Eval(const RowContext& ctx) const override {
    FSDM_ASSIGN_OR_RETURN(Value v, expr_->Eval(ctx));
    if (v.is_null()) return Value::Null();
    bool saw_null = false;
    for (const Value& candidate : values_) {
      if (candidate.is_null()) {
        saw_null = true;
        continue;
      }
      Result<int> cmp = v.CompareTo(candidate);
      if (cmp.ok() && cmp.value() == 0) return Tribool(true);
    }
    return saw_null ? Value::Null() : Tribool(false);
  }

  std::string ToString() const override {
    std::string s = expr_->ToString() + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i) s += ", ";
      s += values_[i].ToDisplayString();
    }
    return s + ")";
  }

 private:
  ExprPtr expr_;
  std::vector<Value> values_;
};

class FuncExpr final : public Expression {
 public:
  FuncExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}

  Status Bind(const Schema& schema) override {
    for (ExprPtr& a : args_) FSDM_RETURN_NOT_OK(a->Bind(schema));
    return Status::Ok();
  }

  Result<Value> Eval(const RowContext& ctx) const override {
    std::vector<Value> args(args_.size());
    for (size_t i = 0; i < args_.size(); ++i) {
      FSDM_ASSIGN_OR_RETURN(args[i], args_[i]->Eval(ctx));
    }
    if (name_ == "NVL") {
      if (args.size() != 2) return Status::InvalidArgument("NVL arity");
      return args[0].is_null() ? args[1] : args[0];
    }
    // Remaining functions are NULL-propagating.
    for (const Value& a : args) {
      if (a.is_null()) return Value::Null();
    }
    if (name_ == "SUBSTR") {
      if (args.size() < 2 || args.size() > 3 ||
          args[0].type() != ScalarType::kString || !args[1].IsNumeric()) {
        return Status::InvalidArgument("SUBSTR(s, pos[, len])");
      }
      const std::string& s = args[0].AsString();
      int64_t pos = static_cast<int64_t>(args[1].NumericAsDouble());
      // Oracle 1-based; 0 behaves like 1; negative counts from the end.
      int64_t start;
      if (pos > 0) {
        start = pos - 1;
      } else if (pos == 0) {
        start = 0;
      } else {
        start = static_cast<int64_t>(s.size()) + pos;
      }
      if (start < 0 || start >= static_cast<int64_t>(s.size())) {
        return Value::Null();
      }
      size_t len = s.size() - start;
      if (args.size() == 3) {
        if (!args[2].IsNumeric()) {
          return Status::InvalidArgument("SUBSTR length must be numeric");
        }
        int64_t want = static_cast<int64_t>(args[2].NumericAsDouble());
        if (want <= 0) return Value::Null();
        len = std::min<size_t>(len, static_cast<size_t>(want));
      }
      return Value::String(s.substr(static_cast<size_t>(start), len));
    }
    if (name_ == "INSTR") {
      if (args.size() != 2 || args[0].type() != ScalarType::kString ||
          args[1].type() != ScalarType::kString) {
        return Status::InvalidArgument("INSTR(s, sub)");
      }
      size_t pos = args[0].AsString().find(args[1].AsString());
      return Value::Int64(pos == std::string::npos
                              ? 0
                              : static_cast<int64_t>(pos) + 1);
    }
    if (name_ == "LENGTH") {
      if (args.size() != 1 || args[0].type() != ScalarType::kString) {
        return Status::InvalidArgument("LENGTH(s)");
      }
      return Value::Int64(static_cast<int64_t>(args[0].AsString().size()));
    }
    if (name_ == "UPPER" || name_ == "LOWER") {
      if (args.size() != 1 || args[0].type() != ScalarType::kString) {
        return Status::InvalidArgument(name_ + "(s)");
      }
      std::string s = args[0].AsString();
      for (char& c : s) {
        c = name_ == "UPPER"
                ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return Value::String(std::move(s));
    }
    if (name_ == "CONCAT") {
      std::string s;
      for (const Value& a : args) s += a.ToDisplayString();
      return Value::String(std::move(s));
    }
    if (name_ == "TO_NUMBER") {
      if (args.size() != 1 || args[0].type() != ScalarType::kString) {
        return Status::InvalidArgument("TO_NUMBER(s)");
      }
      FSDM_ASSIGN_OR_RETURN(Decimal d,
                            Decimal::FromString(args[0].AsString()));
      if (d.IsInteger()) {
        Result<int64_t> i = d.ToInt64();
        if (i.ok()) return Value::Int64(i.value());
      }
      return Value::Dec(std::move(d));
    }
    return Status::NotFound("unknown function " + name_);
  }

  std::string ToString() const override {
    std::string s = name_ + "(";
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i) s += ", ";
      s += args_[i]->ToString();
    }
    return s + ")";
  }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

class CallbackExpr final : public Expression {
 public:
  CallbackExpr(std::string label,
               std::function<Result<Value>(const RowContext&)> fn)
      : label_(std::move(label)), fn_(std::move(fn)) {}

  Result<Value> Eval(const RowContext& ctx) const override { return fn_(ctx); }
  std::string ToString() const override { return label_; }

 private:
  std::string label_;
  std::function<Result<Value>(const RowContext&)> fn_;
};

}  // namespace

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<CompareExpr>(op, std::move(left), std::move(right));
}
ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithExpr>(op, std::move(left), std::move(right));
}
ExprPtr And(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(left),
                                       std::move(right));
}
ExprPtr Or(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(left),
                                       std::move(right));
}
ExprPtr Not(ExprPtr expr) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(expr),
                                       nullptr);
}
ExprPtr IsNull(ExprPtr expr) {
  return std::make_shared<IsNullExpr>(std::move(expr), false);
}
ExprPtr IsNotNull(ExprPtr expr) {
  return std::make_shared<IsNullExpr>(std::move(expr), true);
}
ExprPtr In(ExprPtr expr, std::vector<Value> values) {
  return std::make_shared<InExpr>(std::move(expr), std::move(values));
}
ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
  return std::make_shared<FuncExpr>(std::move(name), std::move(args));
}
ExprPtr Callback(std::string label,
                 std::function<Result<Value>(const RowContext&)> fn,
                 std::vector<std::string> referenced_columns) {
  (void)referenced_columns;
  return std::make_shared<CallbackExpr>(std::move(label), std::move(fn));
}

}  // namespace fsdm::rdbms
