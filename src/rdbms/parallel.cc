#include "rdbms/parallel.h"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "telemetry/activity.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/log.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/telemetry.h"

namespace fsdm::rdbms {

namespace {

/// Worker identity for span/trace tagging; -1 off the pool.
thread_local int tls_worker_index = -1;

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

struct WorkerPool::Impl {
  mutable std::mutex mu;
  std::condition_variable work_cv;   // workers wait for tasks / stop
  std::condition_variable idle_cv;   // Resize waits for quiescence
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> threads;
  size_t target_workers = 0;  // size threads are (re)launched to
  size_t active = 0;          // tasks currently running on workers
  bool stopping = false;
  bool shutting_down = false;  // a Shutdown() is joining old workers

  void RunWorker(int index) {
    tls_worker_index = index;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      work_cv.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty()) {
        if (stopping) return;
        continue;
      }
      std::function<void()> task = std::move(queue.front());
      queue.pop_front();
      ++active;
      lock.unlock();
      {
        // Publish "this worker is busy" for the ASH sampler; the morsel's
        // own ActivityScope lease stacks on top with the real identity.
        telemetry::ActivityLease lease = telemetry::ActivityLease::Begin(
            /*collection=*/"", /*access_path=*/"", /*op=*/"worker.task",
            /*query=*/"", /*shard=*/-1, /*worker=*/index);
        task();
      }
      lock.lock();
      --active;
      if (queue.empty() && active == 0) idle_cv.notify_all();
    }
  }

  void Launch(size_t workers) {
    stopping = false;
    target_workers = workers;
    threads.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      threads.emplace_back([this, i] { RunWorker(static_cast<int>(i)); });
    }
    FSDM_GAUGE_SET("fsdm_worker_pool_size", workers);
    FSDM_LOG(telemetry::LogLevel::kDebug, "pool", 5002,
             "worker pool launched",
             telemetry::LogNum("workers", workers));
  }

  void Shutdown() {
    std::vector<std::thread> joinable;
    {
      std::unique_lock<std::mutex> lock(mu);
      idle_cv.wait(lock, [&] { return queue.empty() && active == 0; });
      stopping = true;
      // Block Submit's lazy relaunch until the join below finishes: a
      // relaunch would reset `stopping` while the old workers still read
      // it, leaving one looping forever and the join stuck.
      shutting_down = true;
      work_cv.notify_all();
      joinable.swap(threads);
    }
    for (std::thread& t : joinable) t.join();
    std::lock_guard<std::mutex> lock(mu);
    shutting_down = false;
  }
};

WorkerPool::WorkerPool() : impl_(new Impl()) {}

WorkerPool::~WorkerPool() {
  impl_->Shutdown();
  delete impl_;
}

WorkerPool& WorkerPool::Global() {
  // Leaked like the other process-wide singletons so worker threads never
  // outlive their pool during static destruction.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

size_t WorkerPool::DefaultWorkerCount() {
  if (const char* env = std::getenv("FSDM_WORKERS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return v > 16 ? 16 : static_cast<size_t>(v);
    }
  }
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return hw > 16 ? 16 : hw;
}

size_t WorkerPool::worker_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->threads.empty() ? impl_->target_workers
                                : impl_->threads.size();
}

void WorkerPool::Resize(size_t workers) {
  FSDM_LOG(telemetry::LogLevel::kInfo, "pool", 5001, "worker pool resize",
           telemetry::LogNum("workers", workers == 0 ? 1 : workers));
  // A Submit racing the resize can lazily relaunch the pool between our
  // Shutdown() and Launch(); launching on top of those threads would
  // duplicate worker indices. Retry the shutdown until the pool is
  // observed empty under the lock, and launch under that same lock.
  for (;;) {
    impl_->Shutdown();
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->threads.empty()) {
      impl_->Launch(workers == 0 ? 1 : workers);
      return;
    }
  }
}

void WorkerPool::Submit(std::function<void()> task) {
  if (tls_worker_index >= 0) {
    // A pool worker submitting to its own pool runs the task inline: the
    // submitter would otherwise block in ParallelUnionAll waiting for a
    // queue slot that only it could drain (nested-parallelism deadlock).
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    // During a Shutdown's join window the task only queues; the caller's
    // Resize (or the old workers, which drain the queue before exiting)
    // picks it up. Relaunching here would wake the dying workers back up.
    if (impl_->threads.empty() && !impl_->shutting_down) {
      impl_->Launch(DefaultWorkerCount());
    }
    impl_->queue.push_back(std::move(task));
  }
  impl_->work_cv.notify_one();
}

int WorkerPool::CurrentWorkerIndex() { return tls_worker_index; }

// ---------------------------------------------------------------------------
// ParallelUnionAll
// ---------------------------------------------------------------------------

namespace {

/// Accounting size of a buffered row: container overhead plus owned string
/// payloads (size, not capacity — see telemetry::OwnedStringBytes).
uint64_t BufferedRowBytes(const Row& row) {
  uint64_t bytes = sizeof(Row) + row.size() * sizeof(Value);
  for (const Value& v : row) {
    const ScalarType t = v.type();
    if (t == ScalarType::kString) bytes += v.AsString().size();
    if (t == ScalarType::kBinary) bytes += v.AsBinary().size();
  }
  return bytes;
}

class ParallelUnionOp final : public Operator {
 public:
  ParallelUnionOp(std::vector<OperatorPtr> children,
                  std::function<void(size_t, int)> on_morsel_done)
      : children_(std::move(children)),
        on_morsel_done_(std::move(on_morsel_done)) {
    if (!children_.empty()) schema_ = children_[0]->schema();
  }

  ~ParallelUnionOp() override { WaitAll(); }

  Status Open() override {
    WaitAll();  // a re-Open must not race a previous drain
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_.clear();
      slots_.resize(children_.size());
      launched_ = children_.size();
    }
    cursor_child_ = 0;
    cursor_row_ = 0;
    FSDM_COUNT("fsdm_parallel_union_opens_total", 1);
    for (size_t i = 0; i < children_.size(); ++i) {
      WorkerPool::Global().Submit([this, i] { DrainChild(i); });
    }
    return Status::Ok();
  }

  Result<bool> Next(Row* out) override {
    while (cursor_child_ < slots_.size()) {
      Slot& slot = slots_[cursor_child_];
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!slot.done) {
          // The consumer is stalled on morsel completion — charge the
          // wait to the scheduler class, not to on-cpu time.
          telemetry::ScopedWaitState wait(
              telemetry::WaitState::kPoolQueueWait);
          done_cv_.wait(lock, [&] { return slot.done; });
        }
      }
      if (!slot.status.ok()) return slot.status;
      if (cursor_row_ < slot.rows.size()) {
        *out = std::move(slot.rows[cursor_row_++]);
        return true;
      }
      ++cursor_child_;
      cursor_row_ = 0;
    }
    return false;
  }

  void Close() override {
    // Every morsel must finish before the children (and this operator)
    // can be torn down, drained or not.
    WaitAll();
  }

 private:
  struct Slot {
    std::vector<Row> rows;
    Status status = Status::Ok();
    bool done = false;
    /// Plan-working-set attribution for the buffered rows; releases when
    /// the slot is cleared on re-Open or operator destruction.
    telemetry::MemoryCharge charge;
  };

  void DrainChild(size_t i) {
    const int worker = WorkerPool::CurrentWorkerIndex();
    FSDM_TRACE_SPAN(span, "exec", "morsel.drain");
    span.AddNumberArg("shard", static_cast<double>(i));
    span.AddNumberArg("worker", static_cast<double>(worker));

    std::vector<Row> rows;
    uint64_t buffered_bytes = 0;
    Operator* child = children_[i].get();
    Status status = child->Open();
    if (status.ok()) {
      Row row;
      for (;;) {
        Result<bool> has = child->Next(&row);
        if (!has.ok()) {
          status = has.status();
          break;
        }
        if (!has.value()) break;
        buffered_bytes += BufferedRowBytes(row);
        rows.push_back(std::move(row));
      }
      child->Close();
    }
    if (on_morsel_done_) on_morsel_done_(i, worker);

    std::lock_guard<std::mutex> lock(mu_);
    slots_[i].rows = std::move(rows);
    slots_[i].status = std::move(status);
    // The charge covers the handoff window: rows buffered on the worker
    // until the consumer replays (and frees) them. Peak ratchets at charge
    // time, so even a fast drain's working set shows in peak gauges.
    slots_[i].charge = telemetry::MemoryCharge(
        telemetry::MemSubsystem::kPlanWorkingSet, buffered_bytes);
    slots_[i].done = true;
    --launched_;
    done_cv_.notify_all();
  }

  void WaitAll() {
    std::unique_lock<std::mutex> lock(mu_);
    if (launched_ == 0) return;
    telemetry::ScopedWaitState wait(telemetry::WaitState::kPoolQueueWait);
    done_cv_.wait(lock, [&] { return launched_ == 0; });
  }

  std::vector<OperatorPtr> children_;
  std::function<void(size_t, int)> on_morsel_done_;

  std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<Slot> slots_;
  size_t launched_ = 0;  // morsels submitted but not yet done

  size_t cursor_child_ = 0;
  size_t cursor_row_ = 0;
};

// Publishes activity identity for whichever thread drains the child. The
// lease begins in Open() (on the draining thread — for a morsel that is
// the pool worker, thanks to DrainChild running Open/Next/Close on one
// thread) and ends in Close(). The destructor releases too, so a plan
// torn down on an error path before Close() never leaves a dangling
// active record (ISSUE 7 satellite f); in the normal path that release
// is a no-op because Close() already ran.
class ActivityScopeOp final : public Operator {
 public:
  ActivityScopeOp(OperatorPtr child, std::string collection,
                  std::string access_path, std::string op, std::string query,
                  int shard, uint64_t query_id)
      : child_(std::move(child)),
        collection_(std::move(collection)),
        access_path_(std::move(access_path)),
        op_(std::move(op)),
        query_(std::move(query)),
        shard_(shard),
        query_id_(query_id) {
    schema_ = child_->schema();
  }

  Status Open() override {
    lease_ = telemetry::ActivityLease::Begin(
        collection_, access_path_, op_, query_, shard_,
        WorkerPool::CurrentWorkerIndex(), query_id_);
    Status status = child_->Open();
    // A failed Open never sees Close(), so release here or the record
    // would stay active forever.
    if (!status.ok()) lease_.Release();
    return status;
  }

  Result<bool> Next(Row* out) override { return child_->Next(out); }

  void Close() override {
    child_->Close();
    lease_.Release();
  }

 private:
  OperatorPtr child_;
  std::string collection_;
  std::string access_path_;
  std::string op_;
  std::string query_;
  int shard_;
  uint64_t query_id_;
  telemetry::ActivityLease lease_;
};

}  // namespace

OperatorPtr ParallelUnionAll(
    std::vector<OperatorPtr> children,
    std::function<void(size_t child, int worker)> on_morsel_done) {
  return std::make_unique<ParallelUnionOp>(std::move(children),
                                           std::move(on_morsel_done));
}

OperatorPtr ActivityScope(OperatorPtr child, std::string collection,
                          std::string access_path, std::string op,
                          std::string query, int shard, uint64_t query_id) {
  return std::make_unique<ActivityScopeOp>(
      std::move(child), std::move(collection), std::move(access_path),
      std::move(op), std::move(query), shard, query_id);
}

}  // namespace fsdm::rdbms
