#ifndef FSDM_RDBMS_PARALLEL_H_
#define FSDM_RDBMS_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "rdbms/executor.h"

/// Morsel-parallel drain layer (ISSUE 6 tentpole): a shared worker pool
/// plus an order-preserving parallel union operator. The sharded
/// collection facade fans a routed query out into one plan per shard;
/// each shard plan is one *morsel* — a unit of work a worker drains to
/// completion — and ParallelUnionAll merges the per-shard results back
/// into a single row stream in shard order, so a parallel drain returns
/// exactly the rows (and row order) a sequential UnionAll would.
///
/// Everything a morsel touches while draining must be safe for
/// concurrent reads: the rdbms::Table is immutable during query
/// execution (the engine has no concurrent DML), telemetry counters are
/// atomic, and each shard plan's OperatorSpan subtree is written only by
/// the worker draining that shard (the completion handoff publishes the
/// writes to the consumer).

namespace fsdm::rdbms {

/// Process-wide pool of drain workers. Threads start lazily on the first
/// Submit(); Resize() joins and relaunches, which benches use to measure
/// scaling at 1/2/4/... workers. Submitting from a pool worker runs the
/// task inline (a morsel never waits on the queue it is served from, so
/// nested parallel plans cannot deadlock the pool).
class WorkerPool {
 public:
  static WorkerPool& Global();

  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Default size: the FSDM_WORKERS environment variable when set, else
  /// std::thread::hardware_concurrency(), clamped to [1, 16].
  static size_t DefaultWorkerCount();

  size_t worker_count() const;

  /// Joins every worker (after the queue drains) and relaunches with
  /// `workers` threads (clamped to >= 1). Callers must not hold
  /// unfinished submissions of their own when resizing.
  void Resize(size_t workers);

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Index of the calling pool worker in [0, worker_count()), or -1 when
  /// called from a non-pool thread — the `worker` tag stamped onto spans
  /// and trace events.
  static int CurrentWorkerIndex();

 private:
  WorkerPool();

  struct Impl;
  Impl* impl_;
};

/// Order-preserving parallel union (the sharded facade's merge operator):
/// all children share one schema; Open() submits one drain-morsel per
/// child to WorkerPool::Global(), and Next() replays child 0's rows, then
/// child 1's, ... — blocking only when the next child in order has not
/// finished. The first child error surfaces from Next(); Close() always
/// waits for every morsel so no worker touches a destroyed operator.
///
/// `on_morsel_done(child, worker)` (optional) runs on the worker thread
/// right after it drains child `child`, before the result is published —
/// the router uses it to stamp shard/worker ids onto the child's
/// OperatorSpan subtree while it is still exclusively owned by that
/// worker.
OperatorPtr ParallelUnionAll(
    std::vector<OperatorPtr> children,
    std::function<void(size_t child, int worker)> on_morsel_done = nullptr);

/// Transparent operator that publishes the draining thread's activity
/// record (telemetry/activity.h) for the lifetime of `child`'s drain:
/// Open() begins a lease stamped with the collection / access path / op /
/// query / shard and the current pool worker, Close() (or destruction,
/// for plans torn down on an error path before Close) releases it. The
/// router wraps each shard morsel in one of these so the ASH sampler can
/// attribute worker time to collections and shards. `query_id` cross-links
/// the morsel's samples to the owning query's TELEMETRY$QUERY_MONITOR row.
OperatorPtr ActivityScope(OperatorPtr child, std::string collection,
                          std::string access_path, std::string op,
                          std::string query, int shard = -1,
                          uint64_t query_id = 0);

}  // namespace fsdm::rdbms

#endif  // FSDM_RDBMS_PARALLEL_H_
