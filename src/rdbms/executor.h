#ifndef FSDM_RDBMS_EXECUTOR_H_
#define FSDM_RDBMS_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdbms/expression.h"
#include "rdbms/table.h"

namespace fsdm::telemetry {
struct OperatorSpan;
}

namespace fsdm::rdbms {

/// Volcano-style row-source iterator (the paper's row source API [9]:
/// start / fetch / close). Each operator owns its children.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Output schema; valid after construction.
  const Schema& schema() const { return schema_; }

  virtual Status Open() = 0;
  /// Produces the next row; returns false at end of stream.
  virtual Result<bool> Next(Row* out) = 0;
  virtual void Close() = 0;

 protected:
  Schema schema_;
};

using OperatorPtr = std::unique_ptr<Operator>;

// --- Leaf sources -----------------------------------------------------------

/// Full scan of a table, emitting non-hidden columns (physical + virtual).
/// Set `include_hidden` to expose hidden virtual columns (the implicit OSON
/// column of §5.2.2).
OperatorPtr Scan(const Table* table, bool include_hidden = false);

/// Emits pre-materialized rows (for tests and VALUES-style input).
OperatorPtr Values(Schema schema, std::vector<Row> rows);

// --- Transformers -----------------------------------------------------------

/// Keeps rows where `predicate` evaluates to TRUE (UNKNOWN rejects).
OperatorPtr Filter(OperatorPtr child, ExprPtr predicate);

/// Computes named expressions per row.
OperatorPtr Project(OperatorPtr child,
                    std::vector<std::pair<std::string, ExprPtr>> exprs);

/// Keeps the first `limit` rows.
OperatorPtr Limit(OperatorPtr child, size_t limit);

/// Bernoulli sampling: keeps each row with probability pct/100, using a
/// deterministic seed (SQL's SAMPLE(pct) clause, used by Q1 of Table 9).
OperatorPtr Sample(OperatorPtr child, double pct, uint64_t seed = 42);

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};
OperatorPtr Sort(OperatorPtr child, std::vector<SortKey> keys);

/// Hash join on equality of key expression lists. kLeftOuter emits left
/// rows with NULL right columns when unmatched (the DMDV master-detail
/// semantics of §3.3.2).
enum class JoinType { kInner, kLeftOuter };
OperatorPtr HashJoin(OperatorPtr left, OperatorPtr right,
                     std::vector<ExprPtr> left_keys,
                     std::vector<ExprPtr> right_keys, JoinType type);

/// Concatenation of children with identical schemas (UNION ALL).
OperatorPtr UnionAll(std::vector<OperatorPtr> children);

// --- Aggregation ------------------------------------------------------------

/// User-defined aggregate: per-group instances created by a factory,
/// fed argument values, finalized into one output Value. This is the
/// ORDBMS extensible-aggregation hook the paper's JSON_DataGuideAgg()
/// plugs into (§3.4, [11][13]).
class CustomAggregate {
 public:
  virtual ~CustomAggregate() = default;
  virtual Status Accumulate(const Value& arg) = 0;
  virtual Result<Value> Finalize() = 0;
};

using CustomAggregateFactory =
    std::function<std::unique_ptr<CustomAggregate>()>;

struct AggSpec {
  enum class Kind { kCountStar, kCount, kSum, kMin, kMax, kAvg, kCustom };
  Kind kind = Kind::kCountStar;
  ExprPtr arg;  // unused for kCountStar
  std::string output_name;
  CustomAggregateFactory custom;  // kCustom only
};

/// Hash group-by; with empty `group_by` produces a single global row.
OperatorPtr GroupBy(OperatorPtr child, std::vector<ExprPtr> group_by,
                    std::vector<std::string> group_names,
                    std::vector<AggSpec> aggregates);

// --- Window -----------------------------------------------------------------

/// LAG(arg, offset, default) OVER (ORDER BY keys) — the only window
/// function the paper's Q6 needs. Appends one output column; input order is
/// replaced by the window order.
OperatorPtr WindowLag(OperatorPtr child, ExprPtr arg, int64_t offset,
                      ExprPtr default_value, std::vector<SortKey> order_by,
                      std::string output_name);

// --- Telemetry --------------------------------------------------------------

/// Wraps `child` with an EXPLAIN ANALYZE probe: Open/Next/Close wall time
/// accumulates into span->elapsed_us and emitted rows into span->rows_out
/// (reset on each Open). The span must outlive the returned operator;
/// passing nullptr returns `child` unchanged.
OperatorPtr Instrument(OperatorPtr child, telemetry::OperatorSpan* span);

// --- Helpers ----------------------------------------------------------------

/// Drains an operator into a vector (Open/Next/Close).
Result<std::vector<Row>> Collect(Operator* op);

/// Runs and formats rows for display/tests: each row joined by '|'.
Result<std::vector<std::string>> CollectStrings(Operator* op);

}  // namespace fsdm::rdbms

#endif  // FSDM_RDBMS_EXECUTOR_H_
