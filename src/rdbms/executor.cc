#include "rdbms/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "telemetry/trace_event.h"

namespace fsdm::rdbms {

namespace {

class ScanOp final : public Operator {
 public:
  ScanOp(const Table* table, bool include_hidden)
      : table_(table), include_hidden_(include_hidden) {
    schema_ = table->OutputSchema(include_hidden);
  }

  Status Open() override {
    next_row_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(Row* out) override {
    while (next_row_ < table_->row_count()) {
      size_t id = next_row_++;
      if (!table_->IsLive(id)) continue;
      FSDM_ASSIGN_OR_RETURN(*out, table_->MaterializeRow(id, include_hidden_));
      FSDM_COUNT("fsdm_rdbms_scan_rows_total", 1);
      return true;
    }
    return false;
  }

  void Close() override {}

 private:
  const Table* table_;
  bool include_hidden_;
  size_t next_row_ = 0;
};

class ValuesOp final : public Operator {
 public:
  ValuesOp(Schema schema, std::vector<Row> rows) : rows_(std::move(rows)) {
    schema_ = std::move(schema);
  }
  Status Open() override {
    next_ = 0;
    return Status::Ok();
  }
  Result<bool> Next(Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = rows_[next_++];
    return true;
  }
  void Close() override {}

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {
    schema_ = child_->schema();
  }

  Status Open() override {
    FSDM_RETURN_NOT_OK(predicate_->Bind(schema_));
    return child_->Open();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      FSDM_ASSIGN_OR_RETURN(bool more, child_->Next(out));
      if (!more) return false;
      FSDM_COUNT("fsdm_rdbms_filter_rows_in_total", 1);
      RowContext ctx{&schema_, out};
      FSDM_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ctx));
      if (!v.is_null() && v.AsBool()) {
        FSDM_COUNT("fsdm_rdbms_filter_rows_out_total", 1);
        return true;
      }
    }
  }

  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child,
            std::vector<std::pair<std::string, ExprPtr>> exprs)
      : child_(std::move(child)) {
    std::vector<std::string> names;
    for (auto& [name, expr] : exprs) {
      names.push_back(name);
      exprs_.push_back(std::move(expr));
    }
    schema_ = Schema(std::move(names));
  }

  Status Open() override {
    for (ExprPtr& e : exprs_) {
      FSDM_RETURN_NOT_OK(e->Bind(child_->schema()));
    }
    return child_->Open();
  }

  Result<bool> Next(Row* out) override {
    Row in;
    FSDM_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    const Schema& in_schema = child_->schema();
    RowContext ctx{&in_schema, &in};
    out->clear();
    out->reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      FSDM_ASSIGN_OR_RETURN(Value v, e->Eval(ctx));
      out->push_back(std::move(v));
    }
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
};

class LimitOp final : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {
    schema_ = child_->schema();
  }
  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Row* out) override {
    if (emitted_ >= limit_) return false;
    FSDM_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    ++emitted_;
    return true;
  }
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

class SampleOp final : public Operator {
 public:
  SampleOp(OperatorPtr child, double pct, uint64_t seed)
      : child_(std::move(child)), pct_(pct), seed_(seed), rng_(seed) {
    schema_ = child_->schema();
  }
  Status Open() override {
    rng_ = Rng(seed_);
    return child_->Open();
  }
  Result<bool> Next(Row* out) override {
    while (true) {
      FSDM_ASSIGN_OR_RETURN(bool more, child_->Next(out));
      if (!more) return false;
      if (rng_.NextDouble() * 100.0 < pct_) return true;
    }
  }
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  double pct_;
  uint64_t seed_;
  Rng rng_;
};

// Materializing sort.
class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {
    schema_ = child_->schema();
  }

  Status Open() override {
    FSDM_TIME_SCOPE_US("fsdm_rdbms_sort_us");
    for (SortKey& k : keys_) FSDM_RETURN_NOT_OK(k.expr->Bind(schema_));
    FSDM_RETURN_NOT_OK(child_->Open());
    rows_.clear();
    keyed_.clear();
    Row row;
    while (true) {
      FSDM_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
      if (!more) break;
      RowContext ctx{&schema_, &row};
      std::vector<Value> key;
      key.reserve(keys_.size());
      for (const SortKey& k : keys_) {
        FSDM_ASSIGN_OR_RETURN(Value v, k.expr->Eval(ctx));
        key.push_back(std::move(v));
      }
      keyed_.push_back({std::move(key), rows_.size()});
      rows_.push_back(std::move(row));
    }
    child_->Close();
    FSDM_COUNT("fsdm_rdbms_sort_rows_total", rows_.size());
    std::stable_sort(keyed_.begin(), keyed_.end(),
                     [this](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < keys_.size(); ++i) {
                         Result<int> cmp = a.key[i].CompareTo(b.key[i]);
                         int c = cmp.ok() ? cmp.value() : 0;
                         if (c != 0) return keys_[i].ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
    next_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(Row* out) override {
    if (next_ >= keyed_.size()) return false;
    *out = std::move(rows_[keyed_[next_].row_index]);
    ++next_;
    return true;
  }

  void Close() override {
    rows_.clear();
    keyed_.clear();
  }

 private:
  struct Keyed {
    std::vector<Value> key;
    size_t row_index;
  };
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  std::vector<Keyed> keyed_;
  size_t next_ = 0;
};

// Grouping key with hashing/equality over Values.
struct KeyVec {
  std::vector<Value> values;

  bool operator==(const KeyVec& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values[i].EqualsForGrouping(other.values[i])) return false;
    }
    return true;
  }
};

struct KeyVecHash {
  size_t operator()(const KeyVec& k) const {
    uint64_t h = 1469598103934665603ull;
    for (const Value& v : k.values) {
      h ^= v.HashForGrouping();
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::vector<ExprPtr> lkeys,
             std::vector<ExprPtr> rkeys, JoinType type)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkeys_(std::move(lkeys)),
        rkeys_(std::move(rkeys)),
        type_(type) {
    std::vector<std::string> names = left_->schema().columns();
    for (const std::string& n : right_->schema().columns()) {
      names.push_back(n);
    }
    schema_ = Schema(std::move(names));
  }

  Status Open() override {
    FSDM_TIME_SCOPE_US("fsdm_rdbms_hash_join_build_us");
    for (ExprPtr& e : lkeys_) FSDM_RETURN_NOT_OK(e->Bind(left_->schema()));
    for (ExprPtr& e : rkeys_) FSDM_RETURN_NOT_OK(e->Bind(right_->schema()));

    // Build phase over the right input.
    FSDM_RETURN_NOT_OK(right_->Open());
    build_.clear();
    Row row;
    const Schema& rs = right_->schema();
    while (true) {
      FSDM_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
      if (!more) break;
      RowContext ctx{&rs, &row};
      KeyVec key;
      bool has_null = false;
      for (const ExprPtr& e : rkeys_) {
        FSDM_ASSIGN_OR_RETURN(Value v, e->Eval(ctx));
        if (v.is_null()) has_null = true;
        key.values.push_back(std::move(v));
      }
      if (has_null) continue;  // NULL keys never join
      FSDM_COUNT("fsdm_rdbms_hash_join_build_rows_total", 1);
      build_[key].push_back(row);
    }
    right_->Close();

    FSDM_RETURN_NOT_OK(left_->Open());
    matches_ = nullptr;
    match_idx_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (matches_ != nullptr && match_idx_ < matches_->size()) {
        *out = current_left_;
        const Row& r = (*matches_)[match_idx_++];
        out->insert(out->end(), r.begin(), r.end());
        FSDM_COUNT("fsdm_rdbms_hash_join_rows_out_total", 1);
        return true;
      }
      matches_ = nullptr;

      FSDM_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      const Schema& ls = left_->schema();
      RowContext ctx{&ls, &current_left_};
      KeyVec key;
      bool has_null = false;
      for (const ExprPtr& e : lkeys_) {
        FSDM_ASSIGN_OR_RETURN(Value v, e->Eval(ctx));
        if (v.is_null()) has_null = true;
        key.values.push_back(std::move(v));
      }
      auto it = has_null ? build_.end() : build_.find(key);
      if (it != build_.end()) {
        matches_ = &it->second;
        match_idx_ = 0;
        continue;
      }
      if (type_ == JoinType::kLeftOuter) {
        *out = current_left_;
        out->resize(schema_.size(), Value::Null());
        return true;
      }
      // Inner join: skip unmatched left rows.
    }
  }

  void Close() override {
    left_->Close();
    build_.clear();
  }

 private:
  OperatorPtr left_, right_;
  std::vector<ExprPtr> lkeys_, rkeys_;
  JoinType type_;
  std::unordered_map<KeyVec, std::vector<Row>, KeyVecHash> build_;
  Row current_left_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_idx_ = 0;
};

class UnionAllOp final : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {
    schema_ = children_.empty() ? Schema() : children_[0]->schema();
  }
  Status Open() override {
    current_ = 0;
    for (OperatorPtr& c : children_) FSDM_RETURN_NOT_OK(c->Open());
    return Status::Ok();
  }
  Result<bool> Next(Row* out) override {
    while (current_ < children_.size()) {
      FSDM_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
      if (more) return true;
      ++current_;
    }
    return false;
  }
  void Close() override {
    for (OperatorPtr& c : children_) c->Close();
  }

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

struct AggState {
  int64_t count = 0;
  Value acc;          // SUM/MIN/MAX accumulator
  bool acc_set = false;
  std::unique_ptr<CustomAggregate> custom;
};

class GroupByOp final : public Operator {
 public:
  GroupByOp(OperatorPtr child, std::vector<ExprPtr> group_by,
            std::vector<std::string> group_names,
            std::vector<AggSpec> aggregates)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {
    std::vector<std::string> names = std::move(group_names);
    for (const AggSpec& a : aggregates_) names.push_back(a.output_name);
    schema_ = Schema(std::move(names));
  }

  Status Open() override {
    FSDM_TIME_SCOPE_US("fsdm_rdbms_group_by_us");
    const Schema& in = child_->schema();
    for (ExprPtr& e : group_by_) FSDM_RETURN_NOT_OK(e->Bind(in));
    for (AggSpec& a : aggregates_) {
      if (a.arg) FSDM_RETURN_NOT_OK(a.arg->Bind(in));
    }
    FSDM_RETURN_NOT_OK(child_->Open());

    groups_.clear();
    order_.clear();
    Row row;
    while (true) {
      FSDM_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
      if (!more) break;
      FSDM_COUNT("fsdm_rdbms_group_by_rows_in_total", 1);
      RowContext ctx{&in, &row};
      KeyVec key;
      for (const ExprPtr& e : group_by_) {
        FSDM_ASSIGN_OR_RETURN(Value v, e->Eval(ctx));
        key.values.push_back(std::move(v));
      }
      auto [it, inserted] =
          groups_.try_emplace(key, std::vector<AggState>(aggregates_.size()));
      if (inserted) order_.push_back(&*it);
      std::vector<AggState>& states = it->second;
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        FSDM_RETURN_NOT_OK(Accumulate(aggregates_[i], ctx, &states[i]));
      }
    }
    child_->Close();
    // Global aggregate over empty input still yields one row.
    if (group_by_.empty() && groups_.empty()) {
      KeyVec key;
      auto [it, inserted] =
          groups_.try_emplace(key, std::vector<AggState>(aggregates_.size()));
      if (inserted) order_.push_back(&*it);
    }
    FSDM_COUNT("fsdm_rdbms_group_by_groups_total", groups_.size());
    next_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(Row* out) override {
    if (next_ >= order_.size()) return false;
    const auto& [key, states] = *order_[next_++];
    out->clear();
    for (const Value& v : key.values) out->push_back(v);
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      FSDM_ASSIGN_OR_RETURN(Value v, Finalize(aggregates_[i], states[i]));
      out->push_back(std::move(v));
    }
    return true;
  }

  void Close() override {
    groups_.clear();
    order_.clear();
  }

 private:
  Status Accumulate(const AggSpec& spec, const RowContext& ctx,
                    AggState* state) {
    if (spec.kind == AggSpec::Kind::kCountStar) {
      ++state->count;
      return Status::Ok();
    }
    FSDM_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(ctx));
    if (spec.kind == AggSpec::Kind::kCustom) {
      if (!state->custom) state->custom = spec.custom();
      return state->custom->Accumulate(v);
    }
    if (v.is_null()) return Status::Ok();  // SQL aggregates ignore NULLs
    ++state->count;
    switch (spec.kind) {
      case AggSpec::Kind::kCount:
        return Status::Ok();
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg: {
        if (!v.IsNumeric()) {
          return Status::InvalidArgument("SUM/AVG over non-numeric value");
        }
        if (!state->acc_set) {
          state->acc = Value::Dec(v.NumericAsDecimal());
          state->acc_set = true;
        } else {
          state->acc =
              Value::Dec(state->acc.AsDecimal().Add(v.NumericAsDecimal()));
        }
        return Status::Ok();
      }
      case AggSpec::Kind::kMin:
      case AggSpec::Kind::kMax: {
        if (!state->acc_set) {
          state->acc = std::move(v);
          state->acc_set = true;
          return Status::Ok();
        }
        FSDM_ASSIGN_OR_RETURN(int cmp, v.CompareTo(state->acc));
        bool take = spec.kind == AggSpec::Kind::kMin ? cmp < 0 : cmp > 0;
        if (take) state->acc = std::move(v);
        return Status::Ok();
      }
      default:
        return Status::Internal("bad aggregate kind");
    }
  }

  Result<Value> Finalize(const AggSpec& spec, const AggState& state) const {
    switch (spec.kind) {
      case AggSpec::Kind::kCountStar:
      case AggSpec::Kind::kCount:
        return Value::Int64(state.count);
      case AggSpec::Kind::kSum:
        if (!state.acc_set) return Value::Null();
        // Surface integral sums as int64.
        if (state.acc.AsDecimal().IsInteger()) {
          Result<int64_t> i = state.acc.AsDecimal().ToInt64();
          if (i.ok()) return Value::Int64(i.value());
        }
        return state.acc;
      case AggSpec::Kind::kAvg: {
        if (!state.acc_set || state.count == 0) return Value::Null();
        FSDM_ASSIGN_OR_RETURN(
            Decimal avg,
            state.acc.AsDecimal().DivideApprox(
                Decimal::FromInt64(state.count)));
        return Value::Dec(std::move(avg));
      }
      case AggSpec::Kind::kMin:
      case AggSpec::Kind::kMax:
        return state.acc_set ? state.acc : Value::Null();
      case AggSpec::Kind::kCustom: {
        // An empty group still finalizes a fresh instance.
        if (!state.custom) {
          std::unique_ptr<CustomAggregate> fresh = spec.custom();
          return fresh->Finalize();
        }
        return state.custom->Finalize();
      }
    }
    return Status::Internal("bad aggregate kind");
  }

  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggregates_;
  using GroupMap =
      std::unordered_map<KeyVec, std::vector<AggState>, KeyVecHash>;
  GroupMap groups_;
  std::vector<GroupMap::value_type*> order_;  // insertion order
  size_t next_ = 0;
};

class WindowLagOp final : public Operator {
 public:
  WindowLagOp(OperatorPtr child, ExprPtr arg, int64_t offset,
              ExprPtr default_value, std::vector<SortKey> order_by,
              std::string output_name)
      : sorted_(Sort(std::move(child), std::move(order_by))),
        arg_(std::move(arg)),
        offset_(offset),
        default_(std::move(default_value)) {
    std::vector<std::string> names = sorted_->schema().columns();
    names.push_back(std::move(output_name));
    schema_ = Schema(std::move(names));
  }

  Status Open() override {
    FSDM_RETURN_NOT_OK(arg_->Bind(sorted_->schema()));
    if (default_) FSDM_RETURN_NOT_OK(default_->Bind(sorted_->schema()));
    FSDM_RETURN_NOT_OK(sorted_->Open());
    // Materialize input and compute lagged values.
    rows_.clear();
    lagged_.clear();
    const Schema& in = sorted_->schema();
    Row row;
    std::vector<Value> args;
    while (true) {
      FSDM_ASSIGN_OR_RETURN(bool more, sorted_->Next(&row));
      if (!more) break;
      RowContext ctx{&in, &row};
      FSDM_ASSIGN_OR_RETURN(Value v, arg_->Eval(ctx));
      args.push_back(std::move(v));
      rows_.push_back(std::move(row));
    }
    sorted_->Close();
    lagged_.resize(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      int64_t src = static_cast<int64_t>(i) - offset_;
      if (src >= 0 && src < static_cast<int64_t>(rows_.size())) {
        lagged_[i] = args[src];
      } else if (default_) {
        const Schema& in2 = sorted_->schema();
        RowContext ctx{&in2, &rows_[i]};
        FSDM_ASSIGN_OR_RETURN(lagged_[i], default_->Eval(ctx));
      } else {
        lagged_[i] = Value::Null();
      }
    }
    next_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_]);
    out->push_back(std::move(lagged_[next_]));
    ++next_;
    return true;
  }

  void Close() override {
    rows_.clear();
    lagged_.clear();
  }

 private:
  OperatorPtr sorted_;
  ExprPtr arg_;
  int64_t offset_;
  ExprPtr default_;
  std::vector<Row> rows_;
  std::vector<Value> lagged_;
  size_t next_ = 0;
};

/// EXPLAIN ANALYZE probe: accumulates wall time and emitted rows into an
/// externally owned OperatorSpan. Timing is inclusive — a parent span's
/// elapsed_us contains its children's, like EXPLAIN ANALYZE "actual time".
class InstrumentOp final : public Operator {
 public:
  InstrumentOp(OperatorPtr child, telemetry::OperatorSpan* span)
      : child_(std::move(child)), span_(span) {
    schema_ = child_->schema();
  }

  Status Open() override {
    // Flight-recorder spans bracket Open and Close only; batching the
    // per-Next tick into the close span keeps the recorder off the
    // row-at-a-time hot path. The operator name is copied into the event
    // (the span tree dies with its RoutedPlan; ring events outlive it).
    FSDM_TRACE_SPAN(trace_span, "rdbms", "op.open");
    trace_span.AddTextArg("op", span_->name);
    span_->rows_out.store(0, std::memory_order_relaxed);
    span_->elapsed_us = 0;
    // Live-progress mirror for the query monitor: mark the operator open
    // before the child opens so a concurrent TELEMETRY$QUERY_MONITOR scan
    // never sees rows ticking on a "pending" operator.
    span_->live_elapsed_us.store(0, std::memory_order_relaxed);
    span_->live_open_ts_us.store(telemetry::MonotonicNowUs(),
                                 std::memory_order_relaxed);
    span_->live_state.store(telemetry::OperatorSpan::kOpen,
                            std::memory_order_relaxed);
    telemetry::Stopwatch w;
    Status st = child_->Open();
    span_->elapsed_us += w.ElapsedUs();
    return st;
  }

  Result<bool> Next(Row* out) override {
    telemetry::Stopwatch w;
    Result<bool> more = child_->Next(out);
    span_->elapsed_us += w.ElapsedUs();
    if (more.ok() && more.value()) {
      span_->rows_out.fetch_add(1, std::memory_order_relaxed);
    }
    return more;
  }

  void Close() override {
    FSDM_TRACE_SPAN(trace_span, "rdbms", "op.close");
    trace_span.AddTextArg("op", span_->name);
    trace_span.AddNumberArg(
        "rows", static_cast<double>(
                    span_->rows_out.load(std::memory_order_relaxed)));
    telemetry::Stopwatch w;
    child_->Close();
    span_->elapsed_us += w.ElapsedUs();
    span_->live_elapsed_us.store(static_cast<uint64_t>(span_->elapsed_us),
                                 std::memory_order_relaxed);
    span_->live_state.store(telemetry::OperatorSpan::kDone,
                            std::memory_order_relaxed);
  }

 private:
  OperatorPtr child_;
  telemetry::OperatorSpan* span_;
};

}  // namespace

OperatorPtr Instrument(OperatorPtr child, telemetry::OperatorSpan* span) {
  if (span == nullptr) return child;
  return std::make_unique<InstrumentOp>(std::move(child), span);
}

OperatorPtr Scan(const Table* table, bool include_hidden) {
  return std::make_unique<ScanOp>(table, include_hidden);
}
OperatorPtr Values(Schema schema, std::vector<Row> rows) {
  return std::make_unique<ValuesOp>(std::move(schema), std::move(rows));
}
OperatorPtr Filter(OperatorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}
OperatorPtr Project(OperatorPtr child,
                    std::vector<std::pair<std::string, ExprPtr>> exprs) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(exprs));
}
OperatorPtr Limit(OperatorPtr child, size_t limit) {
  return std::make_unique<LimitOp>(std::move(child), limit);
}
OperatorPtr Sample(OperatorPtr child, double pct, uint64_t seed) {
  return std::make_unique<SampleOp>(std::move(child), pct, seed);
}
OperatorPtr Sort(OperatorPtr child, std::vector<SortKey> keys) {
  return std::make_unique<SortOp>(std::move(child), std::move(keys));
}
OperatorPtr HashJoin(OperatorPtr left, OperatorPtr right,
                     std::vector<ExprPtr> left_keys,
                     std::vector<ExprPtr> right_keys, JoinType type) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      std::move(left_keys),
                                      std::move(right_keys), type);
}
OperatorPtr UnionAll(std::vector<OperatorPtr> children) {
  return std::make_unique<UnionAllOp>(std::move(children));
}
OperatorPtr GroupBy(OperatorPtr child, std::vector<ExprPtr> group_by,
                    std::vector<std::string> group_names,
                    std::vector<AggSpec> aggregates) {
  return std::make_unique<GroupByOp>(std::move(child), std::move(group_by),
                                     std::move(group_names),
                                     std::move(aggregates));
}
OperatorPtr WindowLag(OperatorPtr child, ExprPtr arg, int64_t offset,
                      ExprPtr default_value, std::vector<SortKey> order_by,
                      std::string output_name) {
  return std::make_unique<WindowLagOp>(
      std::move(child), std::move(arg), offset, std::move(default_value),
      std::move(order_by), std::move(output_name));
}

Result<std::vector<Row>> Collect(Operator* op) {
  FSDM_RETURN_NOT_OK(op->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    FSDM_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    rows.push_back(std::move(row));
  }
  op->Close();
  return rows;
}

Result<std::vector<std::string>> CollectStrings(Operator* op) {
  FSDM_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect(op));
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) line += "|";
      line += row[i].ToDisplayString();
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace fsdm::rdbms
