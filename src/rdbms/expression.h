#ifndef FSDM_RDBMS_EXPRESSION_H_
#define FSDM_RDBMS_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace fsdm::rdbms {

/// Name -> position map for the rows flowing through an operator.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  /// Column position, or npos when absent. Case-sensitive.
  static constexpr size_t npos = ~size_t{0};
  size_t IndexOf(const std::string& name) const;

 private:
  std::vector<std::string> columns_;
  std::unordered_map<std::string, size_t> index_;
};

using Row = std::vector<Value>;

/// Evaluation context: a row and its schema.
struct RowContext {
  const Schema* schema;
  const Row* row;
};

/// Scalar expression tree evaluated against a RowContext. Expressions are
/// immutable and shareable; column references are resolved by name at
/// evaluation time via the context's schema (Bind() can pre-resolve for the
/// hot path). SQL three-valued logic: NULL operands generally yield NULL,
/// and Filter treats non-TRUE as reject.
class Expression {
 public:
  virtual ~Expression() = default;

  virtual Result<Value> Eval(const RowContext& ctx) const = 0;

  /// Pre-resolves column positions against a schema. Must be called (or
  /// not) consistently with the schema used at Eval time.
  virtual Status Bind(const Schema& schema) {
    (void)schema;
    return Status::Ok();
  }

  /// Human-readable form for plan display.
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<Expression>;

// --- Constructors -----------------------------------------------------------

ExprPtr Lit(Value v);
ExprPtr Col(std::string name);

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right);
inline ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kEq, std::move(l), std::move(r)); }
inline ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kNe, std::move(l), std::move(r)); }
inline ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLt, std::move(l), std::move(r)); }
inline ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLe, std::move(l), std::move(r)); }
inline ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGt, std::move(l), std::move(r)); }
inline ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGe, std::move(l), std::move(r)); }

enum class ArithOp { kAdd, kSub, kMul, kDiv };
ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);
inline ExprPtr Add(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kAdd, std::move(l), std::move(r)); }
inline ExprPtr Sub(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kSub, std::move(l), std::move(r)); }
inline ExprPtr Mul(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kMul, std::move(l), std::move(r)); }
inline ExprPtr Div(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kDiv, std::move(l), std::move(r)); }

ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr expr);
ExprPtr IsNull(ExprPtr expr);
ExprPtr IsNotNull(ExprPtr expr);
/// expr IN (v1, v2, ...).
ExprPtr In(ExprPtr expr, std::vector<Value> values);

/// Scalar SQL functions: SUBSTR(s, pos [, len]) (1-based, like Oracle),
/// INSTR(s, sub), LENGTH(s), UPPER(s), LOWER(s), CONCAT(a, b), NVL(a, b),
/// TO_NUMBER(s).
ExprPtr Func(std::string name, std::vector<ExprPtr> args);

/// Wraps an arbitrary evaluation callback — the extension point the
/// SQL/JSON operators (JSON_VALUE etc.) plug into, mirroring how the paper
/// layers SQL/JSON on the ORDBMS extensibility framework [11, 13].
ExprPtr Callback(std::string label,
                 std::function<Result<Value>(const RowContext&)> fn,
                 std::vector<std::string> referenced_columns = {});

}  // namespace fsdm::rdbms

#endif  // FSDM_RDBMS_EXPRESSION_H_
