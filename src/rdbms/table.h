#ifndef FSDM_RDBMS_TABLE_H_
#define FSDM_RDBMS_TABLE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "json/node.h"
#include "rdbms/expression.h"

namespace fsdm::rdbms {

/// Declared column types. kJson is a text column carrying the IS JSON check
/// constraint (the paper's storage for JSON collections); kRaw holds binary
/// images (BSON/OSON).
enum class ColumnType : uint8_t {
  kNumber,
  kString,
  kBool,
  kDate,
  kTimestamp,
  kJson,
  kRaw,
};

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
  /// varchar2(n)-style declared max length; 0 = unbounded. Informational
  /// except for DataGuide-driven column sizing.
  size_t max_length = 0;
  /// IS JSON check constraint (only meaningful on kJson columns).
  bool check_is_json = false;
  /// Virtual column: evaluated from the row on access, never stored.
  ExprPtr virtual_expr;
  /// Hidden columns are excluded from SELECT * / scans unless requested —
  /// used for the implicit OSON virtual column of §5.2.2.
  bool hidden = false;

  bool is_virtual() const { return virtual_expr != nullptr; }
};

/// Observes row-level changes; the JSON search index (and with it the
/// persistent DataGuide) registers one of these so index maintenance runs
/// inside the DML path, as in §3.2.1.
///
/// DML over an observed table is all-or-nothing: when an observer (or the
/// table's own apply step) fails, the table calls the matching Undo* hook
/// on every observer whose On* callback had already succeeded, in reverse
/// registration order, before surfacing the error — so the base table and
/// every maintained side structure end the DML in their pre-DML state.
/// Undo* must restore the observer's state as of before its On* callback;
/// an observer whose undo fails must absorb the damage itself (e.g. by
/// entering a degraded state) — the table only counts the failure
/// (fsdm_dml_undo_failures_total) and carries on with the rollback.
class TableObserver {
 public:
  virtual ~TableObserver() = default;
  virtual Status OnInsert(size_t row_id, const Row& row) = 0;
  virtual Status OnDelete(size_t row_id, const Row& row) = 0;
  virtual Status OnReplace(size_t row_id, const Row& old_row,
                           const Row& new_row) = 0;

  /// Compensation hooks; defaults are no-ops for observers whose On*
  /// effects are conservative under rollback (e.g. cache invalidation).
  virtual Status UndoInsert(size_t row_id, const Row& row) {
    (void)row_id;
    (void)row;
    return Status::Ok();
  }
  virtual Status UndoDelete(size_t row_id, const Row& row) {
    (void)row_id;
    (void)row;
    return Status::Ok();
  }
  virtual Status UndoReplace(size_t row_id, const Row& old_row,
                             const Row& new_row) {
    (void)row_id;
    (void)old_row;
    (void)new_row;
    return Status::Ok();
  }
};

/// Heap row store with typed columns, check constraints, virtual columns
/// and change observers. Single-threaded by design (the evaluation never
/// needs concurrent DML).
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  /// Positions of physical (stored) columns within columns().
  const std::vector<size_t>& physical_columns() const { return physical_; }
  size_t row_count() const { return rows_.size(); }

  /// Index into columns() by name; Schema::npos if absent.
  size_t ColumnIndex(const std::string& name) const;

  /// Appends a virtual column (AddVC / hidden OSON column). Fails on
  /// duplicate name.
  Status AddVirtualColumn(ColumnDef def);

  /// Inserts one row of *physical* column values (in physical_columns()
  /// order). Runs type checks, the IS JSON constraint where declared, and
  /// observers. Returns the new row id.
  Result<size_t> Insert(Row physical_values);

  Status Delete(size_t row_id);
  Status Replace(size_t row_id, Row physical_values);

  /// Stored values of a row (physical columns only).
  const Row& StoredRow(size_t row_id) const { return rows_[row_id]; }
  bool IsLive(size_t row_id) const { return live_[row_id]; }

  /// Materializes a full output row: physical values plus evaluated
  /// virtual columns (hidden ones included only when `include_hidden`).
  /// The matching schema comes from OutputSchema(include_hidden).
  Result<Row> MaterializeRow(size_t row_id, bool include_hidden = false) const;
  Schema OutputSchema(bool include_hidden = false) const;

  void AddObserver(TableObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(TableObserver* observer);

  /// During observer callbacks only: the DOM the IS JSON check constraint
  /// already parsed for the physical column at `physical_pos`, or nullptr.
  /// Lets index/DataGuide maintenance piggyback on the constraint's parse
  /// instead of re-parsing (§3.2.1).
  const json::JsonNode* ParsedJsonForObserver(size_t physical_pos) const;

  /// Approximate stored byte size: sum over rows of value payload sizes.
  /// This is what the storage-size comparisons (Fig. 4) report.
  size_t EstimateStorageBytes() const;

  /// In-memory heap footprint of the row store (ISSUE 9 memory
  /// attribution): container overhead plus owned string payloads, by
  /// size() not capacity(). Maintained incrementally by DML; tombstoned
  /// rows stay counted because Delete() only marks them dead — their
  /// memory is not reclaimed.
  uint64_t HeapBytes() const {
    return heap_bytes_.load(std::memory_order_relaxed);
  }
  /// Exact O(rows) walk with the same formula; the accounting unit test
  /// pins HeapBytes() == RecomputeHeapBytes() across DML mixes.
  uint64_t RecomputeHeapBytes() const;

 private:
  Status ValidateRow(const Row& physical_values);

  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<size_t> physical_;  // indexes of stored columns
  std::vector<Row> rows_;        // stored values, physical order
  std::vector<bool> live_;       // tombstones for Delete
  // Incremental accounting over rows_. Atomic (relaxed) because DML
  // mutates it while MemoryTracker reporter callbacks read it from other
  // threads (workload-snapshot tick, TELEMETRY$MEMORY refresh).
  std::atomic<uint64_t> heap_bytes_{0};
  std::vector<TableObserver*> observers_;
  // Parse results of the current DML's IS JSON checks, shared with
  // observers; cleared after the callbacks run.
  std::map<size_t, std::unique_ptr<json::JsonNode>> dml_parsed_;
};

/// Named table/view registry.
class Database {
 public:
  Result<Table*> CreateTable(std::string name, std::vector<ColumnDef> columns);
  Result<Table*> GetTable(const std::string& name);
  Status DropTable(const std::string& name);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

/// Size in bytes a Value occupies in our simulated row storage; shared by
/// Table::EstimateStorageBytes and the benchmarks.
size_t ValueStorageBytes(const Value& v);

}  // namespace fsdm::rdbms

#endif  // FSDM_RDBMS_TABLE_H_
