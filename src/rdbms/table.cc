#include "rdbms/table.h"

#include "fault/fault.h"
#include "json/parser.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace fsdm::rdbms {

namespace {

enum class DmlKind { kInsert, kDelete, kReplace };

/// Accounting footprint of one stored row: container overhead plus owned
/// string/binary payloads (size, not capacity, so the incremental counter
/// and the recompute walk agree exactly).
uint64_t RowHeapBytes(const Row& row) {
  uint64_t bytes = sizeof(Row) + row.size() * sizeof(Value);
  for (const Value& v : row) {
    const ScalarType t = v.type();
    if (t == ScalarType::kString) bytes += v.AsString().size();
    if (t == ScalarType::kBinary) bytes += v.AsBinary().size();
  }
  return bytes;
}

/// Compensates a partially fanned-out DML: calls the matching Undo* hook
/// on the first `completed` observers in reverse registration order. Undo
/// failures are the observer's to absorb (degraded state); here they are
/// only counted.
void RollbackObservers(const std::vector<TableObserver*>& observers,
                       size_t completed, DmlKind kind, size_t row_id,
                       const Row& old_row, const Row& new_row) {
  FSDM_COUNT("fsdm_dml_rollbacks_total", 1);
  FSDM_TRACE_INSTANT("rdbms", "dml.rollback");
  for (size_t j = completed; j-- > 0;) {
    Status undone;
    switch (kind) {
      case DmlKind::kInsert:
        undone = observers[j]->UndoInsert(row_id, new_row);
        break;
      case DmlKind::kDelete:
        undone = observers[j]->UndoDelete(row_id, old_row);
        break;
      case DmlKind::kReplace:
        undone = observers[j]->UndoReplace(row_id, old_row, new_row);
        break;
    }
    if (!undone.ok()) FSDM_COUNT("fsdm_dml_undo_failures_total", 1);
  }
}

}  // namespace

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].is_virtual()) physical_.push_back(i);
  }
}

size_t Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Schema::npos;
}

Status Table::AddVirtualColumn(ColumnDef def) {
  if (!def.is_virtual()) {
    return Status::InvalidArgument("AddVirtualColumn requires an expression");
  }
  if (ColumnIndex(def.name) != Schema::npos) {
    return Status::AlreadyExists("column '" + def.name + "' exists on " +
                                 name_);
  }
  columns_.push_back(std::move(def));
  return Status::Ok();
}

namespace {

bool TypeAccepts(ColumnType type, const Value& v) {
  if (v.is_null()) return true;
  switch (type) {
    case ColumnType::kNumber:
      return v.IsNumeric();
    case ColumnType::kString:
    case ColumnType::kJson:
      return v.type() == ScalarType::kString;
    case ColumnType::kBool:
      return v.type() == ScalarType::kBool;
    case ColumnType::kDate:
      // ISO date strings or day numbers both accepted.
      return v.type() == ScalarType::kDate ||
             v.type() == ScalarType::kString;
    case ColumnType::kTimestamp:
      return v.type() == ScalarType::kTimestamp;
    case ColumnType::kRaw:
      return v.type() == ScalarType::kBinary;
  }
  return false;
}

}  // namespace

Status Table::ValidateRow(const Row& physical_values) {
  dml_parsed_.clear();
  if (physical_values.size() != physical_.size()) {
    return Status::InvalidArgument(
        name_ + ": expected " + std::to_string(physical_.size()) +
        " values, got " + std::to_string(physical_values.size()));
  }
  for (size_t i = 0; i < physical_.size(); ++i) {
    const ColumnDef& def = columns_[physical_[i]];
    const Value& v = physical_values[i];
    if (!TypeAccepts(def.type, v)) {
      return Status::InvalidArgument(
          name_ + "." + def.name + ": value type " +
          std::string(ScalarTypeName(v.type())) + " not accepted");
    }
    if (def.check_is_json && !v.is_null()) {
      // The IS JSON check constraint: full syntactic validation. The
      // parsed DOM is kept through the observer callbacks so index and
      // DataGuide maintenance reuse this parse (§3.2.1).
      FSDM_COUNT("fsdm_rdbms_isjson_checks_total", 1);
      FSDM_TIME_SCOPE_US("fsdm_rdbms_isjson_check_us");
      FSDM_TRACE_SPAN(span, "rdbms", "isjson.check");
      span.AddNumberArg("bytes", static_cast<double>(v.AsString().size()));
      Result<std::unique_ptr<json::JsonNode>> parsed =
          json::Parse(v.AsString());
      if (!parsed.ok()) {
        return Status::ConstraintViolation(name_ + "." + def.name +
                                           " IS JSON failed: " +
                                           parsed.status().message());
      }
      dml_parsed_[i] = parsed.MoveValue();
    }
  }
  return Status::Ok();
}

Result<size_t> Table::Insert(Row physical_values) {
  // Simulated storage-layer failure before any side effect.
  FSDM_FAULT_POINT("table.insert.apply");
  FSDM_RETURN_NOT_OK(ValidateRow(physical_values));
  size_t row_id = rows_.size();
  rows_.push_back(std::move(physical_values));
  live_.push_back(true);
  heap_bytes_.fetch_add(RowHeapBytes(rows_.back()),
                        std::memory_order_relaxed);
  Status failure;
  size_t completed = 0;
  for (TableObserver* obs : observers_) {
    failure = obs->OnInsert(row_id, rows_.back());
    if (!failure.ok()) break;
    ++completed;
  }
  if (!failure.ok()) {
    // All-or-nothing: compensate the observers that already applied, then
    // roll the row back, so storage and side structures stay consistent.
    RollbackObservers(observers_, completed, DmlKind::kInsert, row_id,
                      rows_.back(), rows_.back());
    heap_bytes_.fetch_sub(RowHeapBytes(rows_.back()),
                          std::memory_order_relaxed);
    rows_.pop_back();
    live_.pop_back();
    dml_parsed_.clear();
    return failure;
  }
  dml_parsed_.clear();
  return row_id;
}

const json::JsonNode* Table::ParsedJsonForObserver(
    size_t physical_pos) const {
  auto it = dml_parsed_.find(physical_pos);
  return it == dml_parsed_.end() ? nullptr : it->second.get();
}

Status Table::Delete(size_t row_id) {
  if (row_id >= rows_.size() || !live_[row_id]) {
    return Status::NotFound("row " + std::to_string(row_id));
  }
  Status failure;
  size_t completed = 0;
  for (TableObserver* obs : observers_) {
    failure = obs->OnDelete(row_id, rows_[row_id]);
    if (!failure.ok()) break;
    ++completed;
  }
  if (failure.ok()) {
    // Simulated storage-layer failure after the observers committed: the
    // tombstone "write" fails and every observer must be compensated.
    failure = FSDM_FAULT_STATUS("table.delete.apply");
  }
  if (!failure.ok()) {
    RollbackObservers(observers_, completed, DmlKind::kDelete, row_id,
                      rows_[row_id], rows_[row_id]);
    return failure;
  }
  live_[row_id] = false;
  return Status::Ok();
}

Status Table::Replace(size_t row_id, Row physical_values) {
  if (row_id >= rows_.size() || !live_[row_id]) {
    return Status::NotFound("row " + std::to_string(row_id));
  }
  FSDM_RETURN_NOT_OK(ValidateRow(physical_values));
  Status failure;
  size_t completed = 0;
  for (TableObserver* obs : observers_) {
    failure = obs->OnReplace(row_id, rows_[row_id], physical_values);
    if (!failure.ok()) break;
    ++completed;
  }
  if (failure.ok()) {
    // Simulated storage-layer failure after the observers committed.
    failure = FSDM_FAULT_STATUS("table.replace.apply");
  }
  if (!failure.ok()) {
    RollbackObservers(observers_, completed, DmlKind::kReplace, row_id,
                      rows_[row_id], physical_values);
    dml_parsed_.clear();
    return failure;
  }
  heap_bytes_.fetch_sub(RowHeapBytes(rows_[row_id]),
                        std::memory_order_relaxed);
  rows_[row_id] = std::move(physical_values);
  heap_bytes_.fetch_add(RowHeapBytes(rows_[row_id]),
                        std::memory_order_relaxed);
  dml_parsed_.clear();
  return Status::Ok();
}

Schema Table::OutputSchema(bool include_hidden) const {
  std::vector<std::string> names;
  for (const ColumnDef& def : columns_) {
    if (def.hidden && !include_hidden) continue;
    names.push_back(def.name);
  }
  return Schema(std::move(names));
}

Result<Row> Table::MaterializeRow(size_t row_id, bool include_hidden) const {
  if (row_id >= rows_.size() || !live_[row_id]) {
    return Status::NotFound("row " + std::to_string(row_id));
  }
  // Virtual expressions see the physical columns by name.
  std::vector<std::string> phys_names;
  phys_names.reserve(physical_.size());
  for (size_t idx : physical_) phys_names.push_back(columns_[idx].name);
  Schema phys_schema(std::move(phys_names));
  RowContext ctx{&phys_schema, &rows_[row_id]};

  Row out;
  size_t phys_i = 0;
  for (const ColumnDef& def : columns_) {
    if (def.is_virtual()) {
      if (def.hidden && !include_hidden) continue;
      FSDM_ASSIGN_OR_RETURN(Value v, def.virtual_expr->Eval(ctx));
      out.push_back(std::move(v));
    } else {
      Value v = rows_[row_id][phys_i];
      ++phys_i;
      if (def.hidden && !include_hidden) continue;
      out.push_back(std::move(v));
    }
  }
  return out;
}

void Table::RemoveObserver(TableObserver* observer) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (*it == observer) {
      observers_.erase(it);
      return;
    }
  }
}

size_t ValueStorageBytes(const Value& v) {
  switch (v.type()) {
    case ScalarType::kNull:
      return 1;
    case ScalarType::kBool:
      return 1;
    case ScalarType::kInt64: {
      std::string enc;
      Decimal::FromInt64(v.AsInt64()).EncodeBinary(&enc);
      return enc.size();
    }
    case ScalarType::kDouble:
      return 8;
    case ScalarType::kDecimal: {
      std::string enc;
      v.AsDecimal().EncodeBinary(&enc);
      return enc.size();
    }
    case ScalarType::kString:
      return v.AsString().size() + 1;  // length byte, varchar-style
    case ScalarType::kDate:
      return 4;
    case ScalarType::kTimestamp:
      return 8;
    case ScalarType::kBinary:
      return v.AsBinary().size() + 2;
  }
  return 0;
}

uint64_t Table::RecomputeHeapBytes() const {
  uint64_t total = 0;
  for (const Row& row : rows_) total += RowHeapBytes(row);
  return total;
}

size_t Table::EstimateStorageBytes() const {
  size_t total = 0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (!live_[r]) continue;
    total += 3;  // row header
    for (const Value& v : rows_[r]) total += ValueStorageBytes(v);
  }
  return total;
}

Result<Table*> Database::CreateTable(std::string name,
                                     std::vector<ColumnDef> columns) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(columns));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("table " + name);
  return Status::Ok();
}

}  // namespace fsdm::rdbms
