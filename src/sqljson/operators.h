#ifndef FSDM_SQLJSON_OPERATORS_H_
#define FSDM_SQLJSON_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>

#include "bson/bson.h"
#include "common/status.h"
#include "json/dom.h"
#include "jsonpath/evaluator.h"
#include "oson/oson.h"
#include "rdbms/expression.h"
#include "rdbms/table.h"

namespace fsdm::sqljson {

/// Physical representation of a JSON column (§6.3's storage methods).
enum class JsonStorage : uint8_t {
  kText,  ///< JSON text in a varchar column — parsed per evaluation
  kBson,  ///< BSON bytes in a raw column — serial-scan navigation
  kOson,  ///< OSON bytes in a raw column — random-access navigation
};

/// Opens a json::Dom over a column value according to the storage kind.
/// Reused across rows: text mode re-parses per document (that cost is the
/// paper's headline comparison), binary modes are zero-copy opens.
class DomSource {
 public:
  explicit DomSource(JsonStorage storage) : storage_(storage) {}

  /// The returned Dom is valid until the next Open call. `column_value`
  /// must stay alive while the Dom is used (binary Doms alias its bytes).
  Result<const json::Dom*> Open(const Value& column_value);

  JsonStorage storage() const { return storage_; }

 private:
  JsonStorage storage_;
  std::unique_ptr<json::JsonNode> tree_;
  std::optional<json::TreeDom> tree_dom_;
  std::optional<bson::BsonDom> bson_dom_;
  std::optional<oson::OsonDom> oson_dom_;
};

/// Desired SQL type of a JSON_VALUE projection (the RETURNING clause).
enum class Returning : uint8_t {
  kAny,     ///< native scalar value
  kNumber,  ///< coerce to number (strings parsed; failure -> NULL)
  kString,  ///< coerce to display string
};

/// JSON_VALUE(column, path RETURNING type): extracts a singleton scalar.
/// Non-scalar or missing targets yield NULL (NULL ON ERROR semantics).
/// The returned expression holds the compiled path and its field-id cache,
/// so reusing one expression across rows gets the §4.2.1 optimizations.
Result<rdbms::ExprPtr> JsonValue(std::string column, std::string path,
                                 JsonStorage storage,
                                 Returning returning = Returning::kAny);

/// JSON_EXISTS(column, path): TRUE/FALSE (path errors -> FALSE).
Result<rdbms::ExprPtr> JsonExists(std::string column, std::string path,
                                  JsonStorage storage);

/// JSON_QUERY(column, path): serialized JSON text of the first selected
/// node (scalar, object or array); NULL when nothing matches.
Result<rdbms::ExprPtr> JsonQuery(std::string column, std::string path,
                                 JsonStorage storage);

/// JSON_TEXTCONTAINS(column, path, keyword): full-text style containment —
/// TRUE when any string scalar selected by the path contains `keyword`
/// case-insensitively as a word substring.
Result<rdbms::ExprPtr> JsonTextContains(std::string column, std::string path,
                                        std::string keyword,
                                        JsonStorage storage);

/// OSON(column): encodes a JSON text column into OSON bytes (kBinary).
/// This is the constructor behind the hidden in-memory virtual column of
/// §5.2.2.
rdbms::ExprPtr OsonConstructor(std::string column,
                               oson::EncodeOptions options = {});

/// BSON(column): encodes a JSON text column into BSON bytes; baseline
/// counterpart of OsonConstructor for the format comparisons.
rdbms::ExprPtr BsonConstructor(std::string column);

/// §5.2.2's transparent rewrite: adds the hidden OSON virtual column
/// "<json_column>$OSON" to `table` (if absent) and returns its name.
/// Queries compiled with JsonValue/JsonExists against that column (storage
/// kOson) then evaluate over the in-memory binary image instead of
/// re-parsing text, while nothing is stored on disk — the column is
/// virtual and materializes at IMC population time.
Result<std::string> EnsureHiddenOsonColumn(rdbms::Table* table,
                                           const std::string& json_column);

}  // namespace fsdm::sqljson

#endif  // FSDM_SQLJSON_OPERATORS_H_
