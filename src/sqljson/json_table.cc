#include "sqljson/json_table.h"

namespace fsdm::sqljson {

namespace {

using json::Dom;
using rdbms::Row;

/// Compiled form of a JsonTableDef: parsed paths with persistent
/// evaluators (field-id caches live across input documents).
struct CompiledDef {
  jsonpath::PathExpression row_path;
  std::unique_ptr<jsonpath::PathEvaluator> row_eval;
  struct CompiledColumn {
    // Heap-allocated so the evaluator's pointer survives vector moves.
    std::unique_ptr<jsonpath::PathExpression> path;
    std::unique_ptr<jsonpath::PathEvaluator> eval;
    Returning returning;
  };
  std::vector<CompiledColumn> columns;
  std::vector<std::unique_ptr<CompiledDef>> nested;
  size_t own_width = 0;    // columns.size()
  size_t total_width = 0;  // own + sum of nested totals

  static Result<std::unique_ptr<CompiledDef>> Compile(
      const JsonTableDef& def) {
    auto out = std::make_unique<CompiledDef>();
    FSDM_ASSIGN_OR_RETURN(out->row_path,
                          jsonpath::PathExpression::Parse(def.row_path));
    out->row_eval =
        std::make_unique<jsonpath::PathEvaluator>(&out->row_path);
    for (const JsonTableColumn& col : def.columns) {
      CompiledColumn cc;
      FSDM_ASSIGN_OR_RETURN(jsonpath::PathExpression parsed,
                            jsonpath::PathExpression::Parse(col.path));
      cc.path = std::make_unique<jsonpath::PathExpression>(std::move(parsed));
      cc.eval = std::make_unique<jsonpath::PathEvaluator>(cc.path.get());
      cc.returning = col.returning;
      out->columns.push_back(std::move(cc));
    }
    out->own_width = out->columns.size();
    out->total_width = out->own_width;
    for (const JsonTableDef& n : def.nested) {
      FSDM_ASSIGN_OR_RETURN(std::unique_ptr<CompiledDef> child, Compile(n));
      out->total_width += child->total_width;
      out->nested.push_back(std::move(child));
    }
    return out;
  }
};

Value CoerceColumn(Value v, Returning returning) {
  if (v.is_null()) return v;
  switch (returning) {
    case Returning::kAny:
      return v;
    case Returning::kNumber:
      if (v.IsNumeric()) return v;
      if (v.type() == ScalarType::kString) {
        Result<Decimal> d = Decimal::FromString(v.AsString());
        if (!d.ok()) return Value::Null();
        if (d.value().IsInteger()) {
          Result<int64_t> i = d.value().ToInt64();
          if (i.ok()) return Value::Int64(i.value());
        }
        return Value::Dec(d.MoveValue());
      }
      return Value::Null();
    case Returning::kString:
      return Value::String(v.ToDisplayString());
  }
  return v;
}

/// Generates the rows of one definition for one context node, appending
/// them to `out`. Each produced Row has exactly def.total_width values.
Status GenerateRows(const Dom& dom, Dom::NodeRef parent_context,
                    const CompiledDef& def, std::vector<Row>* out) {
  Status inner = Status::Ok();
  Status st = def.row_eval->EvaluateFrom(
      dom, parent_context, [&](Dom::NodeRef ctx, bool*) -> Status {
        // Own column values for this row context.
        Row own(def.own_width);
        for (size_t i = 0; i < def.columns.size(); ++i) {
          const auto& cc = def.columns[i];
          FSDM_ASSIGN_OR_RETURN(std::optional<Value> v,
                                cc.eval->FirstScalarFrom(dom, ctx));
          own[i] = v.has_value() ? CoerceColumn(std::move(*v), cc.returning)
                                 : Value::Null();
        }

        if (def.nested.empty()) {
          out->push_back(std::move(own));
          return Status::Ok();
        }

        // Child rows per nested definition.
        std::vector<std::vector<Row>> child_rows(def.nested.size());
        bool any_child = false;
        for (size_t n = 0; n < def.nested.size(); ++n) {
          FSDM_RETURN_NOT_OK(
              GenerateRows(dom, ctx, *def.nested[n], &child_rows[n]));
          if (!child_rows[n].empty()) any_child = true;
        }

        // Union join across siblings; left outer against the parent.
        if (!any_child) {
          Row row = own;
          row.resize(def.total_width, Value::Null());
          out->push_back(std::move(row));
          return Status::Ok();
        }
        // Byte offsets of each nested block within the output row.
        for (size_t n = 0; n < def.nested.size(); ++n) {
          for (Row& crow : child_rows[n]) {
            Row row;
            row.reserve(def.total_width);
            row.insert(row.end(), own.begin(), own.end());
            for (size_t m = 0; m < def.nested.size(); ++m) {
              if (m == n) {
                for (Value& v : crow) row.push_back(std::move(v));
              } else {
                row.insert(row.end(), def.nested[m]->total_width,
                           Value::Null());
              }
            }
            out->push_back(std::move(row));
          }
        }
        return Status::Ok();
      });
  FSDM_RETURN_NOT_OK(st);
  return inner;
}

class JsonTableOp final : public rdbms::Operator {
 public:
  JsonTableOp(rdbms::OperatorPtr input, std::string json_column,
              JsonStorage storage, std::unique_ptr<CompiledDef> def,
              std::vector<std::string> jt_columns)
      : input_(std::move(input)),
        json_column_(std::move(json_column)),
        source_(storage),
        def_(std::move(def)) {
    std::vector<std::string> names = input_->schema().columns();
    for (std::string& n : jt_columns) names.push_back(std::move(n));
    schema_ = rdbms::Schema(std::move(names));
  }

  Status Open() override {
    json_col_idx_ = input_->schema().IndexOf(json_column_);
    if (json_col_idx_ == rdbms::Schema::npos) {
      return Status::NotFound("JSON column '" + json_column_ +
                              "' not in input");
    }
    FSDM_RETURN_NOT_OK(input_->Open());
    pending_.clear();
    pending_idx_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (pending_idx_ < pending_.size()) {
        *out = current_input_;
        Row& jt = pending_[pending_idx_++];
        for (Value& v : jt) out->push_back(std::move(v));
        return true;
      }
      FSDM_ASSIGN_OR_RETURN(bool more, input_->Next(&current_input_));
      if (!more) return false;
      pending_.clear();
      pending_idx_ = 0;
      const Value& doc = current_input_[json_col_idx_];
      if (doc.is_null()) continue;  // no rows for NULL documents
      FSDM_ASSIGN_OR_RETURN(const Dom* dom, source_.Open(doc));
      FSDM_RETURN_NOT_OK(GenerateRows(*dom, dom->root(), *def_, &pending_));
    }
  }

  void Close() override { input_->Close(); }

 private:
  rdbms::OperatorPtr input_;
  std::string json_column_;
  size_t json_col_idx_ = rdbms::Schema::npos;
  DomSource source_;
  std::unique_ptr<CompiledDef> def_;
  Row current_input_;
  std::vector<Row> pending_;
  size_t pending_idx_ = 0;
};

void AppendColumns(const JsonTableDef& def, std::vector<std::string>* out) {
  for (const JsonTableColumn& c : def.columns) out->push_back(c.name);
  for (const JsonTableDef& n : def.nested) AppendColumns(n, out);
}

}  // namespace

std::vector<std::string> JsonTableOutputColumns(const JsonTableDef& def) {
  std::vector<std::string> out;
  AppendColumns(def, &out);
  return out;
}

Result<rdbms::OperatorPtr> JsonTable(rdbms::OperatorPtr input,
                                     std::string json_column,
                                     JsonStorage storage, JsonTableDef def) {
  FSDM_ASSIGN_OR_RETURN(std::unique_ptr<CompiledDef> compiled,
                        CompiledDef::Compile(def));
  std::vector<std::string> jt_columns = JsonTableOutputColumns(def);
  return rdbms::OperatorPtr(
      new JsonTableOp(std::move(input), std::move(json_column), storage,
                      std::move(compiled), std::move(jt_columns)));
}

}  // namespace fsdm::sqljson
