#ifndef FSDM_SQLJSON_JSON_TABLE_H_
#define FSDM_SQLJSON_JSON_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "rdbms/executor.h"
#include "sqljson/operators.h"

namespace fsdm::sqljson {

/// One projected column of a JSON_TABLE: `path` is evaluated relative to
/// the current row node ('$' = row context). Non-scalar and missing
/// targets yield NULL.
struct JsonTableColumn {
  std::string name;
  std::string path;
  Returning returning = Returning::kAny;
};

/// A (possibly nested) JSON_TABLE definition. `row_path` generates row
/// context nodes relative to the parent context ('$' = parent row node;
/// for the root definition, the document root). Per §3.3.2:
///   - child NESTED PATH definitions join LEFT OUTER: parent column values
///     repeat per child row, and a parent with no child rows still emits
///     one row with NULL child columns;
///   - sibling NESTED PATH definitions combine by UNION JOIN: a row from
///     one sibling carries NULLs for all other siblings' columns.
struct JsonTableDef {
  std::string row_path = "$";
  std::vector<JsonTableColumn> columns;
  std::vector<JsonTableDef> nested;
};

/// JSON_TABLE(json_column, def) applied to each row of `input`. The output
/// schema is the input schema (pass-through columns, e.g. the key column
/// the paper's PO.DID) followed by the definition's columns depth-first.
/// Implemented as a row-source iterator with Open/Next/Close, recursing on
/// NESTED PATH via the DOM-based path engine (§5.1).
Result<rdbms::OperatorPtr> JsonTable(rdbms::OperatorPtr input,
                                     std::string json_column,
                                     JsonStorage storage, JsonTableDef def);

/// All column names a definition produces, depth-first (the JSON_TABLE
/// output schema minus pass-through columns).
std::vector<std::string> JsonTableOutputColumns(const JsonTableDef& def);

}  // namespace fsdm::sqljson

#endif  // FSDM_SQLJSON_JSON_TABLE_H_
