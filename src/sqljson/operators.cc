#include "sqljson/operators.h"

#include <cctype>

#include "json/parser.h"
#include "json/serializer.h"
#include "jsonpath/streaming.h"

namespace fsdm::sqljson {

Result<const json::Dom*> DomSource::Open(const Value& column_value) {
  switch (storage_) {
    case JsonStorage::kText: {
      if (column_value.type() != ScalarType::kString) {
        return Status::InvalidArgument("text JSON column must hold a string");
      }
      FSDM_ASSIGN_OR_RETURN(tree_, json::Parse(column_value.AsString()));
      tree_dom_.emplace(tree_.get());
      return &*tree_dom_;
    }
    case JsonStorage::kBson: {
      if (column_value.type() != ScalarType::kBinary) {
        return Status::InvalidArgument("BSON column must hold binary bytes");
      }
      FSDM_ASSIGN_OR_RETURN(bson::BsonDom dom,
                            bson::BsonDom::Open(column_value.AsBinary()));
      bson_dom_.emplace(std::move(dom));
      return &*bson_dom_;
    }
    case JsonStorage::kOson: {
      if (column_value.type() != ScalarType::kBinary) {
        return Status::InvalidArgument("OSON column must hold binary bytes");
      }
      FSDM_ASSIGN_OR_RETURN(oson::OsonDom dom,
                            oson::OsonDom::Open(column_value.AsBinary()));
      oson_dom_.emplace(std::move(dom));
      return &*oson_dom_;
    }
  }
  return Status::Internal("bad storage kind");
}

namespace {

// Shared per-expression state: compiled path + evaluator + dom source.
// Held by shared_ptr inside the Callback closure so one expression reused
// across rows keeps its field-id caches warm. Text-mode evaluation of
// streamable paths (member chains) bypasses DOM construction entirely via
// the streaming engine (§5.1); complex paths fall back to parse + DOM.
struct PathState {
  jsonpath::PathExpression path;
  std::unique_ptr<jsonpath::PathEvaluator> eval;
  DomSource source;
  bool streamable = false;

  PathState(jsonpath::PathExpression p, JsonStorage storage)
      : path(std::move(p)), source(storage) {
    eval = std::make_unique<jsonpath::PathEvaluator>(&path);
    streamable = storage == JsonStorage::kText &&
                 jsonpath::StreamingPathEngine::CanStream(path);
  }
};

Result<std::shared_ptr<PathState>> MakeState(const std::string& path,
                                             JsonStorage storage) {
  FSDM_ASSIGN_OR_RETURN(jsonpath::PathExpression compiled,
                        jsonpath::PathExpression::Parse(path));
  return std::make_shared<PathState>(std::move(compiled), storage);
}

Value CoerceReturning(Value v, Returning returning) {
  if (v.is_null()) return v;
  switch (returning) {
    case Returning::kAny:
      return v;
    case Returning::kNumber: {
      if (v.IsNumeric()) return v;
      if (v.type() == ScalarType::kString) {
        Result<Decimal> d = Decimal::FromString(v.AsString());
        if (!d.ok()) return Value::Null();
        if (d.value().IsInteger()) {
          Result<int64_t> i = d.value().ToInt64();
          if (i.ok()) return Value::Int64(i.value());
        }
        return Value::Dec(d.MoveValue());
      }
      if (v.type() == ScalarType::kBool) {
        return Value::Int64(v.AsBool() ? 1 : 0);
      }
      return Value::Null();
    }
    case Returning::kString:
      return Value::String(v.ToDisplayString());
  }
  return v;
}

}  // namespace

Result<rdbms::ExprPtr> JsonValue(std::string column, std::string path,
                                 JsonStorage storage, Returning returning) {
  FSDM_ASSIGN_OR_RETURN(std::shared_ptr<PathState> state,
                        MakeState(path, storage));
  std::string label = "JSON_VALUE(" + column + ", '" + path + "')";
  rdbms::ExprPtr col = rdbms::Col(column);
  return rdbms::Callback(
      std::move(label),
      [state, col, returning](const rdbms::RowContext& ctx) -> Result<Value> {
        FSDM_ASSIGN_OR_RETURN(Value doc, col->Eval(ctx));
        if (doc.is_null()) return Value::Null();
        std::optional<Value> v;
        if (state->streamable) {
          FSDM_ASSIGN_OR_RETURN(
              v, jsonpath::StreamingPathEngine::FirstScalar(doc.AsString(),
                                                            state->path));
        } else {
          FSDM_ASSIGN_OR_RETURN(const json::Dom* dom,
                                state->source.Open(doc));
          FSDM_ASSIGN_OR_RETURN(v, state->eval->FirstScalar(*dom));
        }
        if (!v.has_value()) return Value::Null();
        return CoerceReturning(std::move(*v), returning);
      });
}

Result<rdbms::ExprPtr> JsonExists(std::string column, std::string path,
                                  JsonStorage storage) {
  FSDM_ASSIGN_OR_RETURN(std::shared_ptr<PathState> state,
                        MakeState(path, storage));
  std::string label = "JSON_EXISTS(" + column + ", '" + path + "')";
  rdbms::ExprPtr col = rdbms::Col(column);
  return rdbms::Callback(
      std::move(label),
      [state, col](const rdbms::RowContext& ctx) -> Result<Value> {
        FSDM_ASSIGN_OR_RETURN(Value doc, col->Eval(ctx));
        if (doc.is_null()) return Value::Bool(false);
        bool exists;
        if (state->streamable) {
          FSDM_ASSIGN_OR_RETURN(
              exists, jsonpath::StreamingPathEngine::Exists(doc.AsString(),
                                                            state->path));
        } else {
          FSDM_ASSIGN_OR_RETURN(const json::Dom* dom,
                                state->source.Open(doc));
          FSDM_ASSIGN_OR_RETURN(exists, state->eval->Exists(*dom));
        }
        return Value::Bool(exists);
      });
}

Result<rdbms::ExprPtr> JsonQuery(std::string column, std::string path,
                                 JsonStorage storage) {
  FSDM_ASSIGN_OR_RETURN(std::shared_ptr<PathState> state,
                        MakeState(path, storage));
  std::string label = "JSON_QUERY(" + column + ", '" + path + "')";
  rdbms::ExprPtr col = rdbms::Col(column);
  return rdbms::Callback(
      std::move(label),
      [state, col](const rdbms::RowContext& ctx) -> Result<Value> {
        FSDM_ASSIGN_OR_RETURN(Value doc, col->Eval(ctx));
        if (doc.is_null()) return Value::Null();
        FSDM_ASSIGN_OR_RETURN(const json::Dom* dom, state->source.Open(doc));
        std::optional<std::string> text;
        Status st = state->eval->Evaluate(
            *dom, [&](json::Dom::NodeRef node, bool* stop) {
              *stop = true;
              // Serialize the selected subtree.
              std::string out;
              struct SubtreeDom {
                static void Render(const json::Dom& d,
                                   json::Dom::NodeRef n, std::string* o) {
                  switch (d.GetNodeType(n)) {
                    case json::NodeKind::kObject: {
                      o->push_back('{');
                      size_t cnt = d.GetFieldCount(n);
                      for (size_t i = 0; i < cnt; ++i) {
                        if (i) o->push_back(',');
                        std::string_view name;
                        json::Dom::NodeRef child;
                        d.GetFieldAt(n, i, &name, &child);
                        json::AppendQuoted(o, name);
                        o->push_back(':');
                        Render(d, child, o);
                      }
                      o->push_back('}');
                      break;
                    }
                    case json::NodeKind::kArray: {
                      o->push_back('[');
                      size_t cnt = d.GetArrayLength(n);
                      for (size_t i = 0; i < cnt; ++i) {
                        if (i) o->push_back(',');
                        Render(d, d.GetArrayElement(n, i), o);
                      }
                      o->push_back(']');
                      break;
                    }
                    case json::NodeKind::kScalar: {
                      Value v;
                      if (d.GetScalarValue(n, &v).ok()) {
                        json::AppendScalar(o, v);
                      } else {
                        o->append("null");
                      }
                      break;
                    }
                  }
                }
              };
              SubtreeDom::Render(*dom, node, &out);
              text = std::move(out);
              return Status::Ok();
            });
        FSDM_RETURN_NOT_OK(st);
        if (!text.has_value()) return Value::Null();
        return Value::String(std::move(*text));
      });
}

Result<rdbms::ExprPtr> JsonTextContains(std::string column, std::string path,
                                        std::string keyword,
                                        JsonStorage storage) {
  FSDM_ASSIGN_OR_RETURN(std::shared_ptr<PathState> state,
                        MakeState(path, storage));
  std::string lowered = keyword;
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  std::string label =
      "JSON_TEXTCONTAINS(" + column + ", '" + path + "', '" + keyword + "')";
  rdbms::ExprPtr col = rdbms::Col(column);
  return rdbms::Callback(
      std::move(label),
      [state, col, lowered](const rdbms::RowContext& ctx) -> Result<Value> {
        FSDM_ASSIGN_OR_RETURN(Value doc, col->Eval(ctx));
        if (doc.is_null()) return Value::Bool(false);
        FSDM_ASSIGN_OR_RETURN(const json::Dom* dom, state->source.Open(doc));
        bool found = false;
        Status st = state->eval->Evaluate(
            *dom, [&](json::Dom::NodeRef node, bool* stop) {
              if (dom->GetNodeType(node) != json::NodeKind::kScalar) {
                return Status::Ok();
              }
              Value v;
              FSDM_RETURN_NOT_OK(dom->GetScalarValue(node, &v));
              if (v.type() != ScalarType::kString) return Status::Ok();
              std::string hay = v.AsString();
              for (char& c : hay) {
                c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
              }
              if (hay.find(lowered) != std::string::npos) {
                found = true;
                *stop = true;
              }
              return Status::Ok();
            });
        FSDM_RETURN_NOT_OK(st);
        return Value::Bool(found);
      });
}

rdbms::ExprPtr OsonConstructor(std::string column,
                               oson::EncodeOptions options) {
  std::string label = "OSON(" + column + ")";
  rdbms::ExprPtr col = rdbms::Col(column);
  return rdbms::Callback(
      std::move(label),
      [col, options](const rdbms::RowContext& ctx) -> Result<Value> {
        FSDM_ASSIGN_OR_RETURN(Value doc, col->Eval(ctx));
        if (doc.is_null()) return Value::Null();
        if (doc.type() != ScalarType::kString) {
          return Status::InvalidArgument("OSON() expects a JSON text column");
        }
        FSDM_ASSIGN_OR_RETURN(std::string bytes,
                              oson::EncodeFromText(doc.AsString(), options));
        return Value::Binary(std::move(bytes));
      });
}

Result<std::string> EnsureHiddenOsonColumn(rdbms::Table* table,
                                           const std::string& json_column) {
  std::string name = json_column + "$OSON";
  if (table->ColumnIndex(name) != rdbms::Schema::npos) return name;
  size_t base = table->ColumnIndex(json_column);
  if (base == rdbms::Schema::npos) {
    return Status::NotFound("column '" + json_column + "' on " +
                            table->name());
  }
  if (table->columns()[base].type != rdbms::ColumnType::kJson) {
    return Status::InvalidArgument("'" + json_column +
                                   "' is not a JSON column");
  }
  rdbms::ColumnDef def;
  def.name = name;
  def.type = rdbms::ColumnType::kRaw;
  def.hidden = true;
  def.virtual_expr = OsonConstructor(json_column);
  FSDM_RETURN_NOT_OK(table->AddVirtualColumn(std::move(def)));
  return name;
}

rdbms::ExprPtr BsonConstructor(std::string column) {
  std::string label = "BSON(" + column + ")";
  rdbms::ExprPtr col = rdbms::Col(column);
  return rdbms::Callback(
      std::move(label), [col](const rdbms::RowContext& ctx) -> Result<Value> {
        FSDM_ASSIGN_OR_RETURN(Value doc, col->Eval(ctx));
        if (doc.is_null()) return Value::Null();
        if (doc.type() != ScalarType::kString) {
          return Status::InvalidArgument("BSON() expects a JSON text column");
        }
        FSDM_ASSIGN_OR_RETURN(std::string bytes,
                              bson::EncodeFromText(doc.AsString()));
        return Value::Binary(std::move(bytes));
      });
}

}  // namespace fsdm::sqljson
