#include "imc/column_store.h"

#include <algorithm>
#include <set>

#include "fault/fault.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace fsdm::imc {

namespace {

bool OpHolds(rdbms::CompareOp op, int cmp) {
  switch (op) {
    case rdbms::CompareOp::kEq:
      return cmp == 0;
    case rdbms::CompareOp::kNe:
      return cmp != 0;
    case rdbms::CompareOp::kLt:
      return cmp < 0;
    case rdbms::CompareOp::kLe:
      return cmp <= 0;
    case rdbms::CompareOp::kGt:
      return cmp > 0;
    case rdbms::CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

template <typename T>
int Spaceship(T a, T b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

}  // namespace

ColumnVector ColumnVector::Build(std::vector<Value> values) {
  ColumnVector col;
  col.size_ = values.size();
  col.nulls_.assign(values.size(), false);

  bool all_int = true, all_num = true, all_str = true, all_bool = true,
       all_bin = true;
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) {
      col.nulls_[i] = true;
      continue;
    }
    if (v.type() != ScalarType::kInt64) all_int = false;
    if (!v.IsNumeric()) all_num = false;
    if (v.type() != ScalarType::kString) all_str = false;
    if (v.type() != ScalarType::kBool) all_bool = false;
    if (v.type() != ScalarType::kBinary) all_bin = false;
  }

  if (all_int) {
    col.encoding_ = ColumnEncoding::kInt64;
    col.ints_.resize(values.size(), 0);
    for (size_t i = 0; i < values.size(); ++i) {
      if (!col.nulls_[i]) col.ints_[i] = values[i].AsInt64();
    }
    return col;
  }
  if (all_num) {
    col.encoding_ = ColumnEncoding::kNumber;
    col.doubles_.resize(values.size(), 0);
    for (size_t i = 0; i < values.size(); ++i) {
      if (!col.nulls_[i]) col.doubles_[i] = values[i].NumericAsDouble();
    }
    return col;
  }
  if (all_bool) {
    col.encoding_ = ColumnEncoding::kBool;
    col.bools_.resize(values.size(), false);
    for (size_t i = 0; i < values.size(); ++i) {
      if (!col.nulls_[i]) col.bools_[i] = values[i].AsBool();
    }
    return col;
  }
  if (all_str) {
    // Dictionary-encode when repetitive.
    std::set<std::string> distinct;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!col.nulls_[i]) distinct.insert(values[i].AsString());
    }
    if (!values.empty() && distinct.size() * 2 < values.size()) {
      col.encoding_ = ColumnEncoding::kDictString;
      col.strings_.assign(distinct.begin(), distinct.end());
      col.codes_.resize(values.size(), 0);
      for (size_t i = 0; i < values.size(); ++i) {
        if (col.nulls_[i]) continue;
        auto it = std::lower_bound(col.strings_.begin(), col.strings_.end(),
                                   values[i].AsString());
        col.codes_[i] = static_cast<uint32_t>(it - col.strings_.begin());
      }
      return col;
    }
    col.encoding_ = ColumnEncoding::kString;
    col.strings_.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      if (!col.nulls_[i]) col.strings_[i] = values[i].AsString();
    }
    return col;
  }
  if (all_bin) {
    col.encoding_ = ColumnEncoding::kBinary;
    col.strings_.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      if (!col.nulls_[i]) col.strings_[i] = values[i].AsBinary();
    }
    return col;
  }
  col.encoding_ = ColumnEncoding::kMixed;
  col.boxed_ = std::move(values);
  return col;
}

Value ColumnVector::GetValue(size_t row) const {
  if (nulls_[row]) return Value::Null();
  switch (encoding_) {
    case ColumnEncoding::kInt64:
      return Value::Int64(ints_[row]);
    case ColumnEncoding::kDouble:
    case ColumnEncoding::kNumber:
      return Value::Double(doubles_[row]);
    case ColumnEncoding::kString:
      return Value::String(strings_[row]);
    case ColumnEncoding::kDictString:
      return Value::String(strings_[codes_[row]]);
    case ColumnEncoding::kBool:
      return Value::Bool(bools_[row]);
    case ColumnEncoding::kBinary:
      return Value::Binary(strings_[row]);
    case ColumnEncoding::kMixed:
      return boxed_[row];
  }
  return Value::Null();
}

Status ColumnVector::FilterCompare(rdbms::CompareOp op, const Value& literal,
                                   const std::vector<uint32_t>* in,
                                   std::vector<uint32_t>* out) const {
  if (literal.is_null()) return Status::Ok();  // NULL matches nothing

  auto for_each = [&](auto&& match) {
    if (in == nullptr) {
      for (uint32_t i = 0; i < size_; ++i) {
        if (!nulls_[i] && match(i)) out->push_back(i);
      }
    } else {
      for (uint32_t i : *in) {
        if (!nulls_[i] && match(i)) out->push_back(i);
      }
    }
  };

  switch (encoding_) {
    case ColumnEncoding::kInt64: {
      if (!literal.IsNumeric()) {
        return Status::InvalidArgument("numeric column vs non-numeric literal");
      }
      // Integer literal fast path; fractional literals via double.
      if (literal.type() == ScalarType::kInt64) {
        int64_t lit = literal.AsInt64();
        for_each([&](uint32_t i) { return OpHolds(op, Spaceship(ints_[i], lit)); });
      } else {
        double lit = literal.NumericAsDouble();
        for_each([&](uint32_t i) {
          return OpHolds(op, Spaceship(static_cast<double>(ints_[i]), lit));
        });
      }
      return Status::Ok();
    }
    case ColumnEncoding::kDouble:
    case ColumnEncoding::kNumber: {
      if (!literal.IsNumeric()) {
        return Status::InvalidArgument("numeric column vs non-numeric literal");
      }
      double lit = literal.NumericAsDouble();
      for_each([&](uint32_t i) { return OpHolds(op, Spaceship(doubles_[i], lit)); });
      return Status::Ok();
    }
    case ColumnEncoding::kString: {
      if (literal.type() != ScalarType::kString) {
        return Status::InvalidArgument("string column vs non-string literal");
      }
      const std::string& lit = literal.AsString();
      for_each([&](uint32_t i) {
        return OpHolds(op, strings_[i].compare(lit) < 0
                               ? -1
                               : (strings_[i] == lit ? 0 : 1));
      });
      return Status::Ok();
    }
    case ColumnEncoding::kDictString: {
      if (literal.type() != ScalarType::kString) {
        return Status::InvalidArgument("string column vs non-string literal");
      }
      // Compare against the dictionary once, then scan integer codes —
      // the dictionary-encoding payoff.
      const std::string& lit = literal.AsString();
      auto it = std::lower_bound(strings_.begin(), strings_.end(), lit);
      uint32_t bound = static_cast<uint32_t>(it - strings_.begin());
      bool exact = it != strings_.end() && *it == lit;
      for_each([&](uint32_t i) {
        uint32_t c = codes_[i];
        int cmp = c < bound ? -1 : (c == bound && exact ? 0 : 1);
        return OpHolds(op, cmp);
      });
      return Status::Ok();
    }
    case ColumnEncoding::kBool: {
      if (literal.type() != ScalarType::kBool) {
        return Status::InvalidArgument("bool column vs non-bool literal");
      }
      bool lit = literal.AsBool();
      for_each([&](uint32_t i) {
        return OpHolds(op, Spaceship(bools_[i] ? 1 : 0, lit ? 1 : 0));
      });
      return Status::Ok();
    }
    case ColumnEncoding::kBinary:
    case ColumnEncoding::kMixed: {
      for_each([&](uint32_t i) {
        Value v = GetValue(i);
        Result<int> cmp = v.CompareTo(literal);
        return cmp.ok() && OpHolds(op, cmp.value());
      });
      return Status::Ok();
    }
  }
  return Status::Internal("bad encoding");
}

Result<double> ColumnVector::SumSelected(
    const std::vector<uint32_t>& sel) const {
  double total = 0;
  switch (encoding_) {
    case ColumnEncoding::kInt64:
      for (uint32_t i : sel) {
        if (!nulls_[i]) total += static_cast<double>(ints_[i]);
      }
      return total;
    case ColumnEncoding::kDouble:
    case ColumnEncoding::kNumber:
      for (uint32_t i : sel) {
        if (!nulls_[i]) total += doubles_[i];
      }
      return total;
    default:
      return Status::InvalidArgument("SumSelected requires a numeric column");
  }
}

size_t StringHeapBytes(const std::string& s) {
  return s.capacity() > std::string().capacity() ? s.capacity() + 1 : 0;
}

size_t StringAllocBytes(const std::string& s) {
  return sizeof(std::string) + StringHeapBytes(s);
}

namespace {

// Heap block behind a boxed Value, beyond its inline variant storage.
size_t BoxedHeapBytes(const Value& v) {
  switch (v.type()) {
    case ScalarType::kString:
      return StringHeapBytes(v.AsString());
    case ScalarType::kBinary:
      return StringHeapBytes(v.AsBinary());
    default:
      return 0;
  }
}

}  // namespace

size_t ColumnVector::MemoryBytes() const {
  size_t n = (nulls_.size() + 7) / 8 + (bools_.size() + 7) / 8 +
             ints_.size() * sizeof(int64_t) +
             doubles_.size() * sizeof(double) +
             codes_.size() * sizeof(uint32_t);
  // strings_ is the value array for kString/kBinary and the dictionary for
  // kDictString; either way each element owns its allocated block.
  for (const std::string& s : strings_) n += StringAllocBytes(s);
  for (const Value& v : boxed_) n += sizeof(Value) + BoxedHeapBytes(v);
  return n;
}

Result<ColumnStore> ColumnStore::Populate(
    const rdbms::Table& table, const std::vector<std::string>& columns) {
  // Simulated population failure (e.g. memory pressure) before any work.
  FSDM_FAULT_POINT("imc.populate");
  FSDM_COUNT("fsdm_imc_populations_total", 1);
  FSDM_TIME_SCOPE_US("fsdm_imc_populate_us");
  FSDM_TRACE_SPAN(span, "imc", "imc.populate");
  span.AddNumberArg("columns", static_cast<double>(columns.size()));
  ColumnStore store;
  store.names_ = columns;
  std::vector<std::vector<Value>> data(columns.size());

  // Column positions within the hidden-inclusive output row.
  rdbms::Schema full = table.OutputSchema(/*include_hidden=*/true);
  std::vector<size_t> positions;
  for (const std::string& name : columns) {
    size_t pos = full.IndexOf(name);
    if (pos == rdbms::Schema::npos) {
      return Status::NotFound("column '" + name + "' on " + table.name());
    }
    positions.push_back(pos);
  }

  for (size_t r = 0; r < table.row_count(); ++r) {
    if (!table.IsLive(r)) continue;
    FSDM_ASSIGN_OR_RETURN(rdbms::Row row,
                          table.MaterializeRow(r, /*include_hidden=*/true));
    for (size_t c = 0; c < columns.size(); ++c) {
      data[c].push_back(std::move(row[positions[c]]));
    }
    ++store.row_count_;
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    store.columns_.push_back(ColumnVector::Build(std::move(data[c])));
    store.index_[columns[c]] = c;
  }
  FSDM_COUNT("fsdm_imc_populated_rows_total", store.row_count_);
  size_t bytes = 0;
  for (const ColumnVector& c : store.columns_) bytes += c.MemoryBytes();
  store.memory_bytes_ = bytes;
  FSDM_GAUGE_SET("fsdm_imc_bytes", store.MemoryBytes());
  return store;
}

const ColumnVector* ColumnStore::column(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &columns_[it->second];
}

namespace {

class ImcScanOp final : public rdbms::Operator {
 public:
  ImcScanOp(const ColumnStore* store, std::vector<std::string> columns)
      : store_(store) {
    if (columns.empty()) columns = store->column_names();
    for (const std::string& name : columns) {
      cols_.push_back(store->column(name));
    }
    schema_ = rdbms::Schema(std::move(columns));
  }

  Status Open() override {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i] == nullptr) {
        return Status::NotFound("IMC column '" + schema_.columns()[i] + "'");
      }
    }
    next_ = 0;
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= store_->row_count()) return false;
    out->clear();
    for (const ColumnVector* c : cols_) out->push_back(c->GetValue(next_));
    ++next_;
    return true;
  }

  void Close() override {}

 private:
  const ColumnStore* store_;
  std::vector<const ColumnVector*> cols_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr ColumnStore::Scan(std::vector<std::string> columns) const {
  return std::make_unique<ImcScanOp>(this, std::move(columns));
}

Result<std::vector<uint32_t>> ColumnStore::FilterPositions(
    const std::vector<Predicate>& predicates) const {
  FSDM_COUNT("fsdm_imc_filter_scans_total", 1);
  FSDM_TRACE_SPAN(span, "imc", "imc.filter_scan");
  span.AddNumberArg("predicates", static_cast<double>(predicates.size()));
  std::vector<uint32_t> sel;
  bool first = true;
  std::vector<uint32_t> next;
  for (const Predicate& p : predicates) {
    const ColumnVector* col = column(p.column);
    if (col == nullptr) return Status::NotFound("IMC column " + p.column);
    next.clear();
    // Each FilterCompare pass is one vectorized batch over the column.
    FSDM_COUNT("fsdm_imc_scan_batches_total", 1);
    FSDM_RETURN_NOT_OK(
        col->FilterCompare(p.op, p.literal, first ? nullptr : &sel, &next));
    sel = std::move(next);
    next = {};
    first = false;
  }
  if (first) {
    // No predicates: everything matches.
    sel.resize(row_count_);
    for (uint32_t i = 0; i < row_count_; ++i) sel[i] = i;
  }
  FSDM_COUNT("fsdm_imc_scan_rows_total", sel.size());
  return sel;
}

Result<std::vector<rdbms::Row>> ColumnStore::FilterScan(
    const std::vector<Predicate>& predicates,
    const std::vector<std::string>& projection) const {
  FSDM_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                        FilterPositions(predicates));
  std::vector<const ColumnVector*> cols;
  for (const std::string& name : projection) {
    const ColumnVector* c = column(name);
    if (c == nullptr) return Status::NotFound("IMC column " + name);
    cols.push_back(c);
  }
  std::vector<rdbms::Row> rows;
  rows.reserve(sel.size());
  for (uint32_t i : sel) {
    rdbms::Row row;
    row.reserve(cols.size());
    for (const ColumnVector* c : cols) row.push_back(c->GetValue(i));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace fsdm::imc
