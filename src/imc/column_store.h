#ifndef FSDM_IMC_COLUMN_STORE_H_
#define FSDM_IMC_COLUMN_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"

namespace fsdm::imc {

/// Heap bytes a std::string occupies beyond its inline object: 0 while the
/// payload fits the SSO buffer, capacity()+1 (the allocated block includes
/// the terminator) once it has spilled. Exported so tests can pin the
/// MemoryBytes() accounting exactly.
size_t StringHeapBytes(const std::string& s);
/// sizeof(std::string) plus StringHeapBytes — the full footprint of one
/// owned string element.
size_t StringAllocBytes(const std::string& s);

/// Physical layout of one in-memory column.
enum class ColumnEncoding : uint8_t {
  kInt64,       ///< flat int64 array
  kDouble,      ///< flat double array
  kNumber,      ///< mixed numeric -> doubles (exact ints kept when possible)
  kString,      ///< flat string array
  kDictString,  ///< dictionary-encoded strings (codes + sorted dictionary)
  kBool,
  kBinary,      ///< raw byte strings (OSON/BSON images)
  kMixed,       ///< fallback: boxed Values
};

/// One materialized column: typed storage + null bitmap + vectorized
/// predicate kernels. The IMC columnar format of §5.2.1 — virtual-column
/// expressions (JSON_VALUE) are evaluated once at population time, after
/// which predicates and projections run over flat arrays.
class ColumnVector {
 public:
  /// Chooses the narrowest encoding that fits the values. Strings
  /// dictionary-encode when the distinct ratio is below 50%.
  static ColumnVector Build(std::vector<Value> values);

  size_t size() const { return size_; }
  ColumnEncoding encoding() const { return encoding_; }
  bool IsNull(size_t row) const { return nulls_[row]; }
  Value GetValue(size_t row) const;

  /// Vectorized filter: appends to *out the positions from `in` (or all
  /// rows when `in` is nullptr) where `value op literal` holds. NULLs never
  /// match. Runs as a tight loop over the typed array — the columnar SIMD
  /// stand-in.
  Status FilterCompare(rdbms::CompareOp op, const Value& literal,
                       const std::vector<uint32_t>* in,
                       std::vector<uint32_t>* out) const;

  /// Sum over a selection (numeric encodings only), as double.
  Result<double> SumSelected(const std::vector<uint32_t>& sel) const;

  /// Bytes of this column's payload: null/bool bitmaps at one bit per row
  /// (rounded up), typed arrays at element width times size(), dictionary
  /// codes at 4 bytes each plus the dictionary's strings, string payloads
  /// at their allocated capacity (StringAllocBytes), boxed values at
  /// sizeof(Value) plus any spilled string/binary heap block.
  size_t MemoryBytes() const;

 private:
  ColumnEncoding encoding_ = ColumnEncoding::kMixed;
  size_t size_ = 0;
  std::vector<bool> nulls_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;   // kString values / kDictString dict
  std::vector<uint32_t> codes_;        // kDictString
  std::vector<bool> bools_;
  std::vector<Value> boxed_;           // kMixed
};

/// A populated in-memory column store over a table (§5.2): evaluates the
/// requested columns — including virtual columns such as JSON_VALUE
/// projections and the hidden OSON() column — once per row at population
/// time, then serves scans from the columnar image.
class ColumnStore {
 public:
  /// Populates `columns` of `table` (hidden virtual columns included when
  /// named explicitly). Deleted rows are skipped.
  static Result<ColumnStore> Populate(const rdbms::Table& table,
                                      const std::vector<std::string>& columns);

  size_t row_count() const { return row_count_; }
  const std::vector<std::string>& column_names() const { return names_; }
  /// nullptr when absent.
  const ColumnVector* column(const std::string& name) const;

  /// Columnar image footprint. Computed once at Populate() (the vectors
  /// are immutable afterwards) and served from a cached value, so the
  /// ISSUE 9 memory reporters can poll it per refresh without re-walking
  /// every dictionary string.
  size_t MemoryBytes() const { return memory_bytes_; }

  /// Row-source over the store (optionally only `columns`), so ordinary
  /// executor plans can consume IMC data.
  rdbms::OperatorPtr Scan(std::vector<std::string> columns = {}) const;

  /// Vectorized scan: conjunctive column predicates evaluated via
  /// ColumnVector::FilterCompare, then `projection` columns of the
  /// surviving rows are emitted. This is the genuine columnar path used by
  /// the VC-IMC mode of Fig. 6.
  struct Predicate {
    std::string column;
    rdbms::CompareOp op;
    Value literal;
  };
  Result<std::vector<rdbms::Row>> FilterScan(
      const std::vector<Predicate>& predicates,
      const std::vector<std::string>& projection) const;

  /// Matching positions only (for counting / joining).
  Result<std::vector<uint32_t>> FilterPositions(
      const std::vector<Predicate>& predicates) const;

 private:
  std::vector<std::string> names_;
  std::map<std::string, size_t> index_;
  std::vector<ColumnVector> columns_;
  size_t row_count_ = 0;
  size_t memory_bytes_ = 0;  // cached at Populate; columns are immutable
};

}  // namespace fsdm::imc

#endif  // FSDM_IMC_COLUMN_STORE_H_
