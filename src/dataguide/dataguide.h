#ifndef FSDM_DATAGUIDE_DATAGUIDE_H_
#define FSDM_DATAGUIDE_DATAGUIDE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/value.h"
#include "json/dom.h"

namespace fsdm::dataguide {

/// Generalized scalar category for DataGuide leaves. Merging a number with
/// a string generalizes to string (§3.1); null merges into anything.
enum class LeafType : uint8_t {
  kNull = 0,     // only nulls seen so far
  kBoolean,
  kNumber,
  kString,       // top of the generalization lattice
};

std::string_view LeafTypeName(LeafType type);

/// One row of the $DG table: a distinct (path, node-kind) with statistics.
/// The paper's type vocabulary ("object", "array", "number", "array of
/// string", ...) comes out of TypeString(): nodes reached through at least
/// one un-nested array carry the "array of " prefix.
struct PathEntry {
  std::string path;            // "$.purchaseOrder.items.name"
  json::NodeKind kind = json::NodeKind::kScalar;
  bool under_array = false;    // reached through >= 1 array un-nesting
  LeafType leaf_type = LeafType::kNull;  // scalars only
  size_t max_length = 0;       // max display-byte length of scalar values

  // Statistics (§3.2.1's statistical columns).
  uint64_t frequency = 0;      // documents containing this path
  uint64_t null_count = 0;     // null scalar occurrences
  std::optional<Value> min_value;
  std::optional<Value> max_value;

  /// Internal: id of the last document that touched this entry, used to
  /// count per-document frequency without a per-document set.
  uint64_t last_doc_stamp = 0;

  /// "object" | "array" | "<leaf>" with "array of " prefix when
  /// under_array.
  std::string TypeString() const;
};

/// Observer fed during AddDocument's instance walk: every scalar leaf with
/// its DataGuide path, then one end-of-document call. Statistics consumers
/// (the per-collection PathStatsRepository) hang off this so value-level
/// stats ride the walk the guide already pays for on the DML path.
class ScalarSink {
 public:
  virtual ~ScalarSink() = default;
  virtual void OnScalar(const std::string& path, bool under_array,
                        const Value& v) = 0;
  virtual void OnDocumentEnd() = 0;
};

/// The JSON DataGuide (§3): a dynamic soft schema computed from document
/// instances. One instance serves both roles in the paper — the persistent
/// DataGuide embedded in the JSON search index and the transient DataGuide
/// produced by the SQL aggregate.
class DataGuide {
 public:
  DataGuide() = default;

  /// Extracts the skeleton of one document and merges it in. Returns the
  /// number of *new* $DG rows this document introduced (0 for documents
  /// whose structure is already fully known — the fast common case the
  /// check-constraint integration relies on, §3.2.1). When `new_entries`
  /// is non-null, pointers to the newly created entries are appended (the
  /// rows a persistent DataGuide must write to $DG). When `sink` is
  /// non-null it receives every scalar leaf visited by the walk.
  Result<int> AddDocument(const json::Dom& dom,
                          std::vector<const PathEntry*>* new_entries = nullptr,
                          ScalarSink* sink = nullptr);

  /// Convenience: parse text then AddDocument.
  Result<int> AddJsonText(std::string_view text);

  /// Merges another DataGuide (union of paths, generalization of types).
  void Merge(const DataGuide& other);

  uint64_t document_count() const { return doc_count_; }
  size_t distinct_path_count() const { return entries_.size(); }

  /// In-memory footprint of the guide (ISSUE 9 memory attribution):
  /// per-entry node overhead plus the path string twice (the hash Key and
  /// the PathEntry each own a copy). Deterministic size-based formula;
  /// min/max sample Values are excluded (bounded per entry, and their
  /// variant payloads would make the formula value-dependent). O(entries).
  uint64_t MemoryBytes() const;

  /// Entries sorted by path (then container-before-leaf).
  std::vector<const PathEntry*> SortedEntries() const;

  /// Looks up an entry by path and kind.
  const PathEntry* Find(std::string_view path, json::NodeKind kind,
                        bool under_array) const;

  /// Flat form (§3.2.2): a JSON array of {"o:path", "type", "o:length",
  /// "o:frequency"} objects — the shape Table 2 tabulates.
  std::string ToFlatJson() const;

  /// Hierarchical form: a JSON-Schema-flavored nested document with
  /// "type" / "properties" / "items" plus "o:length"/"o:frequency"
  /// annotations, as returned by getDataGuide().
  std::string ToHierarchicalJson() const;

  /// Leaf scalar paths with a one-to-one relationship to documents
  /// (never under an array) — the candidates for JSON_VALUE virtual
  /// columns (§3.3.1).
  std::vector<const PathEntry*> SingletonScalarPaths() const;

 private:
  struct Key {
    std::string path;
    json::NodeKind kind;
    bool under_array;
  };
  struct KeyView {
    std::string_view path;
    json::NodeKind kind;
    bool under_array;
  };
  // Heterogeneous hash/equality: the hot structural-check path of §3.2.1
  // looks entries up by string_view without materializing a Key.
  struct KeyHash {
    using is_transparent = void;
    template <typename K>
    size_t operator()(const K& k) const {
      uint64_t h = Hash64(std::string_view(k.path));
      h = h * 31 + static_cast<uint64_t>(k.kind) * 2 +
          (k.under_array ? 1 : 0);
      return static_cast<size_t>(h);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return std::string_view(a.path) == std::string_view(b.path) &&
             a.kind == b.kind && a.under_array == b.under_array;
    }
  };

  friend class InstanceWalker;

  std::unordered_map<Key, PathEntry, KeyHash, KeyEq> entries_;
  uint64_t doc_count_ = 0;
};

}  // namespace fsdm::dataguide

#endif  // FSDM_DATAGUIDE_DATAGUIDE_H_
