#include "dataguide/dataguide.h"

#include <algorithm>
#include <set>

#include "json/parser.h"
#include "json/serializer.h"
#include "telemetry/memory_tracker.h"

namespace fsdm::dataguide {

std::string_view LeafTypeName(LeafType type) {
  switch (type) {
    case LeafType::kNull:
      return "null";
    case LeafType::kBoolean:
      return "boolean";
    case LeafType::kNumber:
      return "number";
    case LeafType::kString:
      return "string";
  }
  return "unknown";
}

std::string PathEntry::TypeString() const {
  std::string base;
  switch (kind) {
    case json::NodeKind::kObject:
      base = "object";
      break;
    case json::NodeKind::kArray:
      base = "array";
      break;
    case json::NodeKind::kScalar:
      base = std::string(LeafTypeName(leaf_type));
      break;
  }
  return under_array ? "array of " + base : base;
}

namespace {

LeafType Categorize(const Value& v) {
  switch (v.type()) {
    case ScalarType::kNull:
      return LeafType::kNull;
    case ScalarType::kBool:
      return LeafType::kBoolean;
    case ScalarType::kInt64:
    case ScalarType::kDouble:
    case ScalarType::kDecimal:
      return LeafType::kNumber;
    default:
      return LeafType::kString;
  }
}

// Type generalization: null merges into anything; differing non-null types
// generalize to string (§3.1's merge rule).
LeafType Generalize(LeafType a, LeafType b) {
  if (a == b) return a;
  if (a == LeafType::kNull) return b;
  if (b == LeafType::kNull) return a;
  return LeafType::kString;
}

}  // namespace

/// Walks one instance, updating the owning guide. Per-document frequency
/// is counted once per distinct key (doc-stamped on the entries).
class InstanceWalker {
 public:
  InstanceWalker(DataGuide* guide,
                 std::vector<const PathEntry*>* new_entries,
                 ScalarSink* scalar_sink)
      : guide_(guide),
        new_sink_(new_entries),
        scalar_sink_(scalar_sink),
        doc_stamp_(guide->doc_count_ + 1) {}

  Status Walk(const json::Dom& dom, json::Dom::NodeRef node,
              std::string* path, bool under_array) {
    using json::NodeKind;
    NodeKind kind = dom.GetNodeType(node);
    PathEntry* entry = Touch(*path, kind, under_array);

    switch (kind) {
      case NodeKind::kObject: {
        size_t n = dom.GetFieldCount(node);
        for (size_t i = 0; i < n; ++i) {
          std::string_view name;
          json::Dom::NodeRef child;
          dom.GetFieldAt(node, i, &name, &child);
          size_t mark = path->size();
          path->push_back('.');
          path->append(name);
          FSDM_RETURN_NOT_OK(Walk(dom, child, path, under_array));
          path->resize(mark);
        }
        return Status::Ok();
      }
      case NodeKind::kArray: {
        // Array elements keep the array's path; descendants are marked as
        // under_array so their type strings carry the "array of" prefix.
        size_t n = dom.GetArrayLength(node);
        for (size_t i = 0; i < n; ++i) {
          FSDM_RETURN_NOT_OK(
              Walk(dom, dom.GetArrayElement(node, i), path, true));
        }
        return Status::Ok();
      }
      case NodeKind::kScalar: {
        Value v;
        FSDM_RETURN_NOT_OK(dom.GetScalarValue(node, &v));
        LeafType lt = Categorize(v);
        entry->leaf_type = Generalize(entry->leaf_type, lt);
        if (v.is_null()) {
          ++entry->null_count;
        } else {
          entry->max_length = std::max(entry->max_length, CheapLength(v));
          UpdateMinMax(entry, v);
        }
        if (scalar_sink_ != nullptr) {
          scalar_sink_->OnScalar(*path, under_array, v);
        }
        return Status::Ok();
      }
    }
    return Status::Internal("unreachable");
  }

  int new_entries() const { return new_entries_; }

 private:
  // Display-length without allocating (the DataGuide length column only
  // needs byte counts).
  static size_t CheapLength(const Value& v) {
    switch (v.type()) {
      case ScalarType::kString:
        return v.AsString().size();
      case ScalarType::kBool:
        return v.AsBool() ? 4 : 5;
      case ScalarType::kInt64: {
        int64_t x = v.AsInt64();
        size_t n = x < 0 ? 2 : 1;
        uint64_t mag = x < 0 ? static_cast<uint64_t>(-(x + 1)) + 1
                             : static_cast<uint64_t>(x);
        while (mag >= 10) {
          mag /= 10;
          ++n;
        }
        return n;
      }
      case ScalarType::kDecimal:
        // digits + sign + point bound; exact length is not worth a
        // formatting pass on the hot DML path.
        return static_cast<size_t>(v.AsDecimal().digit_count()) + 2;
      default:
        return 8;
    }
  }

  PathEntry* Touch(const std::string& path, json::NodeKind kind,
                   bool under_array) {
    // Fast path: existing entry found without materializing a Key.
    DataGuide::KeyView view{path, kind, under_array};
    auto it = guide_->entries_.find(view);
    if (it == guide_->entries_.end()) {
      ++new_entries_;
      it = guide_->entries_
               .try_emplace(DataGuide::Key{path, kind, under_array})
               .first;
      it->second.path = path;
      it->second.kind = kind;
      it->second.under_array = under_array;
      if (new_sink_ != nullptr) new_sink_->push_back(&it->second);
    }
    // Per-document frequency via doc stamping (no per-doc set).
    if (it->second.last_doc_stamp != doc_stamp_) {
      it->second.last_doc_stamp = doc_stamp_;
      ++it->second.frequency;
    }
    return &it->second;
  }

  void UpdateMinMax(PathEntry* entry, const Value& v) {
    if (!entry->min_value.has_value()) {
      entry->min_value = v;
      entry->max_value = v;
      return;
    }
    Result<int> lo = v.CompareTo(*entry->min_value);
    if (lo.ok() && lo.value() < 0) entry->min_value = v;
    Result<int> hi = v.CompareTo(*entry->max_value);
    if (hi.ok() && hi.value() > 0) entry->max_value = v;
  }

  DataGuide* guide_;
  std::vector<const PathEntry*>* new_sink_;
  ScalarSink* scalar_sink_;
  uint64_t doc_stamp_;
  int new_entries_ = 0;
};

Result<int> DataGuide::AddDocument(const json::Dom& dom,
                                   std::vector<const PathEntry*>* new_entries,
                                   ScalarSink* sink) {
  InstanceWalker walker(this, new_entries, sink);
  std::string path = "$";
  FSDM_RETURN_NOT_OK(walker.Walk(dom, dom.root(), &path, false));
  ++doc_count_;
  if (sink != nullptr) sink->OnDocumentEnd();
  return walker.new_entries();
}

Result<int> DataGuide::AddJsonText(std::string_view text) {
  FSDM_ASSIGN_OR_RETURN(std::unique_ptr<json::JsonNode> doc,
                        json::Parse(text));
  json::TreeDom dom(doc.get());
  return AddDocument(dom);
}

void DataGuide::Merge(const DataGuide& other) {
  for (const auto& [key, theirs] : other.entries_) {
    auto [it, inserted] = entries_.try_emplace(key, theirs);
    if (inserted) continue;
    PathEntry& ours = it->second;
    ours.leaf_type = Generalize(ours.leaf_type, theirs.leaf_type);
    ours.max_length = std::max(ours.max_length, theirs.max_length);
    ours.frequency += theirs.frequency;
    ours.null_count += theirs.null_count;
    if (theirs.min_value.has_value()) {
      if (!ours.min_value.has_value()) {
        ours.min_value = theirs.min_value;
      } else {
        Result<int> cmp = theirs.min_value->CompareTo(*ours.min_value);
        if (cmp.ok() && cmp.value() < 0) ours.min_value = theirs.min_value;
      }
    }
    if (theirs.max_value.has_value()) {
      if (!ours.max_value.has_value()) {
        ours.max_value = theirs.max_value;
      } else {
        Result<int> cmp = theirs.max_value->CompareTo(*ours.max_value);
        if (cmp.ok() && cmp.value() > 0) ours.max_value = theirs.max_value;
      }
    }
  }
  doc_count_ += other.doc_count_;
}

std::vector<const PathEntry*> DataGuide::SortedEntries() const {
  std::vector<const PathEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const PathEntry* a, const PathEntry* b) {
              if (a->path != b->path) return a->path < b->path;
              if (a->kind != b->kind) return a->kind < b->kind;
              return a->under_array < b->under_array;
            });
  return out;
}

uint64_t DataGuide::MemoryBytes() const {
  // Hash node overhead (bucket pointer + node header) plus the entry
  // payload; the path string is owned twice, by the Key and the PathEntry.
  constexpr uint64_t kEntryBytes = 2 * sizeof(void*) + sizeof(PathEntry);
  uint64_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += kEntryBytes + 2 * telemetry::OwnedStringBytes(entry.path);
  }
  return total;
}

const PathEntry* DataGuide::Find(std::string_view path, json::NodeKind kind,
                                 bool under_array) const {
  auto it = entries_.find(Key{std::string(path), kind, under_array});
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const PathEntry*> DataGuide::SingletonScalarPaths() const {
  std::vector<const PathEntry*> out;
  for (const PathEntry* e : SortedEntries()) {
    if (e->kind == json::NodeKind::kScalar && !e->under_array) {
      out.push_back(e);
    }
  }
  return out;
}

std::string DataGuide::ToFlatJson() const {
  std::string out = "[";
  bool first = true;
  for (const PathEntry* e : SortedEntries()) {
    if (!first) out += ",";
    first = false;
    out += "{\"o:path\":";
    json::AppendQuoted(&out, e->path);
    out += ",\"type\":";
    json::AppendQuoted(&out, e->TypeString());
    if (e->kind == json::NodeKind::kScalar) {
      out += ",\"o:length\":" + std::to_string(e->max_length);
    }
    out += ",\"o:frequency\":" + std::to_string(e->frequency);
    out += "}";
  }
  out += "]";
  return out;
}

namespace {

// Hierarchical rendering node.
struct HierNode {
  // child name -> node (objects)
  std::map<std::string, HierNode> properties;
  // element node (arrays); only ever 0 or 1 deep per path step
  std::unique_ptr<HierNode> items;
  std::vector<const PathEntry*> selves;  // entries at this exact path
};

void RenderHier(const HierNode& node, std::string* out) {
  // A path position can hold several merged kinds (e.g. scalar in one doc,
  // object in another); render "type" as a string or array of strings.
  out->push_back('{');
  std::string types;
  const PathEntry* scalar_entry = nullptr;
  bool has_object = !node.properties.empty();
  bool has_array = node.items != nullptr;
  std::set<std::string> type_set;
  for (const PathEntry* e : node.selves) {
    if (e->kind == json::NodeKind::kScalar) {
      scalar_entry = e;
      type_set.insert(std::string(LeafTypeName(e->leaf_type)));
    } else if (e->kind == json::NodeKind::kObject) {
      type_set.insert("object");
    } else {
      type_set.insert("array");
    }
  }
  if (has_object) type_set.insert("object");
  if (has_array) type_set.insert("array");
  out->append("\"type\":");
  if (type_set.size() == 1) {
    json::AppendQuoted(out, *type_set.begin());
  } else {
    out->push_back('[');
    bool first = true;
    for (const std::string& t : type_set) {
      if (!first) out->push_back(',');
      first = false;
      json::AppendQuoted(out, t);
    }
    out->push_back(']');
  }
  if (scalar_entry != nullptr) {
    out->append(",\"o:length\":" + std::to_string(scalar_entry->max_length));
    out->append(",\"o:frequency\":" +
                std::to_string(scalar_entry->frequency));
  }
  if (has_object) {
    out->append(",\"properties\":{");
    bool first = true;
    for (const auto& [name, child] : node.properties) {
      if (!first) out->push_back(',');
      first = false;
      json::AppendQuoted(out, name);
      out->push_back(':');
      RenderHier(child, out);
    }
    out->push_back('}');
  }
  if (has_array) {
    out->append(",\"items\":");
    RenderHier(*node.items, out);
  }
  out->push_back('}');
}

}  // namespace

std::string DataGuide::ToHierarchicalJson() const {
  HierNode root;
  for (const PathEntry* e : SortedEntries()) {
    // Split "$.a.b" into steps; descend/create the hierarchy. An entry
    // with under_array attaches beneath the nearest array's "items".
    HierNode* cur = &root;
    std::string_view rest(e->path);
    if (!rest.empty() && rest[0] == '$') rest.remove_prefix(1);
    while (!rest.empty()) {
      if (rest[0] == '.') rest.remove_prefix(1);
      size_t dot = rest.find('.');
      std::string step(rest.substr(0, dot));
      cur = &cur->properties[step];
      if (dot == std::string_view::npos) break;
      rest.remove_prefix(dot);
    }
    if (e->under_array || e->kind == json::NodeKind::kArray) {
      // Entries merged under arrays live inside the array's items node;
      // the array container entry itself stays on the outer node.
      if (e->under_array) {
        if (!cur->items) cur->items = std::make_unique<HierNode>();
        cur->items->selves.push_back(e);
        continue;
      }
    }
    cur->selves.push_back(e);
  }
  // Fix-up: object fields under arrays. Above, under_array entries landed
  // on items of their own path node, but their children (properties) were
  // attached to the outer node as well. This approximation renders the
  // structural shape faithfully for typical collections; the flat form is
  // the authoritative representation (as in the paper's $DG table).
  std::string out;
  RenderHier(root, &out);
  return out;
}

}  // namespace fsdm::dataguide
