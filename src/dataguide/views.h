#ifndef FSDM_DATAGUIDE_VIEWS_H_
#define FSDM_DATAGUIDE_VIEWS_H_

#include <map>
#include <string>
#include <vector>

#include "dataguide/dataguide.h"
#include "rdbms/executor.h"
#include "rdbms/table.h"
#include "sqljson/json_table.h"
#include "sqljson/operators.h"

namespace fsdm::dataguide {

/// Options shared by the view/column generators.
struct GenerateOptions {
  /// Project a path only when it occurs in at least this fraction of
  /// documents (CreateViewOnPath's frequency threshold, §3.3.2: eliminates
  /// sparse and outlier fields from the DMDV).
  double min_frequency_fraction = 0.0;
  /// Prefix for generated column names: "<prefix>$<leaf>", mirroring the
  /// paper's "JCOL$id" convention.
  std::string column_prefix;
  /// User annotations on the computed DataGuide (§3.2.2): rename the
  /// column generated for an absolute path ("$.purchaseOrder.id" ->
  /// "PO_ID"). Renamed columns skip the prefix convention.
  std::map<std::string, std::string> column_renames;
};

/// AddVC() (§3.3.1): adds one JSON_VALUE virtual column to `table` for
/// every singleton scalar path in the guide. Returns the added column
/// names. Columns are named "<prefix>$<leafname>" (suffix-deduplicated).
/// When `added_paths` is non-null it receives the JSON path behind each
/// added column, parallel to the returned names (the collection layer
/// records this mapping for access-path routing).
Result<std::vector<std::string>> AddVc(
    rdbms::Table* table, const std::string& json_column,
    sqljson::JsonStorage storage, const DataGuide& guide,
    const GenerateOptions& options = {},
    std::vector<std::string>* added_paths = nullptr);

/// A generated De-normalized Master-Detail View (§3.3.2).
struct DmdvView {
  std::string name;
  const rdbms::Table* table = nullptr;
  std::string json_column;
  sqljson::JsonStorage storage = sqljson::JsonStorage::kText;
  sqljson::JsonTableDef def;
  /// Pass-through key columns from the base table (e.g. DID).
  std::vector<std::string> passthrough_columns;

  /// All view output column names (passthrough + JSON_TABLE columns).
  std::vector<std::string> OutputColumns() const;

  /// Builds the executable plan: Scan(table) -> JSON_TABLE(def) ->
  /// Project(output columns).
  Result<rdbms::OperatorPtr> MakePlan() const;

  /// Renders the equivalent CREATE VIEW ... JSON_TABLE(...) SQL statement
  /// — the paper's Table 8 form, with NESTED PATH blocks for each array.
  std::string ToSqlText() const;
};

/// CreateViewOnPath() (§3.3.2): derives the DMDV JSON_TABLE definition for
/// `root_path` ('$' for the whole document) from the guide. Scalars above
/// arrays become parent columns; each array introduces a NESTED PATH block
/// (child = left outer join, siblings = union join), recursively.
Result<DmdvView> CreateViewOnPath(const rdbms::Table* table,
                                  const std::string& json_column,
                                  sqljson::JsonStorage storage,
                                  const DataGuide& guide,
                                  const std::string& root_path,
                                  const std::string& view_name,
                                  const GenerateOptions& options = {});

/// JSON_DataGuideAgg() (§3.4): an executor aggregate whose input is a JSON
/// document column and whose result is the DataGuide of the group rendered
/// as a single JSON document (flat or hierarchical form).
enum class AggForm { kFlat, kHierarchical };
rdbms::AggSpec JsonDataGuideAgg(rdbms::ExprPtr json_column_expr,
                                std::string output_name,
                                AggForm form = AggForm::kFlat);

/// Like JsonDataGuideAgg but hands back the structured DataGuide through
/// `sink` (one DataGuide per group, in group output order) — used when the
/// caller wants the guide itself rather than its JSON rendering.
rdbms::AggSpec JsonDataGuideAggInto(rdbms::ExprPtr json_column_expr,
                                    std::string output_name,
                                    std::vector<DataGuide>* sink);

}  // namespace fsdm::dataguide

#endif  // FSDM_DATAGUIDE_VIEWS_H_
