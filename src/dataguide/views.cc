#include "dataguide/views.h"

#include <map>

namespace fsdm::dataguide {

namespace {

using sqljson::JsonStorage;
using sqljson::JsonTableColumn;
using sqljson::JsonTableDef;
using sqljson::Returning;

Returning ReturningFor(LeafType type) {
  switch (type) {
    case LeafType::kNumber:
      return Returning::kNumber;
    case LeafType::kString:
      return Returning::kString;
    default:
      return Returning::kAny;
  }
}

/// Path trie over the guide's entries below a root path.
struct TrieNode {
  std::map<std::string, TrieNode> children;
  bool is_array = false;
  bool is_object = false;
  // Merged scalar info across under_array variants.
  bool has_scalar = false;
  LeafType leaf_type = LeafType::kNull;
  size_t max_length = 0;
  uint64_t scalar_frequency = 0;
};

// Splits "$.a.b" into steps after the root prefix; returns false when the
// path is not under `root`.
bool RelativeSteps(const std::string& path, const std::string& root,
                   std::vector<std::string>* steps) {
  if (path.compare(0, root.size(), root) != 0) return false;
  std::string_view rest(path);
  rest.remove_prefix(root.size());
  if (!rest.empty() && rest[0] != '.') return false;
  steps->clear();
  while (!rest.empty()) {
    rest.remove_prefix(1);  // '.'
    size_t dot = rest.find('.');
    steps->push_back(std::string(rest.substr(0, dot)));
    if (dot == std::string_view::npos) break;
    rest.remove_prefix(dot);
  }
  return true;
}

struct NameAllocator {
  std::map<std::string, int> used;
  std::string prefix;
  const std::map<std::string, std::string>* renames = nullptr;

  std::string Allocate(const std::string& leaf) {
    std::string base = prefix.empty() ? leaf : prefix + "$" + leaf;
    int& n = used[base];
    ++n;
    if (n == 1) return base;
    return base + "_" + std::to_string(n - 1);
  }

  // Rename annotation wins over the prefix convention (§3.2.2).
  std::string AllocateFor(const std::string& abs_path,
                          const std::string& leaf) {
    if (renames != nullptr) {
      auto it = renames->find(abs_path);
      if (it != renames->end()) return it->second;
    }
    return Allocate(leaf);
  }
};

/// Emits columns and nested defs for the children of `node`. `rel` is the
/// path from the enclosing definition's row context to `node` ("$" at the
/// row context itself).
void EmitChildren(const TrieNode& node, const std::string& rel,
                  const std::string& abs, double min_freq,
                  uint64_t doc_count, NameAllocator* names,
                  JsonTableDef* def) {
  for (const auto& [field, child] : node.children) {
    std::string child_rel = rel + "." + field;
    std::string child_abs = abs + "." + field;
    if (child.has_scalar) {
      bool keep = true;
      if (min_freq > 0.0 && doc_count > 0) {
        keep = static_cast<double>(child.scalar_frequency) /
                   static_cast<double>(doc_count) >=
               min_freq;
      }
      if (keep) {
        JsonTableColumn col;
        col.name = names->AllocateFor(child_abs, field);
        col.path = child_rel;
        col.returning = ReturningFor(child.leaf_type);
        def->columns.push_back(std::move(col));
      }
    }
    if (child.is_array) {
      // NESTED PATH '<child>[*]' — children un-nest with left-outer-join
      // semantics; siblings union-join (§3.3.2).
      JsonTableDef nested;
      nested.row_path = child_rel + "[*]";
      // Array of scalars: project the element itself.
      if (child.has_scalar) {
        // Already projected above through lax un-nesting of the member
        // step; arrays of scalars additionally expose per-element rows.
        JsonTableColumn col;
        col.name = names->AllocateFor(child_abs + "[]", field + "_value");
        col.path = "$";
        col.returning = ReturningFor(child.leaf_type);
        nested.columns.push_back(std::move(col));
      }
      EmitChildren(child, "$", child_abs, min_freq, doc_count, names,
                   &nested);
      if (!nested.columns.empty() || !nested.nested.empty()) {
        def->nested.push_back(std::move(nested));
      }
    } else if (child.is_object) {
      // Note: a path that is an array in any document routes its object
      // children through the NESTED PATH block above — the common case is
      // array-of-objects, whose elements set is_object as well.
      EmitChildren(child, child_rel, child_abs, min_freq, doc_count, names,
                   def);
    }
  }
}

Result<TrieNode> BuildTrie(const DataGuide& guide, const std::string& root) {
  TrieNode trie;
  std::vector<std::string> steps;
  bool any = false;
  for (const PathEntry* e : guide.SortedEntries()) {
    if (!RelativeSteps(e->path, root, &steps)) continue;
    any = true;
    TrieNode* cur = &trie;
    for (const std::string& s : steps) cur = &cur->children[s];
    switch (e->kind) {
      case json::NodeKind::kArray:
        cur->is_array = true;
        break;
      case json::NodeKind::kObject:
        cur->is_object = true;
        break;
      case json::NodeKind::kScalar: {
        cur->has_scalar = true;
        cur->leaf_type = cur->scalar_frequency == 0
                             ? e->leaf_type
                             : (cur->leaf_type == e->leaf_type
                                    ? cur->leaf_type
                                    : LeafType::kString);
        cur->max_length = std::max(cur->max_length, e->max_length);
        cur->scalar_frequency += e->frequency;
        break;
      }
    }
  }
  if (!any) {
    return Status::NotFound("no DataGuide paths under '" + root + "'");
  }
  return trie;
}

}  // namespace

Result<std::vector<std::string>> AddVc(rdbms::Table* table,
                                       const std::string& json_column,
                                       JsonStorage storage,
                                       const DataGuide& guide,
                                       const GenerateOptions& options,
                                       std::vector<std::string>* added_paths) {
  NameAllocator names;
  names.prefix =
      options.column_prefix.empty() ? json_column : options.column_prefix;
  std::vector<std::string> added;
  for (const PathEntry* e : guide.SingletonScalarPaths()) {
    if (options.min_frequency_fraction > 0.0 && guide.document_count() > 0) {
      double frac = static_cast<double>(e->frequency) /
                    static_cast<double>(guide.document_count());
      if (frac < options.min_frequency_fraction) continue;
    }
    size_t dot = e->path.rfind('.');
    std::string leaf =
        dot == std::string::npos ? e->path : e->path.substr(dot + 1);
    rdbms::ColumnDef def;
    names.renames = &options.column_renames;
    def.name = names.AllocateFor(e->path, leaf);
    def.type = e->leaf_type == LeafType::kNumber ? rdbms::ColumnType::kNumber
                                                 : rdbms::ColumnType::kString;
    def.max_length = e->max_length;
    FSDM_ASSIGN_OR_RETURN(
        def.virtual_expr,
        sqljson::JsonValue(json_column, e->path, storage,
                           ReturningFor(e->leaf_type)));
    std::string added_name = def.name;
    FSDM_RETURN_NOT_OK(table->AddVirtualColumn(std::move(def)));
    if (added_paths != nullptr) added_paths->push_back(e->path);
    added.push_back(std::move(added_name));
  }
  return added;
}

std::vector<std::string> DmdvView::OutputColumns() const {
  std::vector<std::string> out = passthrough_columns;
  for (const std::string& c : sqljson::JsonTableOutputColumns(def)) {
    out.push_back(c);
  }
  return out;
}

Result<rdbms::OperatorPtr> DmdvView::MakePlan() const {
  rdbms::OperatorPtr scan = rdbms::Scan(table);
  FSDM_ASSIGN_OR_RETURN(
      rdbms::OperatorPtr jt,
      sqljson::JsonTable(std::move(scan), json_column, storage, def));
  // Project away the raw JSON column, keeping passthrough + JT columns.
  std::vector<std::pair<std::string, rdbms::ExprPtr>> exprs;
  for (const std::string& c : OutputColumns()) {
    exprs.emplace_back(c, rdbms::Col(c));
  }
  return rdbms::Project(std::move(jt), std::move(exprs));
}

namespace {

const char* SqlTypeFor(Returning returning) {
  switch (returning) {
    case Returning::kNumber:
      return "number";
    case Returning::kString:
      return "varchar2";
    default:
      return "any";
  }
}

void RenderDef(const JsonTableDef& def, int indent, bool is_root,
               std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (!is_root) {
    *out += pad + "NESTED PATH '" + def.row_path + "' COLUMNS (\n";
  }
  bool first = true;
  for (const JsonTableColumn& col : def.columns) {
    if (!first) *out += ",\n";
    first = false;
    *out += pad + "  \"" + col.name + "\" " + SqlTypeFor(col.returning) +
            " path '" + col.path + "'";
  }
  for (const JsonTableDef& nested : def.nested) {
    if (!first) *out += ",\n";
    first = false;
    RenderDef(nested, indent + 1, /*is_root=*/false, out);
  }
  if (!is_root) *out += "\n" + pad + ")";
}

}  // namespace

std::string DmdvView::ToSqlText() const {
  std::string out = "CREATE VIEW " + name + " AS\nSELECT ";
  for (const std::string& c : passthrough_columns) {
    out += table->name() + "." + c + ", ";
  }
  out += "JT.*\nFROM " + table->name() + ",\n  JSON_TABLE(\"" + json_column +
         "\" FORMAT JSON, '" + def.row_path + "'\n  COLUMNS (\n";
  RenderDef(def, 2, /*is_root=*/true, &out);
  out += "\n  )) JT;";
  return out;
}

Result<DmdvView> CreateViewOnPath(const rdbms::Table* table,
                                  const std::string& json_column,
                                  JsonStorage storage, const DataGuide& guide,
                                  const std::string& root_path,
                                  const std::string& view_name,
                                  const GenerateOptions& options) {
  FSDM_ASSIGN_OR_RETURN(TrieNode trie, BuildTrie(guide, root_path));

  DmdvView view;
  view.name = view_name;
  view.table = table;
  view.json_column = json_column;
  view.storage = storage;

  NameAllocator names;
  names.prefix =
      options.column_prefix.empty() ? json_column : options.column_prefix;
  names.renames = &options.column_renames;

  // Root rows: the document itself, or each element when the root path is
  // an array branch (CreateViewOnPath('$.purchaseOrder.items')).
  view.def.row_path = trie.is_array ? root_path + "[*]" : root_path;
  // When rooted at '$', column paths are absolute (Table 8's style).
  EmitChildren(trie, trie.is_array ? "$" : root_path, root_path,
               options.min_frequency_fraction, guide.document_count(),
               &names, &view.def);

  // Pass through the base table's non-JSON, non-hidden physical columns
  // (the paper's PO.DID key column).
  for (const rdbms::ColumnDef& c : table->columns()) {
    if (c.hidden || c.is_virtual() || c.name == json_column) continue;
    if (c.type == rdbms::ColumnType::kJson ||
        c.type == rdbms::ColumnType::kRaw) {
      continue;
    }
    view.passthrough_columns.push_back(c.name);
  }
  return view;
}

namespace {

class DataGuideAggregate final : public rdbms::CustomAggregate {
 public:
  DataGuideAggregate(AggForm form, std::vector<DataGuide>* sink)
      : form_(form), sink_(sink) {}

  Status Accumulate(const Value& arg) override {
    if (arg.is_null()) return Status::Ok();
    if (arg.type() != ScalarType::kString) {
      return Status::InvalidArgument(
          "JSON_DataGuideAgg expects JSON text input");
    }
    return guide_.AddJsonText(arg.AsString()).status();
  }

  Result<Value> Finalize() override {
    if (sink_ != nullptr) sink_->push_back(guide_);
    return Value::String(form_ == AggForm::kFlat
                             ? guide_.ToFlatJson()
                             : guide_.ToHierarchicalJson());
  }

 private:
  AggForm form_;
  std::vector<DataGuide>* sink_;
  DataGuide guide_;
};

}  // namespace

rdbms::AggSpec JsonDataGuideAgg(rdbms::ExprPtr json_column_expr,
                                std::string output_name, AggForm form) {
  rdbms::AggSpec spec;
  spec.kind = rdbms::AggSpec::Kind::kCustom;
  spec.arg = std::move(json_column_expr);
  spec.output_name = std::move(output_name);
  spec.custom = [form]() {
    return std::make_unique<DataGuideAggregate>(form, nullptr);
  };
  return spec;
}

rdbms::AggSpec JsonDataGuideAggInto(rdbms::ExprPtr json_column_expr,
                                    std::string output_name,
                                    std::vector<DataGuide>* sink) {
  rdbms::AggSpec spec;
  spec.kind = rdbms::AggSpec::Kind::kCustom;
  spec.arg = std::move(json_column_expr);
  spec.output_name = std::move(output_name);
  spec.custom = [sink]() {
    return std::make_unique<DataGuideAggregate>(AggForm::kFlat, sink);
  };
  return spec;
}

}  // namespace fsdm::dataguide
