#include "json/node.h"

namespace fsdm::json {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kObject:
      return "object";
    case NodeKind::kArray:
      return "array";
    case NodeKind::kScalar:
      return "scalar";
  }
  return "unknown";
}

const JsonNode* JsonNode::GetField(std::string_view name) const {
  for (const auto& [key, child] : fields_) {
    if (key == name) return child.get();
  }
  return nullptr;
}

JsonNode* JsonNode::AddField(std::string name,
                             std::unique_ptr<JsonNode> child) {
  fields_.emplace_back(std::move(name), std::move(child));
  return fields_.back().second.get();
}

JsonNode* JsonNode::Append(std::unique_ptr<JsonNode> child) {
  elements_.push_back(std::move(child));
  return elements_.back().get();
}

bool JsonNode::Equals(const JsonNode& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case NodeKind::kObject: {
      if (fields_.size() != other.fields_.size()) return false;
      // Order-insensitive field comparison (JSON object semantics).
      for (const auto& [key, child] : fields_) {
        const JsonNode* theirs = other.GetField(key);
        if (theirs == nullptr || !child->Equals(*theirs)) return false;
      }
      return true;
    }
    case NodeKind::kArray: {
      if (elements_.size() != other.elements_.size()) return false;
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (!elements_[i]->Equals(*other.elements_[i])) return false;
      }
      return true;
    }
    case NodeKind::kScalar: {
      if (scalar_.is_null() || other.scalar_.is_null()) {
        return scalar_.is_null() && other.scalar_.is_null();
      }
      if (scalar_.IsNumeric() != other.scalar_.IsNumeric()) return false;
      Result<int> cmp = scalar_.CompareTo(other.scalar_);
      return cmp.ok() && cmp.value() == 0;
    }
  }
  return false;
}

std::unique_ptr<JsonNode> JsonNode::Clone() const {
  switch (kind_) {
    case NodeKind::kObject: {
      auto copy = MakeObject();
      for (const auto& [key, child] : fields_) {
        copy->AddField(key, child->Clone());
      }
      return copy;
    }
    case NodeKind::kArray: {
      auto copy = MakeArray();
      for (const auto& child : elements_) {
        copy->Append(child->Clone());
      }
      return copy;
    }
    case NodeKind::kScalar:
      return MakeScalar(scalar_);
  }
  return nullptr;
}

}  // namespace fsdm::json
